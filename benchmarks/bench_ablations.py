"""Ablations of the paper's design choices.

The paper motivates several design decisions qualitatively; these
benchmarks quantify each one on the simulated testbed:

* bucket-at-a-time vs partition-at-a-time work assignment (§III-A);
* partitioning fanout around the shared-memory sweet spot (§III-A);
* chunk sizing for the streaming pipeline (§IV-A);
* hash-table slots per co-partition (§III-C);
* NUMA staging on/off (§IV-B);
* static vs adaptive thread selection (§IV-B future work).
"""

import numpy as np

from repro.core import (
    AdaptiveCoProcessingJoin,
    CoProcessingJoin,
    GpuJoinConfig,
    GpuPartitionedJoin,
    StreamingProbeJoin,
)
from repro.data import (
    Distribution,
    JoinSpec,
    RelationSpec,
    generate_relation,
    unique_pair,
    zipf_pair,
)
from repro.gpusim.cost import GpuCostModel
from repro.kernels.radix_partition import (
    BUCKET_AT_A_TIME,
    PARTITION_AT_A_TIME,
    gpu_radix_partition,
)

M = 1_000_000


def test_ablation_work_assignment_under_skew(benchmark, capsys):
    """§III-A: partition-at-a-time is slightly better for uniform data
    but collapses under skew; bucket-at-a-time is chosen for robustness."""

    def run():
        model = GpuCostModel()
        out = {}
        for label, spec in (
            ("uniform", RelationSpec(n=2 * M)),
            (
                "zipf 1.0",
                RelationSpec(
                    n=2 * M, distinct=2 * M, distribution=Distribution.ZIPF, zipf_s=1.0
                ),
            ),
        ):
            rel = generate_relation(spec, seed=11)
            costs = {}
            for assignment in (BUCKET_AT_A_TIME, PARTITION_AT_A_TIME):
                _, cost = gpu_radix_partition(
                    rel, [8, 7], model, assignment=assignment, bucket_capacity=1024
                )
                costs[assignment] = cost.seconds
            out[label] = costs
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for label, costs in results.items():
            ratio = costs[PARTITION_AT_A_TIME] / costs[BUCKET_AT_A_TIME]
            print(
                f"ablation/work-assignment {label:8s}: "
                f"partition-at-a-time / bucket-at-a-time = {ratio:5.2f}x"
            )
    uniform = results["uniform"]
    skewed = results["zipf 1.0"]
    # Bucket-at-a-time costs a little extra for uniform data...
    assert uniform[BUCKET_AT_A_TIME] >= uniform[PARTITION_AT_A_TIME]
    # ...but under heavy skew the longest chain dominates the other mode.
    assert skewed[PARTITION_AT_A_TIME] > 2 * skewed[BUCKET_AT_A_TIME]


def test_ablation_partitioning_fanout(benchmark, capsys):
    """§III-A: fanout must reduce partitions into shared memory; too low
    falls back to block-NLJ passes, too high pays metadata + utilization."""

    def run():
        spec = unique_pair(64 * M)
        out = {}
        for bits in (9, 11, 13, 15, 17):
            join = GpuPartitionedJoin(config=GpuJoinConfig(total_radix_bits=bits))
            out[bits] = join.estimate(spec).throughput_billion
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for bits, value in results.items():
            print(f"ablation/fanout 2^{bits:<2d}: {value:5.2f} B tuples/s")
    best_bits = max(results, key=results.get)
    # The paper's 2^15 default sits at (or next to) the sweet spot, and
    # severe under-partitioning is the worst choice.
    assert best_bits in (13, 15)
    assert results[9] < results[best_bits]
    assert results[17] < results[best_bits]


def test_ablation_streaming_chunk_size(benchmark, capsys):
    """§IV-A: chunks must be large enough to amortize per-chunk launches
    yet small enough to pipeline; half the build size is a solid choice."""
    spec = JoinSpec(
        build=RelationSpec(n=64 * M),
        probe=RelationSpec(
            n=1024 * M, distinct=64 * M, distribution=Distribution.UNIFORM
        ),
    )

    def run():
        streaming = StreamingProbeJoin()
        return {
            fraction: streaming.estimate(
                spec, chunk_tuples=max(1, int(64 * M * fraction))
            ).throughput_billion
            for fraction in (0.05, 0.25, 0.5, 1.0)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for fraction, value in results.items():
            print(f"ablation/chunk {fraction:4.2f}x build: {value:5.2f} B tuples/s")
    assert results[0.5] >= 0.98 * max(results.values())
    # Tiny chunks pay launch/sync overheads.
    assert results[0.05] < results[0.5]


def test_ablation_hash_table_slots(benchmark, capsys):
    """§III-C: fewer slots mean longer chains; the 2048-slot default keeps
    the load factor ~2 for 4096-element partitions."""

    def run():
        spec = unique_pair(64 * M)
        out = {}
        for slots in (256, 512, 1024, 2048, 4096):
            join = GpuPartitionedJoin(config=GpuJoinConfig(ht_slots=slots))
            out[slots] = join.estimate(spec).throughput_billion
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for slots, value in results.items():
            print(f"ablation/ht-slots {slots:5d}: {value:5.2f} B tuples/s")
    assert results[2048] > results[256]  # chains of ~16 hurt
    values = list(results.values())
    assert values == sorted(values)  # monotone in slots at this load


def test_ablation_numa_staging_and_adaptive(benchmark, capsys):
    """§IV-B: staging beats direct copies; adaptive threads match the best
    static configuration while freeing steady-state cores."""

    def run():
        spec = unique_pair(1024 * M)
        staged = CoProcessingJoin(staging=True)
        direct = CoProcessingJoin(staging=False)
        adaptive = AdaptiveCoProcessingJoin()
        fixed_grid = {
            t: staged.estimate(spec, threads=t).throughput_billion
            for t in (8, 16, 24, 32, 46)
        }
        return {
            "direct": direct.estimate(spec).throughput_billion,
            "fixed": fixed_grid,
            "adaptive": adaptive.estimate(spec).throughput_billion,
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(f"ablation/staging off: {results['direct']:5.2f} B tuples/s")
        for threads, value in results["fixed"].items():
            print(f"ablation/static {threads:2d} threads: {value:5.2f} B tuples/s")
        print(f"ablation/adaptive   : {results['adaptive']:5.2f} B tuples/s")
    best_fixed = max(results["fixed"].values())
    assert results["adaptive"] >= 0.99 * best_fixed
    assert results["direct"] < best_fixed


def test_ablation_skew_split_vs_solo(benchmark, capsys):
    """§IV-B: recursively splitting oversized co-partitions beats shipping
    them as solo working sets once a host partition outgrows the GPU."""

    def run():
        # cpu_bits=1 gives two 8.2 GB host partitions at 2048M tuples -
        # both above the working-set capacity, forcing the splitter.
        spec = zipf_pair(2048 * M, 0.0, skew_side="both")
        coproc = CoProcessingJoin(cpu_bits=1)
        plan = coproc.plan(
            np.full(2, spec.build.n / 2), spec.build.tuple_bytes, spec.probe.n
        )
        return {
            "throughput": coproc.estimate(spec).throughput_billion,
            "repartition_fraction": plan.repartition_fraction,
            "working_sets": len(plan.working_sets),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            f"ablation/split: {results['working_sets']} working sets, "
            f"{results['repartition_fraction'] * 100:.0f}% repartitioned, "
            f"{results['throughput']:4.2f} B tuples/s"
        )
    assert results["repartition_fraction"] == 1.0  # both partitions split
    assert results["working_sets"] >= 3
    assert results["throughput"] > 0.8  # still near the PCIe bound


def test_ablation_histogram_vs_atomic_partitioning(benchmark, capsys):
    """SVI: atomics + bucket pools avoid the per-pass histogram read that
    Rui & Tu's two-phase partitioning pays."""
    from repro.kernels.histogram import partitioning_approach_costs

    def run():
        model = GpuCostModel()
        return {
            n: partitioning_approach_costs(n * M, 8, [8, 7], model)
            for n in (16, 64, 128)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        for n, costs in results.items():
            overhead = costs["histogram"] / costs["atomic_buckets"]
            print(
                f"ablation/partitioning {n:4d}M: histogram / atomic = "
                f"{overhead:4.2f}x"
            )
    for costs in results.values():
        assert costs["histogram"] > 1.15 * costs["atomic_buckets"]
