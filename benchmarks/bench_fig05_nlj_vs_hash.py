"""Figure 5: partitioned hash join vs ballot nested loops."""

from repro.bench.figures import fig05


def test_fig05(regenerate):
    result = regenerate(fig05)
    hash_total = result.get("Hash join - total")
    nlj_total = result.get("Nested loop - total")
    hash_co = result.get("Hash join - join co-partitions")
    nlj_co = result.get("Nested loop - join co-partitions")

    # NLJ leads at small partition sizes; hash wins at 2048 (paper: "the
    # hash join variant outperforms it for larger partition sizes").
    assert nlj_total.y_at(256) > hash_total.y_at(256)
    assert hash_total.y_at(2048) > nlj_total.y_at(2048)

    # Co-partition throughput improves until 1024 elements, then declines
    # (collisions for hash, quadratic cost for NLJ) - and the NLJ decline
    # is much sharper.
    assert hash_co.y_at(1024) > hash_co.y_at(256)
    assert hash_co.y_at(1024) > hash_co.y_at(2048)
    nlj_drop = nlj_co.y_at(1024) / nlj_co.y_at(2048)
    hash_drop = hash_co.y_at(1024) / hash_co.y_at(2048)
    assert nlj_drop > hash_drop

    # Partitioning dominates, so the total-throughput gap stays small.
    assert abs(hash_total.y_at(2048) - nlj_total.y_at(2048)) < 1.5
