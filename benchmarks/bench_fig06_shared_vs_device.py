"""Figure 6: co-partition hash tables in shared vs device memory."""

from repro.bench.figures import fig06


def test_fig06(regenerate):
    result = regenerate(fig06)
    shared_total = result.get("Shared mem - total")
    device_total = result.get("Device mem - total")
    shared_co = result.get("Shared mem - join co-partitions")
    device_co = result.get("Device mem - join co-partitions")

    # Shared memory wins at every size, and by >30% at the largest
    # (paper: "more than 30% faster for the largest relation size").
    for x in (1, 8, 64, 128):
        assert shared_total.y_at(x) >= device_total.y_at(x)
        assert shared_co.y_at(x) > device_co.y_at(x)
    assert shared_total.y_at(128) > 1.30 * device_total.y_at(128)

    # Co-partition throughput grows with size (utilization improves).
    assert shared_co.y_at(128) > shared_co.y_at(1)
