"""Figure 7: output materialization vs aggregation (in-GPU)."""

from repro.bench.figures import fig07


def test_fig07(regenerate):
    result = regenerate(fig07)
    agg = result.get("Aggregation")
    mat = result.get("Materialization")

    for x in (1, 8, 64, 128):
        # Materialization costs something but "does not degrade
        # performance significantly" - the mat line traces the agg line.
        assert mat.y_at(x) <= agg.y_at(x)
        assert mat.y_at(x) > 0.7 * agg.y_at(x)

    # Both improve with size as partitioning overheads amortize.
    assert agg.y_at(128) > 2.5 * agg.y_at(1)
    assert agg.y_at(128) > 3.5  # ~4-4.5 Btuples/s at the sweet spot
