"""Figure 8: join families across build:probe ratios."""

from repro.bench.figures import fig08


def test_fig08(regenerate):
    result = regenerate(fig08)
    part = result.get("GPU Partitioned (1:1)")
    chain = result.get("GPU Non-partitioned (1:1)")
    perfect = result.get("GPU Non-partitioned w/ perfect hash (1:1)")
    pro = result.get("CPU PRO (1:1)")
    npo = result.get("CPU NPO (1:1)")

    # Non-partitioned starts high and deteriorates; partitioned starts
    # low, benefits from size, and outperforms everything past ~8-16M.
    assert chain.y_at(1) > part.y_at(1)
    assert chain.y_at(128) < 0.5 * chain.y_at(1)
    for x in (32, 64, 128):
        assert part.y_at(x) > chain.y_at(x)
        assert part.y_at(x) > perfect.y_at(x)
        assert part.y_at(x) > pro.y_at(x)
        assert part.y_at(x) > npo.y_at(x)

    # GPU beats its CPU counterpart in every size/family (SV-D), with
    # the partitioned speedup reaching ~4x.
    for x in (1, 8, 64, 128):
        assert part.y_at(x) > pro.y_at(x)
    assert part.y_at(64) > 3.5 * pro.y_at(64)

    # PRO overtakes the chaining GPU join at large sizes (SV-D).
    assert pro.y_at(128) > chain.y_at(128)

    # Larger probe ratios make the partitioned improvement steeper:
    # crossover vs perfect hash happens at smaller build sizes.
    part4 = result.get("GPU Partitioned (1:4)")
    perfect4 = result.get("GPU Non-partitioned w/ perfect hash (1:4)")
    assert part4.y_at(8) > perfect4.y_at(8)
    assert perfect.y_at(8) > part.y_at(8) * 0.9  # 1:1 crossover is later
