"""Figure 9: probe-side late-materialized payload width."""

from repro.bench.figures import fig09


def test_fig09(regenerate):
    result = regenerate(fig09)
    part = result.get("GPU Partitioned")
    nonpart = result.get("GPU Non-Partitioned")

    # Partitioning reorders tuples, so wide probe payloads gather
    # randomly; the non-partitioned join reads them sequentially and
    # overtakes at large payload widths (paper's crossover).
    assert part.y_at(16) > nonpart.y_at(16)
    assert nonpart.y_at(128) > part.y_at(128)

    # Both decline monotonically as payloads widen.
    assert part.y_at(128) < part.y_at(16)
    assert nonpart.y_at(128) < nonpart.y_at(16)
