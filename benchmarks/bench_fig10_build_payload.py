"""Figure 10: build-side late-materialized payload width."""

from repro.bench.figures import fig10


def test_fig10(regenerate):
    result = regenerate(fig10)
    part = result.get("GPU Partitioned")
    nonpart = result.get("GPU Non-Partitioned")

    # Build-side attributes gather randomly for *both* joins, so the
    # partitioned join keeps its edge at every width...
    for x in (16, 48, 96, 128):
        assert part.y_at(x) > nonpart.y_at(x)

    # ...but the relative gap narrows as random gathers dominate.
    gap_16 = part.y_at(16) / nonpart.y_at(16)
    gap_128 = part.y_at(128) / nonpart.y_at(128)
    assert gap_128 < gap_16
