"""Figure 11: streamed probe side vs CPU PRO."""

from repro.bench.figures import fig11


def test_fig11(regenerate):
    result = regenerate(fig11)
    agg = result.get("GPU Partitioned (aggregation)")
    mat = result.get("GPU Partitioned (materialization)")
    pro = result.get("CPU PRO")

    # Throughput grows with probe size toward the PCIe bound (~1.4-1.5).
    assert agg.y_at(2048) > agg.y_at(64)
    assert 1.3 <= agg.y_at(2048) <= 1.6

    # Materialization introduces an overhead but no significant
    # deterioration; the gap narrows as transfers dominate.
    for x in (64, 512, 2048):
        assert mat.y_at(x) <= agg.y_at(x)
        assert mat.y_at(x) > 0.75 * agg.y_at(x)

    # The GPU strategy beats the CPU join everywhere, and the speedup
    # grows with the probe size (SV-D).
    for x in (64, 256, 1024, 2048):
        assert agg.y_at(x) > pro.y_at(x)
    assert agg.y_at(2048) / pro.y_at(2048) > agg.y_at(64) / pro.y_at(64)
