"""Figure 12: co-processing join vs CPU joins."""

from repro.bench.figures import fig12


def test_fig12(regenerate):
    result = regenerate(fig12)
    for ratio in (1, 2, 4):
        coproc = result.get(f"GPU Partitioned (1:{ratio})")
        pro = result.get(f"CPU PRO (1:{ratio})")
        npo = result.get(f"CPU NPO (1:{ratio})")
        xs = [x for x, y in coproc.points if y is not None]
        assert xs, "every ratio must have at least one feasible point"
        for x in xs:
            assert coproc.y_at(x) > pro.y_at(x) > npo.y_at(x)

    # Robustness: co-processing throughput is insensitive to size (1:1).
    coproc = result.get("GPU Partitioned (1:1)")
    values = [y for _, y in coproc.points if y is not None]
    assert max(values) / min(values) < 1.3
    assert min(values) >= 1.0  # ~1.2 Btuples/s headline

    # The co-processing advantage grows from the small to the middle
    # sizes as the CPU join declines; at 2048M extra working-set
    # boundaries cost a few percent, but the advantage stays >= 1.4x.
    pro = result.get("CPU PRO (1:1)")
    assert coproc.y_at(1024) / pro.y_at(1024) >= coproc.y_at(256) / pro.y_at(256) * 0.98
    assert coproc.y_at(2048) / pro.y_at(2048) >= 1.4

    # The paper stops 1:4 at 1024M (80 GB total leaves no room for
    # CPU-side processing); that point must be reported as infeasible.
    quad = result.get("GPU Partitioned (1:4)")
    assert quad.y_at(2048) is None
    assert quad.y_at(1024) is not None
