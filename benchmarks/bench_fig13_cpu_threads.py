"""Figure 13: scalability with CPU threads."""

from repro.bench.figures import fig13


def test_fig13(regenerate):
    result = regenerate(fig13)
    coproc = result.get("GPU Partitioned (co-processing)")
    pro = result.get("CPU PRO")

    # CPU PRO scales roughly linearly with threads.
    assert pro.y_at(46) > 4 * pro.y_at(6)

    # Co-processing rises rapidly and outperforms the fastest CPU setup
    # with only 6 threads (SV-D).
    assert coproc.y_at(6) > pro.y_at(46)

    # Plateau after ~16 threads, small drop past ~26 (memory saturation).
    assert coproc.y_at(18) > 0.95 * coproc.y_at(26)
    assert coproc.y_at(46) < coproc.y_at(26)
    assert coproc.y_at(46) > 0.8 * coproc.y_at(26)
