"""Figure 14: TPC-H joins vs DBMS-X and CoGaDB."""

from repro.bench.figures import fig14


def test_fig14(regenerate):
    result = regenerate(fig14)
    ours = result.get("GPU Partitioned")
    dbmsx = result.get("DBMS-X")
    cogadb = result.get("CoGaDB")

    # SF10 (ticks 0-1): everything runs; we outperform both systems.
    for tick in (0, 1):
        assert ours.y_at(tick) > dbmsx.y_at(tick) > cogadb.y_at(tick)

    # SF100 customer (tick 2): we and DBMS-X run; CoGaDB fails to load.
    assert ours.y_at(2) > dbmsx.y_at(2)
    assert cogadb.y_at(2) is None

    # SF100 orders (tick 3): DBMS-X errors; we revert to streaming.
    assert dbmsx.y_at(3) is None
    assert ours.y_at(3) > 1.0
