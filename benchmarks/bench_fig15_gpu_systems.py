"""Figure 15: state-of-the-art GPU systems across sizes."""

from repro.bench.figures import fig15


def test_fig15(regenerate):
    result = regenerate(fig15)
    ours = result.get("GPU Partitioned")
    dbmsx = result.get("DBMS-X")
    cogadb = result.get("CoGaDB")

    # We outperform DBMS-X in all cases: 1.5-2x when GPU resident,
    # stretching to ~10x+ when data falls out of the GPU.
    for x in (1, 8, 32):
        ratio = ours.y_at(x) / dbmsx.y_at(x)
        assert 1.4 <= ratio <= 2.2
    assert ours.y_at(512) / dbmsx.y_at(512) >= 8

    # DBMS-X keeps data GPU-resident only up to 32M tuples; our
    # implementation pushes that limit to 128M.
    assert dbmsx.y_at(32) > 5 * dbmsx.y_at(64)
    assert ours.y_at(128) > 0.8 * ours.y_at(64)
    assert ours.y_at(256) < 0.6 * ours.y_at(128)  # out-of-GPU transition

    # CoGaDB reaches 128M but cannot run the two bigger datasets.
    assert cogadb.y_at(128) is not None
    assert cogadb.y_at(256) is None and cogadb.y_at(512) is None
