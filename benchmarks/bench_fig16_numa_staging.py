"""Figure 16: NUMA staging vs direct far-socket copies."""

from repro.bench.figures import fig16


def test_fig16(regenerate):
    result = regenerate(fig16)
    staging = result.get("Staging")
    direct = result.get("Direct copy")

    # The intermediate copy to the near socket wins at every size
    # (partitioning interferes with far-socket transfers over QPI).
    for x in (256, 512, 1024, 2048):
        assert staging.y_at(x) > direct.y_at(x)

    # Both sustain high fractions of the PCIe-derived bound (GBps).
    assert staging.y_at(1024) > 8.0
    assert direct.y_at(1024) > 5.0
