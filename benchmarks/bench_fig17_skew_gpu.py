"""Figure 17: skewed inputs, GPU-resident data."""

from repro.bench.figures import fig17


def test_fig17(regenerate):
    result = regenerate(fig17)
    probe = result.get("Skewed probe (aggregation)")
    build = result.get("Skewed build (aggregation)")
    identical = result.get("Identically skewed (aggregation)")
    identical_mat = result.get("Identically skewed (materialization)")

    # Probe-side skew has very low impact when the build is uniform.
    assert probe.y_at(1.0) > 0.85 * probe.y_at(0.0)
    # Build-side skew costs a little more but stays fast.
    assert build.y_at(1.0) > 0.8 * build.y_at(0.0)

    # Identical skew: fine through 0.5, collapse past 0.75 (hash tables
    # stop fitting shared memory + all-against-all matches).
    assert identical.y_at(0.5) > 0.75 * identical.y_at(0.0)
    assert identical.y_at(0.75) < 0.25 * identical.y_at(0.5)
    assert identical.y_at(1.0) < identical.y_at(0.75)

    # Materialization adds only a small penalty at low skew.
    assert identical_mat.y_at(0.25) > 0.8 * identical.y_at(0.25)
