"""Figure 18: skewed inputs, out-of-GPU (co-processing)."""

from repro.bench.figures import fig18


def test_fig18(regenerate):
    result = regenerate(fig18)
    probe = result.get("Skewed probe (aggregation)")
    build = result.get("Skewed build (aggregation)")
    identical = result.get("Identically skewed (aggregation)")
    identical_mat = result.get("Identically skewed (materialization)")

    # Out-of-GPU execution is much more resilient: the interconnect is
    # slower than the in-GPU work, so one-sided skew is fully hidden.
    for z in (0.25, 0.5, 0.75, 1.0):
        assert probe.y_at(z) > 0.9 * probe.y_at(0.0)
        assert build.y_at(z) > 0.9 * build.y_at(0.0)

    # Identical skew eventually overwhelms even the PCIe bound.
    assert identical.y_at(0.25) > 0.9 * identical.y_at(0.0)
    assert identical.y_at(1.0) < 0.1 * identical.y_at(0.0)

    # With materialization the exploded output crosses the bus too:
    # the penalty at high identical skew is even larger.
    assert identical_mat.y_at(0.5) < identical.y_at(0.5)
