"""Figure 19: uniform duplicates (1-4 replicas per key)."""

from repro.bench.figures import fig19


def test_fig19(regenerate):
    result = regenerate(fig19)
    gpu_agg = result.get("GPU resident (aggregation)")
    gpu_mat = result.get("GPU resident (materialization)")
    cpu_agg = result.get("CPU resident (aggregation)")
    cpu_mat = result.get("CPU resident (materialization)")

    # More replicas -> more matches -> throughput declines gently.
    for series in (gpu_agg, gpu_mat, cpu_agg, cpu_mat):
        assert series.y_at(1) >= series.y_at(2) >= series.y_at(4)
        assert series.y_at(4) > 0.3 * series.y_at(1)

    # Materialization suffers more as output multiplies.
    assert gpu_mat.y_at(4) / gpu_agg.y_at(4) < gpu_mat.y_at(1) / gpu_agg.y_at(1)

    # GPU-resident stays well above the out-of-GPU pipeline.
    assert gpu_agg.y_at(4) > 2 * cpu_agg.y_at(1)
