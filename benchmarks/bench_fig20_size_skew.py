"""Figure 20: input size x identical skew (co-processing)."""

from repro.bench.figures import fig20


def test_fig20(regenerate):
    result = regenerate(fig20)
    uniform = result.get("Uniform (aggregation)")
    z25 = result.get("zipf 0.25 (aggregation)")
    z50 = result.get("zipf 0.5 (aggregation)")
    z50_mat = result.get("zipf 0.5 (materialization)")
    uniform_mat = result.get("Uniform (materialization)")

    # Up to zipf 0.25 aggregation sees no penalty at any size.
    for x in (256, 512, 1024, 2048):
        assert z25.y_at(x) > 0.9 * uniform.y_at(x)
        # Uniform data are also unaffected by materialization.
        assert uniform_mat.y_at(x) > 0.85 * uniform.y_at(x)

    # At zipf 0.5 the exploding output hurts, and materialization makes
    # it much worse (result tuples cross the PCIe bus).
    for x in (512, 2048):
        assert z50.y_at(x) < uniform.y_at(x)
        assert z50_mat.y_at(x) < 0.7 * z50.y_at(x)
