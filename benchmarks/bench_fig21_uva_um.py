"""Figure 21: UVA / Unified Memory for GPU-sized working sets."""

from repro.bench.figures import fig21


def test_fig21(regenerate):
    result = regenerate(fig21)
    bars = result.get("throughput")
    gpu_load, uva_part, uva_join, uva_load, um = (bars.y_at(i) for i in range(5))

    # Resident execution dominates every driver-managed alternative.
    assert gpu_load > uva_part and gpu_load > uva_load
    # Running the whole join over UVA is far worse than only loading.
    assert uva_join < 0.5 * uva_load
    # Unified Memory's fault overhead makes it the slowest load path.
    assert um < uva_load
