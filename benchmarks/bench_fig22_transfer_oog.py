"""Figure 22: UM vs UVA vs co-processing for out-of-GPU data."""

from repro.bench.figures import fig22


def test_fig22(regenerate):
    result = regenerate(fig22)
    bars = result.get("throughput")
    um, uva, coproc = (bars.y_at(i) for i in range(3))

    # Hand-managed co-processing is the only strategy near the PCIe
    # bound; UVA re-reads every partitioning pass over the bus, and UM
    # thrashes pages.
    assert coproc > 3 * uva
    assert uva > um
    assert coproc >= 1.0
