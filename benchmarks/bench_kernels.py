"""Microbenchmarks of the functional kernels (real wall-clock timings).

Unlike the figure benches (which time the *models*), these time the
functional numpy kernels themselves, giving pytest-benchmark meaningful
hot-loop numbers for regression tracking.
"""

import numpy as np

from repro.cpu.radix_partition import cpu_radix_partition
from repro.data import generate_join, unique_pair
from repro.data.relation import Relation
from repro.data.zipf import sample as zipf_sample
from repro.gpusim.atomics import chain_insert
from repro.gpusim.cost import GpuCostModel
from repro.kernels.build_hash import build_copartition_tables
from repro.kernels.probe_hash import probe_copartitions
from repro.kernels.radix_partition import gpu_radix_partition

MODEL = GpuCostModel()
N = 1 << 20


def _pair():
    return generate_join(unique_pair(N), seed=42)


def test_bench_radix_partition(benchmark):
    build, _ = _pair()
    partitioned, _ = benchmark(gpu_radix_partition, build, [8, 2], MODEL)
    assert partitioned.num_tuples == N


def test_bench_hash_build(benchmark):
    build, _ = _pair()
    partitioned, _ = gpu_radix_partition(build, [8, 2], MODEL)

    def _build():
        tables, _ = build_copartition_tables(
            partitioned, nslots=256, elements_per_block=4096, cost_model=MODEL
        )
        return tables

    tables = benchmark(_build)
    assert tables.fanout == 1 << 10


def test_bench_hash_probe(benchmark):
    build, probe = _pair()
    pb, _ = gpu_radix_partition(build, [8, 2], MODEL)
    pp, _ = gpu_radix_partition(probe, [8, 2], MODEL)
    tables, _ = build_copartition_tables(
        pb, nslots=256, elements_per_block=4096, cost_model=MODEL
    )
    result = benchmark(
        probe_copartitions,
        tables,
        pp,
        elements_per_block=4096,
        threads_per_block=512,
        cost_model=MODEL,
    )
    assert result.matches == N


def test_bench_chain_insert(benchmark):
    rng = np.random.default_rng(0)
    slots = rng.integers(0, 1 << 16, size=N)
    table = benchmark(chain_insert, slots, 1 << 16)
    assert table.num_entries == N


def test_bench_cpu_radix_partition(benchmark):
    build, _ = _pair()
    partitioned = benchmark(cpu_radix_partition, build, 4)
    assert partitioned.fanout == 16


def test_bench_zipf_sampler(benchmark):
    rng = np.random.default_rng(1)
    out = benchmark(zipf_sample, 1 << 20, 0.9, 1 << 18, rng)
    assert out.shape[0] == 1 << 18


def test_bench_nonpartitioned_chaining(benchmark):
    from repro.kernels.nonpartitioned import chaining_join

    build, probe = generate_join(unique_pair(1 << 18), seed=7)
    result = benchmark(chaining_join, build, probe, MODEL)
    assert result.matches == 1 << 18
