"""Shared helpers for the figure benchmarks.

Every ``bench_figNN`` module regenerates one figure of the paper at the
full workload sizes, prints the series table (the rows the paper plots),
and asserts the figure's *shape* claims — who wins, by roughly what
factor, where crossovers fall.  Absolute numbers are simulated seconds
on the modelled GTX 1080 testbed and are not expected to match the
authors' hardware exactly.
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def regenerate(benchmark, capsys):
    """Run a figure function under pytest-benchmark and print its table."""

    def _run(figure_fn, **kwargs):
        result = benchmark.pedantic(
            figure_fn, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(result.table())
        return result

    return _run
