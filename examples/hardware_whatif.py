"""What-if: the same joins on a V100 + NVLink-class system.

The paper predicts (SV-C) that "under faster interconnects, like NVLink
or PCIe 4.0, our join algorithms would provide higher throughput" since
both out-of-GPU strategies saturate the bus.  Because every strategy is
parameterized by a SystemSpec, that claim can be checked directly.

Run:  python examples/hardware_whatif.py
"""

from repro import (
    CoProcessingJoin,
    Distribution,
    GpuPartitionedJoin,
    JoinSpec,
    RelationSpec,
    StreamingProbeJoin,
    gtx1080_system,
    unique_pair,
    v100_system,
)

M = 1_000_000


def main() -> None:
    systems = {"GTX 1080 / PCIe 3.0": gtx1080_system(), "V100 / NVLink": v100_system()}

    resident_spec = unique_pair(128 * M)
    streaming_spec = JoinSpec(
        build=RelationSpec(n=64 * M),
        probe=RelationSpec(
            n=2048 * M, distinct=64 * M, distribution=Distribution.UNIFORM
        ),
    )
    coproc_spec = unique_pair(1024 * M)

    print(f"{'workload':34s}" + "".join(f"{name:>22s}" for name in systems))
    rows = (
        ("in-GPU 128M x 128M", lambda sys: GpuPartitionedJoin(sys).estimate(resident_spec)),
        ("streaming 64M x 2048M", lambda sys: StreamingProbeJoin(sys).estimate(streaming_spec)),
        ("co-processing 1024M x 1024M", lambda sys: CoProcessingJoin(sys).estimate(coproc_spec)),
    )
    for label, run in rows:
        cells = ""
        for system in systems.values():
            metrics = run(system)
            cells += f"{metrics.throughput_billion:20.2f} B"
        print(f"{label:34s}{cells}")

    print(
        "\nThe out-of-GPU strategies scale with the interconnect, exactly "
        "as the paper anticipates: they are bandwidth-bound, not "
        "compute-bound."
    )


if __name__ == "__main__":
    main()
