"""Out-of-GPU execution: streaming and co-processing pipelines (§IV).

Walks the paper's decision ladder on progressively larger workloads:
GPU-resident, streamed probe side, and CPU-GPU co-processing — printing
the planner's choice, the pipeline phase occupancies, and how close each
strategy gets to the PCIe bound.

Run:  python examples/out_of_gpu_pipeline.py
"""

from repro import (
    CoProcessingJoin,
    Distribution,
    JoinSpec,
    RelationSpec,
    StreamingProbeJoin,
    choose_strategy_name,
    estimate_with_planner,
    unique_pair,
)
from repro.gpusim.spec import SystemSpec

M = 1_000_000


def ladder() -> None:
    """The planner's three regimes (the 'no one-size-fits-all' claim)."""
    print("=== strategy selection by data location ===")
    cases = {
        "both fit in GPU memory (32M x 32M)": unique_pair(32 * M),
        "build fits, probe streams (64M x 1024M)": JoinSpec(
            build=RelationSpec(n=64 * M),
            probe=RelationSpec(
                n=1024 * M, distinct=64 * M, distribution=Distribution.UNIFORM
            ),
        ),
        "neither fits (1024M x 1024M)": unique_pair(1024 * M),
    }
    for label, spec in cases.items():
        name = choose_strategy_name(spec)
        metrics = estimate_with_planner(spec)
        print(
            f"{label:45s} -> {name:13s} "
            f"{metrics.throughput_billion:5.2f} B tuples/s"
        )


def streaming_detail() -> None:
    print("\n=== streaming probe join (SIV-A): phase occupancy ===")
    spec = JoinSpec(
        build=RelationSpec(n=64 * M),
        probe=RelationSpec(
            n=2048 * M, distinct=64 * M, distribution=Distribution.UNIFORM
        ),
    )
    streaming = StreamingProbeJoin()
    for materialize in (False, True):
        metrics = streaming.estimate(spec, materialize=materialize)
        mode = "materialization" if materialize else "aggregation"
        pcie_bound = spec.total_bytes / streaming.transfer.pipelined_dma_rate()
        print(
            f"{mode:16s} {metrics.throughput_billion:5.2f} B tuples/s  "
            f"(PCIe floor {pcie_bound:.2f}s, achieved {metrics.seconds:.2f}s)"
        )
        for phase, busy in metrics.phases.items():
            print(f"    {phase:4s} busy {busy:6.2f}s "
                  f"({busy / metrics.seconds * 100:5.1f}% of makespan)")


def coprocessing_detail() -> None:
    print("\n=== co-processing join (SIV-B): thread scaling ===")
    coproc = CoProcessingJoin()
    spec = unique_pair(1024 * M)
    for threads in (2, 6, 16, 26, 46):
        metrics = coproc.estimate(spec, threads=threads)
        print(
            f"{threads:2d} CPU threads -> {metrics.throughput_billion:5.2f} "
            f"B tuples/s   (working sets: {metrics.notes['working_sets']:.0f}, "
            f"first holds {metrics.notes['first_ws_fraction'] * 100:.0f}% of the build)"
        )
    print(
        "\nPCIe bound for reference: "
        f"{SystemSpec().interconnect.pinned_bandwidth / 8 / 1e9:.2f} B tuples/s"
    )


if __name__ == "__main__":
    ladder()
    streaming_detail()
    coprocessing_detail()
