"""Multi-join analytical query over the GPU join family.

Runs a TPC-H-Q3-flavoured pipeline — filter customers, join orders,
join lineitem, aggregate — through the query layer.  Each hash join is
executed with whichever strategy the §IV planner picks for its input
sizes, and the per-operator report shows the simulated cost breakdown.

Run:  python examples/query_pipeline.py
"""

import numpy as np

from repro.core import GpuJoinConfig
from repro.data.tpch import generate
from repro.query import (
    Aggregate,
    Comparison,
    Filter,
    HashJoin,
    QueryExecutor,
    Scan,
    Table,
)


def build_tables(scale_factor: float) -> tuple[Table, Table, Table]:
    raw = generate(scale_factor, seed=7)
    rng = np.random.default_rng(7)
    n_cust = raw.customer.num_tuples
    n_orders = raw.orders.num_tuples
    customer = Table(
        "customer",
        {
            "c_custkey": raw.customer.key,
            "c_mktsegment": rng.integers(0, 5, size=n_cust),
        },
    )
    orders = Table(
        "orders",
        {
            "o_orderkey": raw.orders.key,
            "o_custkey": rng.integers(0, n_cust, size=n_orders),
            "o_orderpriority": rng.integers(0, 5, size=n_orders),
        },
    )
    lineitem = Table(
        "lineitem",
        {
            "l_orderkey": raw.lineitem_orderkey.key,
            "l_quantity": rng.integers(1, 51, size=raw.lineitem_orderkey.num_tuples),
        },
    )
    return customer, orders, lineitem


def main() -> None:
    customer, orders, lineitem = build_tables(0.02)
    print(
        f"customer {customer.num_rows:,} rows | orders {orders.num_rows:,} | "
        f"lineitem {lineitem.num_rows:,}"
    )

    # SELECT count(*), sum(l_quantity)
    # FROM customer, orders, lineitem
    # WHERE c_mktsegment = 1 AND c_custkey = o_custkey
    #   AND o_orderkey = l_orderkey AND o_orderpriority < 2
    plan = Aggregate(
        HashJoin(
            build=Filter(
                HashJoin(
                    build=Filter(Scan(customer), "c_mktsegment", Comparison.EQ, 1),
                    probe=Scan(orders),
                    build_key="c_custkey",
                    probe_key="o_custkey",
                ),
                "orders.o_orderpriority",
                Comparison.LT,
                2,
            ),
            probe=Scan(lineitem),
            build_key="orders.o_orderkey",
            probe_key="l_orderkey",
        ),
        sum_columns=("lineitem.l_quantity",),
    )

    executor = QueryExecutor(config=GpuJoinConfig(total_radix_bits=8))
    result = executor.execute(plan)
    print("\nper-operator report (simulated costs):")
    print(result.explain())
    print(f"\nresult: {result.aggregates}")

    # Independent verification with plain numpy.
    seg = customer.column("c_mktsegment") == 1
    good_customers = set(customer.column("c_custkey")[seg].tolist())
    omask = np.isin(orders.column("o_custkey"), list(good_customers)) & (
        orders.column("o_orderpriority") < 2
    )
    good_orders = set(orders.column("o_orderkey")[omask].tolist())
    lmask = np.isin(lineitem.column("l_orderkey"), list(good_orders))
    expected_count = int(lmask.sum())
    expected_qty = int(lineitem.column("l_quantity")[lmask].sum())
    assert result.aggregates["count"] == expected_count
    assert result.aggregates["lineitem.l_quantity"] == expected_qty
    print("verified against a plain numpy evaluation")


if __name__ == "__main__":
    main()
