"""Quickstart: run the paper's in-GPU partitioned join end to end.

Generates the standard microbenchmark workload (unique uniform 4-byte
keys, §V-A), executes the partitioned radix hash join functionally on
the simulated GTX 1080, verifies the result against a naive join, and
prints the modelled performance metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    GpuJoinConfig,
    GpuNonPartitionedJoin,
    GpuPartitionedJoin,
    generate_join,
    naive_join_pairs,
    unique_pair,
)


def main() -> None:
    # One million tuples per side; probe keys drawn from the build domain.
    spec = unique_pair(1 << 20)
    build, probe = generate_join(spec, seed=2019)
    print(build.describe())
    print(probe.describe())

    # The paper's standard configuration: 2^15 partitions in two radix
    # passes, 4096-element co-partitions, 2048-slot shared-memory tables.
    join = GpuPartitionedJoin(config=GpuJoinConfig(total_radix_bits=10))
    result = join.run(build, probe, materialize=True)

    # Correctness: the kernel output must equal a naive join.
    oracle = naive_join_pairs(build, probe)
    assert np.array_equal(result.pairs(), oracle), "join output mismatch!"
    print(f"\n{result.matches:,} matches verified against the naive join")

    metrics = result.metrics
    print(f"\nstrategy:            {metrics.strategy}")
    print(f"simulated time:      {metrics.seconds * 1e3:.3f} ms")
    print(f"throughput:          {metrics.throughput_billion:.2f} B tuples/s")
    for phase, seconds in metrics.phases.items():
        print(f"  {phase:<12} {seconds * 1e6:10.1f} us")

    # Compare with the non-partitioned baseline on the same data.
    baseline = GpuNonPartitionedJoin().run(build, probe, materialize=True)
    assert np.array_equal(baseline.pairs(), oracle)
    print(
        f"\nnon-partitioned baseline: "
        f"{baseline.metrics.throughput_billion:.2f} B tuples/s "
        f"({metrics.throughput / baseline.metrics.throughput:.2f}x slower/faster ratio)"
    )


if __name__ == "__main__":
    main()
