"""Skew handling: working-set packing and throughput under Zipf inputs.

Reproduces the paper's §IV-D/§V-E analysis at example scale: shows how
radix partition sizes skew under Zipf keys, how the knapsack + greedy
packer turns them into GPU-sized working sets, and how the in-GPU and
co-processing strategies degrade as skew grows.

Run:  python examples/skew_analysis.py
"""

import numpy as np

from repro import CoProcessingJoin, GpuPartitionedJoin, zipf_pair
from repro.core.working_set import pack_working_sets
from repro.data import generate_relation
from repro.data.spec import Distribution, RelationSpec

M = 1_000_000


def partition_size_skew() -> None:
    print("=== radix partition sizes under Zipf keys (16-way) ===")
    for s in (0.0, 0.5, 1.0):
        spec = RelationSpec(
            n=2 * M, distinct=2 * M, distribution=Distribution.ZIPF, zipf_s=s
        )
        rel = generate_relation(spec, seed=7)
        sizes = np.bincount(rel.key & 15, minlength=16)
        print(
            f"zipf {s:4.2f}: max/avg partition = {sizes.max() / sizes.mean():5.2f}  "
            f"largest holds {sizes.max() / sizes.sum() * 100:5.1f}% of tuples"
        )


def packing_demo() -> None:
    print("\n=== SIV-D working-set packing (skewed partitions) ===")
    rng = np.random.default_rng(1)
    padded = np.sort(rng.pareto(1.2, size=16) * 4e8 + 1e8)[::-1].astype(np.int64)
    sets = pack_working_sets(padded, padded // 8, capacity_bytes=int(5.5e9))
    total = padded.sum()
    for i, ws in enumerate(sets):
        kind = "knapsack" if i == 0 else "greedy"
        print(
            f"working set {i} ({kind:8s}): partitions {ws.partition_ids} "
            f"{ws.total_bytes / 1e9:5.2f} GB "
            f"({ws.total_bytes / total * 100:4.1f}% of the build)"
        )


def throughput_under_skew() -> None:
    print("\n=== throughput vs zipf factor (identical skew, worst case) ===")
    resident = GpuPartitionedJoin()
    coproc = CoProcessingJoin()
    print(f"{'zipf':>5} {'in-GPU 32M':>12} {'co-proc 512M':>13}")
    for z in (0.0, 0.25, 0.5, 0.75, 1.0):
        in_gpu = resident.estimate(zipf_pair(32 * M, z, skew_side="both"))
        oog = coproc.estimate(zipf_pair(512 * M, z, skew_side="both"))
        print(
            f"{z:5.2f} {in_gpu.throughput_billion:12.3f} "
            f"{oog.throughput_billion:13.3f}   "
            f"(output {in_gpu.output_tuples / 32e6:8.1f}x input)"
        )
    print(
        "\nSingle-sided skew, for contrast (in-GPU, zipf on the probe side):"
    )
    for z in (0.5, 1.0):
        metrics = resident.estimate(zipf_pair(32 * M, z, skew_side="probe"))
        print(f"  zipf {z:4.2f}: {metrics.throughput_billion:5.2f} B tuples/s")


if __name__ == "__main__":
    partition_size_skew()
    packing_demo()
    throughput_under_skew()
