"""TPC-H joins: functional verification + the Fig 14 comparison.

At a small scale factor the lineitem x customer and lineitem x orders
joins run functionally and are verified against the naive join; at the
paper's SF 10/100 the modelled systems (ours via the planner, DBMS-X,
CoGaDB) are compared, reproducing the reported failures.

Run:  python examples/tpch_joins.py
"""

import numpy as np

from repro import CoGaDb, DbmsX, GpuJoinConfig, GpuPartitionedJoin, estimate_with_planner
from repro.data import naive_join_pairs
from repro.data.tpch import generate, join_specs
from repro.errors import BaselineUnsupportedError


def functional_at_small_scale() -> None:
    print("=== functional TPC-H joins at SF 0.01 ===")
    tables = generate(0.01, seed=42)
    join = GpuPartitionedJoin(config=GpuJoinConfig(total_radix_bits=8))

    for name, build, probe in (
        ("lineitem x customer", tables.customer, tables.lineitem_custkey),
        ("lineitem x orders", tables.orders, tables.lineitem_orderkey),
    ):
        result = join.run(build, probe, materialize=True)
        oracle = naive_join_pairs(build, probe)
        assert np.array_equal(result.pairs(), oracle)
        print(
            f"{name:22s} {result.matches:9,} matches verified   "
            f"({result.metrics.throughput_billion:.2f} B tuples/s simulated)"
        )


def figure14_comparison() -> None:
    print("\n=== Fig 14: modelled systems at SF 10 / SF 100 ===")
    systems = {"GPU Partitioned": None, "DBMS-X": DbmsX(), "CoGaDB": CoGaDb()}
    header = f"{'query':18s}" + "".join(f"{name:>18s}" for name in systems)
    print(header)
    for sf in (10, 100):
        for query, spec in join_specs(sf).items():
            row = f"SF{sf:<4d}{query:12s}"
            for name, system in systems.items():
                try:
                    if system is None:
                        metrics = estimate_with_planner(spec)
                    else:
                        metrics = system.estimate(spec)
                    row += f"{metrics.throughput / 1e9:18.2f}"
                except BaselineUnsupportedError:
                    row += f"{'FAILS':>18s}"
            print(row)
    print("\n'FAILS' entries reproduce the paper's reported system failures.")


if __name__ == "__main__":
    functional_at_small_scale()
    figure14_comparison()
