"""Reproduction of *Hardware-conscious Hash-Joins on GPUs* (ICDE 2019).

The package implements the paper's full system on a simulated GPU
substrate: the in-GPU partitioned radix join (SIII), the streaming-probe
and CPU-GPU co-processing out-of-GPU strategies (SIV), skew-aware
working-set packing (SIV-D), CPU baselines (PRO/NPO), behavioural models
of the compared systems (DBMS-X, CoGaDB, UVA/UM transfer modes), and a
harness regenerating every evaluation figure (Figs 5-22).

Quick start::

    from repro import GpuPartitionedJoin, generate_join, unique_pair

    build, probe = generate_join(unique_pair(1 << 20))
    result = GpuPartitionedJoin().run(build, probe)
    print(result.metrics.throughput_billion, "billion tuples/s (simulated)")

See ``examples/`` for end-to-end scenarios and ``python -m repro.bench``
for the figure harness.
"""

from repro.baselines import CoGaDb, DbmsX, TransferStrategyComparison
from repro.core import (
    AdaptiveCoProcessingJoin,
    CoProcessingJoin,
    GpuJoinConfig,
    GpuNonPartitionedJoin,
    GpuPartitionedJoin,
    JoinMetrics,
    JoinRunResult,
    StreamingProbeJoin,
    choose_strategy_name,
    estimate_with_planner,
    plan_join,
)
from repro.cpu import NpoJoin, ProJoin
from repro.data import (
    Distribution,
    JoinSpec,
    Relation,
    RelationSpec,
    generate_join,
    generate_relation,
    naive_join_count,
    naive_join_pairs,
    replicated_pair,
    unique_pair,
    zipf_pair,
)
from repro.errors import ReproError
from repro.query import QueryExecutor, Table
from repro.gpusim import Calibration, GpuSpec, SystemSpec, gtx1080_system, v100_system

__version__ = "1.0.0"

__all__ = [
    "AdaptiveCoProcessingJoin",
    "Calibration",
    "CoGaDb",
    "CoProcessingJoin",
    "DbmsX",
    "Distribution",
    "GpuJoinConfig",
    "GpuNonPartitionedJoin",
    "GpuPartitionedJoin",
    "GpuSpec",
    "JoinMetrics",
    "JoinRunResult",
    "JoinSpec",
    "NpoJoin",
    "ProJoin",
    "QueryExecutor",
    "Relation",
    "RelationSpec",
    "ReproError",
    "StreamingProbeJoin",
    "SystemSpec",
    "Table",
    "TransferStrategyComparison",
    "choose_strategy_name",
    "estimate_with_planner",
    "generate_join",
    "generate_relation",
    "gtx1080_system",
    "naive_join_count",
    "naive_join_pairs",
    "plan_join",
    "replicated_pair",
    "unique_pair",
    "v100_system",
    "zipf_pair",
]
