"""Modelled comparison systems: DBMS-X, CoGaDB, and UVA/UM transfer modes."""

from repro.baselines.cogadb import CoGaDb
from repro.baselines.dbmsx import DbmsX
from repro.baselines.transfer_strategies import (
    GPU_DATA_LOAD,
    IN_GPU_MODES,
    OOG_COPROCESSING,
    OOG_MODES,
    OOG_UM,
    OOG_UVA,
    UM_LOAD,
    UVA_JOIN,
    UVA_LOAD,
    UVA_PARTITION,
    TransferStrategyComparison,
)

__all__ = [
    "CoGaDb",
    "DbmsX",
    "GPU_DATA_LOAD",
    "IN_GPU_MODES",
    "OOG_COPROCESSING",
    "OOG_MODES",
    "OOG_UM",
    "OOG_UVA",
    "TransferStrategyComparison",
    "UM_LOAD",
    "UVA_JOIN",
    "UVA_LOAD",
    "UVA_PARTITION",
]
