"""CoGaDB: behavioural model of the research GPU DBMS (§V-C).

CoGaDB executes operator-at-a-time with full materialization between
operators, which caps its join efficiency well below a fused,
hardware-conscious kernel.  The paper additionally reports that it
handles at most 128 M tuples ("not designed to operate on joins that do
not fit one of the two sides in GPU memory") and fails to load TPC-H
scale factor 100 ("failing to resize an internal data structure").
"""

from __future__ import annotations

from repro.core.planner import estimate_with_planner
from repro.core.results import JoinMetrics
from repro.data import stats as stats_mod
from repro.data.spec import JoinSpec
from repro.errors import BaselineUnsupportedError
from repro.gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.gpusim.spec import SystemSpec

#: TPC-H scale factor beyond which loading failed (§V-C).
_COGADB_MAX_SF_LINEITEM_ROWS = 100_000_000


class CoGaDb:
    """Behavioural stand-in for CoGaDB."""

    name = "CoGaDB"

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
    ):
        self.system = system or SystemSpec()
        self.calib = calibration or DEFAULT_CALIBRATION
        self._calibration = calibration

    def estimate(self, spec: JoinSpec, *, materialize: bool = False) -> JoinMetrics:
        calib = self.calib
        if max(spec.build.n, spec.probe.n) > calib.cogadb_max_tuples:
            raise BaselineUnsupportedError(
                "CoGaDB cannot run joins beyond 128M tuples (one side must "
                "fit in GPU memory; reproducing the paper's limit)"
            )
        if spec.probe.n > _COGADB_MAX_SF_LINEITEM_ROWS and spec.total_bytes > 4e9:
            raise BaselineUnsupportedError(
                "CoGaDB fails to resize an internal data structure while "
                "loading this dataset (reproducing the paper's SF100 failure)"
            )
        reference = estimate_with_planner(
            spec, self.system, self._calibration, materialize=materialize
        )
        seconds = reference.seconds / calib.cogadb_resident_efficiency
        return JoinMetrics(
            strategy=self.name,
            seconds=seconds,
            total_tuples=spec.total_tuples,
            output_tuples=stats_mod.expected_join_cardinality(spec),
            phases={"operator_at_a_time": seconds},
            notes={"tuple_bytes": float(spec.build.tuple_bytes)},
        )
