"""DBMS-X: behavioural model of the commercial GPU engine (§V-C).

The paper compares against a closed-source, code-generating GPU DBMS.
We cannot reimplement it; instead this model reproduces every behaviour
the paper *reports* about it:

* on GPU-resident data it runs 1.5–2x slower than the paper's
  partitioned join (it uses a non-optimized join);
* it only keeps datasets up to 32 M tuples GPU-resident (a key-width
  limit the authors suspect); beyond that it falls back to an
  out-of-GPU CPU-side join roughly 10x slower than ours;
* it returns an error on the TPC-H SF100 orders join (Fig 14).
"""

from __future__ import annotations

from repro.core.planner import estimate_with_planner
from repro.core.results import JoinMetrics
from repro.data import stats as stats_mod
from repro.data.spec import JoinSpec
from repro.errors import BaselineUnsupportedError
from repro.gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.gpusim.spec import SystemSpec

#: Working-set bytes beyond which the SF100 orders join failed (§V-C).
_DBMSX_ERROR_BYTES = 6_000_000_000


class DbmsX:
    """Behavioural stand-in for the commercial engine."""

    name = "DBMS-X"

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
    ):
        self.system = system or SystemSpec()
        self.calib = calibration or DEFAULT_CALIBRATION
        self._calibration = calibration

    def estimate(self, spec: JoinSpec, *, materialize: bool = False) -> JoinMetrics:
        """Modelled metrics, or :class:`BaselineUnsupportedError` for the
        documented failure case."""
        calib = self.calib
        if (
            spec.total_bytes >= _DBMSX_ERROR_BYTES
            and spec.build.n > 100_000_000
            and spec.probe.n >= 3 * spec.build.n
        ):
            # "On the join with the orders table, DBMS-X returns an error"
            # (TPC-H SF100: 150 M-row build side, 4x larger probe side,
            # ~6 GB working set).  Microbenchmark shapes (1:1) keep
            # running via its out-of-GPU fallback.
            raise BaselineUnsupportedError(
                "DBMS-X returns an error on this working set "
                "(reproducing the paper's SF100-orders failure)"
            )
        if spec.build.n <= calib.dbmsx_max_resident_tuples:
            # DBMS-X keeps joins on the GPU while the build side stays
            # under its 32 M-tuple limit (Fig 15's boundary), running
            # 1.5-2x slower than our best strategy for the same data.
            reference = estimate_with_planner(
                spec, self.system, self._calibration, materialize=materialize
            )
            seconds = reference.seconds / calib.dbmsx_resident_efficiency
            mode = "gpu_resident"
        else:
            # Beyond its residency limit DBMS-X "does not load data into
            # GPU memory and simply executes an out-of-GPU join over
            # CPU-memory resident tables".
            seconds = spec.total_tuples / calib.dbmsx_oog_tuples_per_second
            mode = "out_of_gpu"
        return JoinMetrics(
            strategy=self.name,
            seconds=seconds,
            total_tuples=spec.total_tuples,
            output_tuples=stats_mod.expected_join_cardinality(spec),
            phases={mode: seconds},
            notes={"tuple_bytes": float(spec.build.tuple_bytes)},
        )
