"""Alternative data-transfer mechanisms: UVA and Unified Memory.

Figures 21 and 22 quantify why the paper builds its own transfer
pipeline instead of relying on driver-managed mechanisms:

* **Fig 21** (working set fits in GPU memory): bars show throughput when
  progressively later pipeline steps read their input through UVA —
  plain DMA load, partitioning over UVA, the whole join over UVA, UVA
  used only to load, and Unified Memory loading.
* **Fig 22** (out-of-GPU data): Unified Memory vs UVA vs the paper's
  co-processing strategy.  UVA pays every partitioning pass over the
  bus; UM additionally thrashes pages once the working set exceeds
  device memory (§IV: "parts of the relation to be transferred over
  multiple times").
"""

from __future__ import annotations

from repro.core.config import GpuJoinConfig
from repro.core.coprocessing import CoProcessingJoin
from repro.core.gpu_partitioned import GpuPartitionedJoin
from repro.core.results import JoinMetrics
from repro.data import stats as stats_mod
from repro.data.spec import JoinSpec
from repro.errors import InvalidConfigError
from repro.gpusim.calibration import Calibration
from repro.gpusim.spec import SystemSpec
from repro.gpusim.transfer import TransferModel

GPU_DATA_LOAD = "GPU data load"
UVA_PARTITION = "UVA part."
UVA_JOIN = "UVA join"
UVA_LOAD = "UVA load"
UM_LOAD = "UM"

IN_GPU_MODES = (GPU_DATA_LOAD, UVA_PARTITION, UVA_JOIN, UVA_LOAD, UM_LOAD)

OOG_UM = "UM"
OOG_UVA = "UVA"
OOG_COPROCESSING = "Co-processing"

OOG_MODES = (OOG_UM, OOG_UVA, OOG_COPROCESSING)


class TransferStrategyComparison:
    """Throughput of each transfer mechanism for a given workload."""

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
        config: GpuJoinConfig | None = None,
    ):
        self.system = system or SystemSpec()
        self.join = GpuPartitionedJoin(self.system, calibration, config)
        self.transfer = TransferModel(self.system, self.join.cost_model.calib)
        self.coprocessing = CoProcessingJoin(self.system, calibration, config)

    # ------------------------------------------------------------------
    def _metrics(self, name: str, spec: JoinSpec, seconds: float) -> JoinMetrics:
        return JoinMetrics(
            strategy=name,
            seconds=seconds,
            total_tuples=spec.total_tuples,
            output_tuples=stats_mod.expected_join_cardinality(spec),
            notes={"tuple_bytes": float(spec.build.tuple_bytes)},
        )

    def in_gpu(self, spec: JoinSpec, mode: str) -> JoinMetrics:
        """Fig 21: GPU-sized working sets, varying how input arrives."""
        resident = self.join.estimate(spec)
        join_seconds = resident.seconds
        partition_seconds = resident.phases["partition"]
        compute_only = join_seconds - partition_seconds
        nbytes = spec.total_bytes

        if mode == GPU_DATA_LOAD:
            # Data already GPU resident, "as in our in-GPU experiments"
            # (§V-F) — the load is not part of the measured query.
            seconds = join_seconds
        elif mode == UVA_PARTITION:
            # The first partitioning pass reads its input over the bus;
            # everything after runs on device-resident buckets.
            first_pass = max(
                partition_seconds / 2.0, self.transfer.uva_sequential_seconds(nbytes)
            )
            seconds = first_pass + partition_seconds / 2.0 + compute_only
        elif mode == UVA_JOIN:
            # Both partitioning passes and the probe scan pull from host
            # memory: three sequential traversals over the bus.
            seconds = 3.0 * self.transfer.uva_sequential_seconds(nbytes) + compute_only
        elif mode == UVA_LOAD:
            # UVA used only to stage the input into device memory.
            seconds = self.transfer.uva_sequential_seconds(nbytes) + join_seconds
        elif mode == UM_LOAD:
            # Unified Memory migrates pages on first touch.
            seconds = self.transfer.um_migration_seconds(nbytes) + join_seconds
        else:
            raise InvalidConfigError(f"unknown Fig 21 mode: {mode!r}")
        return self._metrics(mode, spec, seconds)

    # ------------------------------------------------------------------
    def out_of_gpu(self, spec: JoinSpec, mode: str) -> JoinMetrics:
        """Fig 22: datasets larger than device memory."""
        nbytes = spec.total_bytes
        if mode == OOG_COPROCESSING:
            return self.coprocessing.estimate(spec)
        if mode == OOG_UVA:
            # Every partitioning pass reads and writes host memory over
            # the bus (two passes), and the probe pass reads once more:
            # ~5 traversals of the combined input.
            seconds = 5.0 * self.transfer.uva_sequential_seconds(nbytes)
        elif mode == OOG_UM:
            # Pages thrash: the partitioning passes' scattered writes
            # evict and re-fault pages repeatedly (§IV-B: "the irregular
            # access patterns ... cause parts of the relation to be
            # transferred over multiple times").  The working set spans
            # the inputs plus their partitioned copies.
            from repro.core.gpu_partitioned import gpu_resident_bytes_needed

            seconds = self.transfer.um_migration_seconds(
                nbytes,
                working_set_bytes=gpu_resident_bytes_needed(spec),
                reuse_passes=4.0,
            )
        else:
            raise InvalidConfigError(f"unknown Fig 22 mode: {mode!r}")
        return self._metrics(mode, spec, seconds)
