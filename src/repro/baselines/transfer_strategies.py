"""Alternative data-transfer mechanisms: UVA and Unified Memory.

Figures 21 and 22 quantify why the paper builds its own transfer
pipeline instead of relying on driver-managed mechanisms:

* **Fig 21** (working set fits in GPU memory): bars show throughput when
  progressively later pipeline steps read their input through UVA —
  plain DMA load, partitioning over UVA, the whole join over UVA, UVA
  used only to load, and Unified Memory loading.
* **Fig 22** (out-of-GPU data): Unified Memory vs UVA vs the paper's
  co-processing strategy.  UVA pays every partitioning pass over the
  bus; UM additionally thrashes pages once the working set exceeds
  device memory (§IV: "parts of the relation to be transferred over
  multiple times").

Each mechanism is declared in the same task-graph vocabulary as the join
strategies — H2D bus traversals and GPU kernels fed to the discrete-event
:class:`~repro.pipeline.engine.PipelineEngine` — so overlap (e.g. the
first partitioning pass consuming a UVA stream while it arrives) falls
out of the simulation rather than being hand-computed.  The reference
join strategies are obtained from the registry, never named directly.
"""

from __future__ import annotations

from repro.core.config import GpuJoinConfig
from repro.core.results import JoinMetrics
from repro.core.strategy import COPROCESSING, GPU_RESIDENT, create_strategy
from repro.data import stats as stats_mod
from repro.data.spec import JoinSpec
from repro.errors import InvalidConfigError
from repro.gpusim.calibration import Calibration
from repro.gpusim.spec import SystemSpec
from repro.gpusim.transfer import TransferModel
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import GPU, H2D

GPU_DATA_LOAD = "GPU data load"
UVA_PARTITION = "UVA part."
UVA_JOIN = "UVA join"
UVA_LOAD = "UVA load"
UM_LOAD = "UM"

IN_GPU_MODES = (GPU_DATA_LOAD, UVA_PARTITION, UVA_JOIN, UVA_LOAD, UM_LOAD)

OOG_UM = "UM"
OOG_UVA = "UVA"
OOG_COPROCESSING = "Co-processing"

OOG_MODES = (OOG_UM, OOG_UVA, OOG_COPROCESSING)


class TransferStrategyComparison:
    """Throughput of each transfer mechanism for a given workload."""

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
        config: GpuJoinConfig | None = None,
    ):
        self.system = system or SystemSpec()
        self.join = create_strategy(GPU_RESIDENT, self.system, calibration, config)
        self.transfer = TransferModel(self.system, self.join.cost_model.calib)
        self.coprocessing = create_strategy(
            COPROCESSING, self.system, calibration, config
        )

    # ------------------------------------------------------------------
    def _simulated(self, name: str, spec: JoinSpec, engine: PipelineEngine) -> JoinMetrics:
        schedule = engine.run()
        return JoinMetrics(
            strategy=name,
            seconds=schedule.makespan,
            total_tuples=spec.total_tuples,
            output_tuples=stats_mod.expected_join_cardinality(spec),
            notes={"tuple_bytes": float(spec.build.tuple_bytes)},
        )

    def in_gpu(self, spec: JoinSpec, mode: str) -> JoinMetrics:
        """Fig 21: GPU-sized working sets, varying how input arrives."""
        resident = self.join.estimate(spec)
        join_seconds = resident.seconds
        partition_seconds = resident.phases["partition"]
        compute_only = join_seconds - partition_seconds
        nbytes = spec.total_bytes

        engine = PipelineEngine()
        if mode == GPU_DATA_LOAD:
            # Data already GPU resident, "as in our in-GPU experiments"
            # (§V-F) — the load is not part of the measured query.
            engine.add_task("join", GPU, join_seconds)
        elif mode == UVA_PARTITION:
            # The first partitioning pass reads its input over the bus
            # while it streams in; everything after runs on
            # device-resident buckets.
            engine.add_task(
                "uva.stream", H2D, self.transfer.uva_sequential_seconds(nbytes)
            )
            engine.add_task("partition.first", GPU, partition_seconds / 2.0)
            engine.add_task(
                "partition.rest", GPU, partition_seconds / 2.0, ["uva.stream"]
            )
            engine.add_task("join", GPU, compute_only, ["partition.rest"])
        elif mode == UVA_JOIN:
            # Both partitioning passes and the probe scan pull from host
            # memory: three sequential traversals over the bus.
            engine.add_task(
                "uva.traversals",
                H2D,
                3.0 * self.transfer.uva_sequential_seconds(nbytes),
            )
            engine.add_task("join.compute", GPU, compute_only, ["uva.traversals"])
        elif mode == UVA_LOAD:
            # UVA used only to stage the input into device memory.
            engine.add_task(
                "uva.load", H2D, self.transfer.uva_sequential_seconds(nbytes)
            )
            engine.add_task("join", GPU, join_seconds, ["uva.load"])
        elif mode == UM_LOAD:
            # Unified Memory migrates pages on first touch.
            engine.add_task(
                "um.migrate", H2D, self.transfer.um_migration_seconds(nbytes)
            )
            engine.add_task("join", GPU, join_seconds, ["um.migrate"])
        else:
            raise InvalidConfigError(f"unknown Fig 21 mode: {mode!r}")
        return self._simulated(mode, spec, engine)

    # ------------------------------------------------------------------
    def out_of_gpu(self, spec: JoinSpec, mode: str) -> JoinMetrics:
        """Fig 22: datasets larger than device memory."""
        nbytes = spec.total_bytes
        if mode == OOG_COPROCESSING:
            return self.coprocessing.estimate(spec)
        engine = PipelineEngine()
        if mode == OOG_UVA:
            # Every partitioning pass reads and writes host memory over
            # the bus (two passes), and the probe pass reads once more:
            # ~5 traversals of the combined input.
            engine.add_task(
                "uva.traversals",
                H2D,
                5.0 * self.transfer.uva_sequential_seconds(nbytes),
            )
        elif mode == OOG_UM:
            # Pages thrash: the partitioning passes' scattered writes
            # evict and re-fault pages repeatedly (§IV-B: "the irregular
            # access patterns ... cause parts of the relation to be
            # transferred over multiple times").  The working set spans
            # the inputs plus their partitioned copies.
            from repro.core.gpu_partitioned import gpu_resident_bytes_needed

            engine.add_task(
                "um.thrash",
                H2D,
                self.transfer.um_migration_seconds(
                    nbytes,
                    working_set_bytes=gpu_resident_bytes_needed(spec),
                    reuse_passes=4.0,
                ),
            )
        else:
            raise InvalidConfigError(f"unknown Fig 22 mode: {mode!r}")
        return self._simulated(mode, spec, engine)
