"""Benchmark harness: figure regeneration and the CLI."""

from repro.bench.figures import ALL_FIGURES
from repro.bench.harness import FigureResult, Series

__all__ = ["ALL_FIGURES", "FigureResult", "Series"]
