"""Command line: regenerate the paper's figures as text tables.

Usage::

    python -m repro.bench --figure 8          # one figure
    python -m repro.bench --all               # everything (Figs 5-22)
    python -m repro.bench --list              # what exists
    python -m repro.bench --figure 12 --scale 0.01   # quick smoke run
    python -m repro.bench serve --clients 16  # multi-query serving bench
    python -m repro.bench serve --online --clients 64 --arrival-rate 8
    python -m repro.bench serve --clients 16 --devices 2 --online  # sharded fleet
    python -m repro.bench serve --stream --arrivals 100000 --devices 2  # steady state
    python -m repro.bench perf --quick        # tracked micro-benchmarks
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.figures import ALL_FIGURES


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        from repro.bench.serve_bench import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "perf":
        from repro.bench.perf_bench import perf_main

        return perf_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Regenerate the evaluation figures of 'Hardware-conscious "
        "Hash-Joins on GPUs' (ICDE 2019) on the simulated testbed.",
    )
    parser.add_argument(
        "--figure",
        action="append",
        help="figure number (5-22) or name (fig08); repeatable",
    )
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--list", action="store_true", help="list figures")
    parser.add_argument(
        "--strategies",
        action="store_true",
        help="list the registered join strategies",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink workload cardinalities by this factor (default 1.0)",
    )
    parser.add_argument(
        "--snapshot", metavar="FILE", help="store every figure's series as JSON"
    )
    parser.add_argument(
        "--compare", metavar="FILE", help="diff figures against a stored snapshot"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="relative tolerance for --compare (default 0.05)",
    )
    parser.add_argument(
        "--refresh-experiments",
        metavar="FILE",
        help="re-run the figures and splice fresh tables into EXPERIMENTS.md",
    )
    args = parser.parse_args(argv)

    if args.refresh_experiments:
        from repro.bench.report import refresh_experiments

        refreshed = refresh_experiments(args.refresh_experiments, scale=args.scale)
        print(f"refreshed {len(refreshed)} tables in {args.refresh_experiments}")
        return 0

    if args.snapshot:
        from repro.bench.compare import snapshot

        snapshot(args.snapshot, scale=args.scale)
        print(f"snapshot written to {args.snapshot}")
        return 0
    if args.compare:
        from repro.bench.compare import compare

        deviations = compare(args.compare, tolerance=args.tolerance)
        for deviation in deviations:
            print(deviation)
        print(f"{len(deviations)} deviation(s) beyond {args.tolerance:.0%}")
        return 1 if deviations else 0

    if args.list:
        for name, fn in ALL_FIGURES.items():
            print(f"{name}: {fn.__doc__ or ''}".rstrip(": "))
        return 0

    if args.strategies:
        from repro.core import create_strategy, registered_strategies

        for key in registered_strategies():
            strategy = create_strategy(key)
            print(f"{key}: {strategy.name} ({type(strategy).__name__})")
        return 0

    names: list[str] = []
    if args.all or not args.figure:
        names = list(ALL_FIGURES)
    else:
        for item in args.figure:
            key = item if item.startswith("fig") else f"fig{int(item):02d}"
            if key not in ALL_FIGURES:
                parser.error(f"unknown figure: {item} (try --list)")
            names.append(key)

    for name in names:
        print(ALL_FIGURES[name](scale=args.scale).table())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
