"""Figure snapshots and regression comparison.

The calibration constants are supposed to be touched rarely and as a
whole; this module makes that safe: ``snapshot()`` stores every figure's
series as JSON, and ``compare()`` reports any point that moved beyond a
tolerance — so a model change that silently bends a curve the paper
pinned down is caught in review.

CLI::

    python -m repro.bench --snapshot baseline.json
    python -m repro.bench --compare baseline.json --tolerance 0.05
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.bench.figures import ALL_FIGURES
from repro.bench.harness import FigureResult
from repro.errors import InvalidConfigError

SNAPSHOT_VERSION = 1


def figure_to_dict(result: FigureResult) -> dict:
    return {
        series.label: [[x, y] for x, y in series.points]
        for series in result.series
    }


def snapshot(
    path: str | Path,
    *,
    scale: float = 1.0,
    figures: dict | None = None,
) -> dict:
    """Run every figure and store the series to ``path`` (JSON)."""
    figures = figures or ALL_FIGURES
    payload = {
        "version": SNAPSHOT_VERSION,
        "scale": scale,
        "figures": {
            name: figure_to_dict(fn(scale=scale)) for name, fn in figures.items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=1, sort_keys=True))
    return payload


@dataclass(frozen=True)
class Deviation:
    """One point that moved beyond the tolerance."""

    figure: str
    series: str
    x: float
    reference: float | None
    measured: float | None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.figure}/{self.series} @ x={self.x}: "
            f"{self.reference} -> {self.measured}"
        )


def compare(
    path: str | Path,
    *,
    tolerance: float = 0.05,
    figures: dict | None = None,
) -> list[Deviation]:
    """Re-run the figures and diff them against a stored snapshot.

    Returns every (figure, series, x) whose value moved by more than
    ``tolerance`` relatively — including points that flipped between
    "runs" and "fails".
    """
    reference = json.loads(Path(path).read_text())
    if reference.get("version") != SNAPSHOT_VERSION:
        raise InvalidConfigError(
            f"snapshot version mismatch: {reference.get('version')!r}"
        )
    scale = float(reference.get("scale", 1.0))
    figures = figures or ALL_FIGURES

    deviations: list[Deviation] = []
    for name, stored in reference["figures"].items():
        if name not in figures:
            continue
        fresh = figure_to_dict(figures[name](scale=scale))
        for label, stored_points in stored.items():
            fresh_points = dict(
                (x, y) for x, y in fresh.get(label, [])
            )
            for x, ref_y in stored_points:
                new_y = fresh_points.get(x)
                if ref_y is None or new_y is None:
                    if ref_y != new_y:
                        deviations.append(Deviation(name, label, x, ref_y, new_y))
                    continue
                denominator = max(abs(ref_y), 1e-12)
                if abs(new_y - ref_y) / denominator > tolerance:
                    deviations.append(Deviation(name, label, x, ref_y, new_y))
    return deviations
