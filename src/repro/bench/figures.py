"""Regeneration of every figure in the paper's evaluation (Figs 5–22).

Each ``figNN()`` function returns a :class:`~repro.bench.harness.FigureResult`
holding the same series the paper plots, computed with the analytic
``estimate()`` paths at the paper's workload sizes.  A ``scale``
parameter (default 1.0) shrinks cardinalities proportionally for quick
smoke runs; shape assertions in ``benchmarks/`` use the full scale.

Throughputs are reported in **billion tuples per second** over both
inputs, matching the paper's metric (§V-A), except Fig 16 which uses
GB/s of input data.
"""

from __future__ import annotations

import math

from repro.baselines import (
    IN_GPU_MODES,
    OOG_MODES,
    CoGaDb,
    DbmsX,
    TransferStrategyComparison,
)
from repro.bench.harness import FigureResult, enumerate_strategies
from repro.core import (
    COPROCESSING,
    GPU_NONPARTITIONED,
    GPU_NONPARTITIONED_PERFECT,
    GPU_RESIDENT,
    STREAMING,
    GpuJoinConfig,
    create_strategy,
    estimate_with_planner,
    fig5_config,
)
from repro.data import JoinSpec, RelationSpec, replicated_pair, unique_pair, zipf_pair
from repro.data.spec import Distribution
from repro.data.tpch import join_specs as tpch_join_specs
from repro.errors import BaselineUnsupportedError, DeviceMemoryOverflowError
from repro.gpusim.spec import SystemSpec

M = 1_000_000


def _scaled(n_millions: float, scale: float) -> int:
    return max(1024, int(n_millions * M * scale))


# ---------------------------------------------------------------------------
# Figure 5: hash join vs nested loops, by partition size
# ---------------------------------------------------------------------------
def fig05(scale: float = 1.0) -> FigureResult:
    result = FigureResult(
        "fig05",
        "Comparison of partitioned joins: hash join vs nested loops",
        "partition size (#elements)",
        "billion tuples/sec",
    )
    n = _scaled(2, scale)
    series = {
        ("hash", "total"): result.new_series("Hash join - total"),
        ("hash", "join"): result.new_series("Hash join - join co-partitions"),
        ("nlj", "total"): result.new_series("Nested loop - total"),
        ("nlj", "join"): result.new_series("Nested loop - join co-partitions"),
    }
    for partition_size in (256, 512, 1024, 2048):
        bits = max(1, round(math.log2(max(2, n / partition_size))))
        for kernel in ("hash", "nlj"):
            join = create_strategy(GPU_RESIDENT, config=fig5_config(bits, kernel))
            metrics = join.estimate(unique_pair(n))
            series[(kernel, "total")].add(partition_size, metrics.throughput_billion)
            series[(kernel, "join")].add(
                partition_size, metrics.phase_throughput("join") / 1e9
            )
    return result


# ---------------------------------------------------------------------------
# Figure 6: shared vs device memory for the co-partition hash tables
# ---------------------------------------------------------------------------
def fig06(scale: float = 1.0) -> FigureResult:
    result = FigureResult(
        "fig06",
        "Hash table in device vs shared memory",
        "build/probe relation size (million tuples)",
        "billion tuples/sec",
    )
    series = {
        (True, "total"): result.new_series("Shared mem - total"),
        (True, "join"): result.new_series("Shared mem - join co-partitions"),
        (False, "total"): result.new_series("Device mem - total"),
        (False, "join"): result.new_series("Device mem - join co-partitions"),
    }
    for millions in (1, 2, 4, 8, 16, 32, 64, 128):
        spec = unique_pair(_scaled(millions, scale))
        for shared in (True, False):
            join = create_strategy(
                GPU_RESIDENT, config=GpuJoinConfig(use_shared_memory=shared)
            )
            metrics = join.estimate(spec)
            series[(shared, "total")].add(millions, metrics.throughput_billion)
            series[(shared, "join")].add(
                millions, metrics.phase_throughput("join") / 1e9
            )
    return result


# ---------------------------------------------------------------------------
# Figure 7: aggregation vs materialization (in-GPU)
# ---------------------------------------------------------------------------
def fig07(scale: float = 1.0) -> FigureResult:
    result = FigureResult(
        "fig07",
        "Partitioned hash join with and without output materialization",
        "build/probe relation size (million tuples)",
        "billion tuples/sec",
    )
    join = create_strategy(GPU_RESIDENT)
    agg = result.new_series("Aggregation")
    mat = result.new_series("Materialization")
    for millions in (1, 2, 4, 8, 16, 32, 64, 128):
        spec = unique_pair(_scaled(millions, scale))
        agg.add(millions, join.estimate(spec).throughput_billion)
        mat.add(millions, join.estimate(spec, materialize=True).throughput_billion)
    return result


# ---------------------------------------------------------------------------
# Figure 8: partitioned vs non-partitioned vs CPU joins, by ratio
# ---------------------------------------------------------------------------
def fig08(scale: float = 1.0) -> FigureResult:
    from repro.cpu import NpoJoin, ProJoin

    result = FigureResult(
        "fig08",
        "Hash join families for different build-to-probe ratios",
        "build relation size (million tuples)",
        "billion tuples/sec",
    )
    systems = enumerate_strategies(
        (GPU_RESIDENT, GPU_NONPARTITIONED, GPU_NONPARTITIONED_PERFECT)
    )
    systems["CPU PRO"] = ProJoin()
    systems["CPU NPO"] = NpoJoin()
    for ratio in (1, 2, 4):
        for name, system in systems.items():
            series = result.new_series(f"{name} (1:{ratio})")
            for millions in (1, 2, 4, 8, 16, 32, 64, 128):
                build_n = _scaled(millions, scale)
                spec = unique_pair(build_n, build_n * ratio)
                try:
                    metrics = system.estimate(spec)
                except DeviceMemoryOverflowError:
                    series.add(millions, None)
                    continue
                throughput = metrics.throughput / 1e9
                series.add(millions, throughput)
    return result


# ---------------------------------------------------------------------------
# Figures 9 & 10: payload-size sweeps
# ---------------------------------------------------------------------------
def _payload_figure(figure: str, side: str, scale: float) -> FigureResult:
    result = FigureResult(
        figure,
        f"Effect of varying {side}-side payload size",
        "payload size (bytes)",
        "billion tuples/sec",
    )
    partitioned = result.new_series("GPU Partitioned")
    nonpartitioned = result.new_series("GPU Non-Partitioned")
    n = _scaled(32, scale)
    for payload in (16, 32, 48, 64, 80, 96, 112, 128):
        base = unique_pair(n)
        if side == "probe":
            spec = JoinSpec(
                build=base.build, probe=base.probe.with_payload(late_payload_bytes=payload)
            )
        else:
            spec = JoinSpec(
                build=base.build.with_payload(late_payload_bytes=payload),
                probe=base.probe,
            )
        partitioned.add(
            payload,
            create_strategy(GPU_RESIDENT).estimate(spec).throughput_billion,
        )
        nonpartitioned.add(
            payload,
            create_strategy(GPU_NONPARTITIONED).estimate(spec).throughput_billion,
        )
    return result


def fig09(scale: float = 1.0) -> FigureResult:
    return _payload_figure("fig09", "probe", scale)


def fig10(scale: float = 1.0) -> FigureResult:
    return _payload_figure("fig10", "build", scale)


# ---------------------------------------------------------------------------
# Figure 11: streamed probe side vs CPU
# ---------------------------------------------------------------------------
def fig11(scale: float = 1.0) -> FigureResult:
    from repro.cpu import ProJoin

    result = FigureResult(
        "fig11",
        "Streamed probe-side vs CPU",
        "probe relation size (million tuples)",
        "billion tuples/sec",
    )
    streaming = create_strategy(STREAMING)
    pro = ProJoin()
    agg = result.new_series("GPU Partitioned (aggregation)")
    mat = result.new_series("GPU Partitioned (materialization)")
    cpu = result.new_series("CPU PRO")
    build_n = _scaled(64, scale)
    for millions in (64, 128, 256, 512, 1024, 2048):
        probe_n = _scaled(millions, scale)
        spec = JoinSpec(
            build=RelationSpec(n=build_n),
            probe=RelationSpec(
                n=probe_n, distinct=build_n, distribution=Distribution.UNIFORM
            ),
        )
        agg.add(millions, streaming.estimate(spec).throughput_billion)
        mat.add(
            millions, streaming.estimate(spec, materialize=True).throughput_billion
        )
        cpu.add(millions, pro.estimate(spec).throughput / 1e9)
    return result


# ---------------------------------------------------------------------------
# Figure 12: co-processing join vs CPU, by ratio
# ---------------------------------------------------------------------------
def fig12(scale: float = 1.0) -> FigureResult:
    from repro.cpu import NpoJoin, ProJoin

    result = FigureResult(
        "fig12",
        "Co-processing join vs CPU",
        "build relation size (million tuples)",
        "billion tuples/sec",
    )
    coproc = create_strategy(COPROCESSING)
    pro, npo = ProJoin(), NpoJoin()
    # The paper stops at a total dataset of ~80 GB: "leaving insufficient
    # memory space for the CPU-side processing" (SV-C) - inputs, their
    # pinned partitioned copies, and OS headroom must coexist in 256 GB.
    host_budget = SystemSpec().cpu.host_memory * 0.28
    for ratio in (1, 2, 4):
        gpu_series = result.new_series(f"GPU Partitioned (1:{ratio})")
        pro_series = result.new_series(f"CPU PRO (1:{ratio})")
        npo_series = result.new_series(f"CPU NPO (1:{ratio})")
        for millions in (256, 512, 1024, 2048):
            build_n = _scaled(millions, scale)
            spec = unique_pair(build_n, build_n * ratio)
            if spec.total_bytes > host_budget:
                # The paper stops where "the total dataset size ...
                # leav[es] insufficient memory space for the CPU-side
                # processing" (§V-C).
                gpu_series.add(millions, None)
                pro_series.add(millions, None)
                npo_series.add(millions, None)
                continue
            gpu_series.add(millions, coproc.estimate(spec).throughput_billion)
            pro_series.add(millions, pro.estimate(spec).throughput / 1e9)
            npo_series.add(millions, npo.estimate(spec).throughput / 1e9)
    return result


# ---------------------------------------------------------------------------
# Figure 13: scalability with CPU threads
# ---------------------------------------------------------------------------
def fig13(scale: float = 1.0) -> FigureResult:
    from repro.cpu import ProJoin

    result = FigureResult(
        "fig13",
        "Scalability with CPU threads",
        "number of threads",
        "billion tuples/sec",
    )
    coproc_series = result.new_series("GPU Partitioned (co-processing)")
    pro_series = result.new_series("CPU PRO")
    coproc, pro = create_strategy(COPROCESSING), ProJoin()
    spec = unique_pair(_scaled(512, scale))
    for threads in range(2, 47, 4):
        coproc_series.add(
            threads, coproc.estimate(spec, threads=threads).throughput_billion
        )
        pro_series.add(threads, pro.estimate(spec, threads=threads).throughput / 1e9)
    return result


# ---------------------------------------------------------------------------
# Figure 14: TPC-H joins vs DBMS-X and CoGaDB
# ---------------------------------------------------------------------------
def fig14(scale: float = 1.0) -> FigureResult:
    result = FigureResult(
        "fig14",
        "Joins on TPC-H tables (lineitem x customer / orders)",
        "query",
        "billion tuples/sec",
        x_ticks=[
            "SF10 customer",
            "SF10 orders",
            "SF100 customer",
            "SF100 orders",
        ],
    )
    ours = result.new_series("GPU Partitioned")
    dbmsx = result.new_series("DBMS-X")
    cogadb = result.new_series("CoGaDB")
    tick = 0
    for sf in (10, 100):
        specs = tpch_join_specs(sf * scale)
        for query in ("customer", "orders"):
            spec = specs[query]
            ours.add(tick, estimate_with_planner(spec).throughput / 1e9)
            for series, system in ((dbmsx, DbmsX()), (cogadb, CoGaDb())):
                try:
                    series.add(tick, system.estimate(spec).throughput / 1e9)
                except BaselineUnsupportedError:
                    series.add(tick, None)
            tick += 1
    result.notes.append(
        "'fail' entries reproduce the paper's reported failures: DBMS-X "
        "errors on SF100-orders; CoGaDB cannot load SF100."
    )
    return result


# ---------------------------------------------------------------------------
# Figure 15: state-of-the-art GPU systems by relation size
# ---------------------------------------------------------------------------
def fig15(scale: float = 1.0) -> FigureResult:
    result = FigureResult(
        "fig15",
        "State-of-the-art GPU systems",
        "build/probe relation size (million tuples)",
        "billion tuples/sec",
    )
    ours = result.new_series("GPU Partitioned")
    dbmsx_series = result.new_series("DBMS-X")
    cogadb_series = result.new_series("CoGaDB")
    dbmsx, cogadb = DbmsX(), CoGaDb()
    for millions in (1, 2, 4, 8, 16, 32, 64, 128, 256, 512):
        spec = unique_pair(_scaled(millions, scale))
        ours.add(millions, estimate_with_planner(spec).throughput / 1e9)
        try:
            dbmsx_series.add(millions, dbmsx.estimate(spec).throughput / 1e9)
        except BaselineUnsupportedError:
            dbmsx_series.add(millions, None)
        try:
            cogadb_series.add(millions, cogadb.estimate(spec).throughput / 1e9)
        except (BaselineUnsupportedError, DeviceMemoryOverflowError):
            cogadb_series.add(millions, None)
    return result


# ---------------------------------------------------------------------------
# Figure 16: NUMA staging vs direct copies
# ---------------------------------------------------------------------------
def fig16(scale: float = 1.0) -> FigureResult:
    result = FigureResult(
        "fig16",
        "Staging vs direct copies",
        "build/probe relation size (million tuples)",
        "throughput (GBps)",
    )
    staged_series = result.new_series("Staging")
    direct_series = result.new_series("Direct copy")
    staged = create_strategy(COPROCESSING, staging=True)
    direct = create_strategy(COPROCESSING, staging=False)
    for millions in (256, 512, 1024, 2048):
        spec = unique_pair(_scaled(millions, scale))
        staged_series.add(millions, staged.estimate(spec).data_gbps)
        direct_series.add(millions, direct.estimate(spec).data_gbps)
    return result


# ---------------------------------------------------------------------------
# Figures 17 & 18: skewed inputs, in-GPU and out-of-GPU
# ---------------------------------------------------------------------------
def _skew_figure(
    figure: str, title: str, n: int, strategy_factory
) -> FigureResult:
    result = FigureResult(figure, title, "zipf factor", "billion tuples/sec")
    for side, label in (
        ("probe", "Skewed probe"),
        ("build", "Skewed build"),
        ("both", "Identically skewed"),
    ):
        for materialize in (False, True):
            suffix = " (materialization)" if materialize else " (aggregation)"
            series = result.new_series(label + suffix)
            for z in (0.0, 0.25, 0.5, 0.75, 1.0):
                spec = zipf_pair(n, z, skew_side=side)
                strategy = strategy_factory()
                series.add(
                    z, strategy.estimate(spec, materialize=materialize).throughput_billion
                )
    return result


def fig17(scale: float = 1.0) -> FigureResult:
    return _skew_figure(
        "fig17",
        "Skew on GPU-resident data",
        _scaled(32, scale),
        lambda: create_strategy(GPU_RESIDENT),
    )


def fig18(scale: float = 1.0) -> FigureResult:
    return _skew_figure(
        "fig18",
        "Skew on CPU-resident data (co-processing)",
        _scaled(512, scale),
        lambda: create_strategy(COPROCESSING),
    )


# ---------------------------------------------------------------------------
# Figure 19: uniform numbers of replicas
# ---------------------------------------------------------------------------
def fig19(scale: float = 1.0) -> FigureResult:
    result = FigureResult(
        "fig19",
        "Uniform number of replicas",
        "avg. number of replicas",
        "billion tuples/sec",
    )
    for resident, label, n_millions in (
        (True, "GPU resident", 32),
        (False, "CPU resident", 512),
    ):
        n = _scaled(n_millions, scale)
        for materialize in (False, True):
            suffix = " (materialization)" if materialize else " (aggregation)"
            series = result.new_series(label + suffix)
            for replicas in (1, 2, 3, 4):
                spec = replicated_pair(n, replicas)
                strategy = create_strategy(
                    GPU_RESIDENT if resident else COPROCESSING
                )
                series.add(
                    replicas,
                    strategy.estimate(spec, materialize=materialize).throughput_billion,
                )
    return result


# ---------------------------------------------------------------------------
# Figure 20: input size vs (identically) skewed inputs
# ---------------------------------------------------------------------------
def fig20(scale: float = 1.0) -> FigureResult:
    result = FigureResult(
        "fig20",
        "Input size vs skewed inputs (co-processing)",
        "probe/build relation size (million tuples)",
        "billion tuples/sec",
    )
    coproc = create_strategy(COPROCESSING)
    for z, label in ((0.0, "Uniform"), (0.25, "zipf 0.25"), (0.5, "zipf 0.5")):
        for materialize in (False, True):
            suffix = " (materialization)" if materialize else " (aggregation)"
            series = result.new_series(label + suffix)
            for millions in (256, 512, 1024, 2048):
                spec = zipf_pair(_scaled(millions, scale), z, skew_side="both")
                series.add(
                    millions,
                    coproc.estimate(spec, materialize=materialize).throughput_billion,
                )
    return result


# ---------------------------------------------------------------------------
# Figures 21 & 22: UVA / Unified Memory transfer mechanisms
# ---------------------------------------------------------------------------
def fig21(scale: float = 1.0) -> FigureResult:
    result = FigureResult(
        "fig21",
        "Effect of UVA and UM (GPU-sized working set)",
        "last step using technique",
        "billion tuples/sec",
        x_ticks=list(IN_GPU_MODES),
    )
    comparison = TransferStrategyComparison()
    spec = unique_pair(_scaled(32, scale))
    series = result.new_series("throughput")
    for index, mode in enumerate(IN_GPU_MODES):
        series.add(index, comparison.in_gpu(spec, mode).throughput_billion)
    return result


def fig22(scale: float = 1.0) -> FigureResult:
    result = FigureResult(
        "fig22",
        "Throughput with UVA/UM for out-of-GPU data",
        "technique",
        "billion tuples/sec",
        x_ticks=list(OOG_MODES),
    )
    comparison = TransferStrategyComparison()
    spec = unique_pair(_scaled(512, scale))
    series = result.new_series("throughput")
    for index, mode in enumerate(OOG_MODES):
        series.add(index, comparison.out_of_gpu(spec, mode).throughput_billion)
    return result


#: Registry used by the CLI and the benchmark modules.
ALL_FIGURES = {
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
    "fig17": fig17,
    "fig18": fig18,
    "fig19": fig19,
    "fig20": fig20,
    "fig21": fig21,
    "fig22": fig22,
}
