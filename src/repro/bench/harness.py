"""Experiment harness: series containers and table rendering.

Every figure of the paper's evaluation is regenerated as a
:class:`FigureResult` — a set of named series over a shared x-axis —
which renders as an aligned text table (the same rows/columns the
paper plots).  Benchmarks assert shape properties against these series;
the CLI (``python -m repro.bench``) prints them.

Join strategies are enumerated from the strategy registry
(:func:`enumerate_strategies`) — the harness names no concrete
strategy class, so newly registered strategies appear in sweeps
automatically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.strategy import (
    JoinStrategy,
    create_strategy,
    registered_strategies,
)
from repro.errors import InvalidConfigError


def enumerate_strategies(
    keys: Iterable[str] | None = None,
    system=None,
    calibration=None,
    config=None,
) -> dict[str, JoinStrategy]:
    """Instantiate registry strategies, keyed by display name.

    With ``keys=None`` every registered strategy is instantiated, so
    sweeps pick up plugged-in strategies without code changes.
    """
    keys = tuple(keys) if keys is not None else registered_strategies()
    strategies: dict[str, JoinStrategy] = {}
    for key in keys:
        strategy = create_strategy(key, system, calibration, config)
        if not strategy.name or strategy.name in strategies:
            raise InvalidConfigError(
                f"strategy {key!r} has a missing or duplicate display name "
                f"{strategy.name!r}; every enumerated strategy needs a "
                "unique `name` for its series label"
            )
        strategies[strategy.name] = strategy
    return strategies


#: Tolerances for matching x values.  Sweeps accumulate x coordinates
#: (``x += step``), so two series can disagree in the last float bits
#: (0.1 + 0.2 style); distinct sweep points are never this close.
X_REL_TOL = 1e-9
X_ABS_TOL = 1e-12


def canonical_x(x: float) -> float:
    """Collapse float rounding noise to a canonical 12-significant-digit
    grid value, so equal-up-to-noise x values dedup to one table row.

    The grid must be strictly finer than :data:`X_REL_TOL` (rounding
    moves a value by at most 5e-13 relative, well under the 1e-9 match
    tolerance), so a canonicalized x still matches its originating
    point in :meth:`Series.y_at` — e.g. ``2**40`` keeps a row instead
    of rounding away from its own series."""
    return float(f"{float(x):.12g}")


@dataclass
class Series:
    """One line (or bar group) of a figure."""

    label: str
    points: list[tuple[float, float | None]] = field(default_factory=list)
    #: Lazy canonical-x → y index backing :meth:`y_at` (rebuilt whenever
    #: ``points`` grows; first occurrence wins, like the linear scan).
    _index: dict[float, float | None] = field(
        default_factory=dict, repr=False, compare=False
    )
    _indexed: int = field(default=0, repr=False, compare=False)

    def add(self, x: float, y: float | None) -> None:
        self.points.append((x, y))

    def xs(self) -> list[float]:
        return [x for x, _ in self.points]

    def ys(self) -> list[float | None]:
        return [y for _, y in self.points]

    def _lookup(self) -> dict[float, float | None]:
        if self._indexed != len(self.points):
            index: dict[float, float | None] = {}
            for px, py in self.points:
                index.setdefault(canonical_x(px), py)
            self._index = index
            self._indexed = len(self.points)
        return self._index

    def y_at(self, x: float) -> float | None:
        """The y value at (canonically) ``x``.

        Dict lookup on the canonical-x grid — O(1) instead of the former
        per-call linear scan, which made dense figure tables quadratic in
        their point count.  Values straddling a 12-significant-digit
        rounding boundary (canonically unequal yet within the match
        tolerance) fall back to the tolerance scan.
        """
        index = self._lookup()
        canon = canonical_x(x)
        if canon in index:
            return index[canon]
        for px, py in self.points:
            if math.isclose(px, x, rel_tol=X_REL_TOL, abs_tol=X_ABS_TOL):
                return py
        raise InvalidConfigError(f"series {self.label!r} has no point at x={x}")


@dataclass
class FigureResult:
    """A regenerated figure: title, axes, and series."""

    figure: str
    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)
    #: Optional categorical x tick labels (bar charts: Figs 14, 21, 22).
    x_ticks: list[str] | None = None
    notes: list[str] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        series = Series(label)
        self.series.append(series)
        return series

    def get(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        raise InvalidConfigError(
            f"{self.figure}: no series {label!r}; have "
            f"{[s.label for s in self.series]}"
        )

    # ------------------------------------------------------------------
    def table(self) -> str:
        """Aligned text table: one row per x value, one column per series."""
        xs: list[float] = []
        seen: set[float] = set()
        for series in self.series:
            for x in series.xs():
                canon = canonical_x(x)
                if canon not in seen:
                    seen.add(canon)
                    xs.append(canon)
        xs.sort()

        def fmt(value: float | None) -> str:
            if value is None:
                return "fail"
            if value == 0:
                return "0"
            if abs(value) >= 100:
                return f"{value:.0f}"
            return f"{value:.3g}"

        header = [self.x_label] + [s.label for s in self.series]
        rows: list[list[str]] = []
        for x in xs:
            if self.x_ticks is not None and int(x) < len(self.x_ticks):
                x_cell = self.x_ticks[int(x)]
            else:
                x_cell = fmt(x)
            row = [x_cell]
            for series in self.series:
                try:
                    row.append(fmt(series.y_at(x)))
                except InvalidConfigError:
                    row.append("-")
            rows.append(row)

        widths = [
            max(len(header[c]), *(len(r[c]) for r in rows)) if rows else len(header[c])
            for c in range(len(header))
        ]
        lines = [
            f"{self.figure}: {self.title}   [y: {self.y_label}]",
            "  ".join(h.ljust(widths[c]) for c, h in enumerate(header)),
            "  ".join("-" * widths[c] for c in range(len(header))),
        ]
        for row in rows:
            lines.append("  ".join(cell.ljust(widths[c]) for c, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
