"""Tracked performance micro-benchmarks (``python -m repro.bench perf``).

Measures the wall-clock cost of the paths the cost-model fast path
accelerates, so the repo records a performance trajectory instead of
anecdotes:

* ``estimate_cold[<strategy>]`` — analytic ``estimate()`` latency per
  registered strategy on its regression reference workload, with the
  estimate cache cleared before every repetition (the kernel-formula
  fast path is what is being measured, not memoization);
* ``estimate_warm`` — cache-hit latency (the serving layer's admission
  re-planning path);
* ``fig12_cell_estimate`` — one full-scale co-processing estimate
  (2048 M-tuple build), the figure sweep's most expensive cell and the
  CI smoke's wall-clock ceiling;
* ``serve_wall[<clients>]`` — end-to-end scheduler wall time for the
  mixed serving workload in batch mode (one full engine re-simulation
  per admission wave), caches cleared per repetition;
* ``serve_online_wall[<clients>]`` — the same workload through the
  online admission mode (incremental schedule extension, bit-identical
  outcomes), the serving layer's production path;
* ``serve_sharded_wall[<clients>]`` — the same workload scheduled in
  batch mode across a two-device fleet (per-device arenas + engines,
  least-loaded placement); comparable against ``serve_wall`` to track
  the sharding layer's scheduling overhead/win per release;
* ``learned_fit`` / ``estimate_learned`` — fitting the learned cost
  model's per-strategy regression from a recorded sample population,
  and the per-estimate latency of its opt-in fast path (what the
  planner's first-pass filter pays per prediction);
* ``engine_tasks_per_sec`` — event-driven :class:`PipelineEngine`
  throughput on a synthetic double-buffered multi-query task graph.

Results go to ``BENCH_perf.json`` as ``name -> {wall_seconds,
ops_per_sec, n}`` where ``wall_seconds`` is the mean seconds per
operation over ``n`` operations.  ``--quick`` shrinks repetitions for
CI; ``--ceiling`` makes the run fail when the fig12-scale estimate
exceeds a wall-clock bound (a generous regression tripwire, not a
benchmark target).
"""

from __future__ import annotations

import argparse
import json
import time
from dataclasses import asdict, dataclass

from repro.core import estimate_cache

#: Default output path (repo root when run from it, as CI does).
DEFAULT_OUT = "BENCH_perf.json"

#: fig12's largest cell: the 2048 M-tuple co-processing estimate.
FIG12_CELL_TUPLES = 2048 * 1_000_000


@dataclass
class PerfEntry:
    """One benchmark's aggregate: mean seconds/op and ops/second."""

    wall_seconds: float
    ops_per_sec: float
    n: int


def _measure(fn, *, repeats: int, ops_per_repeat: int = 1) -> PerfEntry:
    total = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        total += time.perf_counter() - start
    ops = repeats * ops_per_repeat
    per_op = total / ops if ops else 0.0
    return PerfEntry(
        wall_seconds=per_op,
        ops_per_sec=(1.0 / per_op) if per_op > 0 else 0.0,
        n=ops,
    )


# ---------------------------------------------------------------------------
# Benchmarks
# ---------------------------------------------------------------------------
def bench_estimates(*, quick: bool) -> dict[str, PerfEntry]:
    from repro.bench.regress import reference_spec
    from repro.core import create_strategy, registered_strategies
    from repro.data import unique_pair

    repeats = 1 if quick else 3
    entries: dict[str, PerfEntry] = {}
    for key in registered_strategies():
        spec = reference_spec(key)

        def cold(key=key, spec=spec) -> None:
            estimate_cache.clear()
            create_strategy(key).estimate(spec)

        entries[f"estimate_cold[{key}]"] = _measure(cold, repeats=repeats)

    warm_spec = reference_spec("coprocessing")
    warm_strategy = create_strategy("coprocessing")
    warm_strategy.estimate(warm_spec)  # populate
    entries["estimate_warm"] = _measure(
        lambda: warm_strategy.estimate(warm_spec),
        repeats=200 if quick else 1000,
    )

    fig12_spec = unique_pair(FIG12_CELL_TUPLES)

    def fig12_cell() -> None:
        estimate_cache.clear()
        create_strategy("coprocessing").estimate(fig12_spec)

    entries["fig12_cell_estimate"] = _measure(fig12_cell, repeats=repeats)
    return entries


def bench_serve(*, quick: bool) -> dict[str, PerfEntry]:
    from repro.bench.serve_bench import run_serve

    levels = (4, 16) if quick else (4, 16, 64)
    variants = (
        ("serve_wall", {}),
        ("serve_online_wall", {"online": True}),
        ("serve_sharded_wall", {"devices": 2}),
    )
    entries: dict[str, PerfEntry] = {}
    for name, kwargs in variants:
        for clients in levels:

            def serve(clients=clients, kwargs=kwargs) -> None:
                estimate_cache.clear()
                run_serve(clients, check_determinism=False, **kwargs)

            entries[f"{name}[{clients}]"] = _measure(serve, repeats=1)
    return entries


def bench_engine(*, quick: bool) -> dict[str, PerfEntry]:
    from repro.pipeline.engine import PipelineEngine
    from repro.pipeline.tasks import Task

    queries = 16 if quick else 64
    chunks = 32

    def build() -> PipelineEngine:
        engine = PipelineEngine({"h2d": 2, "gpu": 1, "d2h": 1, "cpu": 1})
        for q in range(queries):
            engine.add(Task(f"q{q}:cpu", "cpu", 1.0))
            for c in range(chunks):
                deps = [f"q{q}:cpu"] if c == 0 else [f"q{q}:h2d[{c - 1}]"]
                if c >= 2:
                    deps.append(f"q{q}:join[{c - 2}]")
                engine.add(Task(f"q{q}:h2d[{c}]", "h2d", 0.5, tuple(deps)))
                engine.add(
                    Task(f"q{q}:join[{c}]", "gpu", 0.3, (f"q{q}:h2d[{c}]",))
                )
                engine.add(
                    Task(f"q{q}:d2h[{c}]", "d2h", 0.1, (f"q{q}:join[{c}]",))
                )
        return engine

    n_tasks = queries * (1 + 3 * chunks)
    repeats = 3 if quick else 10
    engines = [build() for _ in range(repeats)]
    iterator = iter(engines)
    entry = _measure(
        lambda: next(iterator).run(), repeats=repeats, ops_per_repeat=n_tasks
    )
    return {"engine_tasks_per_sec": entry}


def bench_learned(*, quick: bool) -> dict[str, PerfEntry]:
    """Learned cost-model path: regression fit time over a recorded
    sample population, and per-estimate latency through the learned
    fast path (the planner's first-pass filter cost)."""
    from repro.core import (
        create_strategy,
        learned_cost,
        registered_strategies,
        sample_store,
    )
    from repro.core.learned_cost import LearnedCostModel
    from repro.core.sample_store import SampleStore
    from repro.data import unique_pair

    store = SampleStore()
    sample_store.attach(store)
    try:
        estimate_cache.clear()
        strategies = [create_strategy(key) for key in registered_strategies()]
        for step in range(1, 9 if quick else 17):
            spec = unique_pair(step * 1_000_000, step * 8_000_000)
            for strategy in strategies:
                strategy.estimate(spec)
    finally:
        sample_store.detach()

    fit_entry = _measure(
        lambda: LearnedCostModel.fit(store), repeats=20 if quick else 100
    )
    model = LearnedCostModel.fit(store)
    learned_cost.set_model(model)
    spec = unique_pair(3_000_000, 24_000_000)
    strategy = create_strategy("gpu_resident")
    try:
        with learned_cost.activation(True):
            learned_entry = _measure(
                lambda: strategy.estimate(spec),
                repeats=200 if quick else 1000,
            )
    finally:
        learned_cost.clear_model()
    return {
        "learned_fit": fit_entry,
        "estimate_learned": learned_entry,
    }


def run_perf(*, quick: bool = False) -> dict[str, PerfEntry]:
    """Run every micro-benchmark; returns ``name -> PerfEntry``."""
    entries: dict[str, PerfEntry] = {}
    entries.update(bench_estimates(quick=quick))
    entries.update(bench_learned(quick=quick))
    entries.update(bench_serve(quick=quick))
    entries.update(bench_engine(quick=quick))
    return entries


def render(entries: dict[str, PerfEntry]) -> str:
    lines = [f"{'benchmark':34s} {'s/op':>12s} {'ops/s':>12s} {'n':>6s}"]
    for name, entry in entries.items():
        lines.append(
            f"{name:34s} {entry.wall_seconds:12.6f} "
            f"{entry.ops_per_sec:12.2f} {entry.n:6d}"
        )
    return "\n".join(lines)


def write_json(entries: dict[str, PerfEntry], path: str) -> None:
    payload = {name: asdict(entry) for name, entry in entries.items()}
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def perf_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench perf",
        description="Micro-benchmarks of the cost-model fast path: "
        "estimate latency, serve wall time, engine throughput.",
    )
    parser.add_argument(
        "--quick", action="store_true", help="fewer repetitions (CI smoke)"
    )
    parser.add_argument(
        "--out",
        default=DEFAULT_OUT,
        help=f"JSON output path (default {DEFAULT_OUT}); '-' skips writing",
    )
    parser.add_argument(
        "--ceiling",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail when the fig12-scale estimate exceeds this wall time",
    )
    args = parser.parse_args(argv)

    entries = run_perf(quick=args.quick)
    print(render(entries))
    stats = estimate_cache.stats()
    print(
        "cache counters (hits/misses/evictions): estimate "
        f"{stats.hits}/{stats.misses}/{stats.evictions}, plan "
        f"{stats.plan_hits}/{stats.plan_misses}/{stats.plan_evictions}, "
        f"ladder {stats.ladder_hits}/{stats.ladder_misses}/"
        f"{stats.ladder_evictions} "
        f"(LRU cap {stats.max_entries} entries per cache)"
    )
    if args.out != "-":
        write_json(entries, args.out)
        print(f"written to {args.out}")
    if args.ceiling is not None:
        cell = entries["fig12_cell_estimate"].wall_seconds
        if cell > args.ceiling:
            print(
                f"FAIL: fig12-scale estimate took {cell:.3f} s "
                f"(> ceiling {args.ceiling:.3f} s)"
            )
            return 1
        print(
            f"fig12-scale estimate {cell:.3f} s within ceiling "
            f"{args.ceiling:.3f} s"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(perf_main())
