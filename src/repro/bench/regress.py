"""Equivalence harness guarding the strategy-registry refactor and the
cost-model fast path.

For one reference workload per registered strategy, compares the
simulated time produced by every entry point that must agree:

* **direct** — instantiating the strategy class itself, the original
  (pre-registry) entry point, which remains public API — computed with
  the estimate cache *disabled*, so it exercises the uncached path;
* **registry** — ``create_strategy(key)`` dispatch, the post-registry
  entry point used by the planner, executor and benchmarks; evaluated
  twice (cold cache, then cache hit) so a divergence between memoized
  and recomputed estimates trips the harness;
* **pipeline** — the decomposed ``simulate(prepare(spec))`` path,
  proving ``estimate`` is nothing but plan + engine simulation;
* **scanner** — the same plan simulated by the retained all-queue-heads
  reference scanner (``PipelineEngine.run_reference``), pinning the
  event-driven engine to its executable specification;
* **hand-summed** (serial strategies only) — when a plan's tasks all
  occupy one resource, the engine's makespan must equal the summed task
  durations the pre-engine implementation computed by hand.

Run as a module (``python -m repro.bench.regress``) for a table, or
call :func:`run_regression` from tests.

The module also guards the serving layer (:func:`run_serve_regression`):
a small concurrency sweep must be deterministic, keep every device's
arena within capacity and drained, beat serial back-to-back execution,
and produce **identical** per-query outcomes through the online
incremental-extension mode and the batch full-re-simulation mode — on
one device *and* on a two-device sharded fleet, whose makespan must
additionally never exceed the single-device makespan — the invariants
the scheduler promises on every PR.  :func:`run_stream_regression`
extends the same guarantee to steady-state streaming: on a mid-size
open-arrival stream, ``run_stream`` with aggressive schedule
compaction must match ``run_stream`` without compaction *and*
``run_online`` on every per-query outcome and the final makespan.
:func:`run_golden_regression` pins the heterogeneous-fleet refactor:
homogeneous fleets — the implicit default *and* explicitly spelled
per-device capacities/calibrations — must stay bit-identical to the
golden schedules recorded before per-device calibration existed.
:func:`run_fault_regression` pins the fault-injection layer the same
way: an **empty** :class:`~repro.serve.faults.FaultPlan` must stay
bit-identical to the golden schedules (the fault machinery may not
leak into fault-free runs), and crashy seeded plans must conserve
every query, reconcile every arena, and keep online == batch.
:func:`run_admission_regression` pins the admission-policy registry:
the default ``fifo`` policy must stay bit-identical to the golden
schedules, every reordering policy must keep online == batch on
classed workloads, ``edf`` must strictly reduce the deadline-miss rate
against ``fifo`` on the deadline-classed canonical workload, and
``sjf`` must never worsen its mean latency.
:func:`run_learned_regression` pins the learned cost-model fast path:
with a model *fitted and installed* but ``learned=False`` (the
default) the golden schedules must stay bit-identical — installation
alone may not perturb anything — and with ``learned=True`` every run
must still conserve queries, reconcile arenas, replay
deterministically, and keep its planner-decision divergence from the
analytic ladder bounded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import estimate_cache
from repro.core.strategy import (
    COPROCESSING,
    COPROCESSING_ADAPTIVE,
    GPU_NONPARTITIONED,
    GPU_NONPARTITIONED_PERFECT,
    GPU_RESIDENT,
    STREAMING,
    create_strategy,
    registered_strategies,
    strategy_factory,
)
from repro.data import Distribution, JoinSpec, RelationSpec, unique_pair

M = 1_000_000

#: One workload per strategy, sized for that strategy's regime.
DEFAULT_TOLERANCE = 1e-9


def reference_spec(key: str) -> JoinSpec:
    """A workload in the regime the strategy is designed for."""
    if key in (GPU_RESIDENT, GPU_NONPARTITIONED, GPU_NONPARTITIONED_PERFECT):
        return unique_pair(32 * M)
    if key == STREAMING:
        return JoinSpec(
            build=RelationSpec(n=64 * M),
            probe=RelationSpec(
                n=1024 * M, distinct=64 * M, distribution=Distribution.UNIFORM
            ),
        )
    if key in (COPROCESSING, COPROCESSING_ADAPTIVE):
        return unique_pair(512 * M)
    # New strategies default to a mid-sized resident workload.
    return unique_pair(32 * M)


@dataclass
class RegressRow:
    """Agreement of one strategy's entry points on its reference spec."""

    key: str
    direct_seconds: float
    registry_seconds: float
    pipeline_seconds: float
    handsum_seconds: float | None
    max_abs_diff: float
    cached_seconds: float = 0.0
    scanner_seconds: float = 0.0

    def ok(self, tolerance: float = DEFAULT_TOLERANCE) -> bool:
        return self.max_abs_diff <= tolerance


def run_regression(keys: tuple[str, ...] | None = None) -> list[RegressRow]:
    """Measure entry-point agreement for every (or the given) strategy."""
    from repro.pipeline.engine import PipelineEngine

    rows: list[RegressRow] = []
    for key in keys if keys is not None else registered_strategies():
        spec = reference_spec(key)

        # Uncached baseline: the memoization layer must be equivalence-
        # checked, not trusted, so `direct` bypasses it entirely.
        estimate_cache.clear()
        estimate_cache.configure(enabled=False)
        try:
            direct = strategy_factory(key)().estimate(spec).seconds
        finally:
            estimate_cache.configure(enabled=True)
        registry = create_strategy(key).estimate(spec).seconds  # cold cache
        cached = create_strategy(key).estimate(spec).seconds  # cache hit

        strategy = create_strategy(key)
        plan = strategy.prepare(spec)
        pipeline = strategy.simulate(plan).seconds

        engine = PipelineEngine(plan.resources)
        for task in plan.tasks:
            engine.add(task)
        scanner = strategy.metrics_from_schedule(
            plan, engine.run_reference()
        ).seconds

        handsum: float | None = None
        resources = {task.resource for task in plan.tasks}
        if len(resources) == 1:
            handsum = sum(task.duration for task in plan.tasks)

        candidates = [registry, cached, pipeline, scanner] + (
            [handsum] if handsum is not None else []
        )
        max_abs_diff = max(abs(direct - value) for value in candidates)
        rows.append(
            RegressRow(
                key=key,
                direct_seconds=direct,
                registry_seconds=registry,
                pipeline_seconds=pipeline,
                handsum_seconds=handsum,
                max_abs_diff=max_abs_diff,
                cached_seconds=cached,
                scanner_seconds=scanner,
            )
        )
    return rows


def render(rows: list[RegressRow], tolerance: float = DEFAULT_TOLERANCE) -> str:
    lines = [
        f"{'strategy':28s} {'direct (s)':>14s} {'registry (s)':>14s} "
        f"{'pipeline (s)':>14s} {'scanner (s)':>14s} {'max |diff|':>12s}  verdict"
    ]
    for row in rows:
        verdict = "ok" if row.ok(tolerance) else "DIVERGED"
        lines.append(
            f"{row.key:28s} {row.direct_seconds:14.9f} "
            f"{row.registry_seconds:14.9f} {row.pipeline_seconds:14.9f} "
            f"{row.scanner_seconds:14.9f} "
            f"{row.max_abs_diff:12.3e}  {verdict}"
        )
    return "\n".join(lines)


#: Concurrency levels for the serving-determinism regression — small on
#: purpose: this runs on every PR.
SERVE_REGRESSION_CLIENTS = (1, 4, 8)


#: Fleet size of the sharded serving regression.
SERVE_REGRESSION_DEVICES = 2


def run_serve_regression(
    levels: tuple[int, ...] = SERVE_REGRESSION_CLIENTS,
) -> list[str]:
    """Assert the serving layer's invariants; returns report lines.

    Each level runs the batch scheduler twice (determinism is checked
    inside :func:`repro.bench.serve_bench.run_serve`) plus once through
    the online incremental-extension mode, whose per-query admissions,
    placements and finish times must be **identical** to batch mode —
    the serving-layer face of the ``extend()``-equals-``run()``
    guarantee — and then repeats the pair on a
    :data:`SERVE_REGRESSION_DEVICES`-device sharded fleet, where the
    same online==batch identity must hold (device assignments included)
    and the fleet makespan must never exceed the single-device
    makespan.  Any violation raises
    :class:`~repro.errors.SchedulingError`.
    """
    import time

    from repro.bench.serve_bench import (
        fingerprint,
        fingerprint_sharded,
        run_serve,
    )
    from repro.errors import SchedulingError

    lines: list[str] = []
    for clients in levels:
        # Both modes run with the determinism re-run included (two
        # scheduler passes each), so the reported walls compare
        # like-for-like.
        start = time.perf_counter()
        report = run_serve(clients, check_determinism=True)
        batch_wall = time.perf_counter() - start
        start = time.perf_counter()
        online = run_serve(clients, online=True, check_determinism=True)
        online_wall = time.perf_counter() - start
        if fingerprint(online) != fingerprint(report):
            raise SchedulingError(
                f"online admission diverged from batch at {clients} clients"
            )
        if online.makespan != report.makespan:
            raise SchedulingError(
                f"online makespan {online.makespan!r} != batch "
                f"{report.makespan!r} at {clients} clients"
            )
        lines.append(
            f"serve[{clients:2d} clients]: makespan {report.makespan:10.6f} s, "
            f"serial {report.serial_makespan:10.6f} s, peak "
            f"{report.peak_reserved_bytes / 1e9:.2f}/"
            f"{report.capacity_bytes / 1e9:.2f} GB, "
            f"{report.degraded_count} degraded, online==batch "
            f"(wall {online_wall:.2f} s vs {batch_wall:.2f} s)  ok"
        )

        devices = SERVE_REGRESSION_DEVICES
        sharded = run_serve(clients, devices=devices, check_determinism=True)
        sharded_online = run_serve(
            clients, devices=devices, online=True, check_determinism=True
        )
        if fingerprint_sharded(sharded_online) != fingerprint_sharded(sharded):
            raise SchedulingError(
                f"sharded online admission diverged from batch at "
                f"{clients} clients on {devices} devices"
            )
        if sharded_online.makespan != sharded.makespan:
            raise SchedulingError(
                f"sharded online makespan {sharded_online.makespan!r} != "
                f"batch {sharded.makespan!r} at {clients} clients"
            )
        if sharded.makespan > report.makespan * (1 + 1e-9):
            raise SchedulingError(
                f"sharding regressed the makespan at {clients} clients: "
                f"{devices} devices {sharded.makespan:.6f} s vs one device "
                f"{report.makespan:.6f} s"
            )
        lines.append(
            f"serve[{clients:2d} clients, {devices} devices]: makespan "
            f"{sharded.makespan:10.6f} s "
            f"({report.makespan / sharded.makespan:.2f}x vs one device), "
            f"peaks {'/'.join(f'{p / 1e9:.2f}' for p in sharded.device_peak_bytes)} GB, "
            "online==batch  ok"
        )
    return lines


#: Stream length of the compaction-equivalence regression — mid-size on
#: purpose: big enough for many compaction sweeps, small enough for
#: every PR.
STREAM_REGRESSION_ARRIVALS = 400


def run_stream_regression(
    arrivals: int = STREAM_REGRESSION_ARRIVALS,
) -> list[str]:
    """Assert compacted streaming == uncompacted == online; returns
    report lines.

    For a mid-size open-arrival stream on one device and on a
    :data:`SERVE_REGRESSION_DEVICES`-device fleet, runs
    :meth:`~repro.serve.scheduler.QueryScheduler.run_stream` twice —
    aggressive compaction versus compaction disabled — and
    :meth:`~repro.serve.scheduler.QueryScheduler.run_online` once on
    the same requests.  All three must produce **identical** per-query
    admissions, placements, reservations and finish times, and the
    same makespan: compaction must be pure bookkeeping, invisible in
    every outcome.  Any divergence raises
    :class:`~repro.errors.SchedulingError`.
    """
    from repro.errors import SchedulingError
    from repro.serve.scheduler import QueryScheduler
    from repro.serve.workload import stream_workload

    def outcome_fingerprint(outcomes) -> list[tuple]:
        return sorted(
            (o.qid, o.device, o.strategy, o.reserved_bytes,
             o.admit_at, o.finish_at)
            for o in outcomes
        )

    lines: list[str] = []
    for devices in (1, SERVE_REGRESSION_DEVICES):
        requests = list(
            stream_workload(arrivals, arrival_rate=120.0, seed=7)
        )
        compacted = QueryScheduler(devices=devices).run_stream(
            iter(requests), compact_every=16
        )
        uncompacted = QueryScheduler(devices=devices).run_stream(
            iter(requests), compact_every=None
        )
        online = QueryScheduler(devices=devices).run_online(requests)
        if compacted.shed or uncompacted.shed:
            raise SchedulingError(
                "stream regression must not shed (no queue cap, no SLO)"
            )
        if outcome_fingerprint(compacted.outcomes) != outcome_fingerprint(
            uncompacted.outcomes
        ):
            raise SchedulingError(
                f"compacted stream diverged from uncompacted at "
                f"{arrivals} arrivals on {devices} device(s)"
            )
        if outcome_fingerprint(compacted.outcomes) != outcome_fingerprint(
            online.outcomes
        ):
            raise SchedulingError(
                f"streaming admission diverged from run_online at "
                f"{arrivals} arrivals on {devices} device(s)"
            )
        if not (
            compacted.makespan == uncompacted.makespan == online.makespan
        ):
            raise SchedulingError(
                f"stream makespans diverged on {devices} device(s): "
                f"compacted {compacted.makespan!r}, uncompacted "
                f"{uncompacted.makespan!r}, online {online.makespan!r}"
            )
        if compacted.retired_tasks == 0:
            raise SchedulingError(
                "stream regression compacted run retired nothing — the "
                "equivalence check is vacuous"
            )
        lines.append(
            f"stream[{arrivals} arrivals, {devices} device(s)]: makespan "
            f"{compacted.makespan:10.6f} s, retained peak "
            f"{compacted.peak_retained_tasks} vs "
            f"{uncompacted.peak_retained_tasks} tasks uncompacted "
            f"({compacted.retired_tasks} retired in "
            f"{compacted.compactions} sweeps), compacted == uncompacted "
            "== online  ok"
        )
    return lines


#: Seed subset of the golden-schedule regression — every 10th recorded
#: seed; the full 200-seed sweep belongs to the property suite, this
#: column runs on every ``python -m repro.bench.regress``.
GOLDEN_REGRESSION_SEEDS = tuple(range(0, 200, 10))


def run_golden_regression(
    seeds: tuple[int, ...] = GOLDEN_REGRESSION_SEEDS,
) -> list[str]:
    """Assert homogeneous fleets survived the heterogeneity refactor
    bit-identically; returns report lines.

    Two columns per seed against the recorded pre-refactor golden
    schedules (``tests/serve/golden_single_device.json``):

    * ``devices=1`` (all per-device machinery on its defaults) must
      reproduce the golden fingerprint, makespan and peak exactly;
    * a two-device fleet with *explicitly spelled* homogeneous
      per-device arguments (``device_capacities=[cap, cap]``,
      ``device_calibrations=[None, None]``) must match the implicit
      ``devices=2`` default on every outcome — threading per-device
      state through estimates, plans and placement must be a no-op
      when the devices are equal.

    The canonical ``mixed_workload`` entries of the golden file are
    re-checked too.  Any divergence raises
    :class:`~repro.errors.SchedulingError`.
    """
    import json
    from pathlib import Path

    from repro.bench.serve_bench import fingerprint, fingerprint_sharded
    from repro.errors import SchedulingError
    from repro.serve.scheduler import QueryScheduler
    from repro.serve.workload import mixed_workload, random_workload

    golden_path = (
        Path(__file__).resolve().parents[3]
        / "tests" / "serve" / "golden_single_device.json"
    )
    golden = json.loads(golden_path.read_text(encoding="utf-8"))
    checked = 0
    for seed in seeds:
        entry = golden["seeds"][str(seed)]
        report = QueryScheduler(devices=1).run_online(random_workload(seed))
        if (
            [list(item) for item in fingerprint(report)]
            != entry["fingerprint"]
            or report.makespan != entry["makespan"]
            or report.peak_reserved_bytes != entry["peak_reserved_bytes"]
        ):
            raise SchedulingError(
                f"homogeneous devices=1 diverged from the recorded golden "
                f"schedule at seed {seed}"
            )
        capacity = report.capacity_bytes
        default_two = QueryScheduler(devices=2).run_online(
            random_workload(seed)
        )
        explicit_two = QueryScheduler(
            devices=2,
            device_capacities=[capacity, capacity],
            device_calibrations=[None, None],
        ).run_online(random_workload(seed))
        if (
            fingerprint_sharded(explicit_two)
            != fingerprint_sharded(default_two)
            or explicit_two.makespan != default_two.makespan
        ):
            raise SchedulingError(
                f"explicit homogeneous per-device arguments changed the "
                f"2-device schedule at seed {seed}"
            )
        checked += 1
    for name in sorted(golden["canonical"]):
        clients, spacing = name.split("x")
        report = QueryScheduler(devices=1).run_online(
            mixed_workload(int(clients), spacing_seconds=float(spacing))
        )
        if (
            [list(item) for item in fingerprint(report)]
            != golden["canonical"][name]["fingerprint"]
            or report.makespan != golden["canonical"][name]["makespan"]
        ):
            raise SchedulingError(
                f"canonical workload {name} diverged from the recorded "
                "golden schedule"
            )
    return [
        f"golden[{checked} seeds + {len(golden['canonical'])} canonical]: "
        "homogeneous fleets bit-identical to pre-refactor golden "
        "schedules; explicit per-device args are a no-op  ok"
    ]


#: Seeds of the fault-recovery regression's empty-plan identity column.
FAULT_REGRESSION_SEEDS = (0, 50, 150)


def run_fault_regression(
    seeds: tuple[int, ...] = FAULT_REGRESSION_SEEDS,
) -> list[str]:
    """Assert the fault-injection layer's two anchor contracts; returns
    report lines.

    * **Inertness** — ``faults=FaultPlan()`` must stay bit-identical to
      the recorded pre-fault golden schedules on ``devices=1`` (the
      empty plan takes the exact fault-free code path, so a divergence
      means the fault machinery leaked into unfaulted runs);
    * **Recovery** — a crashy seeded plan on a two-device fleet must
      conserve every query (``completed + failed == arrivals``), drain
      every arena (crash reservations reconciled), keep online == batch
      under faults, and replay deterministically.

    Any violation raises :class:`~repro.errors.SchedulingError` (the
    scheduler's own :func:`~repro.serve.faults.check_fault_invariants`
    audit, a :class:`~repro.errors.FaultInvariantError`, is a subclass).
    """
    import json
    from pathlib import Path

    from repro.bench.serve_bench import fingerprint, fingerprint_sharded
    from repro.errors import SchedulingError
    from repro.serve.faults import FaultPlan
    from repro.serve.scheduler import QueryScheduler
    from repro.serve.workload import random_workload

    golden_path = (
        Path(__file__).resolve().parents[3]
        / "tests" / "serve" / "golden_single_device.json"
    )
    golden = json.loads(golden_path.read_text(encoding="utf-8"))
    for seed in seeds:
        entry = golden["seeds"][str(seed)]
        report = QueryScheduler(devices=1).run_online(
            random_workload(seed), faults=FaultPlan()
        )
        if (
            [list(item) for item in fingerprint(report)]
            != entry["fingerprint"]
            or report.makespan != entry["makespan"]
            or report.peak_reserved_bytes != entry["peak_reserved_bytes"]
            or report.failed
        ):
            raise SchedulingError(
                f"empty FaultPlan diverged from the recorded golden "
                f"schedule at seed {seed} — the fault machinery leaked "
                "into fault-free runs"
            )

    devices = SERVE_REGRESSION_DEVICES
    failures = 0
    retries = 0
    for seed in seeds:
        requests = random_workload(seed)
        base = QueryScheduler(devices=devices).run_online(
            random_workload(seed)
        )
        plan = FaultPlan.random(
            seed,
            devices=devices,
            horizon=base.makespan,
            qids=[request.qid for request in requests],
            admission_fault_rate=0.25,
        )
        online = QueryScheduler(devices=devices).run_online(
            random_workload(seed), faults=plan
        )
        batch = QueryScheduler(devices=devices).run(
            random_workload(seed), faults=plan
        )
        replay = QueryScheduler(devices=devices).run_online(
            random_workload(seed), faults=plan
        )
        if (
            fingerprint_sharded(online) != fingerprint_sharded(batch)
            or online.failed != batch.failed
        ):
            raise SchedulingError(
                f"online diverged from batch under fault plan seed {seed}"
            )
        if (
            fingerprint_sharded(replay) != fingerprint_sharded(online)
            or replay.failed != online.failed
        ):
            raise SchedulingError(
                f"faulted run did not replay deterministically at seed "
                f"{seed}"
            )
        if len(online.outcomes) + len(online.failed) != len(requests):
            raise SchedulingError(
                f"fault plan seed {seed} lost queries: "
                f"{len(online.outcomes)} completed + "
                f"{len(online.failed)} failed != {len(requests)}"
            )
        for arena in online.arenas or ():
            arena.check_invariants()
            if not arena.drained:
                raise SchedulingError(
                    f"device {arena.device} arena did not drain under "
                    f"fault plan seed {seed}"
                )
        failures += len(online.failed)
        retries += sum(o.retries for o in online.outcomes)
    return [
        f"faults[{len(seeds)} seeds]: empty plan bit-identical to golden "
        f"schedules; crashy plans on {devices} devices conserved every "
        f"query ({failures} failed, {retries} retries), arenas "
        "reconciled, online == batch, replay identical  ok"
    ]


#: Seeds of the admission regression's fifo-identity column.
ADMISSION_REGRESSION_SEEDS = (0, 70, 190)


def run_admission_regression(
    seeds: tuple[int, ...] = ADMISSION_REGRESSION_SEEDS,
) -> list[str]:
    """Assert the admission-policy registry's anchor contracts; returns
    report lines.

    * **Inertness** — ``admission="fifo"`` (the default, spelled
      explicitly) must stay bit-identical to the recorded pre-registry
      golden schedules on ``devices=1``: the policy hook may not
      perturb the default path;
    * **Equivalence** — every registered policy must keep
      online == batch (device assignments included) on the
      deadline-classed canonical workload across a two-device fleet;
    * **Wins** — on :func:`~repro.serve.workload.classed_workload`
      (64 clients, one device) ``edf`` must *strictly* reduce the
      deadline-miss rate against ``fifo``, and ``sjf`` must never
      worsen the mean latency of the same 64 clients unclassed.

    Any violation raises :class:`~repro.errors.SchedulingError`.
    """
    import json
    from pathlib import Path

    from repro.bench.serve_bench import fingerprint, fingerprint_sharded
    from repro.errors import SchedulingError
    from repro.serve.admission import registered_admission_policies
    from repro.serve.scheduler import QueryScheduler
    from repro.serve.workload import (
        classed_workload,
        mixed_workload,
        random_workload,
    )

    golden_path = (
        Path(__file__).resolve().parents[3]
        / "tests" / "serve" / "golden_single_device.json"
    )
    golden = json.loads(golden_path.read_text(encoding="utf-8"))
    for seed in seeds:
        entry = golden["seeds"][str(seed)]
        report = QueryScheduler(devices=1, admission="fifo").run_online(
            random_workload(seed)
        )
        if (
            [list(item) for item in fingerprint(report)]
            != entry["fingerprint"]
            or report.makespan != entry["makespan"]
            or report.peak_reserved_bytes != entry["peak_reserved_bytes"]
        ):
            raise SchedulingError(
                f"fifo admission diverged from the recorded golden "
                f"schedule at seed {seed} — the policy hook perturbed "
                "the default path"
            )

    devices = SERVE_REGRESSION_DEVICES
    requests = classed_workload(16)
    for policy in registered_admission_policies():
        batch = QueryScheduler(devices=devices, admission=policy).run(
            requests
        )
        online = QueryScheduler(
            devices=devices, admission=policy
        ).run_online(requests)
        if (
            fingerprint_sharded(online) != fingerprint_sharded(batch)
            or online.makespan != batch.makespan
        ):
            raise SchedulingError(
                f"online diverged from batch under {policy!r} admission "
                "on the classed workload"
            )

    fifo_classed = QueryScheduler(admission="fifo").run(classed_workload(64))
    edf_classed = QueryScheduler(admission="edf").run(classed_workload(64))
    if fifo_classed.deadline_miss_rate == 0.0:
        raise SchedulingError(
            "admission regression is vacuous: fifo missed no deadlines "
            "on the deadline-classed canonical workload"
        )
    if not edf_classed.deadline_miss_rate < fifo_classed.deadline_miss_rate:
        raise SchedulingError(
            f"edf did not strictly reduce the deadline-miss rate: "
            f"{edf_classed.deadline_miss_rate:.4f} vs fifo "
            f"{fifo_classed.deadline_miss_rate:.4f}"
        )
    fifo_mixed = QueryScheduler(admission="fifo").run(mixed_workload(64))
    sjf_mixed = QueryScheduler(admission="sjf").run(mixed_workload(64))
    if sjf_mixed.mean_latency > fifo_mixed.mean_latency * (1 + 1e-9):
        raise SchedulingError(
            f"sjf worsened mean latency on the canonical 64-client "
            f"workload: {sjf_mixed.mean_latency:.6f} s vs fifo "
            f"{fifo_mixed.mean_latency:.6f} s"
        )
    return [
        f"admission[{len(seeds)} seeds + {len(registered_admission_policies())} "
        f"policies]: fifo bit-identical to golden schedules; online == "
        f"batch under every policy on classed workloads; edf miss rate "
        f"{edf_classed.deadline_miss_rate:.3f} < fifo "
        f"{fifo_classed.deadline_miss_rate:.3f}; sjf mean latency "
        f"{sjf_mixed.mean_latency:.3f} s <= fifo "
        f"{fifo_mixed.mean_latency:.3f} s  ok"
    ]


#: Seeds of the learned-cost regression — the recording workloads, the
#: learned-off identity column and the learned-on invariant column all
#: use the same subset.
LEARNED_REGRESSION_SEEDS = (0, 60, 120, 180)

#: Upper bound on the fraction of per-query strategy decisions the
#: learned filter may flip against the analytic ladder.  The filter is
#: restricted to the analytically *feasible* rungs, so wholesale
#: divergence means the regression is broken, not merely different.
LEARNED_MAX_DIVERGENCE = 0.5


def run_learned_regression(
    seeds: tuple[int, ...] = LEARNED_REGRESSION_SEEDS,
) -> list[str]:
    """Assert the learned cost-model fast path's anchor contracts;
    returns report lines.

    Records a sample population into an in-memory
    :class:`~repro.core.sample_store.SampleStore` by serving the seed
    workloads, fits a :class:`~repro.core.learned_cost.LearnedCostModel`
    from it, then checks two columns:

    * **Inertness** — with the model *installed* but ``learned=False``
      (the default), ``devices=1`` runs must stay bit-identical to the
      recorded golden schedules: installation without activation may
      not perturb a single decision;
    * **Safety under activation** — with ``learned=True`` on a
      two-device fleet, every run must pass
      :func:`~repro.serve.faults.check_fault_invariants` (conservation,
      arena reconciliation, retry budgets), replay deterministically,
      and flip at most :data:`LEARNED_MAX_DIVERGENCE` of the per-query
      strategy decisions relative to the analytic ladder (the filter
      only reorders analytically feasible rungs).

    Any violation raises :class:`~repro.errors.SchedulingError`.
    """
    import json
    from pathlib import Path

    from repro.bench.serve_bench import fingerprint, fingerprint_sharded
    from repro.core import learned_cost, sample_store
    from repro.core.learned_cost import LearnedCostModel
    from repro.core.sample_store import SampleStore
    from repro.errors import SchedulingError
    from repro.serve.faults import FaultPlan, check_fault_invariants
    from repro.serve.scheduler import QueryScheduler
    from repro.serve.workload import random_workload

    golden_path = (
        Path(__file__).resolve().parents[3]
        / "tests" / "serve" / "golden_single_device.json"
    )
    golden = json.loads(golden_path.read_text(encoding="utf-8"))

    # Record: serve the seed workloads with an in-memory store attached
    # so every estimate contributes a (fingerprint, features, seconds)
    # sample; the estimate cache is cleared first so cache hits from
    # earlier columns cannot starve the recorder.
    store = SampleStore()
    estimate_cache.clear()
    sample_store.attach(store)
    try:
        for seed in seeds:
            QueryScheduler(devices=1).run_online(random_workload(seed))
    finally:
        sample_store.detach()
    model = LearnedCostModel.fit(store)
    if len(model) == 0:
        raise SchedulingError(
            f"learned regression fitted no strategies from "
            f"{len(store.samples)} recorded samples — the recording path "
            "is broken"
        )

    learned_cost.set_model(model)
    try:
        # Column 1: installed-but-inactive must stay bit-identical to
        # the recorded golden schedules.
        for seed in seeds:
            entry = golden["seeds"][str(seed)]
            report = QueryScheduler(devices=1, learned=False).run_online(
                random_workload(seed)
            )
            if (
                [list(item) for item in fingerprint(report)]
                != entry["fingerprint"]
                or report.makespan != entry["makespan"]
                or report.peak_reserved_bytes != entry["peak_reserved_bytes"]
            ):
                raise SchedulingError(
                    f"learned=False diverged from the recorded golden "
                    f"schedule at seed {seed} with a model installed — "
                    "installation alone perturbed the planner"
                )

        # Column 2: activation must preserve the serving invariants.
        devices = SERVE_REGRESSION_DEVICES
        flipped = 0
        total = 0
        for seed in seeds:
            requests = random_workload(seed)
            analytic = QueryScheduler(devices=devices).run_online(
                random_workload(seed)
            )
            learned = QueryScheduler(
                devices=devices, learned=True
            ).run_online(random_workload(seed))
            replay = QueryScheduler(
                devices=devices, learned=True
            ).run_online(random_workload(seed))
            if fingerprint_sharded(replay) != fingerprint_sharded(learned):
                raise SchedulingError(
                    f"learned=True did not replay deterministically at "
                    f"seed {seed}"
                )
            check_fault_invariants(
                learned,
                FaultPlan(),
                arrivals=len(requests),
                max_retries=QueryScheduler().max_retries,
            )
            analytic_by_qid = {o.qid: o.strategy for o in analytic.outcomes}
            for outcome in learned.outcomes:
                total += 1
                if outcome.strategy != analytic_by_qid.get(outcome.qid):
                    flipped += 1
        if total == 0:
            raise SchedulingError(
                "learned regression completed no queries — the invariant "
                "column is vacuous"
            )
        divergence = flipped / total
        if divergence > LEARNED_MAX_DIVERGENCE:
            raise SchedulingError(
                f"learned planner flipped {flipped}/{total} strategy "
                f"decisions ({divergence:.0%}) — above the "
                f"{LEARNED_MAX_DIVERGENCE:.0%} bound; the filter is no "
                "longer restricted to feasible rungs"
            )
    finally:
        learned_cost.clear_model()
    return [
        f"learned[{len(seeds)} seeds]: {len(store.samples)} samples, "
        f"{len(model)} fitted strategies; learned-off bit-identical to "
        f"golden schedules; learned-on on {SERVE_REGRESSION_DEVICES} "
        f"devices conserved every query, arenas reconciled, replay "
        f"identical, {flipped}/{total} decisions flipped "
        f"({divergence:.0%} <= {LEARNED_MAX_DIVERGENCE:.0%})  ok"
    ]


def main() -> int:
    rows = run_regression()
    print(render(rows))
    if not all(row.ok() for row in rows):
        return 1
    print(f"all {len(rows)} strategies agree within {DEFAULT_TOLERANCE:g} s")
    for line in run_serve_regression():
        print(line)
    print(
        "serving scheduler deterministic, every arena within capacity and "
        "drained, online == batch, sharding never regresses the makespan"
    )
    for line in run_stream_regression():
        print(line)
    print(
        "streaming admission: compacted == uncompacted == online on every "
        "outcome; compaction is pure bookkeeping"
    )
    for line in run_golden_regression():
        print(line)
    print(
        "heterogeneous-fleet refactor: homogeneous fleets unchanged "
        "against the recorded golden schedules"
    )
    for line in run_fault_regression():
        print(line)
    print(
        "fault injection: empty plans inert, crashes recovered with "
        "exact conservation"
    )
    for line in run_admission_regression():
        print(line)
    print(
        "admission policies: fifo inert against the golden schedules, "
        "reordering policies keep online == batch and win their metrics"
    )
    for line in run_learned_regression():
        print(line)
    print(
        "learned cost model: installation inert against the golden "
        "schedules, activation keeps every serving invariant with "
        "bounded decision divergence"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
