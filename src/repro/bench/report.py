"""Regenerate the tables section of ``EXPERIMENTS.md``.

The commentary in ``EXPERIMENTS.md`` is hand-written (paper-vs-measured
judgement), but every table in it is harness output.  This tool re-runs
the figures and splices the fresh tables into the document in place, so
the recorded results can never drift from what the code produces:

    python -m repro.bench --refresh-experiments EXPERIMENTS.md
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.bench.figures import ALL_FIGURES
from repro.errors import InvalidConfigError

#: A fenced block whose first line is "figNN: ..." is a harness table.
_TABLE_BLOCK = re.compile(r"```\n(fig\d{2}):.*?\n```", re.DOTALL)


def refresh_experiments(path: str | Path, *, scale: float = 1.0) -> list[str]:
    """Replace every figure table in ``path`` with freshly computed ones.

    Returns the list of figure names that were refreshed.  Raises if the
    document references a figure the harness does not provide.
    """
    document = Path(path).read_text()
    refreshed: list[str] = []

    def _replace(match: re.Match) -> str:
        name = match.group(1)
        if name not in ALL_FIGURES:
            raise InvalidConfigError(f"{path} references unknown figure {name!r}")
        refreshed.append(name)
        table = ALL_FIGURES[name](scale=scale).table()
        return f"```\n{table}\n```"

    updated = _TABLE_BLOCK.sub(_replace, document)
    Path(path).write_text(updated)
    return refreshed
