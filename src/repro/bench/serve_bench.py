"""Throughput benchmark for the multi-query serving layer.

Sweeps offered concurrency (1–64 clients) over the deterministic mixed
workload of :mod:`repro.serve.workload` and reports queries/second,
per-query latency, and the speedup of the concurrent schedule over
serial back-to-back execution.  Every run is verified: no device's
arena may ever over-reserve its memory, every arena must drain (all
reservations returned), and the schedule must be bit-identical across
repeated runs.  For the canonical workload (default scale, one batch,
bounded degradation) the concurrent makespan must additionally never
exceed the serial sum of solo times, strictly beating it whenever
queries actually overlapped.  Off-scale workloads only *report* the
speedup: greedy FIFO interleaving is subject to Graham scheduling
anomalies, so tiny workloads can lose a few percent to serial execution
and that is a measurement, not a bug.

``--online`` switches the scheduler to incremental schedule extension
(:meth:`~repro.serve.scheduler.QueryScheduler.run_online`): outcomes are
bit-identical to batch mode (asserted by ``bench/regress.py`` and
``tests/serve/test_online.py``), only the wall clock changes.
``--arrival-rate R`` spaces submissions ``1/R`` simulated seconds apart
to model an open arrival process.  ``--devices K`` shards the fleet —
per-device arenas and engines with a placement policy
(``--placement``, default least-loaded) choosing the device per
admission; ``--devices 1`` is bit-identical to the historical
single-device scheduler.

Run via the CLI (``python -m repro.bench serve --clients 16``, or
``... serve --clients 16 --devices 2 --online``) or call
:func:`run_serve` / :func:`sweep` from tests.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.errors import SchedulingError
from repro.serve.placement import LEAST_LOADED, registered_placement_policies
from repro.serve.scheduler import QueryScheduler, ServeReport
from repro.serve.workload import mixed_workload

#: Default offered-concurrency ladder for the sweep.
DEFAULT_CLIENTS = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class ServePoint:
    """One concurrency level's aggregated results."""

    clients: int
    makespan: float
    serial_makespan: float
    queries_per_second: float
    mean_latency: float
    p95_latency: float
    degraded: int
    peak_gb: float
    devices: int = 1

    @property
    def speedup(self) -> float:
        return self.serial_makespan / self.makespan if self.makespan > 0 else 0.0


def _has_cross_query_overlap(report: ServeReport) -> bool:
    """Did any two queries' tasks execute simultaneously?

    Batches whose admitted plans are all serial chains on the GPU queue
    (tiny workloads at small ``--scale``) cannot overlap at all; for
    them concurrent == serial is the correct result, not a failure.
    Queries on different fleet devices count as overlapping whenever
    their task windows intersect in time — that *is* the sharding win.
    """
    if report.schedule is None:
        return False
    items = sorted(
        (item.start, item.finish, name.split(":", 1)[0])
        for name, item in report.schedule.tasks.items()
        if item.finish > item.start
    )
    for i, (start, finish, qid) in enumerate(items):
        for other_start, _, other_qid in items[i + 1 :]:
            if other_start >= finish:
                break
            if other_qid != qid:
                return True
    return False


def verify_report(
    report: ServeReport, *, clients: int, check_serial: bool = True
) -> None:
    """The serving layer's hard guarantees; raises on violation.

    ``check_serial=False`` skips the serial-baseline comparison.  The
    comparison is only asserted for the canonical benchmark workload
    (default scale, batched arrivals, bounded degradation): eager
    degradation (``max_degradation=None``) trades the guarantee away
    for admission throughput, and off-scale workloads can lose a few
    percent to Graham scheduling anomalies of the greedy FIFO
    interleaving — reported as a sub-1.0x speedup rather than raised.
    """
    peaks = report.device_peak_bytes or (report.peak_reserved_bytes,)
    for device, peak in enumerate(peaks):
        if peak > report.capacity_bytes:
            raise SchedulingError(
                f"arena over-reserved on device {device}: peak {peak} > "
                f"capacity {report.capacity_bytes}"
            )
    for arena in report.arenas or ():
        arena.check_invariants()
        if not arena.drained:
            raise SchedulingError(
                f"device {arena.device} arena did not drain: "
                f"{sorted(arena.reservations)} still reserved"
            )
    if clients <= 1 or not check_serial:
        return
    # Concurrency may never lose to serial back-to-back execution
    # (submission-time-aware for staggered arrivals), and must strictly
    # win whenever queries actually ran side by side.
    serial = report.serial_makespan
    if report.makespan > serial * (1 + 1e-9):
        raise SchedulingError(
            f"concurrent makespan {report.makespan:.6f} s is worse than "
            f"serial back-to-back execution {serial:.6f} s at {clients} clients"
        )
    if _has_cross_query_overlap(report) and not report.makespan < serial:
        raise SchedulingError(
            f"queries overlapped yet concurrent makespan {report.makespan:.6f} s "
            f"did not beat serial execution {serial:.6f} s at {clients} clients"
        )


def fingerprint(report: ServeReport) -> list[tuple]:
    """Canonical per-query outcome fingerprint, used by every
    determinism and online-vs-batch equivalence check (here, in
    ``bench/regress.py`` and in ``tests/serve``).  Deliberately
    device-blind so recorded single-device golden schedules stay
    comparable; sharded checks add :func:`fingerprint_sharded`."""
    return [
        (o.qid, o.strategy, o.reserved_bytes, o.admit_at, o.finish_at)
        for o in report.outcomes
    ]


def fingerprint_sharded(report: ServeReport) -> list[tuple]:
    """:func:`fingerprint` plus the placement device per query — the
    fingerprint sharded determinism and online==batch checks compare."""
    return [
        (o.qid, o.device, o.strategy, o.reserved_bytes, o.admit_at, o.finish_at)
        for o in report.outcomes
    ]


def run_serve(
    clients: int,
    *,
    scale: float = 1.0,
    spacing_seconds: float = 0.0,
    online: bool = False,
    devices: int = 1,
    placement: str = LEAST_LOADED,
    scheduler: QueryScheduler | None = None,
    check_determinism: bool = True,
) -> ServeReport:
    """Schedule ``clients`` mixed queries and verify the guarantees.

    ``online=True`` runs the arrival-driven incremental-extension mode
    (:meth:`~repro.serve.scheduler.QueryScheduler.run_online`); the
    determinism re-run then also uses online mode, so the check guards
    the incremental path itself.  ``devices``/``placement`` shard the
    fleet (ignored when an explicit ``scheduler`` is passed).
    """
    requests = mixed_workload(clients, scale=scale, spacing_seconds=spacing_seconds)
    scheduler = scheduler or QueryScheduler(devices=devices, placement=placement)
    run = scheduler.run_online if online else scheduler.run
    report = run(requests)
    canonical = (
        scale == 1.0
        and spacing_seconds == 0.0
        and scheduler.max_degradation is not None
    )
    verify_report(report, clients=clients, check_serial=canonical)
    if check_determinism:
        fresh = QueryScheduler(
            scheduler.system, scheduler.calibration, scheduler.config,
            lanes=scheduler.lanes, max_degradation=scheduler.max_degradation,
            devices=scheduler.devices, placement=scheduler.placement,
        )
        rerun_fn = fresh.run_online if online else fresh.run
        rerun = rerun_fn(
            mixed_workload(clients, scale=scale, spacing_seconds=spacing_seconds)
        )
        if fingerprint_sharded(rerun) != fingerprint_sharded(report):
            raise SchedulingError(
                f"serve schedule is non-deterministic at {clients} clients "
                f"on {scheduler.devices} device(s)"
            )
    return report


def sweep(
    levels: tuple[int, ...] = DEFAULT_CLIENTS,
    *,
    scale: float = 1.0,
    spacing_seconds: float = 0.0,
    online: bool = False,
    devices: int = 1,
    placement: str = LEAST_LOADED,
    check_determinism: bool = True,
) -> list[ServePoint]:
    """Throughput/latency versus offered concurrency."""
    points: list[ServePoint] = []
    for clients in levels:
        report = run_serve(
            clients,
            scale=scale,
            spacing_seconds=spacing_seconds,
            online=online,
            devices=devices,
            placement=placement,
            check_determinism=check_determinism,
        )
        points.append(
            ServePoint(
                clients=clients,
                makespan=report.makespan,
                serial_makespan=report.serial_makespan,
                queries_per_second=report.queries_per_second,
                mean_latency=report.mean_latency,
                p95_latency=report.p95_latency,
                degraded=report.degraded_count,
                peak_gb=report.peak_reserved_bytes / 1e9,
                devices=report.devices,
            )
        )
    return points


def render_sweep(points: list[ServePoint]) -> str:
    sharded = any(p.devices > 1 for p in points)
    device_header = f" {'devs':>4s}" if sharded else ""
    lines = [
        f"{'clients':>7s}{device_header} {'q/s':>7s} {'makespan':>9s} "
        f"{'serial':>8s} {'speedup':>8s} {'mean lat':>9s} {'p95 lat':>8s} "
        f"{'degraded':>8s} {'peak GB':>8s}"
    ]
    for p in points:
        device_cell = f" {p.devices:4d}" if sharded else ""
        lines.append(
            f"{p.clients:7d}{device_cell} {p.queries_per_second:7.2f} "
            f"{p.makespan:8.3f}s "
            f"{p.serial_makespan:7.3f}s {p.speedup:7.2f}x {p.mean_latency:8.3f}s "
            f"{p.p95_latency:7.3f}s {p.degraded:8d} {p.peak_gb:8.2f}"
        )
    return "\n".join(lines)


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench serve",
        description="Multi-query GPU serving benchmark: queries/sec and "
        "latency versus offered concurrency on a simulated device fleet.",
    )
    parser.add_argument(
        "--clients",
        type=int,
        help="one concurrency level (prints the per-query schedule); "
        "omit to sweep the default ladder",
    )
    parser.add_argument(
        "--sweep",
        help="comma-separated concurrency levels (e.g. 1,4,16,64)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink workload cardinalities by this factor (default 1.0)",
    )
    parser.add_argument(
        "--spacing",
        type=float,
        default=0.0,
        help="seconds between query submissions (default 0: one batch)",
    )
    parser.add_argument(
        "--online",
        action="store_true",
        help="arrival-driven admission with incremental schedule "
        "extension (same outcomes as batch mode, lower wall clock)",
    )
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        metavar="R",
        help="offered arrival rate in queries per simulated second "
        "(submissions spaced 1/R apart; mutually exclusive with --spacing)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=1,
        metavar="K",
        help="shard the fleet across K simulated GPUs, each with its own "
        "memory arena and pipeline engine (default 1: the classic "
        "single-device scheduler, bit-identical to pre-sharding output)",
    )
    parser.add_argument(
        "--placement",
        default=LEAST_LOADED,
        choices=registered_placement_policies(),
        help="device-placement policy for --devices > 1 "
        f"(default {LEAST_LOADED})",
    )
    args = parser.parse_args(argv)

    if args.clients is not None and args.sweep:
        parser.error("--clients and --sweep are mutually exclusive")
    if args.clients is not None and args.clients <= 0:
        parser.error("--clients must be positive")
    if args.devices <= 0:
        parser.error("--devices must be positive")
    if args.arrival_rate is not None:
        if args.arrival_rate <= 0:
            parser.error("--arrival-rate must be positive")
        if args.spacing != 0.0:
            parser.error("--arrival-rate and --spacing are mutually exclusive")
        spacing = 1.0 / args.arrival_rate
    else:
        spacing = args.spacing

    canonical = args.scale == 1.0 and spacing == 0.0
    mode = "online (incremental extension)" if args.online else "batch"
    if args.devices > 1:
        mode += f", {args.devices} devices ({args.placement} placement)"

    if args.clients is not None:
        report = run_serve(
            args.clients,
            scale=args.scale,
            spacing_seconds=spacing,
            online=args.online,
            devices=args.devices,
            placement=args.placement,
        )
        print(f"admission mode: {mode}")
        print(report.render())
        if args.clients > 1 and canonical:
            print(
                "verified: deterministic, every arena within capacity and "
                "drained, concurrent no worse than serial (strictly "
                "better wherever queries overlapped)"
            )
        else:
            print("verified: deterministic, every arena within capacity and drained")
        return 0

    if args.sweep:
        try:
            levels = tuple(int(item) for item in args.sweep.split(","))
        except ValueError:
            parser.error(f"--sweep must be comma-separated integers: {args.sweep!r}")
        if any(level <= 0 for level in levels):
            parser.error("--sweep levels must be positive")
    else:
        levels = DEFAULT_CLIENTS
    points = sweep(
        levels,
        scale=args.scale,
        spacing_seconds=spacing,
        online=args.online,
        devices=args.devices,
        placement=args.placement,
    )
    print(f"admission mode: {mode}")
    print(render_sweep(points))
    if canonical:
        print(
            "verified: deterministic, every arena within capacity and "
            "drained, concurrent no worse than serial at every level "
            "(strictly better wherever queries overlapped)"
        )
    else:
        print("verified: deterministic, every arena within capacity and drained")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(serve_main())
