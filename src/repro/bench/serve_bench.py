"""Throughput benchmark for the multi-query serving layer.

Sweeps offered concurrency (1–64 clients) over the deterministic mixed
workload of :mod:`repro.serve.workload` and reports queries/second,
per-query latency, and the speedup of the concurrent schedule over
serial back-to-back execution.  Every run is verified: no device's
arena may ever over-reserve its memory, every arena must drain (all
reservations returned), and the schedule must be bit-identical across
repeated runs.  For the canonical workload (default scale, one batch,
bounded degradation) the concurrent makespan must additionally never
exceed the serial sum of solo times, strictly beating it whenever
queries actually overlapped.  Off-scale workloads only *report* the
speedup: greedy FIFO interleaving is subject to Graham scheduling
anomalies, so tiny workloads can lose a few percent to serial execution
and that is a measurement, not a bug.

``--online`` switches the scheduler to incremental schedule extension
(:meth:`~repro.serve.scheduler.QueryScheduler.run_online`): outcomes are
bit-identical to batch mode (asserted by ``bench/regress.py`` and
``tests/serve/test_online.py``), only the wall clock changes.
``--arrival-rate R`` spaces submissions ``1/R`` simulated seconds apart
to model an open arrival process.  ``--devices K`` shards the fleet —
per-device arenas and engines with a placement policy
(``--placement``, default least-loaded) choosing the device per
admission; ``--devices 1`` is bit-identical to the historical
single-device scheduler.

``--stream`` runs the steady-state streaming harness instead of the
concurrency sweep: ``--arrivals N`` open arrivals (default 100000) from
:func:`~repro.serve.workload.stream_workload` through
:meth:`~repro.serve.scheduler.QueryScheduler.run_stream`, with a
bounded wait queue (``--max-queue``), an optional admission-wait SLO
(``--slo``) and periodic schedule compaction (``--compact-every``).
The run is verified (:func:`verify_stream_report`): arenas drained and
within capacity, every arrival accounted for (completed + shed ==
arrivals), and the peak retained schedule bounded by a constant
multiple of the in-flight work — the compaction guarantee.  Results
land in ``BENCH_perf.json`` as ``serve_stream_*`` entries merged next
to the ``perf`` suite's records.

Heterogeneous fleets: ``--device-caps GB,GB,...`` and
``--device-calib NAME,NAME,...`` give each device its own memory
capacity and calibration preset
(:data:`~repro.gpusim.calibration.CALIBRATION_PRESETS`); entry counts
must match ``--devices``.  ``--steal`` enables the cross-device
work-stealing pass.  Heterogeneous and stealing runs skip the
serial-baseline assertion (the baseline assumes the default
calibration) and merge ``serve_hetero_*`` / ``serve_steal_*`` series
into ``BENCH_perf.json``.

Admission policies: ``--admission`` picks the wait-queue ordering
policy (:mod:`repro.serve.admission`; default ``fifo``, bit-identical
to the historical scheduler), ``--classes`` stamps the workload with
the canonical deadline-bearing service classes
(:data:`~repro.serve.workload.DEADLINE_CLASSES` cycled across three
tenants) and ``--deadline-scale`` stretches or squeezes their
deadlines.  Classed runs report per-class/per-tenant latency and
deadline-miss rates and merge ``serve_admission_*`` series (p50/p99
latency and deadline-miss rate per policy) into ``BENCH_perf.json``;
the serial-baseline assertion only applies to unclassed FIFO runs
(reordering trades makespan for latency/deadline goals by design).

Fault injection: ``--faults`` derives a deterministic
:class:`~repro.serve.faults.FaultPlan` from ``--fault-seed`` (device
crashes over the run's horizon, never the whole fleet, plus transient
admission failures in ``--clients`` mode) and replays the run through
the scheduler's recovery path under a ``--max-retries`` budget.
Faulted runs skip the serial-baseline assertion (losing devices is
allowed to cost makespan), verify conservation
(``completed + shed + failed == arrivals``) and drained arenas
instead, merge ``serve_faults_*`` series (failed rate, total retries,
mean recovery latency) into ``BENCH_perf.json``, and fail the process
when ``--max-failed-rate`` is exceeded — the CI chaos smoke bound.

Run via the CLI (``python -m repro.bench serve --clients 16``,
``... serve --clients 16 --devices 2 --online``,
``... serve --clients 64 --devices 2 --device-calib fast,slow``,
``... serve --stream --arrivals 100000 --devices 2``, or
``... serve --stream --arrivals 20000 --devices 2 --faults``) or call
:func:`run_serve` / :func:`sweep` / :func:`run_stream_bench` from
tests.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from dataclasses import asdict, dataclass

from repro.bench.perf_bench import PerfEntry
from repro.core import estimate_cache, learned_cost, sample_store
from repro.core.learned_cost import LearnedCostModel
from repro.core.sample_store import SampleStore
from repro.errors import SampleStoreError, SchedulingError
from repro.gpusim.calibration import (
    CALIBRATION_PRESETS,
    Calibration,
    calibration_preset,
)
from repro.serve.admission import FIFO, registered_admission_policies
from repro.serve.faults import FaultPlan
from repro.serve.placement import LEAST_LOADED, registered_placement_policies
from repro.serve.scheduler import QueryScheduler, ServeReport, StreamReport
from repro.serve.workload import (
    DEADLINE_CLASSES,
    classed_workload,
    mixed_workload,
    stream_workload,
)

#: Default offered-concurrency ladder for the sweep.
DEFAULT_CLIENTS = (1, 2, 4, 8, 16, 32, 64)

#: Defaults of the ``--stream`` harness.
DEFAULT_STREAM_ARRIVALS = 100_000
DEFAULT_STREAM_RATE = 200.0
DEFAULT_STREAM_QUEUE = 128
DEFAULT_STREAM_COMPACT = 256


@dataclass
class ServePoint:
    """One concurrency level's aggregated results."""

    clients: int
    makespan: float
    serial_makespan: float
    queries_per_second: float
    mean_latency: float
    p95_latency: float
    degraded: int
    peak_gb: float
    devices: int = 1
    p50_latency: float = 0.0
    p99_latency: float = 0.0
    stolen: int = 0

    @property
    def speedup(self) -> float:
        return self.serial_makespan / self.makespan if self.makespan > 0 else 0.0


def _has_cross_query_overlap(report: ServeReport) -> bool:
    """Did any two queries' tasks execute simultaneously?

    Batches whose admitted plans are all serial chains on the GPU queue
    (tiny workloads at small ``--scale``) cannot overlap at all; for
    them concurrent == serial is the correct result, not a failure.
    Queries on different fleet devices count as overlapping whenever
    their task windows intersect in time — that *is* the sharding win.
    """
    if report.schedule is None:
        return False
    items = sorted(
        (item.start, item.finish, name.split(":", 1)[0])
        for name, item in report.schedule.tasks.items()
        if item.finish > item.start
    )
    for i, (start, finish, qid) in enumerate(items):
        for other_start, _, other_qid in items[i + 1 :]:
            if other_start >= finish:
                break
            if other_qid != qid:
                return True
    return False


def verify_report(
    report: ServeReport, *, clients: int, check_serial: bool = True
) -> None:
    """The serving layer's hard guarantees; raises on violation.

    ``check_serial=False`` skips the serial-baseline comparison.  The
    comparison is only asserted for the canonical benchmark workload
    (default scale, batched arrivals, bounded degradation): eager
    degradation (``max_degradation=None``) trades the guarantee away
    for admission throughput, and off-scale workloads can lose a few
    percent to Graham scheduling anomalies of the greedy FIFO
    interleaving — reported as a sub-1.0x speedup rather than raised.
    """
    peaks = report.device_peak_bytes or (report.peak_reserved_bytes,)
    capacities = report.device_capacity_bytes or tuple(
        [report.capacity_bytes] * len(peaks)
    )
    for device, (peak, cap) in enumerate(zip(peaks, capacities)):
        if peak > cap:
            raise SchedulingError(
                f"arena over-reserved on device {device}: peak {peak} > "
                f"capacity {cap}"
            )
    for arena in report.arenas or ():
        arena.check_invariants()
        if not arena.drained:
            raise SchedulingError(
                f"device {arena.device} arena did not drain: "
                f"{sorted(arena.reservations)} still reserved"
            )
    if clients <= 1 or not check_serial:
        return
    # Concurrency may never lose to serial back-to-back execution
    # (submission-time-aware for staggered arrivals), and must strictly
    # win whenever queries actually ran side by side.
    serial = report.serial_makespan
    if report.makespan > serial * (1 + 1e-9):
        raise SchedulingError(
            f"concurrent makespan {report.makespan:.6f} s is worse than "
            f"serial back-to-back execution {serial:.6f} s at {clients} clients"
        )
    if _has_cross_query_overlap(report) and not report.makespan < serial:
        raise SchedulingError(
            f"queries overlapped yet concurrent makespan {report.makespan:.6f} s "
            f"did not beat serial execution {serial:.6f} s at {clients} clients"
        )


def fingerprint(report: ServeReport) -> list[tuple]:
    """Canonical per-query outcome fingerprint, used by every
    determinism and online-vs-batch equivalence check (here, in
    ``bench/regress.py`` and in ``tests/serve``).  Deliberately
    device-blind so recorded single-device golden schedules stay
    comparable; sharded checks add :func:`fingerprint_sharded`."""
    return [
        (o.qid, o.strategy, o.reserved_bytes, o.admit_at, o.finish_at)
        for o in report.outcomes
    ]


def fingerprint_sharded(report: ServeReport) -> list[tuple]:
    """:func:`fingerprint` plus the placement device per query — the
    fingerprint sharded determinism and online==batch checks compare."""
    return [
        (o.qid, o.device, o.strategy, o.reserved_bytes, o.admit_at, o.finish_at)
        for o in report.outcomes
    ]


def run_serve(
    clients: int,
    *,
    scale: float = 1.0,
    spacing_seconds: float = 0.0,
    online: bool = False,
    devices: int = 1,
    placement: str = LEAST_LOADED,
    device_capacities: list[int] | None = None,
    device_calibrations: "list[Calibration | None] | None" = None,
    steal: bool = False,
    faults: FaultPlan | None = None,
    max_retries: int = 3,
    admission: str = FIFO,
    classes: bool = False,
    deadline_scale: float = 1.0,
    learned: bool = False,
    scheduler: QueryScheduler | None = None,
    check_determinism: bool = True,
) -> ServeReport:
    """Schedule ``clients`` mixed queries and verify the guarantees.

    ``online=True`` runs the arrival-driven incremental-extension mode
    (:meth:`~repro.serve.scheduler.QueryScheduler.run_online`); the
    determinism re-run then also uses online mode, so the check guards
    the incremental path itself.  ``devices``/``placement`` and the
    heterogeneity knobs (``device_capacities`` / ``device_calibrations``
    / ``steal``) shard and diversify the fleet (ignored when an
    explicit ``scheduler`` is passed).  Heterogeneous and stealing runs
    skip the serial-baseline assertion: the serial baseline assumes
    solo runs on a default-calibration device, which a slower fleet is
    allowed to lose to.  ``faults`` replays the run through the
    fault-injection path (also skipping the serial baseline — losing a
    device mid-run may cost makespan); faulted runs are still
    deterministic, so the re-run check holds for them too.
    ``admission`` picks the wait-queue ordering policy and ``classes``
    swaps in the deadline-classed canonical workload
    (:func:`~repro.serve.workload.classed_workload`, deadlines scaled
    by ``deadline_scale``); reordering policies and classed workloads
    skip the serial-baseline assertion — admission order trades
    makespan for latency/deadline goals on purpose.  ``learned=True``
    serves under the opt-in learned cost-model fast path (a fitted
    model must be installed via ``learned_cost.set_model``); learned
    runs skip the serial-baseline assertion — the learned planner may
    pick a different rung than solo analytic planning — but are still
    deterministic and arena-verified.
    """

    def workload():
        if classes:
            return classed_workload(
                clients,
                scale=scale,
                spacing_seconds=spacing_seconds,
                deadline_scale=deadline_scale,
            )
        return mixed_workload(
            clients, scale=scale, spacing_seconds=spacing_seconds
        )

    requests = workload()
    scheduler = scheduler or QueryScheduler(
        devices=devices,
        placement=placement,
        device_capacities=device_capacities,
        device_calibrations=device_calibrations,
        steal=steal,
        max_retries=max_retries,
        admission=admission,
        learned=learned,
    )
    faulted = faults is not None and not faults.is_empty
    run = scheduler.run_online if online else scheduler.run
    report = run(requests, faults=faults)
    canonical = (
        scale == 1.0
        and spacing_seconds == 0.0
        and scheduler.max_degradation is not None
        and scheduler.device_calibrations is None
        and not scheduler.steal
        and not faulted
        and scheduler.admission == FIFO
        and not classes
        and not scheduler.learned
    )
    verify_report(report, clients=clients, check_serial=canonical)
    if check_determinism:
        fresh = QueryScheduler(
            scheduler.system, scheduler.calibration, scheduler.config,
            lanes=scheduler.lanes, max_degradation=scheduler.max_degradation,
            devices=scheduler.devices, placement=scheduler.placement,
            device_capacities=scheduler.device_capacities,
            device_calibrations=scheduler.device_calibrations,
            steal=scheduler.steal,
            max_retries=scheduler.max_retries,
            admission=scheduler.admission,
            learned=scheduler.learned,
        )
        rerun_fn = fresh.run_online if online else fresh.run
        rerun = rerun_fn(workload(), faults=faults)
        if fingerprint_sharded(rerun) != fingerprint_sharded(report):
            raise SchedulingError(
                f"serve schedule is non-deterministic at {clients} clients "
                f"on {scheduler.devices} device(s)"
            )
        if rerun.failed != report.failed:
            raise SchedulingError(
                f"faulted serve failures are non-deterministic at "
                f"{clients} clients on {scheduler.devices} device(s)"
            )
    return report


def sweep(
    levels: tuple[int, ...] = DEFAULT_CLIENTS,
    *,
    scale: float = 1.0,
    spacing_seconds: float = 0.0,
    online: bool = False,
    devices: int = 1,
    placement: str = LEAST_LOADED,
    device_capacities: list[int] | None = None,
    device_calibrations: "list[Calibration | None] | None" = None,
    steal: bool = False,
    admission: str = FIFO,
    classes: bool = False,
    deadline_scale: float = 1.0,
    learned: bool = False,
    check_determinism: bool = True,
) -> list[ServePoint]:
    """Throughput/latency versus offered concurrency."""
    points: list[ServePoint] = []
    for clients in levels:
        report = run_serve(
            clients,
            scale=scale,
            spacing_seconds=spacing_seconds,
            online=online,
            devices=devices,
            placement=placement,
            device_capacities=device_capacities,
            device_calibrations=device_calibrations,
            steal=steal,
            admission=admission,
            classes=classes,
            deadline_scale=deadline_scale,
            learned=learned,
            check_determinism=check_determinism,
        )
        points.append(
            ServePoint(
                clients=clients,
                makespan=report.makespan,
                serial_makespan=report.serial_makespan,
                queries_per_second=report.queries_per_second,
                mean_latency=report.mean_latency,
                p95_latency=report.p95_latency,
                degraded=report.degraded_count,
                peak_gb=report.peak_reserved_bytes / 1e9,
                devices=report.devices,
                p50_latency=report.p50_latency,
                p99_latency=report.p99_latency,
                stolen=report.stolen_count,
            )
        )
    return points


def render_sweep(points: list[ServePoint]) -> str:
    sharded = any(p.devices > 1 for p in points)
    stealing = any(p.stolen > 0 for p in points)
    device_header = f" {'devs':>4s}" if sharded else ""
    stolen_header = f" {'stolen':>6s}" if stealing else ""
    lines = [
        f"{'clients':>7s}{device_header} {'q/s':>7s} {'makespan':>9s} "
        f"{'serial':>8s} {'speedup':>8s} {'mean lat':>9s} {'p50 lat':>8s} "
        f"{'p95 lat':>8s} {'p99 lat':>8s} {'degraded':>8s}{stolen_header} "
        f"{'peak GB':>8s}"
    ]
    for p in points:
        device_cell = f" {p.devices:4d}" if sharded else ""
        stolen_cell = f" {p.stolen:6d}" if stealing else ""
        lines.append(
            f"{p.clients:7d}{device_cell} {p.queries_per_second:7.2f} "
            f"{p.makespan:8.3f}s "
            f"{p.serial_makespan:7.3f}s {p.speedup:7.2f}x {p.mean_latency:8.3f}s "
            f"{p.p50_latency:7.3f}s {p.p95_latency:7.3f}s {p.p99_latency:7.3f}s "
            f"{p.degraded:8d}{stolen_cell} {p.peak_gb:8.2f}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Streaming harness
# ---------------------------------------------------------------------------
def verify_stream_report(
    report: StreamReport, *, compact_every: int | None
) -> None:
    """The streaming run's hard guarantees; raises on violation.

    Arena invariants match :func:`verify_report`; on top of those,
    every arrival must be accounted for (completed + shed == arrivals,
    shedding is never silent) and, when compaction ran, the peak
    retained schedule must stay within ``peak_inflight_tasks +
    compact_every * max_tasks_per_query`` — at most ``compact_every - 1``
    released-but-unretired queries of at most ``max_tasks_per_query``
    tasks each can sit between sweeps, so a violation means compaction
    stopped bounding memory.
    """
    stream_caps = report.device_capacity_bytes or tuple(
        [report.capacity_bytes] * len(report.device_peak_bytes)
    )
    for device, (peak, cap) in enumerate(
        zip(report.device_peak_bytes, stream_caps)
    ):
        if peak > cap:
            raise SchedulingError(
                f"arena over-reserved on device {device}: peak {peak} > "
                f"capacity {cap}"
            )
    for arena in report.arenas or ():
        arena.check_invariants()
        if not arena.drained:
            raise SchedulingError(
                f"device {arena.device} arena did not drain: "
                f"{sorted(arena.reservations)} still reserved"
            )
    if (
        report.completed + report.shed_count + report.failed_count
        != report.arrivals
    ):
        raise SchedulingError(
            f"stream lost arrivals: {report.completed} completed + "
            f"{report.shed_count} shed + {report.failed_count} failed "
            f"!= {report.arrivals} arrivals"
        )
    if compact_every is not None:
        bound = (
            report.peak_inflight_tasks
            + compact_every * report.max_tasks_per_query
        )
        if report.peak_retained_tasks > bound:
            raise SchedulingError(
                f"retained schedule not bounded by in-flight work: peak "
                f"{report.peak_retained_tasks} tasks > "
                f"{report.peak_inflight_tasks} in-flight + "
                f"{compact_every} x {report.max_tasks_per_query} per query "
                f"= {bound}"
            )


def run_stream_bench(
    arrivals: int = DEFAULT_STREAM_ARRIVALS,
    *,
    arrival_rate: float = DEFAULT_STREAM_RATE,
    devices: int = 1,
    placement: str = LEAST_LOADED,
    max_queue_depth: int | None = DEFAULT_STREAM_QUEUE,
    slo_wait_seconds: float | None = None,
    compact_every: int | None = DEFAULT_STREAM_COMPACT,
    device_capacities: list[int] | None = None,
    device_calibrations: "list[Calibration | None] | None" = None,
    steal: bool = False,
    faults: FaultPlan | None = None,
    max_retries: int = 3,
    admission: str = FIFO,
    classes: bool = False,
    deadline_scale: float = 1.0,
    learned: bool = False,
    seed: int = 0,
) -> tuple[StreamReport, float]:
    """Run the steady-state streaming benchmark; returns (verified
    report, wall seconds).  The workload generator is lazy and the
    retained schedule is compacted, so memory stays O(in-flight) even
    at 10^5+ arrivals.  ``faults`` injects the plan's device crashes
    mid-stream; verification then checks the three-way conservation
    (``completed + shed + failed == arrivals``) instead of the two-way
    one.  ``admission`` picks the wait-queue ordering policy;
    ``classes`` stamps arrivals with the canonical deadline classes
    (same specs and arrival times — only the service contracts change),
    enabling deadline-expiry shedding and per-class reporting."""
    scheduler = QueryScheduler(
        devices=devices,
        placement=placement,
        device_capacities=device_capacities,
        device_calibrations=device_calibrations,
        steal=steal,
        max_retries=max_retries,
        admission=admission,
        learned=learned,
    )
    start = time.perf_counter()
    report = scheduler.run_stream(
        stream_workload(
            arrivals,
            arrival_rate=arrival_rate,
            seed=seed,
            classes=DEADLINE_CLASSES if classes else None,
            deadline_scale=deadline_scale,
        ),
        max_queue_depth=max_queue_depth,
        slo_wait_seconds=slo_wait_seconds,
        compact_every=compact_every,
        faults=faults,
    )
    wall = time.perf_counter() - start
    verify_stream_report(report, compact_every=compact_every)
    return report, wall


def stream_perf_entries(
    report: StreamReport, wall: float, *, arrivals: int, devices: int
) -> dict[str, PerfEntry]:
    """``serve_stream_*`` records in ``BENCH_perf.json``'s uniform
    ``{wall_seconds, ops_per_sec, n}`` schema.  ``wall_seconds`` always
    carries the metric's natural per-item value (wall seconds per
    arrival, simulated seconds of latency, shed fraction, queue depth);
    ``ops_per_sec`` its rate form where one exists, else 0; ``n`` the
    population the metric aggregates."""
    tag = f"[{arrivals}x{devices}]"
    completed = max(report.completed, 1)

    def entry(value: float, rate: float, n: int) -> PerfEntry:
        return PerfEntry(wall_seconds=value, ops_per_sec=rate, n=max(n, 1))

    return {
        f"serve_stream_wall{tag}": entry(
            wall / max(report.arrivals, 1),
            report.arrivals / wall if wall > 0 else 0.0,
            report.arrivals,
        ),
        f"serve_stream_sustained_qps{tag}": entry(
            report.makespan / completed, report.sustained_qps, report.completed
        ),
        f"serve_stream_p50_latency{tag}": entry(
            report.p50_latency,
            1.0 / report.p50_latency if report.p50_latency > 0 else 0.0,
            report.completed,
        ),
        f"serve_stream_p99_latency{tag}": entry(
            report.p99_latency,
            1.0 / report.p99_latency if report.p99_latency > 0 else 0.0,
            report.completed,
        ),
        f"serve_stream_shed_rate{tag}": entry(
            report.shed_rate,
            report.shed_count / report.makespan if report.makespan > 0 else 0.0,
            report.arrivals,
        ),
        f"serve_stream_queue_p50{tag}": entry(
            report.queue_depth_percentile(0.50), 0.0, report.arrivals
        ),
        f"serve_stream_queue_p99{tag}": entry(
            report.queue_depth_percentile(0.99), 0.0, report.arrivals
        ),
    }


def admission_perf_entries(
    report: "ServeReport | StreamReport",
    *,
    policy: str,
    clients: int,
    devices: int,
) -> dict[str, PerfEntry]:
    """``serve_admission_*`` records for policy-classed serve runs, in
    ``BENCH_perf.json``'s uniform ``{wall_seconds, ops_per_sec, n}``
    schema.  Per policy: ``*_p50``/``*_p99`` carry the latency
    percentiles (rate form: completions per second at that latency) and
    ``*_miss_rate`` the deadline-miss rate — misses (plus streaming
    deadline-expiry sheds) over every deadline-bearing query that
    reached a terminal state.  Duck-typed over batch and stream
    reports."""
    tag = f"[{clients}x{devices}]"
    completed = max(len(report.outcomes), 1)
    p50 = report.p50_latency
    p99 = report.p99_latency
    miss = report.deadline_miss_rate
    deadline_total = report.deadline_count + getattr(
        report, "deadline_expired_count", 0
    )
    return {
        f"serve_admission_{policy}_p50{tag}": PerfEntry(
            wall_seconds=p50,
            ops_per_sec=1.0 / p50 if p50 > 0 else 0.0,
            n=completed,
        ),
        f"serve_admission_{policy}_p99{tag}": PerfEntry(
            wall_seconds=p99,
            ops_per_sec=1.0 / p99 if p99 > 0 else 0.0,
            n=completed,
        ),
        f"serve_admission_{policy}_miss_rate{tag}": PerfEntry(
            wall_seconds=miss,
            ops_per_sec=(
                miss * deadline_total / report.makespan
                if report.makespan > 0
                else 0.0
            ),
            n=max(deadline_total, 1),
        ),
    }


def hetero_perf_entries(
    report: ServeReport,
    wall: float,
    *,
    clients: int,
    steal: bool,
) -> dict[str, PerfEntry]:
    """``serve_hetero_*`` / ``serve_steal_*`` records for heterogeneous
    and work-stealing serve runs, in ``BENCH_perf.json``'s uniform
    ``{wall_seconds, ops_per_sec, n}`` schema.  ``*_wall`` carries the
    bench wall clock per query, ``*_makespan`` the simulated makespan
    per query (rate form: completed queries per simulated second), and
    with stealing on, ``serve_steal_stolen`` the stolen-admission count
    of the run."""
    prefix = "serve_steal" if steal else "serve_hetero"
    tag = f"[{clients}x{report.devices}]"
    n = max(len(report.outcomes), 1)
    entries = {
        f"{prefix}_wall{tag}": PerfEntry(
            wall_seconds=wall / n,
            ops_per_sec=n / wall if wall > 0 else 0.0,
            n=n,
        ),
        f"{prefix}_makespan{tag}": PerfEntry(
            wall_seconds=report.makespan / n,
            ops_per_sec=report.queries_per_second,
            n=n,
        ),
    }
    if steal:
        entries[f"serve_steal_stolen{tag}"] = PerfEntry(
            wall_seconds=float(report.stolen_count),
            ops_per_sec=(
                report.stolen_count / report.makespan
                if report.makespan > 0
                else 0.0
            ),
            n=n,
        )
    return entries


def fault_perf_entries(
    report: "ServeReport | StreamReport",
    *,
    arrivals: int,
    devices: int,
) -> dict[str, PerfEntry]:
    """``serve_faults_*`` records for fault-injected runs, in
    ``BENCH_perf.json``'s uniform ``{wall_seconds, ops_per_sec, n}``
    schema.  ``failed_rate`` carries the fraction of arrivals the run
    gave up on (rate form: failures per simulated second);
    ``retries`` the total re-admission attempts charged across
    completed *and* failed queries; ``recovery_latency`` the mean
    submit-to-finish latency of queries that completed only after at
    least one retry (0 when nothing was retried).  Duck-typed over
    batch and stream reports."""
    tag = f"[{arrivals}x{devices}]"
    completed = list(report.outcomes)
    failed = list(report.failed)
    retried = [o for o in completed if o.retries]
    total_retries = sum(o.retries for o in completed) + sum(
        f.attempts for f in failed
    )
    makespan = report.makespan
    recovery = [o.finish_at - o.submit_at for o in retried]
    mean_recovery = sum(recovery) / len(recovery) if recovery else 0.0
    return {
        f"serve_faults_failed_rate{tag}": PerfEntry(
            wall_seconds=len(failed) / arrivals if arrivals else 0.0,
            ops_per_sec=len(failed) / makespan if makespan > 0 else 0.0,
            n=max(arrivals, 1),
        ),
        f"serve_faults_retries{tag}": PerfEntry(
            wall_seconds=float(total_retries),
            ops_per_sec=total_retries / makespan if makespan > 0 else 0.0,
            n=max(len(completed) + len(failed), 1),
        ),
        f"serve_faults_recovery_latency{tag}": PerfEntry(
            wall_seconds=mean_recovery,
            ops_per_sec=1.0 / mean_recovery if mean_recovery > 0 else 0.0,
            n=max(len(retried), 1),
        ),
    }


def merge_perf_json(entries: dict[str, PerfEntry], path: str) -> None:
    """Merge entries into an existing ``BENCH_perf.json`` (the ``perf``
    suite owns the file; the stream harness adds its series without
    clobbering the micro-benchmarks)."""
    payload: dict = {}
    if os.path.exists(path):
        with open(path) as handle:
            payload = json.load(handle)
    payload.update({name: asdict(entry) for name, entry in entries.items()})
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
        handle.write("\n")


def parse_device_caps(text: str | None, devices: int) -> list[int] | None:
    """Parse ``--device-caps`` (comma-separated GB) into bytes.

    Raises :class:`ValueError` naming the flag on malformed numbers,
    non-positive entries, or an entry count that does not match
    ``--devices``.
    """
    if text is None:
        return None
    parts = [part.strip() for part in text.split(",")]
    try:
        caps_gb = [float(part) for part in parts]
    except ValueError:
        raise ValueError(
            f"--device-caps must be comma-separated numbers (GB), got "
            f"{text!r}"
        ) from None
    if len(caps_gb) != devices:
        raise ValueError(
            f"--device-caps has {len(caps_gb)} entries but --devices is "
            f"{devices}; give one capacity per device"
        )
    if any(cap <= 0 for cap in caps_gb):
        raise ValueError(
            f"--device-caps entries must be positive GB, got {text!r}"
        )
    return [int(cap * 1e9) for cap in caps_gb]


def parse_device_calib(
    text: str | None, devices: int
) -> "list[Calibration | None] | None":
    """Parse ``--device-calib`` (comma-separated preset names).

    Raises :class:`ValueError` naming the flag on an unknown preset or
    an entry count that does not match ``--devices``.
    """
    if text is None:
        return None
    names = [part.strip() for part in text.split(",")]
    if len(names) != devices:
        raise ValueError(
            f"--device-calib has {len(names)} entries but --devices is "
            f"{devices}; give one preset per device"
        )
    try:
        return [calibration_preset(name) for name in names]
    except ValueError as exc:
        raise ValueError(f"--device-calib: {exc}") from None


def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench serve",
        description="Multi-query GPU serving benchmark: queries/sec and "
        "latency versus offered concurrency on a simulated device fleet.",
    )
    parser.add_argument(
        "--clients",
        type=int,
        help="one concurrency level (prints the per-query schedule); "
        "omit to sweep the default ladder",
    )
    parser.add_argument(
        "--sweep",
        help="comma-separated concurrency levels (e.g. 1,4,16,64)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="shrink workload cardinalities by this factor (default 1.0)",
    )
    parser.add_argument(
        "--spacing",
        type=float,
        default=0.0,
        help="seconds between query submissions (default 0: one batch)",
    )
    parser.add_argument(
        "--online",
        action="store_true",
        help="arrival-driven admission with incremental schedule "
        "extension (same outcomes as batch mode, lower wall clock)",
    )
    parser.add_argument(
        "--arrival-rate",
        type=float,
        default=None,
        metavar="R",
        help="offered arrival rate in queries per simulated second "
        "(submissions spaced 1/R apart; mutually exclusive with --spacing)",
    )
    parser.add_argument(
        "--devices",
        type=int,
        default=1,
        metavar="K",
        help="shard the fleet across K simulated GPUs, each with its own "
        "memory arena and pipeline engine (default 1: the classic "
        "single-device scheduler, bit-identical to pre-sharding output)",
    )
    parser.add_argument(
        "--placement",
        default=LEAST_LOADED,
        choices=registered_placement_policies(),
        help="device-placement policy for --devices > 1 "
        f"(default {LEAST_LOADED})",
    )
    parser.add_argument(
        "--device-caps",
        default=None,
        metavar="GB,GB,...",
        help="per-device memory capacities in GB, comma-separated; "
        "entry count must match --devices (default: every device gets "
        "the system's device memory)",
    )
    parser.add_argument(
        "--device-calib",
        default=None,
        metavar="NAME,NAME,...",
        help="per-device calibration presets, comma-separated "
        f"({', '.join(CALIBRATION_PRESETS)}); entry count must match "
        "--devices (default: the paper calibration on every device)",
    )
    parser.add_argument(
        "--steal",
        action="store_true",
        help="enable cross-device work stealing: an idle device may "
        "pull the best waiting query past a blocked FIFO head",
    )
    parser.add_argument(
        "--admission",
        default=FIFO,
        choices=registered_admission_policies(),
        help="wait-queue admission policy "
        f"(default {FIFO}, bit-identical to the historical scheduler)",
    )
    parser.add_argument(
        "--classes",
        action="store_true",
        help="stamp the workload with the canonical deadline-bearing "
        "service classes (interactive/standard/batch across three "
        "tenants): per-class latency and deadline-miss reporting, "
        "streaming deadline-expiry shedding, and serve_admission_* "
        "series in BENCH_perf.json",
    )
    parser.add_argument(
        "--deadline-scale",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="multiply every class deadline by this factor "
        "(default 1.0; smaller = tighter SLOs)",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="steady-state streaming harness: bounded-queue admission "
        "with load shedding and schedule compaction over --arrivals "
        "open arrivals (results merged into BENCH_perf.json)",
    )
    parser.add_argument(
        "--arrivals",
        type=int,
        default=DEFAULT_STREAM_ARRIVALS,
        help=f"stream length for --stream (default {DEFAULT_STREAM_ARRIVALS})",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=DEFAULT_STREAM_QUEUE,
        metavar="N",
        help="wait-queue depth cap for --stream; arrivals beyond it are "
        f"shed (default {DEFAULT_STREAM_QUEUE}; 0 = unbounded)",
    )
    parser.add_argument(
        "--slo",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fleet-wide admission-wait SLO for --stream (simulated "
        "seconds); arrivals whose estimated wait exceeds it are shed "
        "(default: no SLO)",
    )
    parser.add_argument(
        "--compact-every",
        type=int,
        default=DEFAULT_STREAM_COMPACT,
        metavar="N",
        help="compact every device schedule after N releases "
        f"(default {DEFAULT_STREAM_COMPACT}; 0 disables compaction)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="stream workload seed (default 0)",
    )
    parser.add_argument(
        "--faults",
        action="store_true",
        help="inject a deterministic crash-failure plan (derived from "
        "--fault-seed) and run recovery: lost queries retry on "
        "surviving devices, exhausted/stranded ones are recorded as "
        "failed; at least one device always survives",
    )
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="SEED",
        help="seed the fault plan is derived from (default 0; same "
        "seed, same crashes)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=3,
        metavar="N",
        help="per-query retry budget for fault recovery (default 3)",
    )
    parser.add_argument(
        "--max-failed-rate",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail when the fraction of arrivals that ended failed "
        "exceeds this bound (fault-injected runs)",
    )
    parser.add_argument(
        "--max-wall",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fail when the --stream run exceeds this wall-clock time",
    )
    parser.add_argument(
        "--max-shed-rate",
        type=float,
        default=None,
        metavar="FRACTION",
        help="fail when the --stream shed rate exceeds this fraction",
    )
    parser.add_argument(
        "--sample-store",
        default=None,
        metavar="PATH",
        help="persistent kernel-sample store: record every estimate of "
        "this run into PATH (append-only JSONL, created on first use) "
        "and warm-start the estimate/plan/ladder caches from it — "
        "warm runs make bit-identical decisions to cold ones",
    )
    parser.add_argument(
        "--learned",
        action="store_true",
        help="serve under the learned cost-model fast path: fit a "
        "per-strategy regression from --sample-store and let the "
        "planner rank feasible ladder rungs by predicted runtime "
        "(approximate by design; skips the serial-baseline assertion, "
        "keeps determinism and every arena invariant)",
    )
    parser.add_argument(
        "--out",
        default="BENCH_perf.json",
        help="JSON path the --stream series merge into "
        "(default BENCH_perf.json); '-' skips writing",
    )
    args = parser.parse_args(argv)

    if args.clients is not None and args.sweep:
        parser.error("--clients and --sweep are mutually exclusive")
    if args.clients is not None and args.clients <= 0:
        parser.error("--clients must be positive")
    if args.devices <= 0:
        parser.error("--devices must be positive")
    if args.stream and (args.clients is not None or args.sweep):
        parser.error("--stream and --clients/--sweep are mutually exclusive")
    if args.arrivals <= 0:
        parser.error("--arrivals must be positive")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.faults and not args.stream and args.clients is None:
        parser.error("--faults needs --clients or --stream")
    if args.faults and args.devices < 2:
        parser.error(
            "--faults needs --devices >= 2: at least one device must "
            "survive the crash plan"
        )
    if args.deadline_scale <= 0:
        parser.error("--deadline-scale must be positive")
    if args.arrival_rate is not None:
        if args.arrival_rate <= 0:
            parser.error("--arrival-rate must be positive")
        if args.spacing != 0.0:
            parser.error("--arrival-rate and --spacing are mutually exclusive")
        spacing = 1.0 / args.arrival_rate
    else:
        spacing = args.spacing
    try:
        device_capacities = parse_device_caps(args.device_caps, args.devices)
        device_calibrations = parse_device_calib(
            args.device_calib, args.devices
        )
    except ValueError as exc:
        parser.error(str(exc))
    hetero = device_capacities is not None or device_calibrations is not None
    if args.learned and not args.sample_store:
        parser.error(
            "--learned needs --sample-store: the regression is fit from "
            "recorded kernel samples"
        )

    store = None
    if args.sample_store:
        try:
            store = SampleStore.open(args.sample_store)
        except SampleStoreError as exc:
            parser.error(str(exc))
    try:
        if store is not None:
            # Record every estimate of this run, and serve cache misses
            # from entries earlier processes persisted.
            sample_store.attach(store)
            estimate_cache.attach_store(store)
            print(f"sample store: {store.summary()}")
        if args.learned:
            model = LearnedCostModel.fit(store)
            learned_cost.set_model(model)
            print(model.summary())
        return _serve_dispatch(
            parser, args, spacing, device_capacities, device_calibrations,
            hetero,
        )
    finally:
        if args.learned:
            learned_cost.clear_model()
        if store is not None:
            sample_store.detach()
            estimate_cache.detach_store()
            written = store.flush()
            print(
                f"sample store {args.sample_store}: {written} new "
                f"record(s) appended"
            )


def _serve_dispatch(
    parser: argparse.ArgumentParser,
    args: argparse.Namespace,
    spacing: float,
    device_capacities: list[int] | None,
    device_calibrations: "list[Calibration | None] | None",
    hetero: bool,
) -> int:
    if args.stream:
        rate = args.arrival_rate if args.arrival_rate else DEFAULT_STREAM_RATE
        max_queue = args.max_queue if args.max_queue > 0 else None
        compact_every = args.compact_every if args.compact_every > 0 else None
        fault_plan = None
        if args.faults:
            # Crashes land anywhere inside the arrival window; the plan
            # always spares at least one device so the stream keeps
            # completing after the losses.
            fault_plan = FaultPlan.random(
                args.fault_seed,
                devices=args.devices,
                horizon=args.arrivals / rate,
                allow_total_loss=False,
            )
        report, wall = run_stream_bench(
            args.arrivals,
            arrival_rate=rate,
            devices=args.devices,
            placement=args.placement,
            max_queue_depth=max_queue,
            slo_wait_seconds=args.slo,
            compact_every=compact_every,
            device_capacities=device_capacities,
            device_calibrations=device_calibrations,
            steal=args.steal,
            faults=fault_plan,
            max_retries=args.max_retries,
            admission=args.admission,
            classes=args.classes,
            deadline_scale=args.deadline_scale,
            learned=args.learned,
            seed=args.seed,
        )
        classed_note = (
            f", {args.admission} admission over classed arrivals"
            if args.classes or args.admission != FIFO
            else ""
        )
        print(
            f"streaming admission: {args.arrivals} arrivals at {rate:g}/s "
            f"on {args.devices} device(s) ({args.placement} placement"
            f"{classed_note})"
        )
        if fault_plan is not None:
            crashes = ", ".join(
                f"device {c.device} at t={c.at:.3f}s"
                for c in fault_plan.crashes
            ) or "no crashes drawn"
            print(
                f"fault injection: seed {args.fault_seed}, {crashes}; "
                f"retry budget {args.max_retries}"
            )
        print(report.render())
        print(
            f"wall {wall:.2f} s ({args.arrivals / wall:.0f} arrivals/s "
            "processed)"
        )
        if fault_plan is not None:
            print(
                "verified: every arena within capacity and drained "
                "(crash reservations reconciled), completed + shed + "
                "failed == arrivals, retained schedule bounded by "
                "in-flight work"
            )
        else:
            print(
                "verified: every arena within capacity and drained, all "
                "arrivals accounted for, retained schedule bounded by "
                "in-flight work"
            )
        if args.out != "-":
            entries = stream_perf_entries(
                report, wall, arrivals=args.arrivals, devices=args.devices
            )
            merged = "serve_stream_*"
            if fault_plan is not None:
                entries.update(
                    fault_perf_entries(
                        report, arrivals=args.arrivals, devices=args.devices
                    )
                )
                merged += " and serve_faults_*"
            if args.classes:
                entries.update(
                    admission_perf_entries(
                        report,
                        policy=args.admission,
                        clients=args.arrivals,
                        devices=args.devices,
                    )
                )
                merged += " and serve_admission_*"
            merge_perf_json(entries, args.out)
            print(f"{merged} series merged into {args.out}")
        failed = False
        if args.max_wall is not None and wall > args.max_wall:
            print(
                f"FAIL: stream wall {wall:.2f} s exceeds ceiling "
                f"{args.max_wall:.2f} s"
            )
            failed = True
        if (
            args.max_shed_rate is not None
            and report.shed_rate > args.max_shed_rate
        ):
            print(
                f"FAIL: shed rate {report.shed_rate:.3f} exceeds bound "
                f"{args.max_shed_rate:.3f}"
            )
            failed = True
        if (
            args.max_failed_rate is not None
            and report.failed_rate > args.max_failed_rate
        ):
            print(
                f"FAIL: failed rate {report.failed_rate:.3f} exceeds "
                f"bound {args.max_failed_rate:.3f}"
            )
            failed = True
        return 1 if failed else 0

    canonical = (
        args.scale == 1.0
        and spacing == 0.0
        and not hetero
        and not args.steal
        and not args.faults
        and args.admission == FIFO
        and not args.classes
        and not args.learned
    )
    mode = "online (incremental extension)" if args.online else "batch"
    if args.devices > 1:
        mode += f", {args.devices} devices ({args.placement} placement)"
    if args.admission != FIFO:
        mode += f", {args.admission} admission"
    if args.classes:
        mode += (
            f", deadline-classed workload (scale {args.deadline_scale:g})"
        )
    if args.device_calib:
        mode += f", calibrations {args.device_calib}"
    if args.device_caps:
        mode += f", capacities {args.device_caps} GB"
    if args.steal:
        mode += ", work stealing"
    if args.faults:
        mode += f", fault injection (seed {args.fault_seed})"
    if args.learned:
        mode += ", learned cost model"

    if args.clients is not None:
        fault_plan = None
        if args.faults:
            # Size the crash window from a fault-free baseline so the
            # drawn crash times actually land mid-run.
            baseline = run_serve(
                args.clients,
                scale=args.scale,
                spacing_seconds=spacing,
                online=args.online,
                devices=args.devices,
                placement=args.placement,
                device_capacities=device_capacities,
                device_calibrations=device_calibrations,
                steal=args.steal,
                admission=args.admission,
                classes=args.classes,
                deadline_scale=args.deadline_scale,
                learned=args.learned,
                check_determinism=False,
            )
            fault_plan = FaultPlan.random(
                args.fault_seed,
                devices=args.devices,
                horizon=baseline.makespan,
                qids=[f"q{i:03d}" for i in range(args.clients)],
                admission_fault_rate=0.1,
                allow_total_loss=False,
            )
        start = time.perf_counter()
        report = run_serve(
            args.clients,
            scale=args.scale,
            spacing_seconds=spacing,
            online=args.online,
            devices=args.devices,
            placement=args.placement,
            device_capacities=device_capacities,
            device_calibrations=device_calibrations,
            steal=args.steal,
            faults=fault_plan,
            max_retries=args.max_retries,
            admission=args.admission,
            classes=args.classes,
            deadline_scale=args.deadline_scale,
            learned=args.learned,
        )
        wall = time.perf_counter() - start
        print(f"admission mode: {mode}")
        if fault_plan is not None:
            crashes = ", ".join(
                f"device {c.device} at t={c.at:.3f}s"
                for c in fault_plan.crashes
            ) or "no crashes drawn"
            print(
                f"fault injection: {crashes}; "
                f"{len(fault_plan.admission_failures)} queries with "
                f"transient admission failures; retry budget "
                f"{args.max_retries}"
            )
        print(report.render())
        if (hetero or args.steal) and args.out != "-":
            merge_perf_json(
                hetero_perf_entries(
                    report, wall, clients=args.clients, steal=args.steal
                ),
                args.out,
            )
            prefix = "serve_steal" if args.steal else "serve_hetero"
            print(f"{prefix}_* series merged into {args.out}")
        if fault_plan is not None and args.out != "-":
            merge_perf_json(
                fault_perf_entries(
                    report, arrivals=args.clients, devices=args.devices
                ),
                args.out,
            )
            print(f"serve_faults_* series merged into {args.out}")
        if args.classes and args.out != "-":
            merge_perf_json(
                admission_perf_entries(
                    report,
                    policy=args.admission,
                    clients=args.clients,
                    devices=args.devices,
                ),
                args.out,
            )
            print(f"serve_admission_* series merged into {args.out}")
        if (
            fault_plan is not None
            and args.max_failed_rate is not None
            and report.failed_count / args.clients > args.max_failed_rate
        ):
            print(
                f"FAIL: failed rate "
                f"{report.failed_count / args.clients:.3f} exceeds bound "
                f"{args.max_failed_rate:.3f}"
            )
            return 1
        if args.clients > 1 and canonical:
            print(
                "verified: deterministic, every arena within capacity and "
                "drained, concurrent no worse than serial (strictly "
                "better wherever queries overlapped)"
            )
        else:
            print("verified: deterministic, every arena within capacity and drained")
        return 0

    if args.sweep:
        try:
            levels = tuple(int(item) for item in args.sweep.split(","))
        except ValueError:
            parser.error(f"--sweep must be comma-separated integers: {args.sweep!r}")
        if any(level <= 0 for level in levels):
            parser.error("--sweep levels must be positive")
    else:
        levels = DEFAULT_CLIENTS
    points = sweep(
        levels,
        scale=args.scale,
        spacing_seconds=spacing,
        online=args.online,
        devices=args.devices,
        placement=args.placement,
        device_capacities=device_capacities,
        device_calibrations=device_calibrations,
        steal=args.steal,
        admission=args.admission,
        classes=args.classes,
        deadline_scale=args.deadline_scale,
        learned=args.learned,
    )
    print(f"admission mode: {mode}")
    print(render_sweep(points))
    if canonical:
        print(
            "verified: deterministic, every arena within capacity and "
            "drained, concurrent no worse than serial at every level "
            "(strictly better wherever queries overlapped)"
        )
    else:
        print("verified: deterministic, every arena within capacity and drained")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(serve_main())
