"""The paper's contribution: the hardware-conscious GPU join family."""

from repro.core.adaptive import (
    AdaptiveCoProcessingJoin,
    recommend_partition_threads,
    recommend_staging_threads,
)
from repro.core.config import (
    HASH_PROBE,
    NLJ_PROBE,
    GpuJoinConfig,
    default_config,
    fig5_config,
)
from repro.core.coprocessing import CoProcessingJoin, CoProcessingPlan
from repro.core.gpu_nonpartitioned import GpuNonPartitionedJoin
from repro.core.gpu_partitioned import GpuPartitionedJoin
from repro.core.planner import (
    COPROCESSING,
    GPU_RESIDENT,
    STREAMING,
    choose_strategy_name,
    estimate_with_planner,
    plan_join,
)
from repro.core.results import JoinMetrics, JoinRunResult
from repro.core.streaming import StreamingProbeJoin
from repro.core.working_set import (
    WorkingSet,
    knapsack_first_working_set,
    pack_working_sets,
)

__all__ = [
    "AdaptiveCoProcessingJoin",
    "COPROCESSING",
    "CoProcessingJoin",
    "CoProcessingPlan",
    "GPU_RESIDENT",
    "GpuJoinConfig",
    "GpuNonPartitionedJoin",
    "GpuPartitionedJoin",
    "HASH_PROBE",
    "JoinMetrics",
    "JoinRunResult",
    "NLJ_PROBE",
    "STREAMING",
    "StreamingProbeJoin",
    "WorkingSet",
    "choose_strategy_name",
    "default_config",
    "estimate_with_planner",
    "recommend_partition_threads",
    "recommend_staging_threads",
    "fig5_config",
    "knapsack_first_working_set",
    "pack_working_sets",
    "plan_join",
]
