"""The paper's contribution: the hardware-conscious GPU join family."""

from repro.core import estimate_cache, learned_cost, sample_store
from repro.core.adaptive import (
    AdaptiveCoProcessingJoin,
    recommend_partition_threads,
    recommend_staging_threads,
)
from repro.core.config import (
    HASH_PROBE,
    NLJ_PROBE,
    GpuJoinConfig,
    default_config,
    fig5_config,
)
from repro.core.coprocessing import CoProcessingJoin, CoProcessingPlan
from repro.core.gpu_nonpartitioned import GpuNonPartitionedJoin, GpuPerfectHashJoin
from repro.core.learned_cost import LearnedCostModel, StrategyModel
from repro.core.sample_store import KernelSample, SampleStore
from repro.core.gpu_partitioned import GpuPartitionedJoin
from repro.core.planner import (
    PLANNER_LADDER,
    choose_strategy_name,
    estimate_with_planner,
    plan_join,
)
from repro.core.results import JoinMetrics, JoinRunResult
from repro.core.strategy import (
    COPROCESSING,
    COPROCESSING_ADAPTIVE,
    GPU_NONPARTITIONED,
    GPU_NONPARTITIONED_PERFECT,
    GPU_RESIDENT,
    STREAMING,
    JoinPlan,
    JoinStrategy,
    PipelinedJoinStrategy,
    create_strategy,
    register_strategy,
    registered_strategies,
    strategy_factory,
)
from repro.core.streaming import StreamingProbeJoin
from repro.core.working_set import (
    WorkingSet,
    knapsack_first_working_set,
    pack_working_sets,
)

__all__ = [
    "AdaptiveCoProcessingJoin",
    "COPROCESSING",
    "COPROCESSING_ADAPTIVE",
    "CoProcessingJoin",
    "CoProcessingPlan",
    "GPU_NONPARTITIONED",
    "GPU_NONPARTITIONED_PERFECT",
    "GPU_RESIDENT",
    "GpuJoinConfig",
    "GpuNonPartitionedJoin",
    "GpuPartitionedJoin",
    "GpuPerfectHashJoin",
    "HASH_PROBE",
    "JoinMetrics",
    "JoinPlan",
    "JoinRunResult",
    "JoinStrategy",
    "KernelSample",
    "LearnedCostModel",
    "NLJ_PROBE",
    "PLANNER_LADDER",
    "PipelinedJoinStrategy",
    "STREAMING",
    "SampleStore",
    "StrategyModel",
    "StreamingProbeJoin",
    "WorkingSet",
    "choose_strategy_name",
    "create_strategy",
    "default_config",
    "estimate_cache",
    "estimate_with_planner",
    "fig5_config",
    "learned_cost",
    "knapsack_first_working_set",
    "pack_working_sets",
    "plan_join",
    "recommend_partition_threads",
    "recommend_staging_threads",
    "register_strategy",
    "registered_strategies",
    "sample_store",
    "strategy_factory",
]
