"""Adaptive thread selection for co-processing — the paper's future work.

§IV-B closes with: *"Based on the expected per-thread memory bandwidth
consumption during partitioning, we select the maximum number of threads
that allows enough bandwidth for any overlapping data transfers to the
GPU to operate at full throughput [...] We leave as future work
dynamically changing the number of threads during execution."*

This module implements both halves:

* :func:`recommend_partition_threads` — the paper's static rule: the
  smallest thread count that (a) produces the first working set's
  co-partitions faster than PCIe consumes them and (b) stays below the
  memory-saturation knee;
* :class:`AdaptiveCoProcessingJoin` — the future-work extension: the
  partitioning phase and the staging-only phases run with *different*
  thread counts, each chosen by the rule appropriate to its bandwidth
  demand.
"""

from __future__ import annotations

import math

from repro.core.coprocessing import CoProcessingJoin
from repro.core.strategy import COPROCESSING_ADAPTIVE, JoinPlan, register_strategy
from repro.cpu.numa import NumaModel
from repro.cpu.radix_partition import CpuPartitionModel
from repro.data.spec import JoinSpec
from repro.errors import InvalidConfigError
from repro.gpusim.calibration import Calibration
from repro.gpusim.spec import SystemSpec


def recommend_partition_threads(
    system: SystemSpec,
    first_ws_fraction: float,
    *,
    calibration: Calibration | None = None,
) -> int:
    """The paper's §IV-B rule: "the maximum number of threads that allows
    enough bandwidth for any overlapping data transfers to the GPU to
    operate at full throughput".

    More threads always shorten the serial head (partitioning the build
    relation) and the chunk partitioning, so the recommendation is the
    *largest* count whose near-socket traffic leaves the DMA stream at
    full rate — one step below the Fig 13 saturation knee.  The count is
    floored at what hides chunk partitioning behind the first working
    set's transfers (rate >= pcie / first_ws_fraction).
    """
    if not 0.0 < first_ws_fraction <= 1.0:
        raise InvalidConfigError("first_ws_fraction must be in (0, 1]")
    model = CpuPartitionModel(system, calibration or Calibration())
    numa = NumaModel(system, calibration or Calibration())
    pcie = system.interconnect.pinned_bandwidth

    threads = system.cpu.total_threads
    while threads > 1 and numa.dma_contention_factor(threads) < 1.0:
        threads -= 1

    per_thread = model.calibration.cpu_partition_bytes_per_thread
    hide_floor = max(1, math.ceil(pcie / first_ws_fraction / per_thread))
    return max(threads, min(hide_floor, system.cpu.total_threads))


def recommend_staging_threads(
    system: SystemSpec,
    *,
    calibration: Calibration | None = None,
) -> int:
    """Threads needed so the far→near staging copy outpaces the DMA.

    After the first working set no partitioning remains; the CPU's only
    job is feeding near-socket pinned buffers.  The copy must sustain at
    least half the PCIe rate (only the far-socket half is staged).
    """
    calib = calibration or Calibration()
    per_thread = calib.cpu_thread_bandwidth / 2.0
    target = system.interconnect.pinned_bandwidth / 2.0
    return max(1, min(system.cpu.total_cores, math.ceil(target / per_thread)))


@register_strategy
class AdaptiveCoProcessingJoin(CoProcessingJoin):
    """Co-processing with phase-adaptive CPU thread counts.

    Chooses the partitioning thread count from the workload's actual
    first-working-set fraction and drops to the much smaller staging
    count afterwards, freeing cores (e.g. for an HTAP transactional
    workload, the paper's §V-D motivation) at no throughput cost.
    """

    key = COPROCESSING_ADAPTIVE
    name = "GPU Partitioned (co-processing, adaptive threads)"

    def prepare(
        self,
        spec: JoinSpec,
        *,
        threads: int | None = None,
        chunk_tuples: int | None = None,
        materialize: bool = False,
        staging_threads: int | None = None,
    ) -> JoinPlan:
        if threads is None or staging_threads is None:
            from repro.data import stats as stats_mod

            cpu_sizes = stats_mod.expected_partition_sizes(spec.build, self.cpu_bits)
            plan = self.plan(
                cpu_sizes,
                spec.build.tuple_bytes,
                spec.probe.n,
                chunk_tuples=chunk_tuples,
            )
            if threads is None:
                threads = recommend_partition_threads(
                    self.system,
                    max(plan.first_ws_fraction, 1e-9),
                    calibration=self.cost_model.calib,
                )
            if staging_threads is None:
                staging_threads = recommend_staging_threads(
                    self.system, calibration=self.cost_model.calib
                )
        graph = super().prepare(
            spec,
            threads=threads,
            chunk_tuples=chunk_tuples,
            materialize=materialize,
            staging_threads=staging_threads,
        )
        graph.notes["staging_threads"] = float(staging_threads)
        return graph
