"""Configuration of the GPU join family.

Defaults reproduce the paper's standard configuration (§V-B,
"Annotation & configuration"): shared memory for 4096 elements and 2048
hash-table buckets per CUDA block, 1024 threads per partitioning block,
512 threads per join block, and a total fanout of 2^15 partitions
reached in two passes.  Figure 5 uses its own variant (2048 elements,
1024 threads, 256 buckets) — see :func:`fig5_config`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import InvalidConfigError
from repro.gpusim.shared_memory import join_block_reservation
from repro.gpusim.spec import GpuSpec
from repro.kernels.common import is_power_of_two
from repro.kernels.radix_partition import derive_bits_per_pass

HASH_PROBE = "hash"
NLJ_PROBE = "nlj"


@dataclass(frozen=True)
class GpuJoinConfig:
    """Tuning knobs of the partitioned GPU join."""

    #: Total radix bits (fanout = 2^bits); ``None`` derives from input size.
    total_radix_bits: int | None = 15
    #: Per-pass fanout cap (shared-memory metadata limit, §III-A).
    max_bits_per_pass: int = 8
    #: Shared-memory elements reserved for a co-partition's build side.
    elements_per_block: int = 4096
    #: Hash-table slots per co-partition table.
    ht_slots: int = 2048
    threads_per_block_partition: int = 1024
    threads_per_block_join: int = 512
    #: Probe kernel: chaining hash (§III-C) or ballot NLJ (§III-B).
    probe_kernel: str = HASH_PROBE
    #: Keep co-partition tables in shared memory (Fig 6 toggles this).
    use_shared_memory: bool = True
    #: Capacity of partitioning pool buckets (multiple of block size).
    bucket_capacity: int = 1024
    #: Warp output buffer bytes (result coalescing, §III-C).
    output_buffer_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.probe_kernel not in (HASH_PROBE, NLJ_PROBE):
            raise InvalidConfigError(f"unknown probe kernel: {self.probe_kernel!r}")
        if not is_power_of_two(self.ht_slots):
            raise InvalidConfigError("ht_slots must be a power of two")
        if self.elements_per_block <= 0 or self.bucket_capacity <= 0:
            raise InvalidConfigError("block sizes must be positive")
        if self.total_radix_bits is not None and self.total_radix_bits <= 0:
            raise InvalidConfigError("total_radix_bits must be positive")

    # ------------------------------------------------------------------
    def radix_bits_for(self, build_n: int) -> int:
        """Total radix bits: configured, or sized so the average partition
        fills (but does not overflow) the per-block build working set."""
        if self.total_radix_bits is not None:
            return self.total_radix_bits
        bits = 1
        while (build_n >> bits) > self.elements_per_block:
            bits += 1
        return bits

    def bits_per_pass_for(self, build_n: int) -> list[int]:
        return derive_bits_per_pass(
            self.radix_bits_for(build_n), max_bits_per_pass=self.max_bits_per_pass
        )

    def validate_against(self, gpu: GpuSpec, tuple_bytes: int) -> None:
        """Check the per-block shared-memory reservation actually fits."""
        needed = join_block_reservation(
            self.elements_per_block,
            self.ht_slots,
            tuple_bytes,
            output_buffer_bytes=self.output_buffer_bytes,
        )
        if needed > gpu.shared_mem_per_sm:
            raise InvalidConfigError(
                f"join block needs {needed} B of shared memory but the "
                f"device provides {gpu.shared_mem_per_sm} B per SM"
            )

    def with_(self, **kwargs) -> "GpuJoinConfig":
        """Functional update (thin wrapper over ``dataclasses.replace``)."""
        return replace(self, **kwargs)


def default_config() -> GpuJoinConfig:
    """The paper's standard configuration (Figs 7–13, 17–22)."""
    return GpuJoinConfig()


def fig5_config(total_radix_bits: int, probe_kernel: str) -> GpuJoinConfig:
    """Figure 5's microbenchmark configuration: shared memory for 2048
    elements, 1024 threads and 256 hash-table buckets.  The experiment
    sweeps the partition *size*, so callers pass the radix bits that
    yield the desired average partition size."""
    return GpuJoinConfig(
        total_radix_bits=total_radix_bits,
        elements_per_block=2048,
        ht_slots=256,
        threads_per_block_join=1024,
        probe_kernel=probe_kernel,
    )
