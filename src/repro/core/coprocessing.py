"""Out-of-GPU strategy 2: CPU–GPU co-processing (§IV-B).

Neither relation fits in GPU memory.  The host radix-partitions both
relations (16-way by default) into pinned memory; build-side partitions
are packed into GPU-sized *working sets* (§IV-D), and for each working
set the matching probe co-partitions are streamed through the GPU and
joined with the in-GPU partitioned algorithm.  During the first working
set the CPU partitioning of probe chunks overlaps with the transfers
(the knapsack maximizes that working set to hide it); afterwards all
data is already partitioned and pinned, so the pipeline degenerates to
transfers + joins, with CPU threads performing NUMA staging copies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import GpuJoinConfig, default_config
from repro.core.gpu_partitioned import (
    OUT_TUPLE_BYTES,
    GpuPartitionedJoin,
    spec_from_relations,
)
from repro.core.results import JoinRunResult
from repro.core.strategy import (
    COPROCESSING,
    JoinPlan,
    PipelinedJoinStrategy,
    register_strategy,
)
from repro.core.working_set import WorkingSet, pack_working_sets
from repro.cpu.numa import NumaModel
from repro.cpu.radix_partition import CpuPartitionModel, cpu_radix_partition
from repro.data import stats as stats_mod
from repro.data.relation import Relation
from repro.data.spec import JoinSpec
from repro.errors import InvalidConfigError
from repro.gpusim.calibration import Calibration
from repro.gpusim.cost import GpuCostModel
from repro.gpusim.spec import SystemSpec
from repro.gpusim.transfer import TransferModel
from repro.kernels.aggregate import aggregate_pairs
from repro.kernels.common import key_bit_width
from repro.kernels.radix_partition import derive_bits_per_pass, estimate_partition_cost
from repro.pipeline.tasks import CPU, D2H, GPU, H2D

#: Default host-side fanout: a single 16-way pass (§V-C).
DEFAULT_CPU_BITS = 4
#: Default CPU threads for the partitioning phase (§V-C).
DEFAULT_THREADS = 16
#: Default probe chunk size streamed through the remaining GPU memory.
DEFAULT_CHUNK_BYTES = 256 * 1024 * 1024
#: Fraction of device memory available to a build working set (the rest
#: holds chunk buffers, output buffers, and sub-partitioning workspace).
WORKING_SET_MEMORY_FRACTION = 0.65
#: Cap on the working-set buffer a co-processing query *reserves* when it
#: shares the device with other queries (§IV-B splits oversized
#: partitions, so working sets shrink to whatever memory is granted).
COPROC_RESERVED_WS_BYTES = 256 * 1024 * 1024


@dataclass
class CoProcessingPlan:
    """Static execution plan: packing, chunking and splitting decisions.

    ``ws_weights[w][p]`` is the fraction of host partition ``p`` resident
    in working set ``w`` (1.0 normally; ``1/k`` when an oversized
    partition was recursively split ``k`` ways per §IV-B).
    ``repartition_fraction`` is the share of tuples that needed the extra
    sub-partitioning pass.
    """

    cpu_bits: int
    working_sets: list[WorkingSet]
    build_fractions: list[float]
    chunk_tuples: int
    n_chunks: int
    ws_weights: list[np.ndarray] = None  # type: ignore[assignment]
    repartition_fraction: float = 0.0

    @property
    def first_ws_fraction(self) -> float:
        return self.build_fractions[0] if self.build_fractions else 0.0


@register_strategy
class CoProcessingJoin(PipelinedJoinStrategy):
    """Both relations out of GPU memory: CPU partitioning + GPU joins."""

    key = COPROCESSING
    name = "GPU Partitioned (co-processing)"

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
        config: GpuJoinConfig | None = None,
        *,
        cpu_bits: int = DEFAULT_CPU_BITS,
        staging: bool = True,
        device_budget: int | None = None,
    ):
        if cpu_bits <= 0:
            raise InvalidConfigError("cpu_bits must be positive")
        if device_budget is not None and device_budget <= 0:
            raise InvalidConfigError("device_budget must be positive")
        self.system = system or SystemSpec()
        #: Device memory granted to this query (the serving layer passes
        #: its arena reservation); ``None`` means the whole device.
        self.device_budget = device_budget
        self.config = config or default_config()
        self.cost_model = GpuCostModel(self.system, calibration)
        self.transfer = TransferModel(self.system, self.cost_model.calib)
        self.cpu_partition = CpuPartitionModel(self.system, self.cost_model.calib)
        self.numa = NumaModel(self.system, self.cost_model.calib)
        self.cpu_bits = cpu_bits
        self.staging = staging
        self._resident = GpuPartitionedJoin(self.system, calibration, self.config)

    # ------------------------------------------------------------------
    def _fingerprint_extras(self) -> tuple:
        return (self.cpu_bits, self.staging, self.device_budget)

    # ------------------------------------------------------------------
    @classmethod
    def device_bytes_needed(cls, spec: JoinSpec, system: SystemSpec) -> int:
        """The always-feasible floor: one (capped) build working set plus
        double-buffered input chunks and output buffers.  Both relations
        live in host memory, so the device footprint stays small and
        bounded no matter how large the workload is."""
        chunk = min(DEFAULT_CHUNK_BYTES, max(spec.probe.nbytes, spec.probe.tuple_bytes))
        working_set = min(2 * spec.build.nbytes, COPROC_RESERVED_WS_BYTES)
        return int(working_set + 4 * chunk)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def working_set_capacity(self) -> int:
        if self.device_budget is not None:
            # A serving grant must cover the working set AND the chunk /
            # output buffers priced into device_bytes_needed, so only the
            # remainder after the (worst-case) buffer reservation may
            # hold build working sets — the modelled footprint then
            # stays within the arena reservation.
            budget = min(self.system.gpu.device_memory, self.device_budget)
            return max(budget - 4 * DEFAULT_CHUNK_BYTES, 32 * 1024 * 1024)
        return int(self.system.gpu.device_memory * WORKING_SET_MEMORY_FRACTION)

    def plan(
        self,
        build_partition_sizes: np.ndarray,
        tuple_bytes: int,
        probe_n: int,
        *,
        chunk_tuples: int | None = None,
        bucket_capacity: int = 2048,
        split_oversized: bool = True,
    ) -> CoProcessingPlan:
        """Pack working sets from (expected or observed) partition sizes.

        With ``split_oversized`` (the analytic path), host partitions
        larger than the working-set capacity are recursively
        sub-partitioned ``k`` ways before packing (§IV-B); the extra
        pass's cost is charged through ``repartition_fraction``.
        """
        sizes = np.asarray(build_partition_sizes, dtype=np.float64)
        capacity = self.working_set_capacity()
        fanout = sizes.shape[0]
        total = float(sizes.sum()) or 1.0
        if chunk_tuples is None:
            chunk_tuples = max(1, min(probe_n, DEFAULT_CHUNK_BYTES // tuple_bytes))

        def padded(values: np.ndarray) -> np.ndarray:
            buckets = np.maximum(1, np.ceil(values / bucket_capacity))
            return (buckets * bucket_capacity * tuple_bytes).astype(np.int64)

        # Expand oversized partitions into k equal virtual sub-partitions.
        origins: list[int] = []
        weights: list[float] = []
        entry_sizes: list[float] = []
        repartitioned = 0.0
        for pid in range(fanout):
            nbytes = int(padded(sizes[pid : pid + 1])[0])
            splits = 1
            if split_oversized and nbytes > capacity:
                splits = int(math.ceil(nbytes / capacity))
                repartitioned += sizes[pid]
            for _ in range(splits):
                origins.append(pid)
                weights.append(1.0 / splits)
                entry_sizes.append(sizes[pid] / splits)
        entry_sizes_arr = np.asarray(entry_sizes)
        working_sets = pack_working_sets(
            padded(entry_sizes_arr), entry_sizes_arr.astype(np.int64), capacity
        )

        ws_weights: list[np.ndarray] = []
        fractions: list[float] = []
        for ws in working_sets:
            weight = np.zeros(fanout, dtype=np.float64)
            for entry in ws.partition_ids:
                weight[origins[entry]] += weights[entry]
            ws_weights.append(weight)
            fractions.append(float((weight * sizes).sum()) / total)

        return CoProcessingPlan(
            cpu_bits=self.cpu_bits,
            working_sets=working_sets,
            build_fractions=fractions,
            chunk_tuples=chunk_tuples,
            n_chunks=math.ceil(probe_n / chunk_tuples),
            ws_weights=ws_weights,
            repartition_fraction=repartitioned / total,
        )

    # ------------------------------------------------------------------
    # Pipeline assembly (shared by prepare and execute)
    # ------------------------------------------------------------------
    def _pipeline_plan(
        self,
        spec: JoinSpec,
        plan: CoProcessingPlan,
        *,
        threads: int,
        matches: float,
        ws_join_seconds,
        ws_prep_seconds,
        materialize: bool,
        staging_threads: int | None = None,
    ) -> JoinPlan:
        """Declare the §IV-B pipeline as a task graph.

        ``ws_join_seconds(ws_index, chunk_index)`` and
        ``ws_prep_seconds(ws_index)`` supply GPU kernel durations (from
        analytic stats or from functional execution).  ``staging_threads``
        optionally uses a different thread count for the staging-only
        phases after the first working set (the adaptive extension).
        """
        calib = self.cost_model.calib
        cpu_rate = self.cpu_partition.pass_rate(threads)
        if staging_threads is None:
            staging_threads = threads
        if self.staging:
            h2d_active = self.numa.h2d_rate_staged(threads)
            h2d_idle = self.numa.h2d_rate_staged(0)
        else:
            h2d_active = self.numa.h2d_rate_direct(threads)
            h2d_idle = self.numa.h2d_rate_direct(0)
        d2h_rate = self.transfer.pipelined_dma_rate()
        staging_rate = self.numa.staging_copy_rate(staging_threads)

        graph = JoinPlan(
            strategy=self.name,
            spec=spec,
            phases=(CPU, H2D, GPU, D2H),
            matches=matches,
            materialize=materialize,
            pcie_h2d_bytes=spec.build.nbytes + spec.probe.nbytes,
            pcie_d2h_bytes=matches * OUT_TUPLE_BYTES if materialize else 0.0,
            notes={
                "tuple_bytes": float(spec.build.tuple_bytes),
                "working_sets": float(len(plan.working_sets)),
                "first_ws_fraction": plan.first_ws_fraction,
                "threads": float(threads),
            },
        )

        # Host partitions the build relation into pinned memory first;
        # oversized partitions get one extra recursive pass (SIV-B).
        repartition = 1.0 + plan.repartition_fraction
        graph.add(
            "R.cpu_partition", CPU, spec.build.nbytes * repartition / cpu_rate
        )

        for w, frac in enumerate(plan.build_fractions):
            phase_a = w == 0
            rate = h2d_active if phase_a else h2d_idle
            ws = plan.working_sets[w]
            # The working set's partitions are transferred and GPU-prepped
            # one at a time ("we initiate each operation of the sequence
            # as soon as the previous step is completed", §IV-B), so prep
            # overlaps the remaining transfers instead of stalling joins.
            n_parts = max(1, len(ws.partition_ids))
            part_bytes = ws.total_bytes / n_parts
            part_prep = float(ws_prep_seconds(w)) / n_parts
            for p in range(n_parts):
                graph.add(
                    f"R.h2d[{w},{p}]", H2D, part_bytes / rate, ["R.cpu_partition"]
                )
                graph.add(
                    f"R.prep[{w},{p}]", GPU, part_prep, [f"R.h2d[{w},{p}]"]
                )
            ws_ready = f"R.prep[{w},{n_parts - 1}]"
            for c in range(plan.n_chunks):
                this_chunk = min(
                    plan.chunk_tuples, spec.probe.n - c * plan.chunk_tuples
                )
                s_co_bytes = frac * this_chunk * spec.probe.tuple_bytes
                h2d_deps: list[str] = []
                if phase_a:
                    # The chunk must be radix-partitioned on the host
                    # before its co-partitions can be shipped.
                    graph.add(
                        f"S.cpu[{c}]",
                        CPU,
                        this_chunk * spec.probe.tuple_bytes * repartition / cpu_rate
                        + calib.pipeline_sync_seconds,
                    )
                    h2d_deps.append(f"S.cpu[{c}]")
                elif self.staging:
                    # Far-socket halves are staged to near-socket pinned
                    # buffers by CPU threads (§IV-B).
                    graph.add(
                        f"S.stage[{w},{c}]",
                        CPU,
                        0.5 * s_co_bytes / staging_rate
                        + calib.pipeline_sync_seconds,
                    )
                    h2d_deps.append(f"S.stage[{w},{c}]")
                if c >= 2:
                    h2d_deps.append(f"S.join[{w},{c - 2}]")
                graph.add(f"S.h2d[{w},{c}]", H2D, s_co_bytes / rate, h2d_deps)
                join_deps = [f"S.h2d[{w},{c}]", ws_ready]
                if materialize and c >= 2:
                    join_deps.append(f"S.d2h[{w},{c - 2}]")
                graph.add(
                    f"S.join[{w},{c}]", GPU, float(ws_join_seconds(w, c)), join_deps
                )
                if materialize:
                    out_bytes = (
                        matches
                        * frac
                        * (this_chunk / spec.probe.n)
                        * OUT_TUPLE_BYTES
                    )
                    graph.add(
                        f"S.d2h[{w},{c}]", D2H, out_bytes / d2h_rate,
                        [f"S.join[{w},{c}]"],
                    )

        return graph

    # ------------------------------------------------------------------
    # Analytic path
    # ------------------------------------------------------------------
    def prepare(
        self,
        spec: JoinSpec,
        *,
        threads: int = DEFAULT_THREADS,
        chunk_tuples: int | None = None,
        materialize: bool = False,
        staging_threads: int | None = None,
    ) -> JoinPlan:
        cfg = self.config
        cpu_sizes = stats_mod.expected_partition_sizes(spec.build, self.cpu_bits)
        plan = self.plan(
            cpu_sizes,
            spec.build.tuple_bytes,
            spec.probe.n,
            chunk_tuples=chunk_tuples,
        )

        total_bits = max(cfg.radix_bits_for(spec.build.n // (1 << self.cpu_bits)), 1)
        gpu_bits = derive_bits_per_pass(total_bits, max_bits_per_pass=cfg.max_bits_per_pass)
        final_bits = self.cpu_bits + total_bits

        build_final = stats_mod.expected_partition_sizes(spec.build, final_bits)
        probe_final = stats_mod.expected_partition_sizes(spec.probe, final_bits)
        matches = stats_mod.expected_join_cardinality(spec)
        key_bits = key_bit_width(max(spec.build.distinct, spec.probe.distinct) - 1)
        cpu_fanout = 1 << self.cpu_bits

        final_to_cpu = np.arange(build_final.shape[0], dtype=np.int64) & (
            cpu_fanout - 1
        )

        def ws_factor(w: int) -> np.ndarray:
            # Fraction of each final co-partition resident in working set
            # w (fractional when an oversized host partition was split).
            return plan.ws_weights[w][final_to_cpu]

        def ws_prep_seconds(w: int) -> float:
            # Partition the working set on the GPU, then build its
            # co-partition tables once; all chunks probe them.
            elements = plan.working_sets[w].total_elements
            return (
                estimate_partition_cost(
                    elements, spec.build.tuple_bytes, gpu_bits, self.cost_model
                ).seconds
                + self.cost_model.build_tables_seconds(elements, spec.build.tuple_bytes)
            )

        # Per-working-set fast path: the build side (and thus every
        # build-derived invariant of the join formula) is fixed per
        # working set, and a chunk only scales the probe side by its
        # fraction of the probe relation — which takes at most two
        # distinct values.  Build one scaled evaluator per working set
        # and memoize per chunk size, collapsing the ~n_ws * n_chunks
        # kernel-formula evaluations of the inner loop to ~2 per
        # working set.
        evaluators: dict[int, tuple] = {}
        join_memo: dict[tuple[int, int], float] = {}

        def ws_evaluator(w: int) -> tuple:
            cached = evaluators.get(w)
            if cached is None:
                factor = ws_factor(w)
                live = factor > 0
                b = (build_final * factor)[live]
                s = (probe_final * factor)[live]
                evaluator = self._resident._join_cost_evaluator(
                    b,
                    s,
                    matches * plan.build_fractions[w],
                    tuple_bytes=spec.build.tuple_bytes,
                    radix_bits=final_bits,
                    key_bits=key_bits,
                    materialize=materialize,
                    charge_build=False,
                )
                cached = (evaluator, float(s.sum()))
                evaluators[w] = cached
            return cached

        def ws_join_seconds(w: int, c: int) -> float:
            this_chunk = min(plan.chunk_tuples, spec.probe.n - c * plan.chunk_tuples)
            cached = join_memo.get((w, this_chunk))
            if cached is None:
                chunk_frac = this_chunk / spec.probe.n
                evaluator, probe_total = ws_evaluator(w)
                partition = estimate_partition_cost(
                    probe_total * chunk_frac,
                    spec.probe.tuple_bytes,
                    gpu_bits,
                    self.cost_model,
                )
                cached = partition.seconds + evaluator.seconds(chunk_frac)
                join_memo[(w, this_chunk)] = cached
            return cached

        return self._pipeline_plan(
            spec,
            plan,
            threads=threads,
            matches=matches,
            ws_join_seconds=ws_join_seconds,
            ws_prep_seconds=ws_prep_seconds,
            materialize=materialize,
            staging_threads=staging_threads,
        )

    # ------------------------------------------------------------------
    # Functional path
    # ------------------------------------------------------------------
    def execute(
        self,
        build: Relation,
        probe: Relation,
        *,
        threads: int = DEFAULT_THREADS,
        chunk_tuples: int | None = None,
        materialize: bool = False,
    ) -> JoinRunResult:
        """Functional execution at test scale.

        The host 16-way partitions both relations; working sets are packed
        from the *observed* partition sizes; every (working set, chunk)
        cell is joined with the in-GPU partitioned join.  The union of
        cell results equals the full join (co-partitioning invariant).
        """
        part_build = cpu_radix_partition(build, self.cpu_bits)
        sizes = part_build.partition_sizes()
        plan = self.plan(
            sizes,
            build.tuple_bytes,
            probe.num_tuples,
            chunk_tuples=chunk_tuples,
            split_oversized=False,
        )

        build_payloads: list[np.ndarray] = []
        probe_payloads: list[np.ndarray] = []
        cell_seconds: dict[tuple[int, int], float] = {}
        prep_seconds: dict[int, float] = {}

        chunks = [
            probe.slice(i * plan.chunk_tuples, min((i + 1) * plan.chunk_tuples, probe.num_tuples))
            for i in range(plan.n_chunks)
        ]
        chunk_parts = [cpu_radix_partition(chunk, self.cpu_bits) for chunk in chunks]

        for w, ws in enumerate(plan.working_sets):
            r_keys = [part_build.partition(p)[0] for p in ws.partition_ids]
            r_payloads = [part_build.partition(p)[1] for p in ws.partition_ids]
            ws_build = Relation(
                key=np.concatenate(r_keys) if r_keys else np.empty(0, np.int64),
                payload=np.concatenate(r_payloads) if r_payloads else np.empty(0, np.int64),
                name=f"build.ws{w}",
                payload_bytes=build.payload_bytes,
            )
            prep_seconds[w] = 0.0
            for c, chunk_part in enumerate(chunk_parts):
                s_keys = [chunk_part.partition(p)[0] for p in ws.partition_ids]
                s_payloads = [chunk_part.partition(p)[1] for p in ws.partition_ids]
                ws_chunk = Relation(
                    key=np.concatenate(s_keys) if s_keys else np.empty(0, np.int64),
                    payload=np.concatenate(s_payloads) if s_payloads else np.empty(0, np.int64),
                    name=f"probe.ws{w}.chunk{c}",
                    payload_bytes=probe.payload_bytes,
                )
                if ws_build.num_tuples == 0 or ws_chunk.num_tuples == 0:
                    cell_seconds[(w, c)] = 0.0
                    continue
                cell = self._resident.run(ws_build, ws_chunk, materialize=True)
                cell_seconds[(w, c)] = cell.metrics.phases["join"] + (
                    cell.metrics.phases["partition"] / 2.0
                )
                if w == 0 and c == 0:
                    prep_seconds[w] = cell.metrics.phases["partition"] / 2.0
                build_payloads.append(cell.build_payloads)
                probe_payloads.append(cell.probe_payloads)

        all_build = (
            np.concatenate(build_payloads) if build_payloads else np.empty(0, np.int64)
        )
        all_probe = (
            np.concatenate(probe_payloads) if probe_payloads else np.empty(0, np.int64)
        )

        spec = spec_from_relations(build, probe)
        metrics = self.simulate(
            self._pipeline_plan(
                spec,
                plan,
                threads=threads,
                matches=float(all_build.shape[0]),
                ws_join_seconds=lambda w, c: cell_seconds.get((w, c), 0.0),
                ws_prep_seconds=lambda w: prep_seconds.get(w, 0.0),
                materialize=materialize,
            )
        )
        if materialize:
            return JoinRunResult(
                metrics=metrics, build_payloads=all_build, probe_payloads=all_probe
            )
        return JoinRunResult(
            metrics=metrics, aggregate=aggregate_pairs(all_build, all_probe)
        )
