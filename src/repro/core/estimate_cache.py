"""Process-wide memoization of analytic strategy estimates.

The analytic ``estimate()`` paths are pure functions of (strategy
configuration, workload spec, keyword arguments): the same inputs always
produce the same :class:`~repro.core.results.JoinMetrics`.  The serving
layer re-plans every admitted query (solo baseline, degraded-placement
estimate, wait-vs-degrade comparison), the planner ladder estimates the
same spec it just sized, and the benchmark sweeps revisit identical
workloads across concurrency levels and determinism re-runs — so the
same kernel costs used to be recomputed hundreds of times per run.

This module provides one shared cache:

* :func:`lookup` / :func:`store` — consulted by
  :meth:`repro.core.strategy.PipelinedJoinStrategy.estimate`; keys are
  built from the strategy's *fingerprint* (class, key, system spec,
  calibration, config, constructor extras), the frozen
  :class:`~repro.data.spec.JoinSpec`, and the estimate kwargs.  Any
  unhashable component simply bypasses the cache.  Per-device
  calibrations of a heterogeneous fleet ride in the fingerprint — two
  devices with different calibrations hash to different keys, so the
  shared cache never serves one device's estimate (or plan) to
  another;
* :func:`cached_ladder_choice` — memoizes the planner ladder's
  feasibility decision per (spec, system, available-bytes);
* :func:`cached_plan` — memoizes ``prepare()``'s analytic
  :class:`~repro.core.strategy.JoinPlan` per strategy fingerprint.
  Plan preparation (chunking, working-set packing, task-graph
  construction) dominated the serving wall clock once estimates were
  cached; the sharded serving layer re-prepares the same (spec,
  placement, memory-grant) combination on every device-placement
  candidate and determinism re-run, so plans are memoized the same way.
  Cached plans are **shared, read-only** objects: callers must not
  mutate ``plan.tasks`` / ``plan.resources`` (the serving scheduler
  only reads them, re-materializing namespaced copies of the tasks);
* :func:`clear` / :func:`stats` / :func:`configure` — test and
  benchmark hooks.

All three caches are **LRU-bounded** (:func:`configure`'s
``max_entries``, default :data:`DEFAULT_MAX_ENTRIES` — generous; far
above any benchmark's working set).  A steady-state serving process
admitting an unbounded stream of *distinct* queries therefore holds at
most ``3 * max_entries`` cached objects instead of growing without
limit; a lookup refreshes an entry's recency, and evictions are
counted per cache (``stats().evictions`` / ``plan_evictions`` /
``ladder_evictions``) so a thrashing cache shows up in the
``bench perf`` accounting instead of hiding as slow estimates.
Eviction never affects results — an evicted entry is simply recomputed
on its next use.  All three insertion sites evict *before* inserting
when ``len(cache) >= max_entries`` — the ``>=`` (not ``>``) comparison
is what guarantees no cache ever holds ``max_entries + 1`` entries;
``tests/core/test_estimate_cache.py`` pins the bound for each cache.

The caches can optionally be **persisted across processes** through a
:class:`repro.core.sample_store.SampleStore` (:func:`attach_store`):
misses consult the store before recomputing and new entries are
written through, so a warm-started process makes bit-identical
decisions to a cold one without re-estimating.

Per-device memory budgets are part of every key already: a strategy's
fingerprint includes its constructor extras (co-processing's
``device_budget`` grant), and the ladder key includes the free bytes
the admission decision saw — so a sharded fleet's devices, each with
its own headroom, share cache entries exactly when their placement
inputs coincide and never otherwise.

Metrics are stored and returned as defensive copies (their ``phases`` /
``notes`` dicts are mutable), so callers can annotate a result without
poisoning later hits.  Correctness does not depend on the cache: with
``configure(enabled=False)`` every estimate recomputes and must produce
the same numbers — asserted by ``tests/core/test_estimate_cache.py``
and by ``bench/regress.py``'s cold-vs-hit column on every strategy.

Caveats: the cache is **process-wide mutable state**.  Deterministic
replay is unaffected (a hit returns exactly what recomputation would),
but wall-clock benchmarks must :func:`clear` between repetitions or
they measure memoization, and tests that disable the cache should
re-enable it (``configure(enabled=True)``) to avoid slowing the rest
of the suite.  All cached metrics are in the cost model's native
units: simulated seconds and bytes.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Hashable

if TYPE_CHECKING:
    from repro.core.results import JoinMetrics
    from repro.core.strategy import JoinPlan

#: Default per-cache entry cap — far above any benchmark's working set;
#: a bound, not a tuning knob.  Override via :func:`configure`.
DEFAULT_MAX_ENTRIES = 65536

#: Backwards-compatible alias for the historical module constant.
MAX_ENTRIES = DEFAULT_MAX_ENTRIES

_cache: "OrderedDict[Hashable, JoinMetrics]" = OrderedDict()
_ladder_cache: "OrderedDict[Hashable, str]" = OrderedDict()
_plan_cache: "OrderedDict[Hashable, JoinPlan]" = OrderedDict()
_enabled = True
_max_entries = DEFAULT_MAX_ENTRIES
_hits = 0
_misses = 0
_evictions = 0
_plan_hits = 0
_plan_misses = 0
_plan_evictions = 0
_ladder_hits = 0
_ladder_misses = 0
_ladder_evictions = 0
#: Optional persistence backend (see :func:`attach_store`): an object
#: with the duck-typed ``estimate_for_key`` / ``remember_estimate`` /
#: ``ladder_for_key`` / ``remember_ladder`` / ``plan_for_key`` /
#: ``remember_plan`` methods — in practice a
#: :class:`repro.core.sample_store.SampleStore`.
_store: Any = None
_store_hits = 0
_plan_store_hits = 0
_ladder_store_hits = 0


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of the estimate cache (plan and
    ladder caches tracked separately so estimate-path accounting stays
    comparable across releases).  ``store_hits`` counters record misses
    answered by an attached persistent store instead of recomputation —
    such a miss increments both ``misses`` and the store counter."""

    hits: int
    misses: int
    entries: int
    plan_hits: int = 0
    plan_misses: int = 0
    plan_entries: int = 0
    evictions: int = 0
    plan_evictions: int = 0
    ladder_hits: int = 0
    ladder_misses: int = 0
    ladder_evictions: int = 0
    ladder_entries: int = 0
    store_hits: int = 0
    plan_store_hits: int = 0
    ladder_store_hits: int = 0
    max_entries: int = DEFAULT_MAX_ENTRIES

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def configure(*, enabled: bool, max_entries: int | None = None) -> None:
    """Enable/disable the cache (disabling also clears it) and, when
    ``max_entries`` is given, re-bound each cache's LRU capacity.
    Shrinking below the current population evicts oldest-first.

    Reconfiguring starts a fresh accounting epoch: counters are reset
    via :func:`reset_stats` *before* any trimming, so hit-rates
    measured after a ``configure`` reflect only that configuration
    (evictions caused by the shrink itself are counted in the new
    epoch).  Cached entries survive unless the cache is disabled.
    """
    global _enabled, _max_entries
    _enabled = enabled
    reset_stats()
    if max_entries is not None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        _max_entries = max_entries
        for cache, counter in (
            (_cache, "_evictions"),
            (_plan_cache, "_plan_evictions"),
            (_ladder_cache, "_ladder_evictions"),
        ):
            while len(cache) > _max_entries:
                cache.popitem(last=False)
                globals()[counter] += 1
    if not enabled:
        clear()


def enabled() -> bool:
    return _enabled


def max_entries() -> int:
    return _max_entries


def clear() -> None:
    """Drop every cached estimate and reset the counters."""
    _cache.clear()
    _ladder_cache.clear()
    _plan_cache.clear()
    reset_stats()


def reset_stats() -> None:
    """Zero every hit/miss/eviction counter without touching entries.

    Called by :func:`configure` so reconfigurations don't pollute
    ``bench perf`` hit-rates with counts from a previous configuration;
    also available directly for benchmarks that want per-phase
    accounting over a warm cache.
    """
    global _hits, _misses, _evictions, _plan_hits, _plan_misses
    global _plan_evictions, _ladder_hits, _ladder_misses, _ladder_evictions
    global _store_hits, _plan_store_hits, _ladder_store_hits
    _hits = 0
    _misses = 0
    _evictions = 0
    _plan_hits = 0
    _plan_misses = 0
    _plan_evictions = 0
    _ladder_hits = 0
    _ladder_misses = 0
    _ladder_evictions = 0
    _store_hits = 0
    _plan_store_hits = 0
    _ladder_store_hits = 0


def stats() -> CacheStats:
    return CacheStats(
        hits=_hits,
        misses=_misses,
        entries=len(_cache),
        plan_hits=_plan_hits,
        plan_misses=_plan_misses,
        plan_entries=len(_plan_cache),
        evictions=_evictions,
        plan_evictions=_plan_evictions,
        ladder_hits=_ladder_hits,
        ladder_misses=_ladder_misses,
        ladder_evictions=_ladder_evictions,
        ladder_entries=len(_ladder_cache),
        store_hits=_store_hits,
        plan_store_hits=_plan_store_hits,
        ladder_store_hits=_ladder_store_hits,
        max_entries=_max_entries,
    )


# ---------------------------------------------------------------------------
# Cross-process persistence (opt-in; see repro.core.sample_store)
# ---------------------------------------------------------------------------
def attach_store(store: Any) -> None:
    """Back the caches with a persistent store.

    ``store`` is duck-typed (``estimate_for_key`` / ``remember_estimate``
    and the ladder/plan analogues) — in practice a
    :class:`repro.core.sample_store.SampleStore`.  While attached, a
    cache miss consults the store before recomputing (a hit there is
    counted in ``stats().store_hits`` *in addition to* the miss, and
    promoted into the in-memory LRU), and every newly computed entry is
    written through so a later process can warm-start.  Stored values
    are exact JSON round-trips of recomputation, so attaching a store
    never changes results — only where they come from.
    """
    global _store
    _store = store


def detach_store() -> None:
    global _store
    _store = None


def attached_store() -> Any:
    return _store


def make_key(
    fingerprint: Hashable, spec: Hashable, materialize: bool, kwargs: dict[str, Any]
) -> Hashable | None:
    """Build a cache key, or ``None`` when any component is unhashable
    (custom strategies with exotic kwargs fall back to recomputing)."""
    try:
        key = (fingerprint, spec, materialize, tuple(sorted(kwargs.items())))
        hash(key)
    except TypeError:
        return None
    return key


def lookup(key: Hashable | None) -> "JoinMetrics | None":
    """A defensive copy of the cached metrics, or ``None`` on a miss.
    A hit refreshes the entry's LRU recency; with a persistent store
    attached, a miss consults the store and promotes its answer."""
    global _hits, _misses, _store_hits
    if not _enabled or key is None:
        return None
    cached = _cache.get(key)
    if cached is None:
        _misses += 1
        if _store is not None:
            persisted = _store.estimate_for_key(key)
            if persisted is not None:
                _store_hits += 1
                _insert(key, persisted)
                return _copy(persisted)
        return None
    _cache.move_to_end(key)
    _hits += 1
    return _copy(cached)


def store(key: Hashable | None, metrics: "JoinMetrics") -> None:
    if not _enabled or key is None:
        return
    _insert(key, metrics)
    if _store is not None:
        _store.remember_estimate(key, metrics)


def _insert(key: Hashable, metrics: "JoinMetrics") -> None:
    global _evictions
    if key in _cache:
        _cache.move_to_end(key)
    elif len(_cache) >= _max_entries:
        _cache.popitem(last=False)
        _evictions += 1
    _cache[key] = _copy(metrics)


def _copy(metrics: "JoinMetrics") -> "JoinMetrics":
    return replace(metrics, phases=dict(metrics.phases), notes=dict(metrics.notes))


# ---------------------------------------------------------------------------
# Planner-ladder memoization
# ---------------------------------------------------------------------------
def cached_ladder_choice(
    key: Hashable, compute: Callable[[], str]
) -> str:
    """Memoize the planner ladder's strategy choice.

    The ladder's ``fits_in`` walk is pure in (spec, system,
    available_bytes); admission control re-runs it on every scheduling
    event and the determinism re-run repeats the whole sequence.
    """
    global _ladder_hits, _ladder_misses, _ladder_evictions, _ladder_store_hits
    if not _enabled:
        return compute()
    try:
        hash(key)
    except TypeError:
        return compute()
    choice = _ladder_cache.get(key)
    if choice is None:
        _ladder_misses += 1
        persisted = _store.ladder_for_key(key) if _store is not None else None
        if persisted is not None:
            _ladder_store_hits += 1
            choice = persisted
        else:
            choice = compute()
            if _store is not None:
                _store.remember_ladder(key, choice)
        if len(_ladder_cache) >= _max_entries:
            _ladder_cache.popitem(last=False)
            _ladder_evictions += 1
        _ladder_cache[key] = choice
    else:
        _ladder_cache.move_to_end(key)
        _ladder_hits += 1
    return choice


# ---------------------------------------------------------------------------
# Plan memoization
# ---------------------------------------------------------------------------
def cached_plan(
    key: Hashable | None, compute: Callable[[], "JoinPlan"]
) -> "JoinPlan":
    """Memoize an analytic ``prepare()`` plan.

    ``prepare`` is pure in the strategy fingerprint plus (spec,
    materialize) — the same purity contract estimates rely on, with the
    per-device memory grant captured by the fingerprint's constructor
    extras (``device_budget``).  The returned plan is a **shared,
    read-only** object: callers that need to adapt tasks (the serving
    scheduler's qid/device namespacing) must build new ``Task``
    instances rather than mutate the cached ones.  ``key=None`` (an
    unhashable fingerprint) and a disabled cache both recompute.
    Hits/misses are tracked separately from the estimate counters
    (``stats().plan_hits`` / ``plan_misses`` / ``plan_entries``), so a
    key mismatch that silently stops the cache from hitting shows up
    in the accounting.
    """
    global _plan_hits, _plan_misses, _plan_evictions, _plan_store_hits
    if not _enabled or key is None:
        return compute()
    plan = _plan_cache.get(key)
    if plan is None:
        _plan_misses += 1
        persisted = _store.plan_for_key(key) if _store is not None else None
        if persisted is not None:
            _plan_store_hits += 1
            plan = persisted
        else:
            plan = compute()
            if _store is not None:
                _store.remember_plan(key, plan)
        if len(_plan_cache) >= _max_entries:
            _plan_cache.popitem(last=False)
            _plan_evictions += 1
        _plan_cache[key] = plan
    else:
        _plan_cache.move_to_end(key)
        _plan_hits += 1
    return plan
