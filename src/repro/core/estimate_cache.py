"""Process-wide memoization of analytic strategy estimates.

The analytic ``estimate()`` paths are pure functions of (strategy
configuration, workload spec, keyword arguments): the same inputs always
produce the same :class:`~repro.core.results.JoinMetrics`.  The serving
layer re-plans every admitted query (solo baseline, degraded-placement
estimate, wait-vs-degrade comparison), the planner ladder estimates the
same spec it just sized, and the benchmark sweeps revisit identical
workloads across concurrency levels and determinism re-runs — so the
same kernel costs used to be recomputed hundreds of times per run.

This module provides one shared cache:

* :func:`lookup` / :func:`store` — consulted by
  :meth:`repro.core.strategy.PipelinedJoinStrategy.estimate`; keys are
  built from the strategy's *fingerprint* (class, key, system spec,
  calibration, config, constructor extras), the frozen
  :class:`~repro.data.spec.JoinSpec`, and the estimate kwargs.  Any
  unhashable component simply bypasses the cache;
* :func:`cached_ladder_choice` — memoizes the planner ladder's
  feasibility decision per (spec, system, available-bytes);
* :func:`cached_plan` — memoizes ``prepare()``'s analytic
  :class:`~repro.core.strategy.JoinPlan` per strategy fingerprint.
  Plan preparation (chunking, working-set packing, task-graph
  construction) dominated the serving wall clock once estimates were
  cached; the sharded serving layer re-prepares the same (spec,
  placement, memory-grant) combination on every device-placement
  candidate and determinism re-run, so plans are memoized the same way.
  Cached plans are **shared, read-only** objects: callers must not
  mutate ``plan.tasks`` / ``plan.resources`` (the serving scheduler
  only reads them, re-materializing namespaced copies of the tasks);
* :func:`clear` / :func:`stats` / :func:`configure` — test and
  benchmark hooks.

Per-device memory budgets are part of every key already: a strategy's
fingerprint includes its constructor extras (co-processing's
``device_budget`` grant), and the ladder key includes the free bytes
the admission decision saw — so a sharded fleet's devices, each with
its own headroom, share cache entries exactly when their placement
inputs coincide and never otherwise.

Metrics are stored and returned as defensive copies (their ``phases`` /
``notes`` dicts are mutable), so callers can annotate a result without
poisoning later hits.  Correctness does not depend on the cache: with
``configure(enabled=False)`` every estimate recomputes and must produce
the same numbers — asserted by ``tests/core/test_estimate_cache.py``
and by ``bench/regress.py``'s cold-vs-hit column on every strategy.

Caveats: the cache is **process-wide mutable state**.  Deterministic
replay is unaffected (a hit returns exactly what recomputation would),
but wall-clock benchmarks must :func:`clear` between repetitions or
they measure memoization, and tests that disable the cache should
re-enable it (``configure(enabled=True)``) to avoid slowing the rest
of the suite.  All cached metrics are in the cost model's native
units: simulated seconds and bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Hashable

if TYPE_CHECKING:
    from repro.core.results import JoinMetrics
    from repro.core.strategy import JoinPlan

#: Entry cap — far above any benchmark's working set, only a safety net
#: against unbounded growth in a long-lived serving process.
MAX_ENTRIES = 65536

_cache: dict[Hashable, "JoinMetrics"] = {}
_ladder_cache: dict[Hashable, str] = {}
_plan_cache: dict[Hashable, "JoinPlan"] = {}
_enabled = True
_hits = 0
_misses = 0
_plan_hits = 0
_plan_misses = 0


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of the estimate cache (and the plan cache,
    tracked separately so estimate-path accounting stays comparable
    across releases)."""

    hits: int
    misses: int
    entries: int
    plan_hits: int = 0
    plan_misses: int = 0
    plan_entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def configure(*, enabled: bool) -> None:
    """Enable or disable the cache (disabling also clears it)."""
    global _enabled
    _enabled = enabled
    if not enabled:
        clear()


def enabled() -> bool:
    return _enabled


def clear() -> None:
    """Drop every cached estimate and reset the counters."""
    global _hits, _misses, _plan_hits, _plan_misses
    _cache.clear()
    _ladder_cache.clear()
    _plan_cache.clear()
    _hits = 0
    _misses = 0
    _plan_hits = 0
    _plan_misses = 0


def stats() -> CacheStats:
    return CacheStats(
        hits=_hits,
        misses=_misses,
        entries=len(_cache),
        plan_hits=_plan_hits,
        plan_misses=_plan_misses,
        plan_entries=len(_plan_cache),
    )


def make_key(
    fingerprint: Hashable, spec: Hashable, materialize: bool, kwargs: dict[str, Any]
) -> Hashable | None:
    """Build a cache key, or ``None`` when any component is unhashable
    (custom strategies with exotic kwargs fall back to recomputing)."""
    try:
        key = (fingerprint, spec, materialize, tuple(sorted(kwargs.items())))
        hash(key)
    except TypeError:
        return None
    return key


def lookup(key: Hashable | None) -> "JoinMetrics | None":
    """A defensive copy of the cached metrics, or ``None`` on a miss."""
    global _hits, _misses
    if not _enabled or key is None:
        return None
    cached = _cache.get(key)
    if cached is None:
        _misses += 1
        return None
    _hits += 1
    return _copy(cached)


def store(key: Hashable | None, metrics: "JoinMetrics") -> None:
    if not _enabled or key is None:
        return
    if len(_cache) >= MAX_ENTRIES:
        _cache.clear()
    _cache[key] = _copy(metrics)


def _copy(metrics: "JoinMetrics") -> "JoinMetrics":
    return replace(metrics, phases=dict(metrics.phases), notes=dict(metrics.notes))


# ---------------------------------------------------------------------------
# Planner-ladder memoization
# ---------------------------------------------------------------------------
def cached_ladder_choice(
    key: Hashable, compute: Callable[[], str]
) -> str:
    """Memoize the planner ladder's strategy choice.

    The ladder's ``fits_in`` walk is pure in (spec, system,
    available_bytes); admission control re-runs it on every scheduling
    event and the determinism re-run repeats the whole sequence.
    """
    if not _enabled:
        return compute()
    try:
        hash(key)
    except TypeError:
        return compute()
    choice = _ladder_cache.get(key)
    if choice is None:
        choice = compute()
        if len(_ladder_cache) >= MAX_ENTRIES:
            _ladder_cache.clear()
        _ladder_cache[key] = choice
    return choice


# ---------------------------------------------------------------------------
# Plan memoization
# ---------------------------------------------------------------------------
def cached_plan(
    key: Hashable | None, compute: Callable[[], "JoinPlan"]
) -> "JoinPlan":
    """Memoize an analytic ``prepare()`` plan.

    ``prepare`` is pure in the strategy fingerprint plus (spec,
    materialize) — the same purity contract estimates rely on, with the
    per-device memory grant captured by the fingerprint's constructor
    extras (``device_budget``).  The returned plan is a **shared,
    read-only** object: callers that need to adapt tasks (the serving
    scheduler's qid/device namespacing) must build new ``Task``
    instances rather than mutate the cached ones.  ``key=None`` (an
    unhashable fingerprint) and a disabled cache both recompute.
    Hits/misses are tracked separately from the estimate counters
    (``stats().plan_hits`` / ``plan_misses`` / ``plan_entries``), so a
    key mismatch that silently stops the cache from hitting shows up
    in the accounting.
    """
    global _plan_hits, _plan_misses
    if not _enabled or key is None:
        return compute()
    plan = _plan_cache.get(key)
    if plan is None:
        _plan_misses += 1
        plan = compute()
        if len(_plan_cache) >= MAX_ENTRIES:
            _plan_cache.clear()
        _plan_cache[key] = plan
    else:
        _plan_hits += 1
    return plan
