"""The non-partitioned GPU hash join strategy (§V-B comparison point).

Wraps the chaining and perfect-hash kernels behind the same strategy
interface as :class:`~repro.core.gpu_partitioned.GpuPartitionedJoin` so
the evaluation harness can sweep both families uniformly.
"""

from __future__ import annotations

from repro.core.config import GpuJoinConfig
from repro.core.gpu_partitioned import OUT_TUPLE_BYTES, spec_from_relations
from repro.core.results import JoinRunResult
from repro.core.strategy import (
    GPU_NONPARTITIONED,
    GPU_NONPARTITIONED_PERFECT,
    JoinPlan,
    PipelinedJoinStrategy,
    register_strategy,
)
from repro.data import stats as stats_mod
from repro.data.relation import Relation
from repro.data.spec import JoinSpec
from repro.errors import DeviceMemoryOverflowError, InvalidConfigError
from repro.gpusim.calibration import Calibration
from repro.gpusim.cost import GpuCostModel, KernelCost
from repro.gpusim.spec import SystemSpec
from repro.kernels.aggregate import aggregate_pairs
from repro.kernels.nonpartitioned import CHAINING, PERFECT, chaining_join, perfect_hash_join
from repro.pipeline.tasks import GPU


@register_strategy
class GpuNonPartitionedJoin(PipelinedJoinStrategy):
    """Single global hash table in device memory (chaining or perfect)."""

    key = GPU_NONPARTITIONED

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
        config: GpuJoinConfig | None = None,
        *,
        variant: str = CHAINING,
    ):
        # The non-partitioned kernels take no partitioning config; the
        # parameter exists for the uniform strategy-factory signature.
        if variant not in (CHAINING, PERFECT):
            raise InvalidConfigError(f"unknown variant: {variant!r}")
        self.system = system or SystemSpec()
        self.config = config
        self.cost_model = GpuCostModel(self.system, calibration)
        self.variant = variant

    @property
    def name(self) -> str:
        if self.variant == PERFECT:
            return "GPU Non-partitioned w/ perfect hash"
        return "GPU Non-partitioned"

    def _fingerprint_extras(self) -> tuple:
        return (self.variant,)

    # ------------------------------------------------------------------
    @classmethod
    def device_bytes_needed(cls, spec: JoinSpec, system: SystemSpec) -> int:
        """Inputs + the global hash table must be device resident."""
        return spec.build.nbytes + spec.probe.nbytes + spec.build.n * 16

    def _check_device_memory(self, spec: JoinSpec) -> None:
        needed = self.device_bytes_needed(spec, self.system)
        if needed > self.system.gpu.device_memory:
            raise DeviceMemoryOverflowError(
                f"non-partitioned join needs {needed / 1e9:.2f} GB but the "
                f"device has {self.system.gpu.device_memory / 1e9:.2f} GB"
            )

    def _gather_cost(self, spec: JoinSpec, matches: float) -> KernelCost:
        """Late materialization: probe identifiers stay in scan order, so
        probe-side attributes stream sequentially; build-side matches are
        in hash order and gather randomly (§V-B, Figs 9–10)."""
        cost = KernelCost.zero()
        if spec.probe.late_payload_bytes:
            cost = cost + self.cost_model.gather_payload(
                matches, spec.probe.late_payload_bytes, random=False
            )
        if spec.build.late_payload_bytes:
            cost = cost + self.cost_model.gather_payload(
                matches, spec.build.late_payload_bytes, random=True
            )
        return cost

    def _plan(
        self,
        spec: JoinSpec,
        build_cost: KernelCost,
        probe_cost: KernelCost,
        gather_cost: KernelCost,
        matches: float,
        *,
        materialize: bool,
    ) -> JoinPlan:
        """Build → probe → gather, serial on the GPU compute queue."""
        plan = JoinPlan(
            strategy=self.name,
            spec=spec,
            phases=("build", "probe", "gather"),
            matches=matches,
            materialize=materialize,
            notes={"tuple_bytes": float(spec.build.tuple_bytes)},
        )
        build = plan.add("build", GPU, build_cost.seconds, phase="build")
        probe = plan.add("probe", GPU, probe_cost.seconds, [build], phase="probe")
        plan.add("gather", GPU, gather_cost.seconds, [probe], phase="gather")
        return plan

    # ------------------------------------------------------------------
    def prepare(self, spec: JoinSpec, *, materialize: bool = False) -> JoinPlan:
        self._check_device_memory(spec)
        calib = self.cost_model.calib
        matches = stats_mod.expected_join_cardinality(spec)
        if self.variant == PERFECT:
            build_cost = KernelCost(
                self.cost_model.scan_seconds(spec.build.nbytes)
                + calib.kernel_launch_seconds
            )
            accesses = calib.perfect_hash_accesses_per_probe
        else:
            build_cost = self.cost_model.nonpartitioned_build(
                spec.build.n, spec.build.tuple_bytes
            )
            accesses = calib.nonpartitioned_accesses_per_probe
        probe_cost = self.cost_model.nonpartitioned_probe(
            spec.probe.n,
            spec.build.n,
            spec.probe.tuple_bytes,
            accesses_per_probe=accesses,
            matches=matches,
            materialize=materialize,
            out_tuple_bytes=OUT_TUPLE_BYTES,
        )
        gather_cost = self._gather_cost(spec, matches)
        return self._plan(
            spec, build_cost, probe_cost, gather_cost, matches, materialize=materialize
        )

    # ------------------------------------------------------------------
    def execute(
        self,
        build: Relation,
        probe: Relation,
        *,
        materialize: bool = False,
    ) -> JoinRunResult:
        if self.variant == PERFECT:
            result = perfect_hash_join(
                build,
                probe,
                self.cost_model,
                materialize=materialize,
                out_tuple_bytes=OUT_TUPLE_BYTES,
            )
        else:
            result = chaining_join(
                build,
                probe,
                self.cost_model,
                materialize=materialize,
                out_tuple_bytes=OUT_TUPLE_BYTES,
            )
        spec = spec_from_relations(build, probe)
        gather_cost = self._gather_cost(spec, float(result.matches))
        metrics = self.simulate(
            self._plan(
                spec,
                result.build_cost,
                result.probe_cost,
                gather_cost,
                float(result.matches),
                materialize=materialize,
            )
        )
        if materialize:
            return JoinRunResult(
                metrics=metrics,
                build_payloads=result.build_payloads,
                probe_payloads=result.probe_payloads,
            )
        return JoinRunResult(
            metrics=metrics,
            aggregate=aggregate_pairs(result.build_payloads, result.probe_payloads),
        )


@register_strategy
class GpuPerfectHashJoin(GpuNonPartitionedJoin):
    """The perfect-hash variant under its own registry key."""

    key = GPU_NONPARTITIONED_PERFECT

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
        config: GpuJoinConfig | None = None,
    ):
        super().__init__(system, calibration, config, variant=PERFECT)
