"""The in-GPU partitioned radix hash join (§III) — the paper's core.

Pipeline: multi-pass radix partitioning of both relations into bucket
chains sized for shared memory, per-co-partition build (Listing 2) and
probe (chaining hash, §III-C, or ballot NLJ, §III-B), warp-buffered
output (§III-C), and optional late-materialization gathers.

Both execution paths are provided:

* :meth:`GpuPartitionedJoin.run` — functional execution on materialized
  relations; produces the actual join output plus metrics whose costs are
  derived from the *observed* partition statistics;
* :meth:`GpuPartitionedJoin.estimate` — the same cost formulas fed with
  *expected* statistics of a :class:`~repro.data.spec.JoinSpec`, usable
  at paper scale.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import HASH_PROBE, NLJ_PROBE, GpuJoinConfig, default_config
from repro.core.results import JoinRunResult
from repro.core.strategy import (
    GPU_RESIDENT,
    JoinPlan,
    PipelinedJoinStrategy,
    register_strategy,
)
from repro.data import stats as stats_mod
from repro.data.relation import Relation
from repro.data.spec import Distribution, JoinSpec
from repro.errors import DeviceMemoryOverflowError
from repro.gpusim.calibration import Calibration
from repro.gpusim.cost import CoPartitionStats, GpuCostModel, KernelCost
from repro.gpusim.spec import SystemSpec
from repro.kernels.aggregate import aggregate_pairs
from repro.kernels.build_hash import build_copartition_tables
from repro.kernels.common import key_bit_width
from repro.kernels.probe_hash import probe_copartitions
from repro.kernels.probe_nlj import nlj_copartitions
from repro.kernels.radix_partition import (
    bucket_skew_imbalance,
    estimate_partition_cost,
    gpu_radix_partition,
)
from repro.pipeline.tasks import GPU

#: Result tuples carry the two 4-byte payloads (tuple identifiers).
OUT_TUPLE_BYTES = 8.0

#: Workspace reserved on the device beyond the data itself: bucket pool
#: slack, partition metadata, and result buffers.  Sized so the resident
#: strategy tops out at 128 M-tuple 1:1 inputs, the limit the paper
#: reports for its implementation (§V-C, Fig 15).
GPU_WORKSPACE_RESERVED = 1 << 30


def gpu_resident_bytes_needed(spec: JoinSpec) -> float:
    """Device footprint of the in-GPU strategy for a workload.

    Inputs plus their partitioned (bucket-chain) copies with ~12.5%
    pool slack, plus the fixed workspace reservation.
    """
    data = spec.build.nbytes + spec.probe.nbytes
    return 2.25 * data + GPU_WORKSPACE_RESERVED


@register_strategy
class GpuPartitionedJoin(PipelinedJoinStrategy):
    """GPU-resident partitioned hash/NLJ join."""

    key = GPU_RESIDENT
    name = "GPU Partitioned"

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
        config: GpuJoinConfig | None = None,
    ):
        self.system = system or SystemSpec()
        self.config = config or default_config()
        self.cost_model = GpuCostModel(self.system, calibration)
        self.config.validate_against(self.system.gpu, tuple_bytes=8)

    # ------------------------------------------------------------------
    # Shared cost assembly
    # ------------------------------------------------------------------
    def _join_cost(
        self,
        stats: CoPartitionStats,
        *,
        tuple_bytes: float,
        radix_bits: int,
        key_bits: int,
        materialize: bool,
        charge_build: bool = True,
    ) -> KernelCost:
        cfg = self.config
        if cfg.probe_kernel == NLJ_PROBE:
            return self.cost_model.join_copartitions_nlj(
                stats,
                tuple_bytes,
                differing_bits=max(1, key_bits - radix_bits),
                threads_per_block=cfg.threads_per_block_join,
                materialize=materialize,
                out_tuple_bytes=OUT_TUPLE_BYTES,
            )
        return self.cost_model.join_copartitions_hash(
            stats,
            tuple_bytes,
            ht_slots=cfg.ht_slots,
            elements_per_block=cfg.elements_per_block,
            threads_per_block=cfg.threads_per_block_join,
            use_shared_memory=cfg.use_shared_memory,
            materialize=materialize,
            out_tuple_bytes=OUT_TUPLE_BYTES,
            charge_build=charge_build,
        )

    def _join_cost_evaluator(
        self,
        build_sizes: np.ndarray,
        probe_sizes: np.ndarray,
        total_matches: float,
        *,
        tuple_bytes: float,
        radix_bits: int,
        key_bits: int,
        materialize: bool,
        charge_build: bool = True,
    ):
        """Scaled twin of :meth:`_join_cost` for the out-of-GPU chunk
        loops: the build side is fixed, the probe side is ``probe_sizes``
        times a scalar chunk fraction.  Returns an evaluator whose
        ``seconds(scale)`` agrees with :meth:`_join_cost` on the
        correspondingly scaled stats within 1e-9 (memoized per scale)."""
        cfg = self.config
        if cfg.probe_kernel == NLJ_PROBE:
            # The NLJ kernel always charges the build copy (as does
            # :meth:`_join_cost`, which ignores ``charge_build`` for it).
            return self.cost_model.nlj_join_evaluator(
                build_sizes,
                probe_sizes,
                total_matches,
                tuple_bytes,
                differing_bits=max(1, key_bits - radix_bits),
                threads_per_block=cfg.threads_per_block_join,
                materialize=materialize,
                out_tuple_bytes=OUT_TUPLE_BYTES,
            )
        return self.cost_model.hash_join_evaluator(
            build_sizes,
            probe_sizes,
            total_matches,
            tuple_bytes,
            ht_slots=cfg.ht_slots,
            elements_per_block=cfg.elements_per_block,
            threads_per_block=cfg.threads_per_block_join,
            use_shared_memory=cfg.use_shared_memory,
            materialize=materialize,
            out_tuple_bytes=OUT_TUPLE_BYTES,
            charge_build=charge_build,
        )

    def _gather_cost(self, spec: JoinSpec, matches: float) -> KernelCost:
        """Late-materialization gathers: partitioning reorders *both*
        sides, so every wide attribute fetch is a random access (§V-B,
        Figures 9 and 10)."""
        cost = KernelCost.zero()
        if spec.probe.late_payload_bytes:
            cost = cost + self.cost_model.gather_payload(
                matches, spec.probe.late_payload_bytes, random=True
            )
        if spec.build.late_payload_bytes:
            cost = cost + self.cost_model.gather_payload(
                matches, spec.build.late_payload_bytes, random=True
            )
        return cost

    @classmethod
    def device_bytes_needed(cls, spec: JoinSpec, system: SystemSpec) -> int:
        """Both relations plus partitioned copies must be device resident.

        Rounded up so the admission gate can never accept a spec that
        :meth:`_check_device_memory` (which compares the exact float)
        would then reject."""
        return math.ceil(gpu_resident_bytes_needed(spec))

    def _check_device_memory(self, spec: JoinSpec) -> None:
        """In-GPU execution holds inputs plus partitioned copies."""
        needed = gpu_resident_bytes_needed(spec)
        if needed > self.system.gpu.device_memory:
            raise DeviceMemoryOverflowError(
                f"GPU-resident join needs {needed / 1e9:.2f} GB (inputs, "
                f"partitioned copies, bucket pool and output workspace) "
                f"but the device has "
                f"{self.system.gpu.device_memory / 1e9:.2f} GB"
            )

    def _plan(
        self,
        spec: JoinSpec,
        partition_cost: KernelCost,
        join_cost: KernelCost,
        gather_cost: KernelCost,
        matches: float,
        *,
        materialize: bool,
    ) -> JoinPlan:
        """The in-GPU strategy is a serial chain on the compute queue."""
        plan = JoinPlan(
            strategy=self.name,
            spec=spec,
            phases=("partition", "join", "gather"),
            matches=matches,
            materialize=materialize,
            notes={"tuple_bytes": float(spec.build.tuple_bytes)},
        )
        partition = plan.add("partition", GPU, partition_cost.seconds, phase="partition")
        join = plan.add("join", GPU, join_cost.seconds, [partition], phase="join")
        plan.add("gather", GPU, gather_cost.seconds, [join], phase="gather")
        return plan

    # ------------------------------------------------------------------
    # Analytic path
    # ------------------------------------------------------------------
    def prepare(self, spec: JoinSpec, *, materialize: bool = False) -> JoinPlan:
        """Analytic plan for a workload spec (paper-scale capable)."""
        self._check_device_memory(spec)
        cfg = self.config
        bits_per_pass = cfg.bits_per_pass_for(spec.build.n)
        total_bits = sum(bits_per_pass)

        build_sizes = stats_mod.expected_partition_sizes(spec.build, total_bits)
        probe_sizes = stats_mod.expected_partition_sizes(spec.probe, total_bits)
        partition_cost = estimate_partition_cost(
            spec.build.n,
            spec.build.tuple_bytes,
            bits_per_pass,
            self.cost_model,
            imbalance=bucket_skew_imbalance(build_sizes),
        ) + estimate_partition_cost(
            spec.probe.n,
            spec.probe.tuple_bytes,
            bits_per_pass,
            self.cost_model,
            imbalance=bucket_skew_imbalance(probe_sizes),
        )
        matches = stats_mod.expected_join_cardinality(spec)
        stats = CoPartitionStats(
            build_sizes=build_sizes,
            probe_sizes=probe_sizes,
            matches=CoPartitionStats.split_matches(build_sizes, probe_sizes, matches),
        )
        key_bits = key_bit_width(max(spec.build.distinct, spec.probe.distinct) - 1)
        join_cost = self._join_cost(
            stats,
            tuple_bytes=spec.build.tuple_bytes,
            radix_bits=total_bits,
            key_bits=key_bits,
            materialize=materialize,
        )
        gather_cost = self._gather_cost(spec, matches)
        return self._plan(
            spec,
            partition_cost,
            join_cost,
            gather_cost,
            matches,
            materialize=materialize,
        )

    # ------------------------------------------------------------------
    # Functional path
    # ------------------------------------------------------------------
    def execute(
        self,
        build: Relation,
        probe: Relation,
        *,
        materialize: bool = False,
    ) -> JoinRunResult:
        """Execute the join on materialized relations."""
        cfg = self.config
        bits_per_pass = cfg.bits_per_pass_for(build.num_tuples)
        total_bits = sum(bits_per_pass)

        part_build, cost_b = gpu_radix_partition(
            build, bits_per_pass, self.cost_model, bucket_capacity=cfg.bucket_capacity
        )
        part_probe, cost_p = gpu_radix_partition(
            probe, bits_per_pass, self.cost_model, bucket_capacity=cfg.bucket_capacity
        )
        partition_cost = cost_b + cost_p

        if cfg.probe_kernel == NLJ_PROBE:
            key_bits = key_bit_width(
                int(max(build.key.max(initial=0), probe.key.max(initial=0)))
            )
            result = nlj_copartitions(
                part_build,
                part_probe,
                key_bits=key_bits,
                threads_per_block=cfg.threads_per_block_join,
                cost_model=self.cost_model,
                materialize=materialize,
                out_tuple_bytes=OUT_TUPLE_BYTES,
            )
        else:
            tables, _ = build_copartition_tables(
                part_build,
                nslots=cfg.ht_slots,
                elements_per_block=cfg.elements_per_block,
                cost_model=self.cost_model,
            )
            result = probe_copartitions(
                tables,
                part_probe,
                elements_per_block=cfg.elements_per_block,
                threads_per_block=cfg.threads_per_block_join,
                cost_model=self.cost_model,
                use_shared_memory=cfg.use_shared_memory,
                materialize=materialize,
                out_tuple_bytes=OUT_TUPLE_BYTES,
            )

        spec = spec_from_relations(build, probe)
        gather_cost = self._gather_cost(spec, float(result.matches))
        metrics = self.simulate(
            self._plan(
                spec,
                partition_cost,
                result.cost,
                gather_cost,
                float(result.matches),
                materialize=materialize,
            )
        )
        if materialize:
            return JoinRunResult(
                metrics=metrics,
                build_payloads=result.build_payloads,
                probe_payloads=result.probe_payloads,
            )
        return JoinRunResult(
            metrics=metrics,
            aggregate=aggregate_pairs(result.build_payloads, result.probe_payloads),
        )


def spec_from_relations(build: Relation, probe: Relation) -> JoinSpec:
    """Describe materialized relations for the shared cost helpers."""
    from repro.data.spec import RelationSpec

    def describe(rel: Relation) -> "RelationSpec":
        distinct = rel.distinct_keys()
        if rel.num_tuples == 0:
            # Degenerate empty input: describe as a single-tuple domain so
            # spec validation holds; costs scale by actual counts anyway.
            return RelationSpec(
                n=1,
                payload_bytes=rel.payload_bytes,
                late_payload_bytes=rel.late_payload_bytes,
            )
        if distinct == rel.num_tuples:
            return RelationSpec(
                n=rel.num_tuples,
                payload_bytes=rel.payload_bytes,
                late_payload_bytes=rel.late_payload_bytes,
            )
        return RelationSpec(
            n=rel.num_tuples,
            distinct=distinct,
            distribution=Distribution.UNIFORM,
            payload_bytes=rel.payload_bytes,
            late_payload_bytes=rel.late_payload_bytes,
        )

    return JoinSpec(build=describe(build), probe=describe(probe))
