"""Learned cost model: a regression fast path in front of the analytic model.

The analytic cost model of :mod:`repro.core.cost` is exact but not
free — estimating a strategy means building its phase plan and walking
the kernel evaluators.  Once a fleet has served a few thousand queries,
the :mod:`~repro.core.sample_store` holds enough ``(working-set
features, simulated seconds)`` pairs to fit a closed-form least-squares
regression *per strategy fingerprint*, and that regression can answer
"roughly how long will this run?" in a dozen float multiplies.

Two opt-in hooks consume the fitted model (both inert unless a model is
installed via :func:`set_model` **and** activated via
:func:`activation` — the ``learned=True`` / ``--learned`` flag):

* :func:`fast_estimate` — consulted by
  ``PipelinedJoinStrategy.estimate`` *before* the estimate cache; when
  the model covers the strategy's fingerprint it answers from the
  regression and the analytic model never runs.  Learned metrics are
  **never written to the estimate cache**, so disabling the flag
  instantly restores bit-identical analytic behaviour.
* :func:`filter_ladder` — a first-pass filter for the planner ladder:
  among the rungs whose capacity check passes, pick the one the model
  predicts fastest instead of the first feasible rung.

Determinism: the fit itself is deterministic (pure-Python normal
equations, stable sample order from the store), so two processes
fitting the same store produce the same coefficients, and a learned run
is reproducible end-to-end.  What the learned path does *not* promise
is agreement with the analytic model: predictions are approximations,
so ladder choices may diverge — ``bench/regress.py`` bounds that
divergence and asserts learned-on serving still satisfies every
conservation/arena invariant.  See ``docs/cost_model.md``.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from repro.core.sample_store import (
    FEATURE_NAMES,
    SampleStore,
    stable_digest,
    working_set_features,
)

if TYPE_CHECKING:
    from repro.data.spec import JoinSpec

#: Fewer samples than this for a fingerprint → no regression is fit for
#: it (normal equations would be rank-deficient and extrapolation wild).
MIN_SAMPLES = 8

#: Ridge damping, scaled by the Gram matrix diagonal: enough to keep
#: collinear features (tuple counts vs byte sizes) solvable, far too
#: small to bias well-conditioned fits.
RIDGE = 1e-8


def _solve(matrix: list[list[float]], rhs: list[float]) -> list[float] | None:
    """Gaussian elimination with partial pivoting; None if singular."""
    n = len(rhs)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-30:
            return None
        if pivot != col:
            aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = 1.0 / aug[col][col]
        for row in range(n):
            if row == col:
                continue
            factor = aug[row][col] * inv
            if factor == 0.0:
                continue
            for k in range(col, n + 1):
                aug[row][k] -= factor * aug[col][k]
    return [aug[i][n] / aug[i][i] for i in range(n)]


def fit_least_squares(
    rows: Sequence[Sequence[float]], targets: Sequence[float]
) -> list[float] | None:
    """Closed-form ridge least squares: solve ``(XᵀX + λI)β = Xᵀy``.

    Pure Python on the 6×6 normal equations — no numpy dependency, and
    deterministic across platforms for the sample counts a store holds.
    """
    if not rows:
        return None
    k = len(rows[0])
    gram = [[0.0] * k for _ in range(k)]
    moment = [0.0] * k
    for row, y in zip(rows, targets):
        for i in range(k):
            xi = row[i]
            if xi == 0.0:
                continue
            moment[i] += xi * y
            for j in range(i, k):
                gram[i][j] += xi * row[j]
    for i in range(k):
        for j in range(i):
            gram[i][j] = gram[j][i]
    scale = max(gram[i][i] for i in range(k)) or 1.0
    for i in range(k):
        gram[i][i] += RIDGE * scale
    return _solve(gram, moment)


@dataclass(frozen=True)
class StrategyModel:
    """Fitted regression for one strategy fingerprint."""

    fingerprint: str
    strategy: str
    coefficients: tuple[float, ...]
    n_samples: int

    def predict(self, features: Sequence[float]) -> float:
        total = 0.0
        for coef, x in zip(self.coefficients, features):
            total += coef * x
        # Simulated time is positive; a wild extrapolation below zero
        # would invert every downstream comparison.
        return max(total, 1e-9)


class LearnedCostModel:
    """Per-strategy-fingerprint regressions fit from a sample store."""

    def __init__(self, models: dict[str, StrategyModel]):
        self._models = dict(models)

    @classmethod
    def fit(cls, store: SampleStore, *, min_samples: int = MIN_SAMPLES) -> "LearnedCostModel":
        """Fit one regression per fingerprint with ``>= min_samples``
        observations; under-sampled fingerprints are left uncovered (the
        analytic model serves them)."""
        models: dict[str, StrategyModel] = {}
        for fingerprint, samples in store.samples_by_fingerprint().items():
            if len(samples) < min_samples:
                continue
            rows = [list(s.features) for s in samples]
            targets = [s.seconds for s in samples]
            coefficients = fit_least_squares(rows, targets)
            if coefficients is None:
                continue
            models[fingerprint] = StrategyModel(
                fingerprint=fingerprint,
                strategy=samples[0].strategy,
                coefficients=tuple(coefficients),
                n_samples=len(samples),
            )
        return cls(models)

    def __len__(self) -> int:
        return len(self._models)

    def covers(self, fingerprint: str | None) -> bool:
        return fingerprint is not None and fingerprint in self._models

    def model_for(self, fingerprint: str | None) -> StrategyModel | None:
        if fingerprint is None:
            return None
        return self._models.get(fingerprint)

    def predict(self, fingerprint: str | None, features: Sequence[float]) -> float | None:
        model = self.model_for(fingerprint)
        return None if model is None else model.predict(features)

    def predict_for(
        self, strategy: Any, spec: "JoinSpec", materialize: bool
    ) -> float | None:
        """Predicted seconds for one strategy instance, or None when the
        model does not cover its fingerprint."""
        fingerprint = stable_digest(strategy.cache_fingerprint())
        model = self.model_for(fingerprint)
        if model is None:
            return None
        return model.predict(working_set_features(spec, materialize))

    def summary(self) -> str:
        if not self._models:
            return "learned cost model: no fingerprint has enough samples"
        parts = ", ".join(
            f"{m.strategy}[{m.fingerprint[:8]}]:{m.n_samples}"
            for m in sorted(self._models.values(), key=lambda m: m.fingerprint)
        )
        return (
            f"learned cost model: {len(self._models)} fingerprint(s) over "
            f"features {FEATURE_NAMES} — {parts}"
        )


# ---------------------------------------------------------------------------
# Process-wide installation + activation
# ---------------------------------------------------------------------------
# Installation (set_model) and activation (the `learned` flag) are
# deliberately separate: a scheduler constructed with learned=False must
# stay bit-identical to golden even when some other component in the
# same process installed a model.  Only code inside an activation(True)
# scope sees the fast path.
_model: LearnedCostModel | None = None
_active: bool = False


def set_model(model: LearnedCostModel | None) -> None:
    global _model
    _model = model


def get_model() -> LearnedCostModel | None:
    return _model


def clear_model() -> None:
    global _model, _active
    _model = None
    _active = False


def active() -> LearnedCostModel | None:
    """The installed model iff the learned path is activated, else None."""
    return _model if _active else None


@contextlib.contextmanager
def activation(on: bool) -> Iterator[None]:
    """Force the learned path on or off for the duration of the scope.

    Force-set (not merely nested) in both directions, so a
    ``learned=False`` scheduler running inside some enclosing learned
    scope still gets pure analytic behaviour.
    """
    global _active
    previous = _active
    _active = bool(on)
    try:
        yield
    finally:
        _active = previous


def fast_estimate(strategy: Any, spec: "JoinSpec", materialize: bool):
    """Learned prediction for an estimate call, or None to fall through
    to the analytic model.  Returns a JoinMetrics whose note marks it as
    learned; callers must NOT store it in the estimate cache."""
    model = active()
    if model is None:
        return None
    fingerprint = stable_digest(strategy.cache_fingerprint())
    strategy_model = model.model_for(fingerprint)
    if strategy_model is None:
        return None
    from repro.core.results import JoinMetrics

    seconds = strategy_model.predict(working_set_features(spec, materialize))
    return JoinMetrics(
        strategy=getattr(strategy, "key", type(strategy).__name__),
        seconds=seconds,
        total_tuples=spec.total_tuples,
        output_tuples=0.0,
        phases={},
        notes={"learned": 1.0},
    )


def filter_ladder(
    spec: "JoinSpec",
    system: Any,
    rungs: Sequence[str],
    feasible: Sequence[str],
    *,
    calibration: Any = None,
    config: Any = None,
) -> str | None:
    """Pick the feasible rung the learned model predicts fastest.

    ``feasible`` is the subset of ``rungs`` that passed the analytic
    capacity check (capacity is never learned — admitting a plan that
    cannot fit would break the arena invariants).  Returns None when the
    learned path is inactive or covers none of the feasible rungs, in
    which case the caller falls back to the analytic first-fit walk.
    """
    model = active()
    if model is None or not feasible:
        return None
    from repro.core.strategy import create_strategy

    best: tuple[float, int, str] | None = None
    for name in feasible:
        strategy = create_strategy(name, system, calibration, config)
        predicted = model.predict_for(strategy, spec, materialize=False)
        if predicted is None:
            continue
        # Tie-break on ladder order so equal predictions keep the
        # analytic preference for earlier (more GPU-resident) rungs.
        rank = (predicted, rungs.index(name) if name in rungs else len(rungs), name)
        if best is None or rank < best:
            best = rank
    return None if best is None else best[2]
