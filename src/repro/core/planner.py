"""Location-based strategy selection.

A central claim of the paper is that "a one-size-fits-all approach is
not suitable for GPU joins": the right algorithm depends on where the
data can live.  The planner encodes that decision:

* both relations (plus partitioned copies) fit in device memory
  → in-GPU partitioned join (§III);
* only the build side fits (with room for double-buffered chunks)
  → streaming probe join (§IV-A);
* neither fits → CPU–GPU co-processing (§IV-B).
"""

from __future__ import annotations

from repro.core.config import GpuJoinConfig
from repro.core.coprocessing import CoProcessingJoin
from repro.core.gpu_partitioned import GpuPartitionedJoin
from repro.core.streaming import StreamingProbeJoin
from repro.data.spec import JoinSpec
from repro.errors import DeviceMemoryOverflowError
from repro.gpusim.calibration import Calibration
from repro.gpusim.spec import SystemSpec

GPU_RESIDENT = "gpu_resident"
STREAMING = "streaming"
COPROCESSING = "coprocessing"


def choose_strategy_name(spec: JoinSpec, system: SystemSpec | None = None) -> str:
    """Which of the three execution strategies fits this workload."""
    from repro.core.gpu_partitioned import gpu_resident_bytes_needed

    system = system or SystemSpec()
    device = system.gpu.device_memory
    # In-GPU: inputs + partitioned copies + workspace.
    if gpu_resident_bytes_needed(spec) <= device:
        return GPU_RESIDENT
    # Streaming: partitioned build + two chunk buffers + output buffers.
    chunk_bytes = max(1, spec.build.n // 2) * spec.probe.tuple_bytes
    if 2 * spec.build.nbytes + 6 * chunk_bytes <= device:
        return STREAMING
    return COPROCESSING


def plan_join(
    spec: JoinSpec,
    system: SystemSpec | None = None,
    calibration: Calibration | None = None,
    config: GpuJoinConfig | None = None,
):
    """Instantiate the strategy the planner selects for ``spec``.

    Returns an object exposing ``run(build, probe, ...)`` and
    ``estimate(spec, ...)``; callers can inspect ``.name``.
    """
    system = system or SystemSpec()
    name = choose_strategy_name(spec, system)
    if name == GPU_RESIDENT:
        return GpuPartitionedJoin(system, calibration, config)
    if name == STREAMING:
        return StreamingProbeJoin(system, calibration, config)
    return CoProcessingJoin(system, calibration, config)


def estimate_with_planner(
    spec: JoinSpec,
    system: SystemSpec | None = None,
    calibration: Calibration | None = None,
    config: GpuJoinConfig | None = None,
    *,
    materialize: bool = False,
):
    """Plan and estimate in one call; falls back down the strategy ladder
    if a memory check fails despite the planner's coarse sizing."""
    system = system or SystemSpec()
    strategy = plan_join(spec, system, calibration, config)
    try:
        return strategy.estimate(spec, materialize=materialize)
    except DeviceMemoryOverflowError:
        fallback = CoProcessingJoin(system, calibration, config)
        return fallback.estimate(spec, materialize=materialize)
