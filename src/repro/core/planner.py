"""Location-based strategy selection.

A central claim of the paper is that "a one-size-fits-all approach is
not suitable for GPU joins": the right algorithm depends on where the
data can live.  The planner encodes that decision as a ladder of
registry keys — each candidate strategy's own :meth:`fits` predicate
decides whether the workload's data placement suits it:

* both relations (plus partitioned copies) fit in device memory
  → in-GPU partitioned join (§III);
* only the build side fits (with room for double-buffered chunks)
  → streaming probe join (§IV-A);
* neither fits → CPU–GPU co-processing (§IV-B).

The planner dispatches purely through the strategy registry; it names
no concrete strategy class.
"""

from __future__ import annotations

from repro.core import estimate_cache, learned_cost
from repro.core.config import GpuJoinConfig
from repro.core.strategy import (
    COPROCESSING,
    GPU_RESIDENT,
    STREAMING,
    JoinStrategy,
    create_strategy,
    strategy_factory,
)
from repro.data.spec import JoinSpec
from repro.errors import DeviceMemoryOverflowError
from repro.gpusim.calibration import Calibration
from repro.gpusim.spec import SystemSpec

#: Preference order: fastest placement first, co-processing as the
#: always-feasible floor.
PLANNER_LADDER = (GPU_RESIDENT, STREAMING, COPROCESSING)


def choose_strategy_name(
    spec: JoinSpec,
    system: SystemSpec | None = None,
    *,
    available_bytes: float | None = None,
    calibration: Calibration | None = None,
    config: GpuJoinConfig | None = None,
) -> str:
    """Which of the three execution strategies fits this workload.

    ``available_bytes`` restricts the choice to strategies whose device
    footprint fits in that much *free* device memory — the serving
    layer's admission control passes the arena's current headroom, so a
    query that would run GPU-resident on an idle device degrades to
    streaming (or co-processing) under memory pressure.  ``None`` means
    the whole device is available (the single-query planner).

    ``calibration``/``config`` matter only to the opt-in learned fast
    path (:mod:`repro.core.learned_cost`): when a fitted model is
    active, the ladder keeps the analytic capacity check as a hard
    filter but ranks the *feasible* rungs by predicted runtime instead
    of taking the first fit.  With the learned path off (the default)
    both parameters are ignored and the walk — and its memoized cache —
    behaves exactly as before.
    """
    system = system or SystemSpec()
    if available_bytes is None:
        available_bytes = system.gpu.device_memory

    def walk_ladder() -> str:
        for key in PLANNER_LADDER:
            if strategy_factory(key).fits_in(spec, system, available_bytes):
                return key
        return COPROCESSING

    model = learned_cost.active()
    if model is not None:
        # Learned mode bypasses the ladder cache in both directions:
        # learned choices never enter it, and analytic entries cached by
        # earlier non-learned runs never mask the model.
        feasible = [
            key
            for key in PLANNER_LADDER
            if strategy_factory(key).fits_in(spec, system, available_bytes)
        ] or [COPROCESSING]
        choice = learned_cost.filter_ladder(
            spec,
            system,
            PLANNER_LADDER,
            feasible,
            calibration=calibration,
            config=config,
        )
        return choice if choice is not None else feasible[0]

    # The walk is pure in (spec, system, available_bytes); admission
    # control re-runs it on every scheduling event, so memoize it
    # alongside the estimates.
    return estimate_cache.cached_ladder_choice(
        (spec, system, available_bytes), walk_ladder
    )


def plan_join(
    spec: JoinSpec,
    system: SystemSpec | None = None,
    calibration: Calibration | None = None,
    config: GpuJoinConfig | None = None,
) -> JoinStrategy:
    """Instantiate the strategy the planner selects for ``spec``.

    Returns a registered :class:`~repro.core.strategy.JoinStrategy`;
    callers can inspect ``.key`` and ``.name``.
    """
    system = system or SystemSpec()
    name = choose_strategy_name(spec, system)
    return create_strategy(name, system, calibration, config)


def estimate_with_planner(
    spec: JoinSpec,
    system: SystemSpec | None = None,
    calibration: Calibration | None = None,
    config: GpuJoinConfig | None = None,
    *,
    materialize: bool = False,
):
    """Plan and estimate in one call; falls back down the strategy ladder
    if a memory check fails despite the planner's coarse sizing."""
    system = system or SystemSpec()
    strategy = plan_join(spec, system, calibration, config)
    try:
        return strategy.estimate(spec, materialize=materialize)
    except DeviceMemoryOverflowError:
        fallback = create_strategy(COPROCESSING, system, calibration, config)
        return fallback.estimate(spec, materialize=materialize)
