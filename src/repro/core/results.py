"""Result and metric types shared by all join strategies."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.kernels.aggregate import JoinAggregate


@dataclass
class JoinMetrics:
    """Modelled execution metrics of one join.

    ``seconds`` is simulated wall time; ``phases`` attributes it to named
    phases (not necessarily summing to ``seconds`` — overlapped phases
    are reported with their own durations while ``seconds`` reflects the
    pipeline makespan).  Throughput follows the paper's metric (§V-A):
    combined input tuples divided by runtime.
    """

    strategy: str
    seconds: float
    total_tuples: int
    output_tuples: float = 0.0
    phases: dict[str, float] = field(default_factory=dict)
    pcie_h2d_bytes: float = 0.0
    pcie_d2h_bytes: float = 0.0
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Tuples per second over both inputs."""
        return self.total_tuples / self.seconds if self.seconds > 0 else 0.0

    @property
    def throughput_billion(self) -> float:
        return self.throughput / 1e9

    @property
    def data_gbps(self) -> float:
        """Join throughput in GB of input per second (Fig 16's metric)."""
        bytes_per_tuple = self.notes.get("tuple_bytes", 8.0)
        return self.throughput * bytes_per_tuple / 1e9

    def phase_throughput(self, phase: str) -> float:
        """Tuples per second over one phase (e.g. Fig 5/6's
        "join co-partitions" series)."""
        seconds = self.phases.get(phase, 0.0)
        return self.total_tuples / seconds if seconds > 0 else 0.0


@dataclass
class JoinRunResult:
    """Output of a functional ``run()``: data plus modelled metrics."""

    metrics: JoinMetrics
    aggregate: JoinAggregate | None = None
    build_payloads: np.ndarray | None = None
    probe_payloads: np.ndarray | None = None

    @property
    def matches(self) -> int:
        if self.build_payloads is not None:
            return int(self.build_payloads.shape[0])
        if self.aggregate is not None:
            return self.aggregate.matches
        return 0

    def pairs(self) -> np.ndarray:
        """Sorted ``(build_payload, probe_payload)`` pairs (materialized
        runs only); used to compare against the naive-join oracle."""
        if self.build_payloads is None or self.probe_payloads is None:
            raise ValueError("join ran in aggregation mode; no pairs materialized")
        out = np.stack([self.build_payloads, self.probe_payloads], axis=1)
        return out[np.lexsort((out[:, 1], out[:, 0]))]
