"""Persistent kernel-sample store: the on-disk memory of the cost model.

The analytic cost model re-derives every estimate from scratch in each
process; restart-heavy serving fleets and parallel bench workers pay
that cost again and again for workloads the system has already sized.
This module mirrors the ``ElementaryOpCache`` shape of
``joapolarbear/byteprofile-analysis`` (SNIPPETS.md snippet 3): every
bench/serve run can append ``(spec fingerprint, strategy fingerprint,
calibration, simulated-time)`` samples into one append-only file, and
later processes load it to

* fit the cheap per-strategy-fingerprint regression of
  :mod:`repro.core.learned_cost` (the ``--learned`` fast path), and
* warm-start the process-wide estimate/plan/ladder caches of
  :mod:`repro.core.estimate_cache` (``attach_store``), so a fresh
  process skips re-estimation for every key an earlier process already
  computed — with **bit-identical** results, because cached values are
  exact JSON round-trips of what recomputation would produce.

File format (version |VERSION|): UTF-8 JSON lines.  The first line is a
versioned header ``{"format": "repro-kernel-sample-store",
"version": 1}``; every further line is one record tagged by ``kind`` —
``"sample"`` (a kernel-cost observation), ``"estimate"`` /
``"ladder"`` / ``"plan"`` (persisted cache entries keyed by a stable
digest of the in-memory cache key).  Appends write whole lines in a
single ``write`` call and new files are created via a temp file +
``os.replace``, so readers never observe a half-written header.  A
writer killed mid-append can still leave a truncated final line;
:meth:`SampleStore.load` therefore *skips* undecodable record lines
(counted in :attr:`SampleStore.skipped_records`) and only raises
:class:`~repro.errors.SampleStoreError` when the header itself is
missing, unparsable, or from an unknown format version.

Keys and digests: the estimate/plan/ladder cache keys are tuples of
frozen dataclasses (specs, system, calibration, config) whose ``repr``
is deterministic across processes, so ``sha256(repr(key))`` is a stable
cross-process identity.  Keys whose repr embeds a memory address
(exotic custom strategy components) are refused — those entries simply
stay process-local, exactly like unhashable keys bypass the in-memory
cache.

Determinism: persistence never changes decisions.  A warm-started
process (store attached) returns byte-identical metrics, plans and
ladder choices to a cold one, because floats survive the JSON
round-trip exactly; ``tests/core/test_sample_store.py`` proves the
cross-process round-trip and ``bench/regress.py`` the decision
identity.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Hashable, Iterable

from repro.core.results import JoinMetrics
from repro.data.spec import Distribution, JoinSpec, RelationSpec
from repro.errors import SampleStoreError
from repro.pipeline.tasks import Task

if TYPE_CHECKING:
    from repro.core.strategy import JoinPlan

#: Format tag and version of the store header line.
FORMAT = "repro-kernel-sample-store"
VERSION = 1

#: Record kinds a store file may contain.
RECORD_KINDS = ("sample", "estimate", "ladder", "plan")

#: Names of the working-set feature vector, in order.  The learned
#: regression (:mod:`repro.core.learned_cost`) fits simulated seconds as
#: a linear function of these; keep them cheap (no planning, no kernel
#: evaluation) and derivable from the spec alone.
FEATURE_NAMES = (
    "bias",
    "build_mtuples",
    "probe_mtuples",
    "build_gb",
    "probe_gb",
    "materialize",
)


def working_set_features(spec: JoinSpec, materialize: bool) -> tuple[float, ...]:
    """The working-set feature vector of one estimate (see
    :data:`FEATURE_NAMES`).  Counts are in millions of tuples and sizes
    in GB so the least-squares normal equations stay well-conditioned
    at paper scale (up to 2048 M tuples)."""
    return (
        1.0,
        spec.build.n / 1e6,
        spec.probe.n / 1e6,
        spec.build.nbytes / 1e9,
        spec.probe.nbytes / 1e9,
        1.0 if materialize else 0.0,
    )


def stable_digest(key: Hashable) -> str | None:
    """A cross-process identity for a cache key, or ``None`` when the
    key has no stable one.

    The digest is ``sha256(repr(key))``: every component of the
    registry strategies' keys is a frozen dataclass, enum, string or
    number, all of which repr deterministically.  A repr that embeds a
    memory address (``<object at 0x...>`` — default object repr of an
    exotic custom component) is process-specific and is refused.
    """
    text = repr(key)
    if " at 0x" in text:
        return None
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


@dataclass(frozen=True)
class KernelSample:
    """One kernel-cost observation: what a strategy's analytic model
    said one workload costs.

    ``fingerprint`` is the stable digest of the strategy's cache
    fingerprint (class, registry key, system, config, calibration,
    constructor extras) — samples regress per fingerprint, so a fast
    device's timings never train a slow device's predictor.
    ``calibration`` is digested separately too, purely so operators can
    group a store's samples by device speed.  ``seconds`` is simulated
    time in the cost model's native units.
    """

    strategy: str
    fingerprint: str
    spec: str
    calibration: str
    features: tuple[float, ...]
    seconds: float
    materialize: bool = False

    def to_record(self) -> dict[str, Any]:
        return {
            "kind": "sample",
            "strategy": self.strategy,
            "fingerprint": self.fingerprint,
            "spec": self.spec,
            "calibration": self.calibration,
            "features": list(self.features),
            "seconds": self.seconds,
            "materialize": self.materialize,
        }

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "KernelSample":
        return cls(
            strategy=str(record["strategy"]),
            fingerprint=str(record["fingerprint"]),
            spec=str(record["spec"]),
            calibration=str(record["calibration"]),
            features=tuple(float(x) for x in record["features"]),
            seconds=float(record["seconds"]),
            materialize=bool(record.get("materialize", False)),
        )


# ---------------------------------------------------------------------------
# Value (de)serialization — exact JSON round-trips of the cached objects
# ---------------------------------------------------------------------------
def _relation_to_dict(rel: RelationSpec) -> dict[str, Any]:
    return {
        "n": rel.n,
        "distinct": rel.distinct,
        "distribution": rel.distribution.value,
        "zipf_s": rel.zipf_s,
        "payload_bytes": rel.payload_bytes,
        "late_payload_bytes": rel.late_payload_bytes,
    }


def _relation_from_dict(data: dict[str, Any]) -> RelationSpec:
    return RelationSpec(
        n=int(data["n"]),
        distinct=None if data["distinct"] is None else int(data["distinct"]),
        distribution=Distribution(data["distribution"]),
        zipf_s=float(data["zipf_s"]),
        payload_bytes=int(data["payload_bytes"]),
        late_payload_bytes=int(data["late_payload_bytes"]),
    )


def spec_to_dict(spec: JoinSpec) -> dict[str, Any]:
    """JSON form of a :class:`~repro.data.spec.JoinSpec` (for plan
    persistence; the frozen dataclass reconstructs equal-by-value)."""
    return {
        "build": _relation_to_dict(spec.build),
        "probe": _relation_to_dict(spec.probe),
        "shared_domain": spec.shared_domain,
        "identical_skew": spec.identical_skew,
    }


def spec_from_dict(data: dict[str, Any]) -> JoinSpec:
    return JoinSpec(
        build=_relation_from_dict(data["build"]),
        probe=_relation_from_dict(data["probe"]),
        shared_domain=bool(data["shared_domain"]),
        identical_skew=bool(data["identical_skew"]),
    )


def metrics_to_dict(metrics: JoinMetrics) -> dict[str, Any]:
    return {
        "strategy": metrics.strategy,
        "seconds": metrics.seconds,
        "total_tuples": metrics.total_tuples,
        "output_tuples": metrics.output_tuples,
        "phases": dict(metrics.phases),
        "pcie_h2d_bytes": metrics.pcie_h2d_bytes,
        "pcie_d2h_bytes": metrics.pcie_d2h_bytes,
        "notes": dict(metrics.notes),
    }


def metrics_from_dict(data: dict[str, Any]) -> JoinMetrics:
    return JoinMetrics(
        strategy=str(data["strategy"]),
        seconds=float(data["seconds"]),
        total_tuples=int(data["total_tuples"]),
        output_tuples=float(data["output_tuples"]),
        phases={str(k): float(v) for k, v in data["phases"].items()},
        pcie_h2d_bytes=float(data["pcie_h2d_bytes"]),
        pcie_d2h_bytes=float(data["pcie_d2h_bytes"]),
        notes={str(k): float(v) for k, v in data["notes"].items()},
    )


def plan_to_dict(plan: "JoinPlan") -> dict[str, Any]:
    return {
        "strategy": plan.strategy,
        "spec": spec_to_dict(plan.spec),
        "tasks": [
            {
                "name": task.name,
                "resource": task.resource,
                "duration": task.duration,
                "deps": list(task.deps),
                "phase": task.phase,
                "available_at": task.available_at,
                "device": task.device,
            }
            for task in plan.tasks
        ],
        "resources": dict(plan.resources),
        "phases": list(plan.phases),
        "matches": plan.matches,
        "materialize": plan.materialize,
        "pcie_h2d_bytes": plan.pcie_h2d_bytes,
        "pcie_d2h_bytes": plan.pcie_d2h_bytes,
        "notes": dict(plan.notes),
    }


def plan_from_dict(data: dict[str, Any]) -> "JoinPlan":
    from repro.core.strategy import JoinPlan  # local: strategy imports us

    return JoinPlan(
        strategy=str(data["strategy"]),
        spec=spec_from_dict(data["spec"]),
        tasks=[
            Task(
                name=str(t["name"]),
                resource=str(t["resource"]),
                duration=float(t["duration"]),
                deps=tuple(str(d) for d in t["deps"]),
                phase=None if t["phase"] is None else str(t["phase"]),
                available_at=float(t["available_at"]),
                device=int(t["device"]),
            )
            for t in data["tasks"]
        ],
        resources={str(k): int(v) for k, v in data["resources"].items()},
        phases=tuple(str(p) for p in data["phases"]),
        matches=float(data["matches"]),
        materialize=bool(data["materialize"]),
        pcie_h2d_bytes=float(data["pcie_h2d_bytes"]),
        pcie_d2h_bytes=float(data["pcie_d2h_bytes"]),
        notes={str(k): float(v) for k, v in data["notes"].items()},
    )


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------
@dataclass
class SampleStore:
    """Append-only store of kernel samples and persisted cache entries.

    ``path=None`` keeps the store purely in memory (``flush`` is then a
    no-op) — used by tests and the perf bench.  With a path, records
    accumulate in memory and :meth:`flush` appends the new ones to the
    file; use :meth:`load` / :meth:`open` to read an existing file.
    Entries are deduplicated (an identical sample or an already-known
    cache digest is not re-appended), so attaching the same store to
    every run keeps the file's growth proportional to *new* knowledge.
    """

    path: str | None = None
    samples: list[KernelSample] = field(default_factory=list)
    #: Record lines skipped at load: truncated tails, undecodable or
    #: unknown-kind lines.  Never raises — see the module docstring.
    skipped_records: int = 0
    _estimates: dict[str, dict[str, Any]] = field(default_factory=dict)
    _ladder: dict[str, str] = field(default_factory=dict)
    _plans: dict[str, dict[str, Any]] = field(default_factory=dict)
    _pending: list[dict[str, Any]] = field(default_factory=list)
    _seen_samples: "set[tuple]" = field(default_factory=set)

    # -- loading -------------------------------------------------------
    @classmethod
    def load(cls, path: str) -> "SampleStore":
        """Read an existing store file.

        Raises :class:`~repro.errors.SampleStoreError` for a missing
        file or a corrupt/unknown header; skips (and counts) truncated
        or otherwise undecodable record lines.
        """
        try:
            with open(path, "r", encoding="utf-8") as handle:
                lines = handle.read().split("\n")
        except OSError as exc:
            raise SampleStoreError(f"cannot read sample store {path!r}: {exc}")
        if not lines or not lines[0].strip():
            raise SampleStoreError(f"sample store {path!r} has no header line")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise SampleStoreError(
                f"sample store {path!r} header is not valid JSON: {exc}"
            )
        if not isinstance(header, dict) or header.get("format") != FORMAT:
            raise SampleStoreError(
                f"sample store {path!r} header does not declare format "
                f"{FORMAT!r}: {header!r}"
            )
        if header.get("version") != VERSION:
            raise SampleStoreError(
                f"sample store {path!r} is format version "
                f"{header.get('version')!r}; this build reads version "
                f"{VERSION}"
            )
        store = cls(path=path)
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                store._ingest(record)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # A crashed writer's truncated tail, or a corrupted
                # line: skip it — the rest of the store stays usable.
                store.skipped_records += 1
        return store

    @classmethod
    def open(cls, path: str) -> "SampleStore":
        """Load ``path`` if it exists, else an empty store bound to it."""
        if os.path.exists(path):
            return cls.load(path)
        return cls(path=path)

    def _ingest(self, record: dict[str, Any]) -> None:
        """Add one decoded record to the in-memory state (no pending
        write — used while loading).  Raises on malformed records; the
        caller turns that into a skip."""
        kind = record["kind"]
        if kind == "sample":
            sample = KernelSample.from_record(record)
            dedup = (
                sample.fingerprint,
                sample.spec,
                sample.materialize,
                sample.seconds,
            )
            if dedup not in self._seen_samples:
                self._seen_samples.add(dedup)
                self.samples.append(sample)
        elif kind == "estimate":
            self._estimates[str(record["key"])] = dict(record["metrics"])
        elif kind == "ladder":
            self._ladder[str(record["key"])] = str(record["choice"])
        elif kind == "plan":
            self._plans[str(record["key"])] = dict(record["plan"])
        else:
            raise ValueError(f"unknown record kind {kind!r}")

    # -- recording -----------------------------------------------------
    def record_sample(self, sample: KernelSample) -> bool:
        """Add a sample; returns whether it was new (duplicates of an
        already-held observation are dropped)."""
        dedup = (
            sample.fingerprint,
            sample.spec,
            sample.materialize,
            sample.seconds,
        )
        if dedup in self._seen_samples:
            return False
        self._seen_samples.add(dedup)
        self.samples.append(sample)
        self._pending.append(sample.to_record())
        return True

    # -- persisted caches (duck-typed by estimate_cache) ---------------
    def digest_key(self, key: Hashable) -> str | None:
        return stable_digest(key)

    def estimate_for_key(self, key: Hashable) -> JoinMetrics | None:
        digest = stable_digest(key)
        if digest is None:
            return None
        data = self._estimates.get(digest)
        return None if data is None else metrics_from_dict(data)

    def remember_estimate(self, key: Hashable, metrics: JoinMetrics) -> None:
        digest = stable_digest(key)
        if digest is None or digest in self._estimates:
            return
        data = metrics_to_dict(metrics)
        self._estimates[digest] = data
        self._pending.append({"kind": "estimate", "key": digest, "metrics": data})

    def ladder_for_key(self, key: Hashable) -> str | None:
        digest = stable_digest(key)
        if digest is None:
            return None
        return self._ladder.get(digest)

    def remember_ladder(self, key: Hashable, choice: str) -> None:
        digest = stable_digest(key)
        if digest is None or digest in self._ladder:
            return
        self._ladder[digest] = choice
        self._pending.append({"kind": "ladder", "key": digest, "choice": choice})

    def plan_for_key(self, key: Hashable) -> "JoinPlan | None":
        digest = stable_digest(key)
        if digest is None:
            return None
        data = self._plans.get(digest)
        return None if data is None else plan_from_dict(data)

    def remember_plan(self, key: Hashable, plan: "JoinPlan") -> None:
        digest = stable_digest(key)
        if digest is None or digest in self._plans:
            return
        data = plan_to_dict(plan)
        self._plans[digest] = data
        self._pending.append({"kind": "plan", "key": digest, "plan": data})

    # -- persistence ---------------------------------------------------
    @property
    def pending_records(self) -> int:
        """Records recorded since the last :meth:`flush`."""
        return len(self._pending)

    @property
    def cached_entries(self) -> tuple[int, int, int]:
        """(estimate, ladder, plan) persisted-cache entry counts."""
        return (len(self._estimates), len(self._ladder), len(self._plans))

    def flush(self) -> int:
        """Append pending records to the file; returns how many were
        written.  Creating a fresh file goes through a temp file +
        ``os.replace`` so a reader never sees a header-less store;
        appends to an existing file write all lines in one call."""
        if self.path is None or not self._pending:
            self._pending.clear()
            return 0
        blob = "".join(
            json.dumps(record, sort_keys=True) + "\n"
            for record in self._pending
        )
        written = len(self._pending)
        if not os.path.exists(self.path):
            header = json.dumps({"format": FORMAT, "version": VERSION})
            tmp = f"{self.path}.tmp.{os.getpid()}"
            with open(tmp, "w", encoding="utf-8") as handle:
                handle.write(header + "\n" + blob)
            os.replace(tmp, self.path)
        else:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(blob)
        self._pending.clear()
        return written

    # -- queries -------------------------------------------------------
    def samples_by_fingerprint(self) -> dict[str, list[KernelSample]]:
        grouped: dict[str, list[KernelSample]] = {}
        for sample in self.samples:
            grouped.setdefault(sample.fingerprint, []).append(sample)
        return grouped

    def summary(self) -> str:
        est, lad, plans = self.cached_entries
        fingerprints = len({s.fingerprint for s in self.samples})
        where = self.path if self.path is not None else "<memory>"
        skipped = (
            f", {self.skipped_records} corrupt record(s) skipped"
            if self.skipped_records
            else ""
        )
        return (
            f"{where}: {len(self.samples)} samples over {fingerprints} "
            f"strategy fingerprint(s); cached {est} estimates, {lad} "
            f"ladder choices, {plans} plans{skipped}"
        )


# ---------------------------------------------------------------------------
# Process-wide recording hook (consulted by PipelinedJoinStrategy.estimate)
# ---------------------------------------------------------------------------
_recording: SampleStore | None = None


def attach(store: SampleStore) -> None:
    """Record every subsequent estimate into ``store`` (bench/serve
    recording hook; also see ``estimate_cache.attach_store`` for cache
    persistence through the same store)."""
    global _recording
    _recording = store


def detach() -> None:
    global _recording
    _recording = None


def attached() -> SampleStore | None:
    return _recording


def record_estimate_sample(
    strategy: Any, spec: JoinSpec, materialize: bool, metrics: JoinMetrics
) -> None:
    """Record one estimate into the attached store (no-op when none is
    attached or the strategy has no stable fingerprint).  Called on
    *every* estimate — cache hits included — so a warm process still
    contributes its working set; the store deduplicates."""
    if _recording is None:
        return
    fingerprint = stable_digest(strategy.cache_fingerprint())
    spec_digest = stable_digest(spec)
    if fingerprint is None or spec_digest is None:
        return
    cost_model = getattr(strategy, "cost_model", None)
    calibration = stable_digest(getattr(cost_model, "calib", None)) or "none"
    _recording.record_sample(
        KernelSample(
            strategy=getattr(strategy, "key", type(strategy).__name__),
            fingerprint=fingerprint,
            spec=spec_digest,
            calibration=calibration,
            features=working_set_features(spec, materialize),
            seconds=metrics.seconds,
            materialize=materialize,
        )
    )


def snapshot_iter(samples: Iterable[KernelSample]) -> list[dict[str, Any]]:
    """JSON-ready records of ``samples`` (diagnostics/tests helper)."""
    return [sample.to_record() for sample in samples]
