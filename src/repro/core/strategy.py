"""The :class:`JoinStrategy` protocol and the strategy registry.

The paper's thesis is that no single GPU join fits every workload: the
right algorithm depends on where the data can live.  This module turns
that thesis into an extension point.  Every strategy is a named entry in
a string-keyed registry and follows one execution model:

* :meth:`JoinStrategy.prepare` derives a :class:`JoinPlan` — a task
  graph over the machine's serially-executing resources (H2D/D2H DMA
  engines, the GPU compute queue, host CPU threads) plus reporting
  metadata — from a workload spec;
* :meth:`JoinStrategy.schedule` feeds the plan to the discrete-event
  :class:`~repro.pipeline.engine.PipelineEngine`, whose simulation turns
  per-task durations into the overlapped end-to-end makespan;
* :meth:`JoinStrategy.execute` runs the join functionally on
  materialized relations, reusing the same plan/schedule machinery with
  observed (rather than expected) task durations.

New strategies (multi-GPU, UVA/UM variants, CPU-only fallbacks) plug in
by subclassing :class:`PipelinedJoinStrategy` and registering — the
planner, executor and benchmarks dispatch through the registry and never
name concrete classes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar, Protocol, runtime_checkable

from repro.core import estimate_cache, learned_cost, sample_store
from repro.core.results import JoinMetrics, JoinRunResult
from repro.data.spec import JoinSpec
from repro.errors import InvalidConfigError, UnknownStrategyError
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Schedule, Task

if TYPE_CHECKING:
    from repro.core.config import GpuJoinConfig
    from repro.data.relation import Relation
    from repro.gpusim.calibration import Calibration
    from repro.gpusim.spec import SystemSpec

#: Canonical registry keys of the built-in strategies.
GPU_RESIDENT = "gpu_resident"
GPU_NONPARTITIONED = "gpu_nonpartitioned"
GPU_NONPARTITIONED_PERFECT = "gpu_nonpartitioned_perfect"
STREAMING = "streaming"
COPROCESSING = "coprocessing"
COPROCESSING_ADAPTIVE = "coprocessing_adaptive"


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------
@dataclass
class JoinPlan:
    """A strategy's declared execution: tasks plus reporting metadata.

    ``resources`` maps resource names to lane counts (stream counts) for
    the engine; unnamed resources default to one serial lane.
    ``phases`` pre-seeds the metric phases (so a phase with no tasks —
    e.g. D2H in aggregation mode — still reports 0.0).
    """

    strategy: str
    spec: JoinSpec
    tasks: list[Task] = field(default_factory=list)
    resources: dict[str, int] = field(default_factory=dict)
    phases: tuple[str, ...] = ()
    matches: float = 0.0
    materialize: bool = False
    pcie_h2d_bytes: float = 0.0
    pcie_d2h_bytes: float = 0.0
    notes: dict[str, float] = field(default_factory=dict)

    def add(
        self,
        name: str,
        resource: str,
        duration: float,
        deps: tuple[str, ...] | list[str] = (),
        phase: str | None = None,
    ) -> str:
        """Append a task and return its name (for dependency chaining)."""
        self.tasks.append(
            Task(
                name=name,
                resource=resource,
                duration=float(duration),
                deps=tuple(deps),
                phase=phase,
            )
        )
        return name


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------
@runtime_checkable
class JoinStrategy(Protocol):
    """Structural interface every join strategy implements."""

    key: ClassVar[str]
    name: str

    def prepare(
        self, spec: JoinSpec, *, materialize: bool = False, **kwargs: Any
    ) -> JoinPlan: ...

    def schedule(
        self, plan: JoinPlan, engine: PipelineEngine | None = None
    ) -> Schedule: ...

    def estimate(
        self, spec: JoinSpec, *, materialize: bool = False, **kwargs: Any
    ) -> JoinMetrics: ...

    def execute(
        self,
        build: "Relation",
        probe: "Relation",
        *,
        materialize: bool = False,
        **kwargs: Any,
    ) -> JoinRunResult: ...


class PipelinedJoinStrategy:
    """Shared plan → schedule → metrics machinery.

    Subclasses implement :meth:`prepare` (analytic plans from a spec)
    and :meth:`execute` (functional execution, typically re-planning
    with observed durations), and may override :meth:`fits` so the
    planner can test data-placement feasibility without instantiation.
    """

    #: Registry key; subclasses must override.
    key: ClassVar[str] = ""
    #: Display name used in figures and reports.
    name = ""

    # -- planner hooks --------------------------------------------------
    @classmethod
    def device_bytes_needed(cls, spec: JoinSpec, system: "SystemSpec") -> int:
        """Device-memory footprint this strategy reserves for ``spec``.

        The planner and the serving layer's admission control both gate
        on this number: a strategy fits a workload iff its footprint is
        at most the device memory currently available.  The base class
        claims nothing (always feasible); strategies that hold data on
        the device override it.
        """
        return 0

    @classmethod
    def fits_in(
        cls, spec: JoinSpec, system: "SystemSpec", available_bytes: float
    ) -> bool:
        """Whether this strategy's footprint fits in ``available_bytes``
        of free device memory (admission-control variant of :meth:`fits`)."""
        return cls.device_bytes_needed(spec, system) <= available_bytes

    @classmethod
    def fits(cls, spec: JoinSpec, system: "SystemSpec") -> bool:
        """Whether the workload's data placement suits this strategy
        when it has the whole device to itself."""
        return cls.fits_in(spec, system, system.gpu.device_memory)

    # -- protocol -------------------------------------------------------
    def prepare(
        self, spec: JoinSpec, *, materialize: bool = False, **kwargs: Any
    ) -> JoinPlan:
        raise NotImplementedError

    def execute(
        self,
        build: "Relation",
        probe: "Relation",
        *,
        materialize: bool = False,
        **kwargs: Any,
    ) -> JoinRunResult:
        raise NotImplementedError

    def schedule(
        self, plan: JoinPlan, engine: PipelineEngine | None = None
    ) -> Schedule:
        """Simulate the plan's task graph on the pipeline engine."""
        engine = engine if engine is not None else PipelineEngine(plan.resources)
        for task in plan.tasks:
            engine.add(task)
        return engine.run()

    def simulate(self, plan: JoinPlan) -> JoinMetrics:
        """Schedule the plan and fold the result into metrics."""
        return self.metrics_from_schedule(plan, self.schedule(plan))

    # -- estimate memoization ------------------------------------------
    def _fingerprint_extras(self) -> tuple:
        """Constructor state beyond (system, calibration, config) that
        changes estimates; subclasses with extra knobs override (e.g.
        co-processing's ``cpu_bits``/``staging``/``device_budget``)."""
        return ()

    def cache_fingerprint(self) -> tuple:
        """Everything that, together with (spec, kwargs), determines an
        estimate.  The specs and calibration are frozen dataclasses, so
        the tuple is hashable for the registry strategies."""
        cost_model = getattr(self, "cost_model", None)
        return (
            type(self).__qualname__,
            self.key,
            getattr(self, "system", None),
            getattr(self, "config", None),
            getattr(cost_model, "calib", None),
            *self._fingerprint_extras(),
        )

    def estimate(
        self, spec: JoinSpec, *, materialize: bool = False, **kwargs: Any
    ) -> JoinMetrics:
        """Modelled metrics: analytic plan, simulated makespan.

        Estimates are pure in (strategy fingerprint, spec, kwargs) and
        memoized in :mod:`repro.core.estimate_cache`; the planner ladder
        and the serving scheduler's re-planning hit the same cache, so a
        workload's kernel costs are computed once per process.

        Two opt-in hooks ride along.  When the learned fast path is
        active (:func:`repro.core.learned_cost.activation` — the
        ``learned=True`` flag) and its model covers this strategy's
        fingerprint, the regression answers *before* the cache and its
        approximate metrics never enter it, so turning the flag off
        instantly restores bit-identical analytic results.  When a
        sample store is attached for recording
        (:func:`repro.core.sample_store.attach`), every analytic
        estimate — cache hits included, so warm processes still
        contribute — is recorded as a training sample.
        """
        learned = learned_cost.fast_estimate(self, spec, materialize)
        if learned is not None and not kwargs:
            return learned
        key = estimate_cache.make_key(
            self.cache_fingerprint(), spec, materialize, kwargs
        )
        cached = estimate_cache.lookup(key)
        if cached is not None:
            if not kwargs:
                sample_store.record_estimate_sample(self, spec, materialize, cached)
            return cached
        metrics = self.simulate(self.prepare(spec, materialize=materialize, **kwargs))
        estimate_cache.store(key, metrics)
        if not kwargs:
            sample_store.record_estimate_sample(self, spec, materialize, metrics)
        return metrics

    def run(
        self,
        build: "Relation",
        probe: "Relation",
        *,
        materialize: bool = False,
        **kwargs: Any,
    ) -> JoinRunResult:
        """Alias of :meth:`execute` (the original entry-point name)."""
        return self.execute(build, probe, materialize=materialize, **kwargs)

    # -- shared metric assembly ----------------------------------------
    def metrics_from_schedule(
        self, plan: JoinPlan, schedule: Schedule
    ) -> JoinMetrics:
        phases = {phase: schedule.phase_time(phase) for phase in plan.phases}
        for phase, seconds in schedule.phase_times().items():
            phases.setdefault(phase, seconds)
        return JoinMetrics(
            strategy=plan.strategy,
            seconds=schedule.makespan,
            total_tuples=plan.spec.total_tuples,
            output_tuples=plan.matches,
            phases=phases,
            pcie_h2d_bytes=plan.pcie_h2d_bytes,
            pcie_d2h_bytes=plan.pcie_d2h_bytes,
            notes=dict(plan.notes),
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
_REGISTRY: dict[str, type] = {}
_BUILTINS_LOADED = False


def register_strategy(cls: type) -> type:
    """Class decorator: add ``cls`` to the registry under ``cls.key``."""
    key = getattr(cls, "key", "")
    if not key:
        raise InvalidConfigError(
            f"{cls.__name__} cannot register without a non-empty `key`"
        )
    existing = _REGISTRY.get(key)
    if existing is not None and existing is not cls:
        raise InvalidConfigError(
            f"strategy key {key!r} already registered by {existing.__name__}"
        )
    _REGISTRY[key] = cls
    return cls


def _ensure_builtins() -> None:
    """Import the built-in strategy modules (which self-register)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.core.adaptive  # noqa: F401
    import repro.core.coprocessing  # noqa: F401
    import repro.core.gpu_nonpartitioned  # noqa: F401
    import repro.core.gpu_partitioned  # noqa: F401
    import repro.core.streaming  # noqa: F401

    # Only after every import succeeded: a failed first attempt must
    # retry (and re-raise) rather than cache a partial registry.
    _BUILTINS_LOADED = True


def registered_strategies() -> tuple[str, ...]:
    """All registry keys, in registration order."""
    _ensure_builtins()
    return tuple(_REGISTRY)


def strategy_factory(key: str) -> type:
    """The strategy class registered under ``key``.

    Raises :class:`~repro.errors.UnknownStrategyError` with the list of
    known keys on a miss.
    """
    _ensure_builtins()
    try:
        return _REGISTRY[key]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise UnknownStrategyError(
            f"unknown join strategy {key!r}; registered strategies: {known}"
        ) from None


def create_strategy(
    key: str,
    system: "SystemSpec | None" = None,
    calibration: "Calibration | None" = None,
    config: "GpuJoinConfig | None" = None,
    **kwargs: Any,
) -> JoinStrategy:
    """Instantiate the strategy registered under ``key``.

    Extra keyword arguments are forwarded to the strategy constructor
    (e.g. ``staging=False`` for co-processing).
    """
    return strategy_factory(key)(system, calibration, config, **kwargs)
