"""Out-of-GPU strategy 1: streamed probe relation (§IV-A).

The build relation fits in GPU memory; the probe relation does not.  The
build side is transferred once and partitioned on the GPU; the probe
side is split into chunks (half the build size by default, as in Fig 11)
that are double-buffered over PCIe and joined with the resident
partitioned build — transfers overlap kernels via separate streams, so
"the total execution time is the transfer time for the data plus the GPU
execution time for the last chunk".  Result materialization mirrors the
input double-buffering on the D2H engine (§IV-C).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.config import GpuJoinConfig, default_config
from repro.core.gpu_partitioned import (
    OUT_TUPLE_BYTES,
    GpuPartitionedJoin,
    spec_from_relations,
)
from repro.core.results import JoinRunResult
from repro.core.strategy import (
    STREAMING,
    JoinPlan,
    PipelinedJoinStrategy,
    register_strategy,
)
from repro.data import stats as stats_mod
from repro.data.relation import Relation
from repro.data.spec import JoinSpec
from repro.errors import DeviceMemoryOverflowError
from repro.gpusim.calibration import Calibration
from repro.gpusim.cost import GpuCostModel
from repro.gpusim.device_memory import DeviceMemory
from repro.gpusim.spec import SystemSpec
from repro.gpusim.transfer import TransferModel
from repro.kernels.aggregate import JoinAggregate, aggregate_pairs
from repro.kernels.build_hash import build_copartition_tables
from repro.kernels.common import key_bit_width
from repro.kernels.probe_hash import probe_copartitions
from repro.kernels.radix_partition import estimate_partition_cost, gpu_radix_partition
from repro.pipeline.tasks import D2H, GPU, H2D


@register_strategy
class StreamingProbeJoin(PipelinedJoinStrategy):
    """Build resident in GPU memory, probe streamed over PCIe."""

    key = STREAMING
    name = "GPU Partitioned (streaming)"

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
        config: GpuJoinConfig | None = None,
    ):
        self.system = system or SystemSpec()
        self.config = config or default_config()
        self.cost_model = GpuCostModel(self.system, calibration)
        self.transfer = TransferModel(self.system, self.cost_model.calib)
        self._resident = GpuPartitionedJoin(self.system, calibration, self.config)

    # ------------------------------------------------------------------
    @classmethod
    def device_bytes_needed(cls, spec: JoinSpec, system: SystemSpec) -> int:
        """Partitioned build + double-buffered chunk and output buffers
        must co-reside in device memory (§IV-A/§IV-C)."""
        chunk_bytes = max(1, spec.build.n // 2) * spec.probe.tuple_bytes
        return 2 * spec.build.nbytes + 6 * chunk_bytes

    def default_chunk_tuples(self, build_n: int) -> int:
        """Chunks half the size of the build table (Fig 11's setup)."""
        return max(1, build_n // 2)

    def _check_device_memory(self, spec: JoinSpec, chunk_tuples: int) -> None:
        """Partitioned build + two input chunk buffers + two output
        buffers must co-reside (§IV-A/§IV-C double buffering)."""
        memory = DeviceMemory(self.system.gpu.device_memory)
        memory.allocate("build(partitioned)", 2 * spec.build.nbytes)
        chunk_bytes = chunk_tuples * spec.probe.tuple_bytes
        for i in range(2):
            memory.allocate(f"chunk[{i}]", 2 * chunk_bytes)  # raw + partitioned
        for i in range(2):
            memory.allocate(f"out[{i}]", int(chunk_bytes * OUT_TUPLE_BYTES / 8))

    # ------------------------------------------------------------------
    def _pipeline_plan(
        self,
        spec: JoinSpec,
        *,
        chunk_tuples: int,
        chunk_join_seconds,
        build_prep_seconds: float,
        matches: float,
        materialize: bool,
    ) -> JoinPlan:
        """Declare the §IV-A double-buffered pipeline as a task graph."""
        n_chunks = math.ceil(spec.probe.n / chunk_tuples)
        chunk_bytes = chunk_tuples * spec.probe.tuple_bytes
        dma_rate = self.transfer.pipelined_dma_rate()

        plan = JoinPlan(
            strategy=self.name,
            spec=spec,
            phases=(H2D, GPU, D2H),
            matches=matches,
            materialize=materialize,
            pcie_h2d_bytes=spec.build.nbytes + spec.probe.nbytes,
            pcie_d2h_bytes=matches * OUT_TUPLE_BYTES if materialize else 0.0,
            notes={
                "tuple_bytes": float(spec.build.tuple_bytes),
                "chunks": float(n_chunks),
                "chunk_bytes": float(chunk_bytes),
            },
        )
        plan.add("build.h2d", H2D, spec.build.nbytes / dma_rate)
        plan.add("build.partition", GPU, build_prep_seconds, ["build.h2d"])

        out_bytes_per_chunk = matches / n_chunks * OUT_TUPLE_BYTES
        for i in range(n_chunks):
            this_chunk = min(chunk_tuples, spec.probe.n - i * chunk_tuples)
            deps = []
            if i >= 2:  # two input buffers swap roles (§IV-A)
                deps.append(f"probe.join[{i - 2}]")
            transfer = plan.add(
                f"probe.h2d[{i}]",
                H2D,
                this_chunk * spec.probe.tuple_bytes / dma_rate,
                deps,
            )
            join_deps = [transfer, "build.partition"]
            if materialize and i >= 2:  # two output buffers (§IV-C)
                join_deps.append(f"probe.d2h[{i - 2}]")
            plan.add(f"probe.join[{i}]", GPU, float(chunk_join_seconds(i)), join_deps)
            if materialize:
                plan.add(
                    f"probe.d2h[{i}]",
                    D2H,
                    out_bytes_per_chunk / dma_rate,
                    [f"probe.join[{i}]"],
                )
        return plan

    # ------------------------------------------------------------------
    def prepare(
        self,
        spec: JoinSpec,
        *,
        chunk_tuples: int | None = None,
        materialize: bool = False,
    ) -> JoinPlan:
        chunk_tuples = chunk_tuples or self.default_chunk_tuples(spec.build.n)
        self._check_device_memory(spec, chunk_tuples)
        cfg = self.config
        bits_per_pass = cfg.bits_per_pass_for(spec.build.n)
        total_bits = sum(bits_per_pass)

        # Build-side preparation: partition it, then build the co-partition
        # tables once — every chunk probes the same resident tables.
        build_prep = (
            estimate_partition_cost(
                spec.build.n, spec.build.tuple_bytes, bits_per_pass, self.cost_model
            ).seconds
            + self.cost_model.build_tables_seconds(spec.build.n, spec.build.tuple_bytes)
        )

        build_sizes = stats_mod.expected_partition_sizes(spec.build, total_bits)
        matches = stats_mod.expected_join_cardinality(spec)
        key_bits = key_bit_width(max(spec.build.distinct, spec.probe.distinct) - 1)

        # Fast path: every chunk probes the same resident build tables,
        # so the join formula's build-side invariants are computed once
        # and each chunk only scales the probe side by its fraction —
        # at most two distinct values (full chunks + a trailing partial
        # one), memoized per chunk size.
        probe_sizes_base = stats_mod.expected_partition_sizes(spec.probe, total_bits)
        evaluator = self._resident._join_cost_evaluator(
            build_sizes,
            probe_sizes_base,
            matches,
            tuple_bytes=spec.build.tuple_bytes,
            radix_bits=total_bits,
            key_bits=key_bits,
            materialize=materialize,
            charge_build=False,
        )
        join_memo: dict[int, float] = {}

        def chunk_join_seconds(i: int) -> float:
            this_chunk = min(chunk_tuples, spec.probe.n - i * chunk_tuples)
            cached = join_memo.get(this_chunk)
            if cached is None:
                partition = estimate_partition_cost(
                    this_chunk, spec.probe.tuple_bytes, bits_per_pass, self.cost_model
                )
                cached = partition.seconds + evaluator.seconds(
                    this_chunk / spec.probe.n
                )
                join_memo[this_chunk] = cached
            return cached

        return self._pipeline_plan(
            spec,
            chunk_tuples=chunk_tuples,
            chunk_join_seconds=chunk_join_seconds,
            build_prep_seconds=build_prep,
            matches=matches,
            materialize=materialize,
        )

    # ------------------------------------------------------------------
    def execute(
        self,
        build: Relation,
        probe: Relation,
        *,
        chunk_tuples: int | None = None,
        materialize: bool = False,
    ) -> JoinRunResult:
        """Functional execution: chunk the probe side and join each chunk
        against the resident partitioned build (the union of chunk joins
        equals the full join — §IV-A's correctness argument)."""
        cfg = self.config
        chunk_tuples = chunk_tuples or self.default_chunk_tuples(build.num_tuples)
        bits_per_pass = cfg.bits_per_pass_for(build.num_tuples)

        part_build, build_partition_cost = gpu_radix_partition(
            build, bits_per_pass, self.cost_model, bucket_capacity=cfg.bucket_capacity
        )
        tables, _ = build_copartition_tables(
            part_build,
            nslots=cfg.ht_slots,
            elements_per_block=cfg.elements_per_block,
            cost_model=self.cost_model,
        )

        chunk_costs: list[float] = []
        build_payloads: list[np.ndarray] = []
        probe_payloads: list[np.ndarray] = []
        n_chunks = math.ceil(probe.num_tuples / chunk_tuples)
        for i in range(n_chunks):
            chunk = probe.slice(i * chunk_tuples, min((i + 1) * chunk_tuples, probe.num_tuples))
            part_chunk, chunk_partition_cost = gpu_radix_partition(
                chunk, bits_per_pass, self.cost_model, bucket_capacity=cfg.bucket_capacity
            )
            result = probe_copartitions(
                tables,
                part_chunk,
                elements_per_block=cfg.elements_per_block,
                threads_per_block=cfg.threads_per_block_join,
                cost_model=self.cost_model,
                materialize=materialize,
                out_tuple_bytes=OUT_TUPLE_BYTES,
            )
            chunk_costs.append(chunk_partition_cost.seconds + result.cost.seconds)
            build_payloads.append(result.build_payloads)
            probe_payloads.append(result.probe_payloads)

        all_build = np.concatenate(build_payloads) if build_payloads else np.empty(0, np.int64)
        all_probe = np.concatenate(probe_payloads) if probe_payloads else np.empty(0, np.int64)

        spec = spec_from_relations(build, probe)
        # An empty probe executes zero chunks, but the degenerate spec
        # (n=1) still plans one; charge phantom chunks at zero cost.
        metrics = self.simulate(
            self._pipeline_plan(
                spec,
                chunk_tuples=chunk_tuples,
                chunk_join_seconds=lambda i: chunk_costs[i] if i < len(chunk_costs) else 0.0,
                build_prep_seconds=build_partition_cost.seconds,
                matches=float(all_build.shape[0]),
                materialize=materialize,
            )
        )
        if materialize:
            return JoinRunResult(
                metrics=metrics, build_payloads=all_build, probe_payloads=all_probe
            )
        return JoinRunResult(
            metrics=metrics, aggregate=aggregate_pairs(all_build, all_probe)
        )
