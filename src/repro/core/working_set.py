"""Skew-aware packing of partitions into GPU-sized working sets (§IV-D).

The co-processing join streams *working sets* of build-side partitions
through the GPU.  Two constraints drive their composition:

1. every working set must fit the GPU memory reserved for the build side
   (padding included — partitions are bucket chains);
2. the **first** working set overlaps with the CPU partitioning of the
   probe chunks, so it should be as large as possible to hide that time.

The paper's two-step approach is implemented directly: a knapsack over
the partitions chooses the first working set (maximize total elements
under the capacity), then the remaining partitions are packed greedily
with at most one "oversized" partition per working set (oversized
partitions need extra room for sub-partitioning intermediates).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import WorkingSetPackingError

#: Knapsack weight quantization: capacities are divided into this many
#: units, bounding the DP table while staying well under bucket size.
KNAPSACK_UNITS = 512


@dataclass
class WorkingSet:
    """One set of build partitions co-resident in GPU memory."""

    partition_ids: list[int] = field(default_factory=list)
    total_bytes: int = 0
    total_elements: int = 0
    oversized: int = 0

    def add(self, pid: int, nbytes: int, elements: int, *, oversized: bool) -> None:
        self.partition_ids.append(int(pid))
        self.total_bytes += int(nbytes)
        self.total_elements += int(elements)
        self.oversized += int(oversized)


def knapsack_first_working_set(
    padded_bytes: np.ndarray,
    elements: np.ndarray,
    capacity_bytes: int,
) -> list[int]:
    """0/1 knapsack: maximize elements subject to the byte capacity.

    Weights are quantized to :data:`KNAPSACK_UNITS` units of the capacity
    (rounded *up*, so the solution never overflows the true capacity).
    """
    n = padded_bytes.shape[0]
    if capacity_bytes <= 0:
        raise WorkingSetPackingError("working-set capacity must be positive")
    unit = max(1, capacity_bytes // KNAPSACK_UNITS)
    weights = np.ceil(padded_bytes / unit).astype(np.int64)
    cap_units = capacity_bytes // unit

    # dp[u] = best element total at weight u; choice tracking for recovery.
    dp = np.zeros(cap_units + 1, dtype=np.float64)
    take = np.zeros((n, cap_units + 1), dtype=bool)
    for i in range(n):
        w = int(weights[i])
        if w > cap_units:
            continue
        candidate = dp[: cap_units - w + 1] + float(elements[i])
        improved = candidate > dp[w:]
        take[i, w:] = improved
        dp[w:] = np.where(improved, candidate, dp[w:])

    chosen: list[int] = []
    u = int(np.argmax(dp))
    for i in range(n - 1, -1, -1):
        if u >= 0 and take[i, u]:
            chosen.append(i)
            u -= int(weights[i])
    chosen.reverse()
    return chosen


def pack_working_sets(
    padded_bytes: np.ndarray,
    elements: np.ndarray,
    capacity_bytes: int,
    *,
    oversize_threshold_bytes: int | None = None,
) -> list[WorkingSet]:
    """Pack all partitions into working sets per §IV-D.

    The first set is the knapsack solution; the rest are packed greedily
    in decreasing size order (first-fit), with at most one partition
    above ``oversize_threshold_bytes`` per set.  A partition larger than
    the capacity itself is placed alone in a working set — the executor
    sub-partitions it on the fly (§IV-B: "if the aggregate size of two
    co-partitions is larger than the GPU memory, they are further
    partitioned").
    """
    padded_bytes = np.asarray(padded_bytes, dtype=np.int64)
    elements = np.asarray(elements, dtype=np.int64)
    if padded_bytes.shape != elements.shape:
        raise WorkingSetPackingError("size arrays must align")
    if capacity_bytes <= 0:
        raise WorkingSetPackingError("working-set capacity must be positive")
    threshold = (
        capacity_bytes // 4
        if oversize_threshold_bytes is None
        else oversize_threshold_bytes
    )

    first_ids = knapsack_first_working_set(padded_bytes, elements, capacity_bytes)
    first = WorkingSet()
    for pid in first_ids:
        first.add(
            pid,
            padded_bytes[pid],
            elements[pid],
            oversized=padded_bytes[pid] > threshold,
        )

    remaining = sorted(
        (pid for pid in range(padded_bytes.shape[0]) if pid not in set(first_ids)),
        key=lambda pid: -int(padded_bytes[pid]),
    )
    sets: list[WorkingSet] = [first] if first.partition_ids else []
    open_sets: list[WorkingSet] = []
    for pid in remaining:
        nbytes = int(padded_bytes[pid])
        oversized = nbytes > threshold
        placed = False
        for ws in open_sets:
            if ws.total_bytes + nbytes > capacity_bytes:
                continue
            if oversized and ws.oversized >= 1:
                continue
            ws.add(pid, nbytes, elements[pid], oversized=oversized)
            placed = True
            break
        if not placed:
            fresh = WorkingSet()
            fresh.add(pid, nbytes, elements[pid], oversized=oversized)
            open_sets.append(fresh)
    sets.extend(open_sets)

    if not sets and padded_bytes.size:
        raise WorkingSetPackingError("no working sets produced for non-empty input")
    return sets
