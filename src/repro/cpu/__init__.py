"""CPU substrate: radix partitioning, PRO/NPO baselines, NUMA model."""

from repro.cpu.npo import NpoJoin
from repro.cpu.numa import NumaModel
from repro.cpu.pro import CpuJoinMetrics, ProJoin, radix_passes_needed
from repro.cpu.radix_partition import (
    CPU_BUCKET_CAPACITY,
    CpuPartitionModel,
    cpu_radix_partition,
)

__all__ = [
    "CPU_BUCKET_CAPACITY",
    "CpuJoinMetrics",
    "CpuPartitionModel",
    "NpoJoin",
    "NumaModel",
    "ProJoin",
    "cpu_radix_partition",
    "radix_passes_needed",
]
