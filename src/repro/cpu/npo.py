"""NPO: the non-partitioned (hardware-oblivious) CPU hash join.

Blanas et al.'s "no partitioning" join builds one shared hash table over
the build relation and probes it from all threads.  It performs well
while the table is cache-resident and degrades once lookups miss the
last-level cache — the comparison point the paper carries through
Figures 8 and 12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cpu.pro import CpuJoinMetrics, _spec_from_relations
from repro.data import stats as stats_mod
from repro.data.relation import Relation
from repro.data.spec import JoinSpec
from repro.errors import InvalidConfigError
from repro.gpusim import atomics
from repro.gpusim.atomics import NIL
from repro.gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.gpusim.spec import SystemSpec
from repro.kernels.common import ht_slot, next_power_of_two

CACHE_LINE = 64


class NpoJoin:
    """Non-partitioned CPU hash join."""

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
    ):
        self.system = system or SystemSpec()
        self.calib = calibration or DEFAULT_CALIBRATION

    # ------------------------------------------------------------------
    def _llc_hit_fraction(self, footprint_bytes: float) -> float:
        """Fraction of lookups served by the aggregate last-level cache."""
        llc = self.system.cpu.sockets * self.system.cpu.l3_per_socket
        if footprint_bytes <= 0:
            return 1.0
        return min(1.0, llc / footprint_bytes) * 0.85

    def estimate(self, spec: JoinSpec, *, threads: int | None = None) -> CpuJoinMetrics:
        threads = self.system.cpu.total_threads if threads is None else threads
        if threads <= 0:
            raise InvalidConfigError("threads must be positive")
        calib = self.calib
        cpu = self.system.cpu

        footprint = spec.build.n * (spec.build.tuple_bytes + 8)
        hit = self._llc_hit_fraction(footprint)
        # Memory traffic of misses; bandwidth shared by all threads but
        # also capped by what the thread count can sustain.
        bandwidth = min(
            cpu.total_memory_bandwidth * 0.6,
            threads * calib.cpu_thread_bandwidth,
        )
        build_lines = spec.build.n * calib.cpu_npo_build_lines_per_tuple
        probe_lines = spec.probe.n * calib.cpu_npo_lines_per_probe
        miss_bytes = (build_lines + probe_lines) * (1.0 - hit) * CACHE_LINE
        memory_seconds = miss_bytes / bandwidth

        # Cache-resident instruction path.
        matches = stats_mod.expected_join_cardinality(spec)
        cycles = (spec.build.n + spec.probe.n + matches) * calib.cpu_npo_cycles_per_tuple
        eff_threads = min(threads, cpu.total_cores) + 0.25 * max(
            0, min(threads - cpu.total_cores, cpu.total_cores)
        )
        compute_seconds = cycles / (eff_threads * cpu.clock_hz)

        seconds = max(memory_seconds, compute_seconds)
        return CpuJoinMetrics(
            seconds=seconds,
            partition_seconds=0.0,
            join_seconds=seconds,
            total_tuples=spec.total_tuples,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        build: Relation,
        probe: Relation,
        *,
        threads: int | None = None,
    ) -> tuple[np.ndarray, CpuJoinMetrics]:
        """Functional execution: one global chaining table, full probe."""
        nslots = next_power_of_two(max(1, build.num_tuples))
        slots = ht_slot(build.key, nslots)
        table = atomics.chain_insert(slots, nslots)

        cursors = table.heads[ht_slot(probe.key, nslots)]
        hits: list[np.ndarray] = []
        live = np.nonzero(cursors != NIL)[0]
        cursors = cursors[live]
        while live.size:
            hit = build.key[cursors] == probe.key[live]
            if hit.any():
                hits.append(
                    np.stack(
                        [build.payload[cursors[hit]], probe.payload[live[hit]]], axis=1
                    )
                )
            cursors = table.next[cursors]
            alive = cursors != NIL
            live = live[alive]
            cursors = cursors[alive]

        if hits:
            out = np.concatenate(hits)
            out = out[np.lexsort((out[:, 1], out[:, 0]))]
        else:
            out = np.empty((0, 2), dtype=np.int64)
        spec = _spec_from_relations(build, probe)
        return out, self.estimate(spec, threads=threads)
