"""NUMA topology effects on CPU→GPU transfers (§IV-B, Figs 13 & 16).

On the dual-socket testbed, half of the partitioned data lands on the
socket *far* from the GPU.  DMA reads crossing the QPI contend with
cache-coherency traffic and partitioning, collapsing transfer rates; the
paper's remedy is an explicit *staging copy* — CPU threads move far-
socket data into pinned near-socket buffers as an extra pipeline phase.

Two effects are modelled:

* ``direct`` vs ``staged`` source placement for H2D transfers (Fig 16);
* memory-bandwidth saturation when too many partitioning threads run
  concurrently with DMA (Fig 13's drop past ~26 threads).  The paper
  explains the drop qualitatively (saturated memory system); the
  saturation point here is derived from the same bandwidth budget the
  partitioning model uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidConfigError
from repro.gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.gpusim.spec import SystemSpec


@dataclass(frozen=True)
class NumaModel:
    """Effective transfer rates under NUMA placement and contention."""

    system: SystemSpec
    calibration: Calibration = DEFAULT_CALIBRATION

    # ------------------------------------------------------------------
    def partition_bandwidth_demand(self, threads: int) -> float:
        """Memory bandwidth consumed by ``threads`` partitioning threads
        (read + non-temporal write per tuple)."""
        if threads < 0:
            raise InvalidConfigError("threads must be non-negative")
        calib = self.calibration
        return (
            threads
            * calib.cpu_partition_bytes_per_thread
            * calib.cpu_partition_traffic_factor
        )

    def dma_contention_factor(self, partition_threads: int) -> float:
        """Fraction of the pipelined DMA rate that survives contention.

        While partitioning runs (the pipeline's phase A), the near socket
        serves both the DMA reads and each partitioning thread's
        near-socket traffic share; past the saturation point transfers
        degrade.  When no partitioning runs (``partition_threads == 0``,
        the staging-only phases), the staging copy plus DMA never
        saturate the socket.
        """
        cpu = self.system.cpu
        calib = self.calibration
        capacity = cpu.memory_bandwidth_per_socket
        dma = self.system.interconnect.pinned_bandwidth * calib.pcie_stream_utilization
        demand = dma + partition_threads * calib.numa_partition_near_bytes_per_thread
        if partition_threads == 0:
            demand = 2.0 * dma  # DMA reads + the staging copy feeding them
        if demand <= capacity:
            return 1.0
        # Oversubscription degrades transfers, but DMA reads keep priority
        # in the memory controller: the observed drop is bounded (the
        # paper reports a *small* decline past the saturation point).
        return max(0.85, capacity / demand)

    # ------------------------------------------------------------------
    def h2d_rate_staged(self, threads: int = 0) -> float:
        """Sustained H2D bandwidth with the staging copy (near-socket
        pinned buffers feed the DMA engine)."""
        calib = self.calibration
        base = self.system.interconnect.pinned_bandwidth * calib.pcie_stream_utilization
        return base * self.dma_contention_factor(threads)

    def h2d_rate_direct(self, threads: int = 0) -> float:
        """Sustained H2D bandwidth reading far-socket halves over QPI.

        Half the data streams at the near-socket rate and half at the
        interference-degraded QPI rate; the sustained rate is their
        harmonic combination (transfers are serialized on the bus).
        """
        calib = self.calibration
        near = self.system.interconnect.pinned_bandwidth * calib.pcie_stream_utilization
        far = min(
            near, self.system.cpu.qpi_bandwidth * calib.qpi_transfer_utilization
        )
        rate = 2.0 / (1.0 / near + 1.0 / far)
        return rate * self.dma_contention_factor(threads)

    def staging_copy_rate(self, threads: int) -> float:
        """Throughput of the explicit far→near copy (the CPU phase of the
        pipeline after the first working set, §IV-B)."""
        per_thread = self.calibration.cpu_thread_bandwidth / 2.0  # read+write
        qpi = self.system.cpu.qpi_bandwidth
        return min(max(1, threads) * per_thread, qpi)
