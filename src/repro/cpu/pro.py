"""PRO: the parallel radix-partitioned hash join for CPUs.

The paper compares against the optimized partitioned hash join of
Balkesen et al. ("PRO"), running on all 48 hardware threads of the
testbed (§V-B, Annotations).  This module reimplements the algorithm
functionally (multi-pass radix partitioning to cache-sized partitions,
then per-partition build + probe) and models its cost: bandwidth-bound
partitioning passes plus a cycles-per-tuple cache-resident join phase.
Additional passes become necessary as relations grow — the source of the
downward throughput trend the paper observes for large inputs (Fig 12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cpu.radix_partition import CpuPartitionModel, cpu_radix_partition
from repro.data.relation import Relation
from repro.data.spec import JoinSpec
from repro.data import stats as stats_mod
from repro.errors import InvalidConfigError
from repro.gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.gpusim.spec import SystemSpec

#: Target partition footprint: half the per-core L2 so the hash table and
#: probe stream coexist in cache (Shatdal's cache-consciousness argument).
TARGET_PARTITION_TUPLES = 4096
#: Fanout per pass is limited by TLB entries (Boncz et al.): 2^7 per pass.
MAX_BITS_PER_PASS = 7


@dataclass(frozen=True)
class CpuJoinMetrics:
    """Modelled execution of a CPU join."""

    seconds: float
    partition_seconds: float
    join_seconds: float
    total_tuples: int

    @property
    def throughput(self) -> float:
        """Tuples per second over both inputs (the paper's metric)."""
        return self.total_tuples / self.seconds if self.seconds > 0 else 0.0


def radix_passes_needed(n_tuples: int) -> tuple[int, int]:
    """(total radix bits, number of passes) for cache-sized partitions."""
    total_bits = max(
        1, math.ceil(math.log2(max(2.0, n_tuples / TARGET_PARTITION_TUPLES)))
    )
    passes = math.ceil(total_bits / MAX_BITS_PER_PASS)
    return total_bits, passes


class ProJoin:
    """Partitioned radix hash join on the host CPU."""

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
    ):
        self.system = system or SystemSpec()
        self.calib = calibration or DEFAULT_CALIBRATION
        self.partition_model = CpuPartitionModel(self.system, self.calib)

    # ------------------------------------------------------------------
    def _effective_threads(self, threads: int) -> float:
        """SMT threads beyond the physical cores add ~25% each."""
        cores = self.system.cpu.total_cores
        if threads <= cores:
            return float(threads)
        return cores + 0.25 * min(threads - cores, cores)

    def estimate(self, spec: JoinSpec, *, threads: int | None = None) -> CpuJoinMetrics:
        """Modelled cost for a workload spec."""
        threads = self.system.cpu.total_threads if threads is None else threads
        if threads <= 0:
            raise InvalidConfigError("threads must be positive")
        calib = self.calib
        n_build, n_probe = spec.build.n, spec.probe.n

        _, passes = radix_passes_needed(n_build)
        rate = (
            self.partition_model.pass_rate(threads)
            * calib.cpu_pro_partition_efficiency
        )
        partition_seconds = (
            passes * (spec.build.nbytes + spec.probe.nbytes) / rate
            + passes * calib.cpu_pro_sync_seconds_per_pass
        )

        matches = stats_mod.expected_join_cardinality(spec)
        cycles = (n_build + n_probe + matches) * calib.cpu_pro_join_cycles_per_tuple
        join_rate = self._effective_threads(threads) * self.system.cpu.clock_hz
        join_seconds = cycles / join_rate

        return CpuJoinMetrics(
            seconds=partition_seconds + join_seconds,
            partition_seconds=partition_seconds,
            join_seconds=join_seconds,
            total_tuples=spec.total_tuples,
        )

    # ------------------------------------------------------------------
    def run(
        self,
        build: Relation,
        probe: Relation,
        *,
        threads: int | None = None,
    ) -> tuple[np.ndarray, CpuJoinMetrics]:
        """Execute the join functionally and model its cost.

        Returns the sorted ``(build_payload, probe_payload)`` pairs and
        the metrics (thread count affects only the metrics).
        """
        threads = self.system.cpu.total_threads if threads is None else threads
        total_bits, _ = radix_passes_needed(build.num_tuples)
        part_build = cpu_radix_partition(build, total_bits)
        part_probe = cpu_radix_partition(probe, total_bits)

        pairs: list[np.ndarray] = []
        for p in range(part_build.fanout):
            b_keys, b_payloads = part_build.partition(p)
            s_keys, s_payloads = part_probe.partition(p)
            if not b_keys.shape[0] or not s_keys.shape[0]:
                continue
            order = np.argsort(b_keys, kind="stable")
            sorted_keys = b_keys[order]
            lo = np.searchsorted(sorted_keys, s_keys, side="left")
            hi = np.searchsorted(sorted_keys, s_keys, side="right")
            counts = hi - lo
            total = int(counts.sum())
            if not total:
                continue
            probe_idx = np.repeat(np.arange(s_keys.shape[0]), counts)
            within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
            build_idx = order[np.repeat(lo, counts) + within]
            pairs.append(
                np.stack([b_payloads[build_idx], s_payloads[probe_idx]], axis=1)
            )

        if pairs:
            out = np.concatenate(pairs)
            out = out[np.lexsort((out[:, 1], out[:, 0]))]
        else:
            out = np.empty((0, 2), dtype=np.int64)

        spec = _spec_from_relations(build, probe)
        return out, self.estimate(spec, threads=threads)


def _spec_from_relations(build: Relation, probe: Relation) -> JoinSpec:
    """Describe materialized relations well enough for the cost model."""
    from repro.data.spec import Distribution, RelationSpec

    def describe(rel: Relation) -> RelationSpec:
        distinct = rel.distinct_keys()
        if distinct == rel.num_tuples:
            return RelationSpec(
                n=rel.num_tuples,
                payload_bytes=rel.payload_bytes,
                late_payload_bytes=rel.late_payload_bytes,
            )
        return RelationSpec(
            n=rel.num_tuples,
            distinct=distinct,
            distribution=Distribution.UNIFORM,
            payload_bytes=rel.payload_bytes,
            late_payload_bytes=rel.late_payload_bytes,
        )

    return JoinSpec(build=describe(build), probe=describe(probe))
