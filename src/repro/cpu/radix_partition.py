"""CPU radix partitioning (the co-processing join's host-side phase).

The paper's §IV-B partitions both relations on the host with a
multi-threaded, NUMA-aware radix pass using software-managed buffers and
non-temporal stores, reaching ≈ 40 GB/s with 16 threads (§V-C) — the
rate that lets 5 of 16 partitions saturate PCIe.  The functional path
reuses the stable counting-sort partitioner; the cost model captures the
thread scaling and the memory-bandwidth ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.relation import Relation
from repro.errors import InvalidConfigError
from repro.gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.gpusim.spec import SystemSpec
from repro.kernels.buckets import PartitionedRelation

#: Bucket capacity of CPU-side partitions staged into pinned memory.
CPU_BUCKET_CAPACITY = 2048


def cpu_radix_partition(
    relation: Relation,
    bits: int,
    *,
    bucket_capacity: int = CPU_BUCKET_CAPACITY,
) -> PartitionedRelation:
    """Partition ``relation`` on its low ``bits`` key bits (functional).

    Thread-parallel execution changes only the cost, not the result: each
    thread partitions its chunk and per-partition bucket lists are
    concatenated afterwards (§IV-B), which yields the same stable
    grouping as a single stable pass.
    """
    if bits <= 0:
        raise InvalidConfigError("CPU partitioning needs bits >= 1")
    fanout = 1 << bits
    pid = relation.key & (fanout - 1)
    order = np.argsort(pid, kind="stable")
    histogram = np.bincount(pid, minlength=fanout)
    offsets = np.zeros(fanout + 1, dtype=np.int64)
    np.cumsum(histogram, out=offsets[1:])
    return PartitionedRelation(
        keys=relation.key[order],
        payloads=relation.payload[order],
        offsets=offsets,
        radix_bits=bits,
        bucket_capacity=bucket_capacity,
        tuple_bytes=relation.tuple_bytes,
    )


@dataclass(frozen=True)
class CpuPartitionModel:
    """Thread-scaling cost model of the host partitioning pass."""

    system: SystemSpec
    calibration: Calibration = DEFAULT_CALIBRATION

    def pass_rate(self, threads: int) -> float:
        """Input bytes per second of one pass with ``threads`` threads.

        Scales linearly with threads until the aggregate memory traffic
        (read + non-temporal write per tuple) saturates the machine's
        memory bandwidth.
        """
        if threads <= 0:
            raise InvalidConfigError("threads must be positive")
        calib = self.calibration
        linear = threads * calib.cpu_partition_bytes_per_thread
        ceiling = (
            self.system.cpu.total_memory_bandwidth
            / calib.cpu_partition_traffic_factor
        )
        return min(linear, ceiling)

    def pass_seconds(self, nbytes: float, threads: int) -> float:
        return nbytes / self.pass_rate(threads)

    def saturation_threads(self) -> int:
        """Threads at which one more thread stops helping."""
        calib = self.calibration
        ceiling = (
            self.system.cpu.total_memory_bandwidth
            / calib.cpu_partition_traffic_factor
        )
        return max(1, int(ceiling / calib.cpu_partition_bytes_per_thread))
