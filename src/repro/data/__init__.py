"""Data substrate: relations, workload specs, generators, statistics."""

from repro.data.generator import (
    DEFAULT_SEED,
    generate_join,
    generate_relation,
    naive_join_count,
    naive_join_pairs,
)
from repro.data.relation import DEFAULT_PAYLOAD_BYTES, KEY_BYTES, Relation
from repro.data.spec import (
    Distribution,
    JoinSpec,
    RelationSpec,
    replicated_pair,
    unique_pair,
    zipf_pair,
)

__all__ = [
    "DEFAULT_PAYLOAD_BYTES",
    "DEFAULT_SEED",
    "Distribution",
    "JoinSpec",
    "KEY_BYTES",
    "Relation",
    "RelationSpec",
    "generate_join",
    "generate_relation",
    "naive_join_count",
    "naive_join_pairs",
    "replicated_pair",
    "unique_pair",
    "zipf_pair",
]
