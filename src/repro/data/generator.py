"""Workload generators.

Materialize :class:`~repro.data.spec.JoinSpec` descriptions into concrete
:class:`~repro.data.relation.Relation` pairs.  The generators mirror the
microbenchmark used by the paper (§V-A) and by the CPU-join studies it
adopts it from: narrow ``(key, payload)`` tuples, columnar layout, unique
uniform keys by default, with variants for probe/build ratios, duplicates,
and Zipf skew.
"""

from __future__ import annotations

import numpy as np

from repro.data import zipf as zipf_mod
from repro.data.relation import Relation
from repro.data.spec import Distribution, JoinSpec, RelationSpec
from repro.errors import InvalidConfigError

#: Default seed; every generator takes an explicit ``seed`` so experiments
#: are reproducible, as the bench harness records the seed with each run.
DEFAULT_SEED = 0x5EED


def _keys_for(spec: RelationSpec, rng: np.random.Generator) -> np.ndarray:
    if spec.distribution is Distribution.UNIQUE:
        return rng.permutation(spec.n).astype(np.int64)
    if spec.distribution is Distribution.UNIFORM:
        return rng.integers(0, spec.distinct, size=spec.n, dtype=np.int64)
    if spec.distribution is Distribution.ZIPF:
        # Rank r maps to key r directly.  Consecutive popular keys land in
        # *different* radix partitions (they differ in their low bits), the
        # same behaviour as the generator used by the CPU-join studies the
        # paper builds on.
        return zipf_mod.sample(spec.distinct, spec.zipf_s, spec.n, rng)
    raise InvalidConfigError(f"unknown distribution: {spec.distribution}")


def generate_relation(
    spec: RelationSpec,
    *,
    seed: int = DEFAULT_SEED,
    name: str = "relation",
) -> Relation:
    """Materialize a single relation from its spec."""
    rng = np.random.default_rng(seed)
    return Relation.from_keys(
        _keys_for(spec, rng),
        name=name,
        payload_bytes=spec.payload_bytes,
        late_payload_bytes=spec.late_payload_bytes,
    )


def generate_join(
    spec: JoinSpec,
    *,
    seed: int = DEFAULT_SEED,
) -> tuple[Relation, Relation]:
    """Materialize a ``(build, probe)`` relation pair from a join spec.

    When ``spec.shared_domain`` is set (the default, matching the paper),
    probe keys are drawn from the build relation's key domain so that the
    set of distinct values stays constant as the probe side grows.
    """
    rng = np.random.default_rng(seed)
    build_keys = _keys_for(spec.build, rng)

    probe = spec.probe
    if probe.distribution is Distribution.UNIQUE:
        if probe.n == spec.build.n and spec.shared_domain:
            probe_keys = rng.permutation(build_keys)
        else:
            probe_keys = rng.permutation(probe.n).astype(np.int64)
    elif probe.distribution is Distribution.UNIFORM:
        probe_keys = rng.integers(0, probe.distinct, size=probe.n, dtype=np.int64)
    else:  # ZIPF
        probe_keys = zipf_mod.sample(probe.distinct, probe.zipf_s, probe.n, rng)

    build_rel = Relation.from_keys(
        build_keys,
        name="build",
        payload_bytes=spec.build.payload_bytes,
        late_payload_bytes=spec.build.late_payload_bytes,
    )
    probe_rel = Relation.from_keys(
        probe_keys,
        name="probe",
        payload_bytes=probe.payload_bytes,
        late_payload_bytes=probe.late_payload_bytes,
    )
    return build_rel, probe_rel


def naive_join_count(build: Relation, probe: Relation) -> int:
    """Reference join cardinality, used as the test oracle."""
    if build.num_tuples == 0 or probe.num_tuples == 0:
        return 0
    build_keys, build_counts = np.unique(build.key, return_counts=True)
    probe_keys, probe_counts = np.unique(probe.key, return_counts=True)
    idx = np.searchsorted(build_keys, probe_keys)
    idx = np.clip(idx, 0, build_keys.shape[0] - 1)
    match = build_keys[idx] == probe_keys
    return int(np.sum(build_counts[idx[match]] * probe_counts[match]))


def naive_join_pairs(build: Relation, probe: Relation) -> np.ndarray:
    """Reference join result as a sorted ``(build_payload, probe_payload)``
    array of shape ``(matches, 2)``.  O(n log n); for tests only."""
    order_b = np.argsort(build.key, kind="stable")
    sorted_b = build.key[order_b]
    lo = np.searchsorted(sorted_b, probe.key, side="left")
    hi = np.searchsorted(sorted_b, probe.key, side="right")
    counts = hi - lo
    total = int(counts.sum())
    out = np.empty((total, 2), dtype=np.int64)
    # Expand the per-probe match ranges.
    probe_idx = np.repeat(np.arange(probe.num_tuples), counts)
    within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
    build_idx = order_b[np.repeat(lo, counts) + within]
    out[:, 0] = build.payload[build_idx]
    out[:, 1] = probe.payload[probe_idx]
    view = out[np.lexsort((out[:, 1], out[:, 0]))]
    return view
