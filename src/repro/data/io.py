"""Columnar persistence for relations and tables.

Binary save/load so workloads can be generated once and reused across
benchmark runs (the paper's workloads are large enough that regenerating
them dominates small experiments).  Format: one ``.npz`` archive holding
the columns plus a JSON metadata entry (schema version, payload widths,
table/column names).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.data.relation import Relation
from repro.errors import InvalidRelationError

FORMAT_VERSION = 1


def save_relation(relation: Relation, path: str | Path) -> None:
    """Persist a relation's columns and metadata to ``path`` (.npz)."""
    meta = {
        "version": FORMAT_VERSION,
        "kind": "relation",
        "name": relation.name,
        "payload_bytes": relation.payload_bytes,
        "late_payload_bytes": relation.late_payload_bytes,
    }
    np.savez_compressed(
        Path(path),
        key=relation.key,
        payload=relation.payload,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )


def load_relation(path: str | Path) -> Relation:
    """Load a relation written by :func:`save_relation`."""
    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode())
        if meta.get("version") != FORMAT_VERSION or meta.get("kind") != "relation":
            raise InvalidRelationError(
                f"{path}: not a version-{FORMAT_VERSION} relation archive"
            )
        return Relation(
            key=archive["key"],
            payload=archive["payload"],
            name=meta["name"],
            payload_bytes=meta["payload_bytes"],
            late_payload_bytes=meta["late_payload_bytes"],
        )


def save_table(table, path: str | Path) -> None:
    """Persist a :class:`repro.query.Table` to ``path`` (.npz)."""
    meta = {
        "version": FORMAT_VERSION,
        "kind": "table",
        "name": table.name,
        "columns": table.column_names,
    }
    np.savez_compressed(
        Path(path),
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
        **{f"col_{i}": table.column(name) for i, name in enumerate(table.column_names)},
    )


def load_table(path: str | Path):
    """Load a table written by :func:`save_table`."""
    from repro.query.table import Table

    with np.load(Path(path)) as archive:
        meta = json.loads(bytes(archive["meta"]).decode())
        if meta.get("version") != FORMAT_VERSION or meta.get("kind") != "table":
            raise InvalidRelationError(
                f"{path}: not a version-{FORMAT_VERSION} table archive"
            )
        return Table(
            name=meta["name"],
            columns={
                name: archive[f"col_{i}"] for i, name in enumerate(meta["columns"])
            },
        )
