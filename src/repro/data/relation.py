"""Columnar relations.

The paper's workload (§V-A) mimics the standard microbenchmark used by the
CPU-join literature: narrow tuples of a 4-byte key and a 4-byte payload,
stored column-wise.  We keep the columns as numpy arrays (``int64`` for
headroom; the *modelled* width stays 4 bytes so that all traffic
computations match the paper) and carry two extra pieces of metadata:

``payload_bytes``
    The in-tuple payload width.  The base workload uses 4 bytes.

``late_payload_bytes``
    Width of additional attributes that are *late materialized*: the join
    carries a tuple identifier and the attributes are gathered afterwards
    (Figures 9 and 10 vary this width from 16 to 128 bytes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidRelationError

#: Modelled width of a join key in bytes (the paper uses 4-byte keys).
KEY_BYTES = 4

#: Modelled width of the in-tuple payload in bytes.
DEFAULT_PAYLOAD_BYTES = 4


@dataclass
class Relation:
    """An in-memory columnar relation participating in a join.

    Parameters
    ----------
    key:
        Join-key column.  Stored as ``int64``; modelled as 4-byte values.
    payload:
        Payload column, by convention the tuple identifier used for late
        materialization.  Must have the same length as ``key``.
    name:
        Human-readable name used in logs and experiment reports.
    payload_bytes:
        Modelled in-tuple payload width (bytes).
    late_payload_bytes:
        Modelled width of late-materialized attributes (bytes).
    """

    key: np.ndarray
    payload: np.ndarray
    name: str = "relation"
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES
    late_payload_bytes: int = 0
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.key = np.ascontiguousarray(self.key, dtype=np.int64)
        self.payload = np.ascontiguousarray(self.payload, dtype=np.int64)
        if self.key.ndim != 1 or self.payload.ndim != 1:
            raise InvalidRelationError(
                f"{self.name}: key and payload must be one-dimensional"
            )
        if self.key.shape[0] != self.payload.shape[0]:
            raise InvalidRelationError(
                f"{self.name}: key column has {self.key.shape[0]} rows but "
                f"payload column has {self.payload.shape[0]}"
            )
        if self.payload_bytes < 0 or self.late_payload_bytes < 0:
            raise InvalidRelationError(
                f"{self.name}: payload widths must be non-negative"
            )
        self._validated = True

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def num_tuples(self) -> int:
        """Number of tuples in the relation."""
        return int(self.key.shape[0])

    @property
    def tuple_bytes(self) -> int:
        """Modelled width of one tuple as it flows through the join."""
        return KEY_BYTES + self.payload_bytes

    @property
    def nbytes(self) -> int:
        """Modelled total size of the join columns in bytes."""
        return self.num_tuples * self.tuple_bytes

    @property
    def total_bytes_with_late_payload(self) -> int:
        """Modelled size including the late-materialized attributes."""
        return self.nbytes + self.num_tuples * self.late_payload_bytes

    def __len__(self) -> int:  # pragma: no cover - trivial
        return self.num_tuples

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_keys(
        cls,
        keys: np.ndarray,
        name: str = "relation",
        *,
        payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
        late_payload_bytes: int = 0,
    ) -> "Relation":
        """Build a relation whose payload is the tuple identifier (row id)."""
        keys = np.asarray(keys, dtype=np.int64)
        return cls(
            key=keys,
            payload=np.arange(keys.shape[0], dtype=np.int64),
            name=name,
            payload_bytes=payload_bytes,
            late_payload_bytes=late_payload_bytes,
        )

    def take(self, indices: np.ndarray, name: str | None = None) -> "Relation":
        """Return a new relation holding the tuples at ``indices``."""
        return Relation(
            key=self.key[indices],
            payload=self.payload[indices],
            name=name or self.name,
            payload_bytes=self.payload_bytes,
            late_payload_bytes=self.late_payload_bytes,
        )

    def slice(self, start: int, stop: int, name: str | None = None) -> "Relation":
        """Return a zero-copy view of tuples ``[start, stop)``."""
        return Relation(
            key=self.key[start:stop],
            payload=self.payload[start:stop],
            name=name or f"{self.name}[{start}:{stop}]",
            payload_bytes=self.payload_bytes,
            late_payload_bytes=self.late_payload_bytes,
        )

    def distinct_keys(self) -> int:
        """Number of distinct join keys (exact, computed from the data)."""
        return int(np.unique(self.key).shape[0])

    def describe(self) -> str:
        """One-line summary used by examples and the bench harness."""
        return (
            f"{self.name}: {self.num_tuples:,} tuples x "
            f"{self.tuple_bytes} B (+{self.late_payload_bytes} B late) = "
            f"{self.nbytes / 1e6:.1f} MB"
        )
