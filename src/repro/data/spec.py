"""Analytic workload descriptions.

A :class:`RelationSpec` describes a relation by its statistical properties
instead of materialized arrays.  The cost models consume these descriptions
directly, which is how the benchmark harness reproduces the paper's
experiments at sizes (up to 2048 million tuples, §V-C) that cannot be
materialized in this environment.  The same specs drive the data
generators, so every spec can also be materialized at small scale and the
analytic statistics checked against empirical ones (see
``tests/data/test_stats.py``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.data.relation import DEFAULT_PAYLOAD_BYTES, KEY_BYTES
from repro.errors import InvalidConfigError


class Distribution(enum.Enum):
    """Key distribution families used in the paper's evaluation."""

    #: Unique keys, uniformly shuffled (the base microbenchmark, §V-A).
    UNIQUE = "unique"
    #: Keys drawn uniformly from a fixed domain (duplicates allowed, Fig 19).
    UNIFORM = "uniform"
    #: Zipf-distributed keys (Figs 17, 18, 20).
    ZIPF = "zipf"


@dataclass(frozen=True)
class RelationSpec:
    """Statistical description of one relation.

    Parameters
    ----------
    n:
        Number of tuples.
    distinct:
        Size of the key domain the tuples are drawn from.  For
        :attr:`Distribution.UNIQUE` this must equal ``n``.
    distribution:
        Key distribution family.
    zipf_s:
        Zipf exponent; only meaningful for :attr:`Distribution.ZIPF`.
        ``zipf_s == 0`` degenerates to uniform.
    payload_bytes / late_payload_bytes:
        Modelled payload widths, as in :class:`repro.data.Relation`.
    """

    n: int
    distinct: int | None = None
    distribution: Distribution = Distribution.UNIQUE
    zipf_s: float = 0.0
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES
    late_payload_bytes: int = 0

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise InvalidConfigError(f"relation size must be positive, got {self.n}")
        distinct = self.distinct if self.distinct is not None else self.n
        object.__setattr__(self, "distinct", distinct)
        if distinct <= 0:
            raise InvalidConfigError("key domain size must be positive")
        if self.distribution is Distribution.UNIQUE and distinct != self.n:
            raise InvalidConfigError(
                "UNIQUE relations must have distinct == n "
                f"(got distinct={distinct}, n={self.n})"
            )
        if self.distribution is Distribution.ZIPF and self.zipf_s < 0:
            raise InvalidConfigError("zipf exponent must be non-negative")
        if self.payload_bytes < 0 or self.late_payload_bytes < 0:
            raise InvalidConfigError("payload widths must be non-negative")

    # ------------------------------------------------------------------
    @property
    def tuple_bytes(self) -> int:
        """Modelled tuple width as it flows through the join."""
        return KEY_BYTES + self.payload_bytes

    @property
    def nbytes(self) -> int:
        """Modelled size of the join columns."""
        return self.n * self.tuple_bytes

    @property
    def avg_multiplicity(self) -> float:
        """Average number of tuples per distinct key."""
        return self.n / float(self.distinct)

    def scaled(self, n: int) -> "RelationSpec":
        """Same distribution, different cardinality.

        The key domain scales proportionally so that multiplicity (and thus
        match counts per probe) is preserved — this mirrors the paper's
        sweeps, which grow both relations while keeping the distinct-value
        relationship fixed.
        """
        if self.distribution is Distribution.UNIQUE:
            return replace(self, n=n, distinct=n)
        ratio = self.distinct / self.n
        return replace(self, n=n, distinct=max(1, round(n * ratio)))

    def with_payload(
        self, payload_bytes: int | None = None, late_payload_bytes: int | None = None
    ) -> "RelationSpec":
        """Copy with different payload widths (Figures 9 and 10)."""
        return replace(
            self,
            payload_bytes=self.payload_bytes if payload_bytes is None else payload_bytes,
            late_payload_bytes=(
                self.late_payload_bytes
                if late_payload_bytes is None
                else late_payload_bytes
            ),
        )


@dataclass(frozen=True)
class JoinSpec:
    """Statistical description of a two-relation equi-join workload.

    ``shared_domain`` declares that probe keys are drawn from the build
    relation's key domain, which is how the paper keeps the set of distinct
    values constant while varying the probe size (Figs 8, 11): every probe
    tuple then finds at least one match.
    """

    build: RelationSpec
    probe: RelationSpec
    shared_domain: bool = True
    #: Both sides identically skewed with the same popular values
    #: (the paper's worst case, Figs 17, 18, 20).
    identical_skew: bool = False

    def __post_init__(self) -> None:
        if self.identical_skew:
            if self.build.distribution is not Distribution.ZIPF:
                raise InvalidConfigError(
                    "identical_skew requires zipf-distributed inputs"
                )
            if self.build.distinct != self.probe.distinct:
                raise InvalidConfigError(
                    "identical_skew requires equal key domains"
                )

    @property
    def total_tuples(self) -> int:
        """Combined input cardinality — the denominator of the paper's
        throughput metric (§V-A)."""
        return self.build.n + self.probe.n

    @property
    def total_bytes(self) -> int:
        return self.build.nbytes + self.probe.nbytes

    def scaled(self, build_n: int, probe_n: int | None = None) -> "JoinSpec":
        """Scale both sides, preserving the build:probe ratio by default."""
        if probe_n is None:
            probe_n = round(build_n * self.probe.n / self.build.n)
        return JoinSpec(
            build=self.build.scaled(build_n),
            probe=self.probe.scaled(probe_n),
            shared_domain=self.shared_domain,
            identical_skew=self.identical_skew,
        )


def unique_pair(
    build_n: int,
    probe_n: int | None = None,
    *,
    payload_bytes: int = DEFAULT_PAYLOAD_BYTES,
) -> JoinSpec:
    """The paper's base microbenchmark: unique uniform build keys, probe
    keys drawn from the same domain (1:1 when ``probe_n`` is omitted)."""
    probe_n = build_n if probe_n is None else probe_n
    build = RelationSpec(n=build_n, payload_bytes=payload_bytes)
    if probe_n == build_n:
        probe = RelationSpec(n=probe_n, payload_bytes=payload_bytes)
    else:
        probe = RelationSpec(
            n=probe_n,
            distinct=build_n,
            distribution=Distribution.UNIFORM,
            payload_bytes=payload_bytes,
        )
    return JoinSpec(build=build, probe=probe)


def zipf_pair(
    n: int,
    zipf_s: float,
    *,
    skew_side: str = "both",
    probe_n: int | None = None,
) -> JoinSpec:
    """Skewed workloads of Figures 17, 18 and 20.

    ``skew_side`` selects which input is zipf-distributed: ``"probe"``,
    ``"build"``, or ``"both"`` (identical skew, same popular values — the
    paper's worst case).
    """
    if skew_side not in ("probe", "build", "both"):
        raise InvalidConfigError(f"unknown skew side: {skew_side!r}")
    probe_n = n if probe_n is None else probe_n
    uniform = lambda m: RelationSpec(  # noqa: E731 - local shorthand
        n=m, distinct=n, distribution=Distribution.UNIFORM
    )
    zipf = lambda m: RelationSpec(  # noqa: E731
        n=m, distinct=n, distribution=Distribution.ZIPF, zipf_s=zipf_s
    )
    if zipf_s == 0.0:
        return JoinSpec(build=uniform(n), probe=uniform(probe_n))
    if skew_side == "probe":
        return JoinSpec(build=RelationSpec(n=n), probe=zipf(probe_n))
    if skew_side == "build":
        return JoinSpec(build=zipf(n), probe=uniform(probe_n))
    return JoinSpec(build=zipf(n), probe=zipf(probe_n), identical_skew=True)


def replicated_pair(n: int, replicas: int) -> JoinSpec:
    """Uniform duplicates with a fixed average multiplicity (Figure 19)."""
    if replicas < 1:
        raise InvalidConfigError("replicas must be >= 1")
    distinct = max(1, n // replicas)
    rel = RelationSpec(n=n, distinct=distinct, distribution=Distribution.UNIFORM)
    return JoinSpec(build=rel, probe=rel)
