"""Workload statistics — empirical and analytic.

The cost models in :mod:`repro.gpusim.cost` and the join strategies consume
a small set of workload statistics: partition-size histograms, expected
join cardinality, and hash-chain lengths.  Each statistic has two
implementations that are required (and property-tested) to agree:

* *empirical* — computed from materialized key arrays; used by the
  functional ``run()`` paths;
* *analytic* — computed from a :class:`~repro.data.spec.RelationSpec`;
  used by the ``estimate()`` paths at paper scale (up to 2048M tuples).
"""

from __future__ import annotations

import numpy as np

from repro.data import zipf as zipf_mod
from repro.data.spec import Distribution, JoinSpec, RelationSpec
from repro.errors import InvalidConfigError

# ---------------------------------------------------------------------------
# Empirical statistics
# ---------------------------------------------------------------------------


def radix_digit(keys: np.ndarray, bits: int, shift: int = 0) -> np.ndarray:
    """Radix digit of each key: ``(key >> shift) & (2**bits - 1)``."""
    if bits <= 0:
        raise InvalidConfigError("radix digit needs bits >= 1")
    mask = (1 << bits) - 1
    return (keys >> shift) & mask


def radix_histogram(keys: np.ndarray, bits: int, shift: int = 0) -> np.ndarray:
    """Partition-size histogram of one radix pass."""
    return np.bincount(radix_digit(keys, bits, shift), minlength=1 << bits)


def empirical_partition_sizes(keys: np.ndarray, total_bits: int) -> np.ndarray:
    """Final partition sizes after (multi-pass) radix partitioning.

    Multi-pass radix partitioning on successive digit groups is equivalent,
    for *sizes*, to a single pass on the combined low ``total_bits`` bits.
    """
    return radix_histogram(keys, total_bits, shift=0)


# ---------------------------------------------------------------------------
# Analytic statistics
# ---------------------------------------------------------------------------


def expected_partition_sizes(spec: RelationSpec, total_bits: int) -> np.ndarray:
    """Expected partition sizes for a relation spec.

    Uniform-family distributions spread evenly.  For Zipf, rank ``r`` maps
    to key ``r`` (see :func:`repro.data.generator._keys_for`), so partition
    ``p`` collects the mass of ranks ``r ≡ p (mod fanout)``: the head ranks
    are accumulated exactly, the near-uniform tail is spread evenly.
    """
    fanout = 1 << total_bits
    if spec.distribution is not Distribution.ZIPF or spec.zipf_s == 0.0:
        return np.full(fanout, spec.n / fanout, dtype=np.float64)
    head = min(zipf_mod.HEAD_RANKS, spec.distinct)
    pmf = zipf_mod.pmf_head(spec.distinct, spec.zipf_s, head)
    ranks = np.arange(head, dtype=np.int64)
    mass = np.bincount(ranks & (fanout - 1), weights=pmf, minlength=fanout)
    tail_mass = max(0.0, 1.0 - float(pmf.sum()))
    mass += tail_mass / fanout
    return mass * spec.n


def expected_max_partition_size(spec: RelationSpec, total_bits: int) -> float:
    """Size of the largest partition — drives the shared-memory fallback."""
    return float(np.max(expected_partition_sizes(spec, total_bits)))


def expected_join_cardinality(spec: JoinSpec) -> float:
    """Expected number of result tuples.

    With independent draws the expectation factorizes per key:
    ``sum_k E[count_build(k)] * E[count_probe(k)]``.  Three regimes follow:

    * neither or only one side Zipf-skewed → ``n_b * n_p / domain``
      (single-side skew does *not* explode the output — the paper's
      Fig 17/18 observation);
    * both sides identically skewed → ``n_b * n_p * sum_k p_k**2``
      (the data-explosion worst case).
    """
    build, probe = spec.build, spec.probe
    if not spec.shared_domain and build.distribution is Distribution.UNIQUE \
            and probe.distribution is Distribution.UNIQUE \
            and build.n != probe.n:
        # Disjoint unique domains only overlap on the smaller prefix.
        return float(min(build.n, probe.n))
    if spec.identical_skew:
        return build.n * probe.n * zipf_mod.sum_pmf_sq(build.distinct, build.zipf_s)
    domain = max(build.distinct, probe.distinct)
    return build.n * probe.n / float(domain)


def expected_matches_per_probe(spec: JoinSpec) -> float:
    """Average number of build matches found per probe tuple."""
    return expected_join_cardinality(spec) / float(spec.probe.n)


# ---------------------------------------------------------------------------
# Hash-chain statistics
# ---------------------------------------------------------------------------


def expected_chain_steps_per_probe(
    build_size: float,
    nslots: int,
    matches_per_probe: float,
) -> float:
    """Expected linked-list nodes visited per probe of a chaining table.

    With ``build_size`` entries uniformly hashed into ``nslots`` slots, a
    probe walks its full slot chain (probes cannot stop early: several keys
    share a slot).  The expected chain length is the load factor, and every
    actual match must be visited as well; we take the max because matched
    nodes are part of the chain.
    """
    if nslots <= 0:
        raise InvalidConfigError("hash table needs nslots >= 1")
    load = build_size / float(nslots)
    return max(load, matches_per_probe, 1.0)


def empirical_chain_steps_per_probe(
    build_slots: np.ndarray,
    probe_slots: np.ndarray,
    nslots: int,
) -> float:
    """Exact expected chain walk length given materialized slot arrays."""
    chain_len = np.bincount(build_slots, minlength=nslots)
    visits = chain_len[probe_slots]
    return float(np.mean(visits)) if probe_slots.size else 0.0
