"""TPC-H-lite generator (dbgen substitute).

The paper's Fig 14 joins the ``lineitem`` table with ``customer`` and with
``orders`` at scale factors 10 and 100.  Only the join columns matter for
those queries, so this module generates exactly those: dense primary keys
for ``customer``/``orders`` and foreign-key columns on ``lineitem``
(``l_orderkey`` plus a denormalized ``l_custkey``, the column the paper's
customer join uses).

Cardinalities follow the TPC-H specification: per scale factor,
150 K customers, 1.5 M orders, and an average of four lineitems per order
(1–7 uniform, ≈6 M rows).  As in TPC-H, one third of the customers have
placed no orders.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.relation import Relation
from repro.data.spec import Distribution, JoinSpec, RelationSpec
from repro.errors import InvalidConfigError

CUSTOMERS_PER_SF = 150_000
ORDERS_PER_SF = 1_500_000
AVG_LINEITEMS_PER_ORDER = 4.0


def lineitem_cardinality(scale_factor: float) -> int:
    """Expected ``lineitem`` row count at a scale factor."""
    return int(ORDERS_PER_SF * scale_factor * AVG_LINEITEMS_PER_ORDER)


@dataclass(frozen=True)
class TpchTables:
    """Materialized join columns of the three tables."""

    customer: Relation
    orders: Relation
    lineitem_orderkey: Relation
    lineitem_custkey: Relation
    scale_factor: float


def generate(scale_factor: float, *, seed: int = 1) -> TpchTables:
    """Materialize TPC-H join columns at ``scale_factor``.

    Intended for small scale factors (tests and examples); the Fig 14
    bench uses :func:`join_specs` at SF 10/100.
    """
    if scale_factor <= 0:
        raise InvalidConfigError("scale factor must be positive")
    rng = np.random.default_rng(seed)
    n_cust = max(1, int(CUSTOMERS_PER_SF * scale_factor))
    n_orders = max(1, int(ORDERS_PER_SF * scale_factor))

    # One third of customers place no orders (TPC-H spec).
    active_customers = rng.permutation(n_cust)[: max(1, (2 * n_cust) // 3)]
    o_custkey = rng.choice(active_customers, size=n_orders)

    lines_per_order = rng.integers(1, 8, size=n_orders)
    l_orderkey = np.repeat(np.arange(n_orders, dtype=np.int64), lines_per_order)
    l_custkey = np.repeat(o_custkey.astype(np.int64), lines_per_order)

    return TpchTables(
        customer=Relation.from_keys(np.arange(n_cust, dtype=np.int64), name="customer"),
        orders=Relation.from_keys(np.arange(n_orders, dtype=np.int64), name="orders"),
        lineitem_orderkey=Relation.from_keys(l_orderkey, name="lineitem(orderkey)"),
        lineitem_custkey=Relation.from_keys(l_custkey, name="lineitem(custkey)"),
        scale_factor=scale_factor,
    )


def join_specs(scale_factor: float) -> dict[str, JoinSpec]:
    """Analytic :class:`JoinSpec` for the two Fig 14 joins.

    ``customer``: build = customer primary keys (unique), probe = lineitem
    custkeys (uniform over the active-customer domain).  ``orders``: build =
    orders primary keys, probe = lineitem orderkeys (1–7 lines per order).
    """
    n_cust = int(CUSTOMERS_PER_SF * scale_factor)
    n_orders = int(ORDERS_PER_SF * scale_factor)
    n_line = lineitem_cardinality(scale_factor)
    return {
        "customer": JoinSpec(
            build=RelationSpec(n=n_cust),
            probe=RelationSpec(
                n=n_line, distinct=n_cust, distribution=Distribution.UNIFORM
            ),
        ),
        "orders": JoinSpec(
            build=RelationSpec(n=n_orders),
            probe=RelationSpec(
                n=n_line, distinct=n_orders, distribution=Distribution.UNIFORM
            ),
        ),
    }
