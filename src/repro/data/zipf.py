"""Zipf-distributed key generation and analytic moments.

The paper's skew experiments (Figs 17, 18, 20) draw keys from a Zipf
distribution over a finite domain of ``n`` ranks with exponent ``s`` in
``[0, 1]``.  Two facilities live here:

* :func:`sample` — draws keys.  For small domains it inverts the exact CDF;
  for large domains it uses a hybrid scheme (exact head + continuous-tail
  inversion) so that sampling stays O(size · log head) with bounded memory.
* analytic moments (:func:`harmonic`, :func:`sum_pmf_sq`, :func:`pmf_head`)
  — consumed by :mod:`repro.data.stats` to predict partition histograms and
  join cardinalities at paper scale without materializing data.

Both facilities are memoized per ``(n, s)``: the moments are pure and the
exact/head CDFs are deterministic arrays, yet every skewed estimate and
every sampled workload used to re-derive them from scratch — for the
exact sampler that was a fresh up-to-4M-element power/cumsum per call.
Cached arrays are returned *read-only* (and shared), so accidental
mutation by a caller raises instead of corrupting later lookups.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import InvalidConfigError

#: Domain size up to which the exact CDF is materialized for sampling.
_EXACT_LIMIT = 1 << 22

#: Number of head ranks handled exactly in the hybrid sampler and in the
#: analytic statistics.  The head captures virtually all of the skew; the
#: tail is nearly uniform and is integrated continuously.
HEAD_RANKS = 1 << 16


@lru_cache(maxsize=None)
def harmonic(n: int, s: float) -> float:
    """Generalized harmonic number ``H(n, s) = sum_{k=1..n} k**-s``.

    Exact summation for small ``n``; midpoint-rule integration of the tail
    beyond :data:`HEAD_RANKS` otherwise (relative error < 1e-6 for the
    exponents used in the paper).  Memoized: the exact branch sums an
    up-to-2^22-element array, and the statistics re-ask for the same
    ``(n, s)`` on every skewed estimate.
    """
    if n <= 0:
        raise InvalidConfigError("harmonic() requires n >= 1")
    if s == 0.0:
        return float(n)
    if n <= _EXACT_LIMIT:
        return float(np.sum(np.arange(1, n + 1, dtype=np.float64) ** -s))
    head = float(np.sum(np.arange(1, HEAD_RANKS + 1, dtype=np.float64) ** -s))
    return head + _tail_integral(HEAD_RANKS, n, s)


def _tail_integral(k: int, n: int, s: float) -> float:
    """Midpoint approximation of ``sum_{j=k+1..n} j**-s``."""
    lo, hi = k + 0.5, n + 0.5
    if s == 1.0:
        return float(np.log(hi / lo))
    return float((hi ** (1.0 - s) - lo ** (1.0 - s)) / (1.0 - s))


@lru_cache(maxsize=128)
def _pmf_head_cached(n: int, s: float, head: int) -> np.ndarray:
    ranks = np.arange(1, head + 1, dtype=np.float64)
    pmf = ranks ** -s / harmonic(n, s)
    pmf.setflags(write=False)
    return pmf


def pmf_head(n: int, s: float, head: int = HEAD_RANKS) -> np.ndarray:
    """Exact probabilities of the ``head`` most popular ranks.

    Returns a shared **read-only** array (memoized per ``(n, s, head)``);
    copy before mutating.
    """
    return _pmf_head_cached(n, s, min(head, n))


def sum_pmf_sq(n: int, s: float) -> float:
    """``sum_k p_k**2`` — the key collision probability.

    For two relations with identical skew and the same popular values, the
    expected join cardinality is ``N_build * N_probe * sum_pmf_sq`` (the
    "data explosion" of Figs 17, 18 and 20).
    """
    if s == 0.0:
        return 1.0 / n
    h1 = harmonic(n, s)
    h2 = harmonic(n, 2.0 * s)
    return h2 / (h1 * h1)


def sample(
    n: int,
    s: float,
    size: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``size`` Zipf(s) ranks in ``[0, n)`` (0-based, rank 0 most popular).

    Ranks are returned *unscrambled*; callers that need popular values
    spread over the key domain apply their own bijection (see
    :func:`repro.data.generator.zipf_keys`).
    """
    if n <= 0 or size < 0:
        raise InvalidConfigError("sample() requires n >= 1 and size >= 0")
    if s == 0.0:
        return rng.integers(0, n, size=size, dtype=np.int64)
    if n <= _EXACT_LIMIT:
        u = rng.random(size)
        return np.searchsorted(_exact_cdf(n, s), u, side="left").astype(np.int64)
    return _sample_hybrid(n, s, size, rng)


#: Exact-CDF memo for the small-domain sampler.  Entries are up to 32 MB
#: (2^22 float64), so the cache is kept small and FIFO-evicted; skewed
#: workload generation cycles through a handful of ``(n, s)`` pairs.
_EXACT_CDF_CACHE: dict[tuple[int, float], np.ndarray] = {}
_EXACT_CDF_CACHE_MAX = 8


def _exact_cdf(n: int, s: float) -> np.ndarray:
    """The (read-only, memoized) exact Zipf CDF over ``n`` ranks."""
    key = (n, s)
    cdf = _EXACT_CDF_CACHE.get(key)
    if cdf is None:
        pmf = np.arange(1, n + 1, dtype=np.float64) ** -s
        cdf = np.cumsum(pmf)
        cdf /= cdf[-1]
        cdf.setflags(write=False)
        if len(_EXACT_CDF_CACHE) >= _EXACT_CDF_CACHE_MAX:
            _EXACT_CDF_CACHE.pop(next(iter(_EXACT_CDF_CACHE)))
        _EXACT_CDF_CACHE[key] = cdf
    return cdf


@lru_cache(maxsize=32)
def _hybrid_head_cdf(n: int, s: float) -> np.ndarray:
    """Read-only, memoized CDF of the exact head of the hybrid sampler."""
    pmf = np.arange(1, HEAD_RANKS + 1, dtype=np.float64) ** -s / harmonic(n, s)
    cdf = np.cumsum(pmf)
    cdf.setflags(write=False)
    return cdf


def _sample_hybrid(
    n: int, s: float, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Exact head + continuous tail inversion for very large domains."""
    h_n = harmonic(n, s)
    head = HEAD_RANKS
    cdf_head = _hybrid_head_cdf(n, s)
    head_mass = cdf_head[-1]

    u = rng.random(size)
    out = np.empty(size, dtype=np.int64)

    in_head = u < head_mass
    out[in_head] = np.searchsorted(cdf_head, u[in_head], side="left")

    # Invert the continuous tail CDF:  integral_{head+0.5}^{x} t**-s dt.
    residual = (u[~in_head] - head_mass) * h_n
    lo = head + 0.5
    if s == 1.0:
        x = lo * np.exp(residual)
    else:
        x = (lo ** (1.0 - s) + residual * (1.0 - s)) ** (1.0 / (1.0 - s))
    # floor(x + 0.5) recovers the 1-based rank; convert to 0-based.
    ranks = np.clip(np.floor(x + 0.5).astype(np.int64) - 1, head, n - 1)
    out[~in_head] = ranks
    return out
