"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class InvalidRelationError(ReproError):
    """A relation failed validation (mismatched columns, bad dtype...)."""


class InvalidConfigError(ReproError):
    """A configuration object has inconsistent or out-of-range values."""


class UnknownStrategyError(InvalidConfigError):
    """A join-strategy registry lookup used an unregistered key."""


class FleetEventError(InvalidConfigError):
    """A fleet-event list failed up-front validation.

    Raised before the run starts — e.g. a ``retire`` naming a device
    index the fleet never reaches, or retiring the same device twice —
    so a bad elasticity schedule cannot fail halfway through a
    simulation that has already mutated state.
    """


class FaultPlanError(InvalidConfigError):
    """A fault-injection plan failed up-front validation.

    Raised before the run starts — unsorted or duplicate crash events,
    crashes naming devices the fleet never reaches, or non-positive
    transient-failure counts.
    """


class SampleStoreError(ReproError):
    """A kernel-sample store file is unusable.

    Raised by :meth:`repro.core.sample_store.SampleStore.load` when the
    file's versioned header is missing, unparsable, or names a format
    version this code cannot read.  Truncated or partially-written
    *record* lines (the tail a crashed writer leaves behind) are **not**
    errors: loading skips them and counts them in
    :attr:`~repro.core.sample_store.SampleStore.skipped_records`.
    """


class CapacityError(ReproError):
    """A simulated memory allocation exceeded the available capacity."""


class SharedMemoryOverflowError(CapacityError):
    """A co-partition working set does not fit in GPU shared memory."""


class DeviceMemoryOverflowError(CapacityError):
    """A working set or buffer does not fit in GPU device memory."""


class PipelineError(ReproError):
    """The discrete-event pipeline was given an inconsistent task graph."""


class SchedulingError(PipelineError):
    """A task graph contains a cycle or references an unknown dependency."""


class FaultInvariantError(SchedulingError):
    """A fault-injected serving run violated a recovery invariant.

    Raised by the post-run checker when conservation
    (``completed + shed + failed == arrivals``) breaks, an arena ledger
    fails to drain, work lands on a crashed device after its crash
    time, or a retry budget was exceeded without a recorded failure.
    """


class WorkingSetPackingError(ReproError):
    """No feasible packing of partitions into GPU-sized working sets exists."""


class BaselineUnsupportedError(ReproError):
    """A modelled baseline system cannot run the requested workload.

    Used to reproduce documented failures of the comparison systems, e.g.
    DBMS-X returning an error on the TPC-H SF100 orders join and CoGaDB
    failing to load scale factor 100 (paper §V-C).
    """
