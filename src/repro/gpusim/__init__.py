"""Simulated GPU substrate: hardware specs, warp primitives, memory
accounting, the calibrated cost model, and transfer mechanisms."""

from repro.gpusim.arena import DeviceMemoryArena, Reservation
from repro.gpusim.atomics import NIL, HashTable, chain_insert, chain_insert_reference
from repro.gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.gpusim.cost import CoPartitionStats, GpuCostModel, KernelCost
from repro.gpusim.device_memory import DeviceMemory
from repro.gpusim.shared_memory import (
    SharedMemoryArena,
    join_block_reservation,
    max_partition_fanout,
    partition_block_reservation,
)
from repro.gpusim.occupancy import (
    Occupancy,
    join_kernel_occupancy,
    occupancy_for,
    partition_kernel_occupancy,
)
from repro.gpusim.streams import Event, Stream, StreamContext
from repro.gpusim.spec import (
    CpuSpec,
    GpuSpec,
    InterconnectSpec,
    SystemSpec,
    gtx1080_system,
    v100_system,
)
from repro.gpusim.transfer import TransferModel

__all__ = [
    "Calibration",
    "CoPartitionStats",
    "CpuSpec",
    "DEFAULT_CALIBRATION",
    "DeviceMemory",
    "DeviceMemoryArena",
    "Reservation",
    "Event",
    "GpuCostModel",
    "GpuSpec",
    "HashTable",
    "InterconnectSpec",
    "KernelCost",
    "NIL",
    "Occupancy",
    "SharedMemoryArena",
    "Stream",
    "StreamContext",
    "SystemSpec",
    "TransferModel",
    "chain_insert",
    "chain_insert_reference",
    "gtx1080_system",
    "join_block_reservation",
    "join_kernel_occupancy",
    "max_partition_fanout",
    "occupancy_for",
    "partition_block_reservation",
    "partition_kernel_occupancy",
    "v100_system",
]
