"""Shared device-memory arena for multi-query serving.

:class:`~repro.gpusim.device_memory.DeviceMemory` models one query's
private allocations and *raises* on overflow — the right behaviour when
a single strategy mis-sizes its buffers.  A serving GPU is different:
many co-resident queries compete for the same physical memory, and a
query that does not fit right now is not an error, it simply waits.

The arena therefore exposes *reservations* with try-semantics: the
scheduler asks for a query's whole device footprint up front
(:meth:`try_reserve`), gets a yes/no answer, and releases the
reservation when the query completes.  The arena guarantees the
accounting invariant the serving benchmark asserts: the sum of live
reservations never exceeds capacity, and the recorded high-water mark
is exact.

In a sharded fleet every GPU gets its own arena, identified by
``device``; the id is stamped into every ledger entry so a misrouted
release (a query releasing on a device it was never placed on) fails
loudly with both sides named, instead of silently corrupting another
device's accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceMemoryOverflowError


@dataclass(frozen=True)
class Reservation:
    """One query's granted slice of device memory (``nbytes`` bytes,
    granted at ``granted_at`` simulated seconds, on arena ``device``)."""

    owner: str
    nbytes: int
    granted_at: float = 0.0
    device: int = 0


@dataclass
class DeviceMemoryArena:
    """Capacity-checked reservation ledger shared by concurrent queries.

    All sizes (``capacity_bytes``, ``used_bytes``, ``free_bytes``,
    ``peak_bytes``) are **bytes**; the ``at`` timestamps recorded in
    reservations and the :attr:`timeline` are **simulated seconds**
    supplied by the scheduler's clock — the arena never reads a wall
    clock, so a request sequence replays to an identical ledger.
    Tasks placed incrementally by the online admission mode release
    their reservations at the same simulated finish times as under
    batch re-simulation, so both modes produce the same timeline and
    the same exact high-water mark.

    ``device`` names which GPU of a sharded fleet this arena accounts
    for (0 for the single-device scheduler); it appears in every
    :class:`Reservation` and every error message.  Releasing a
    reservation the arena does not hold — a double release, or a
    release routed to the wrong device — always raises
    :class:`~repro.errors.DeviceMemoryOverflowError` (a
    :class:`~repro.errors.ReproError`): the ledger must sum to zero
    after a drain *because every grant was returned exactly once*, not
    because stray releases were ignored.
    """

    capacity_bytes: int
    device: int = 0
    reservations: dict[str, Reservation] = field(default_factory=dict)
    peak_bytes: int = 0
    #: Every (time, used_bytes) transition, for tests and reports.
    timeline: list[tuple[float, int]] = field(default_factory=list)
    #: Audit log of :meth:`force_release` calls — one
    #: ``(time, owner, nbytes)`` entry per reservation the serving
    #: layer reclaimed from a crashed device, so a drained ledger can
    #: still show *why* it drained.
    forced: list[tuple[float, str, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise DeviceMemoryOverflowError(
                f"arena capacity must be positive, got {self.capacity_bytes}"
            )
        if self.device < 0:
            raise DeviceMemoryOverflowError(
                f"arena device id must be >= 0, got {self.device}"
            )

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(item.nbytes for item in self.reservations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    @property
    def drained(self) -> bool:
        """No live reservations: every grant was released exactly once.

        The property-based serving suite asserts this (plus a final
        :attr:`timeline` entry of 0 used bytes) after every simulated
        run on every device of the fleet.
        """
        return not self.reservations

    def holds(self, owner: str) -> bool:
        return owner in self.reservations

    def fits(self, nbytes: int) -> bool:
        return 0 <= nbytes <= self.free_bytes

    # ------------------------------------------------------------------
    def try_reserve(self, owner: str, nbytes: int, *, at: float = 0.0) -> bool:
        """Reserve ``nbytes`` for ``owner`` if it fits; ``False`` (and no
        state change) otherwise.  Overflow queues, it never raises."""
        if nbytes < 0:
            raise DeviceMemoryOverflowError(
                f"negative reservation for {owner!r}: {nbytes}"
            )
        if owner in self.reservations:
            raise DeviceMemoryOverflowError(
                f"duplicate reservation on device {self.device}: {owner!r}"
            )
        if nbytes > self.free_bytes:
            return False
        self.reservations[owner] = Reservation(
            owner, int(nbytes), at, self.device
        )
        used = self.used_bytes
        self.peak_bytes = max(self.peak_bytes, used)
        self.timeline.append((at, used))
        self.check_invariants()
        return True

    def reserve(self, owner: str, nbytes: int, *, at: float = 0.0) -> None:
        """Raising variant, for callers that already verified headroom."""
        if not self.try_reserve(owner, nbytes, at=at):
            raise DeviceMemoryOverflowError(
                f"arena overflow reserving {nbytes / 1e9:.2f} GB for "
                f"{owner!r} on device {self.device}: "
                f"{self.used_bytes / 1e9:.2f} GB of "
                f"{self.capacity_bytes / 1e9:.2f} GB in use"
            )

    def release(self, owner: str, *, at: float = 0.0) -> int:
        """Release ``owner``'s reservation, returning the freed bytes.

        Raises :class:`~repro.errors.DeviceMemoryOverflowError` when the
        arena holds no reservation for ``owner`` — an unknown id, a
        double release, or a release routed to the wrong device of a
        sharded fleet.  Silently accepting any of those would let the
        ledger drift from the schedule it is supposed to mirror.
        """
        if owner not in self.reservations:
            raise DeviceMemoryOverflowError(
                f"releasing unknown reservation {owner!r} on device "
                f"{self.device} (double release, or a release routed to "
                "the wrong device?)"
            )
        freed = self.reservations.pop(owner).nbytes
        self.timeline.append((at, self.used_bytes))
        return freed

    # ------------------------------------------------------------------
    def reservations_of(self, owner_prefix: str) -> tuple[Reservation, ...]:
        """Live reservations whose owner starts with ``owner_prefix``,
        sorted by owner — the audit view crash reconciliation and tests
        use to find every grant a lost query (or query family) still
        holds on this device."""
        return tuple(
            self.reservations[owner]
            for owner in sorted(self.reservations)
            if owner.startswith(owner_prefix)
        )

    def force_release(self, owner: str, *, at: float = 0.0) -> int:
        """Reclaim ``owner``'s reservation without its cooperation.

        Ledger bookkeeping is **exactly** :meth:`release` — the grant is
        popped, the timeline records the new ``used_bytes`` at ``at``,
        and the freed bytes are returned — plus an entry in the
        :attr:`forced` audit log.  The ledger stays strict: forcing a
        reservation the arena does not hold raises
        :class:`~repro.errors.DeviceMemoryOverflowError` just like a
        stray :meth:`release` would, so crash reconciliation can never
        paper over a double release.
        """
        if owner not in self.reservations:
            raise DeviceMemoryOverflowError(
                f"force-releasing unknown reservation {owner!r} on device "
                f"{self.device} (already released, or reconciled twice?)"
            )
        freed = self.release(owner, at=at)
        self.forced.append((at, owner, freed))
        return freed

    def reconcile(self, owners: "list[str] | tuple[str, ...]", *, at: float = 0.0) -> int:
        """Force-release every reservation in ``owners`` (the queries
        lost when this arena's device crashed at ``at``), returning the
        total bytes reclaimed.  Owners are processed in the given order
        so the timeline is deterministic."""
        return sum(self.force_release(owner, at=at) for owner in owners)

    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """The accounting the serving benchmark asserts on every run."""
        used = self.used_bytes
        if used > self.capacity_bytes:
            raise DeviceMemoryOverflowError(
                f"arena over-reserved on device {self.device}: "
                f"{used} > {self.capacity_bytes}"
            )
        if self.peak_bytes > self.capacity_bytes:
            raise DeviceMemoryOverflowError(
                f"arena peak {self.peak_bytes} exceeds capacity "
                f"{self.capacity_bytes} on device {self.device}"
            )
