"""Atomic-operation semantics used by the build phase.

The paper's hash-table build (Listing 2) inserts every tuple at the front
of its slot's linked list with a single ``atomicExchange``:

.. code-block:: none

    slot <- entry.hash() % #slots
    old  <- atomicExchange(&HT[slot], entry.offset())
    entry.next <- old

:func:`chain_insert_reference` executes exactly that loop; it is the
ground truth.  :func:`chain_insert` computes the identical final data
structure with vectorized numpy (later inserts become chain heads, each
entry links to the previous head of its slot), which the property tests
assert against the reference.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfigError

#: Sentinel for an empty slot / end of chain.
NIL = -1


@dataclass
class HashTable:
    """A chaining hash table: slot heads plus per-entry next links.

    ``heads[s]`` is the index of the most recently inserted entry whose
    key hashes to slot ``s`` (or :data:`NIL`); ``next[i]`` links entry
    ``i`` to the previously inserted entry in the same slot.  Indices are
    entry offsets, exactly as in the paper where 16-bit offsets represent
    the links between list nodes (§III-C).
    """

    heads: np.ndarray
    next: np.ndarray

    @property
    def nslots(self) -> int:
        return int(self.heads.shape[0])

    @property
    def num_entries(self) -> int:
        return int(self.next.shape[0])

    def chain(self, slot: int) -> list[int]:
        """Walk one slot's chain (tests and debugging)."""
        out: list[int] = []
        cursor = int(self.heads[slot])
        while cursor != NIL:
            out.append(cursor)
            cursor = int(self.next[cursor])
            if len(out) > self.num_entries:
                raise InvalidConfigError("cycle detected in hash chain")
        return out

    def chain_lengths(self) -> np.ndarray:
        """Length of every slot chain (vectorized)."""
        lengths = np.zeros(self.nslots, dtype=np.int64)
        cursor = self.heads.copy()
        live = cursor != NIL
        while live.any():
            lengths[live] += 1
            cursor[live] = self.next[cursor[live]]
            live = cursor != NIL
        return lengths


def atomic_exchange(array: np.ndarray, index: int, value: int) -> int:
    """Single-threaded ``atomicExchange`` semantics."""
    old = int(array[index])
    array[index] = value
    return old


def chain_insert_reference(slots: np.ndarray, nslots: int) -> HashTable:
    """Insert entries 0..n-1 in order using the Listing 2 loop."""
    slots = np.asarray(slots)
    if slots.size and (slots.min() < 0 or slots.max() >= nslots):
        raise InvalidConfigError("slot index out of range")
    heads = np.full(nslots, NIL, dtype=np.int64)
    next_ = np.full(slots.shape[0], NIL, dtype=np.int64)
    for i, slot in enumerate(slots):
        old = atomic_exchange(heads, int(slot), i)
        next_[i] = old
    return HashTable(heads=heads, next=next_)


def chain_insert(slots: np.ndarray, nslots: int) -> HashTable:
    """Vectorized equivalent of :func:`chain_insert_reference`.

    For each slot, the head is the *last* inserted entry and every entry
    links to its predecessor within the slot (stable grouping preserves
    insertion order inside each group).
    """
    slots = np.asarray(slots, dtype=np.int64)
    n = slots.shape[0]
    if n and (slots.min() < 0 or slots.max() >= nslots):
        raise InvalidConfigError("slot index out of range")
    heads = np.full(nslots, NIL, dtype=np.int64)
    next_ = np.full(n, NIL, dtype=np.int64)
    if n == 0:
        return HashTable(heads=heads, next=next_)

    order = np.argsort(slots, kind="stable")
    grouped = slots[order]
    same_as_prev = np.zeros(n, dtype=bool)
    same_as_prev[1:] = grouped[1:] == grouped[:-1]

    # Entry order[k] follows order[k-1] within its slot group.
    followers = np.nonzero(same_as_prev)[0]
    next_[order[followers]] = order[followers - 1]

    # Heads are the last member of each group.
    last_of_group = np.ones(n, dtype=bool)
    last_of_group[:-1] = grouped[1:] != grouped[:-1]
    heads[grouped[last_of_group]] = order[last_of_group]
    return HashTable(heads=heads, next=next_)
