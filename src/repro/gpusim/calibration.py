"""Calibration constants for the cost model.

Every constant here is an efficiency factor or per-operation cost that
converts ideal hardware rates (from :mod:`repro.gpusim.spec`) into
achieved rates.  They were calibrated once against the paper's headline
numbers — in-GPU partitioned join ≈ 4.5 Btuples/s at 128 M tuples
(Figs 7/8), co-partition join ≈ 7 Btuples/s peak in the Fig 5
configuration and ≈ 25 Btuples/s in the Fig 6 configuration, streaming
probe ≈ 1.4 Btuples/s (Fig 11), co-processing ≈ 1.2 Btuples/s (Fig 12),
CPU radix partitioning ≈ 40 GB/s at 16 threads (§V-C) — and are **never
tuned per experiment**; all figure shapes follow from the model with this
single set of values.

GPU compute costs are expressed in *lane-operations*: one lane-op is the
work one of the 32 lanes of a warp retires in one issue slot.  The device
retires ``num_sms * clock * warp_size`` lane-ops per second (≈ 1.0e12 on
the GTX 1080).  Per-tuple lane-op counts bundle arithmetic, addressing,
shared-memory traffic and divergence bookkeeping of the corresponding
kernel inner loop.

Heterogeneous fleets are modelled by giving each device its *own*
:class:`Calibration`: the serving layer threads a per-device instance
through every estimate, plan and placement decision
(``QueryScheduler(device_calibrations=...)``).  The
:meth:`Calibration.gpu_scaled` helper derives a uniformly
faster/slower GPU from any base calibration, and
:func:`calibration_preset` resolves the named presets
(:data:`CALIBRATION_PRESETS`) the ``bench serve --device-calib`` flag
accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class Calibration:
    """Tunable constants of the cost model (see module docstring)."""

    # --------------------------------------------------------- GPU memory
    #: Fraction of peak device bandwidth achieved by the radix-partitioning
    #: kernel (scattered bucket writes, pool-allocation atomics, metadata).
    gpu_partition_efficiency: float = 0.55
    #: Fraction of peak device bandwidth achieved by coalesced scans in the
    #: join phase (probe-side scan, bucket-chain reads).
    gpu_scan_efficiency: float = 0.80
    #: Fraction of peak device bandwidth achieved by warp-buffered,
    #: coalesced result flushes (§III-C).
    gpu_materialize_efficiency: float = 0.70
    #: Random (non-coalesced) device accesses reach this fraction of peak
    #: bandwidth on top of sector-granularity accounting.
    gpu_random_efficiency: float = 0.65
    #: Per-partition-per-pass fixed overhead in bytes (bucket headers and
    #: metadata init); penalizes high fanout on small inputs (Fig 8 left).
    partition_metadata_bytes: float = 96.0
    #: Per-kernel-launch fixed overhead (seconds).
    kernel_launch_seconds: float = 20e-6

    # -------------------------------------------------------- GPU compute
    #: Lane-ops to scan one probe tuple (load, hash, loop bookkeeping).
    lane_ops_scan_per_tuple: float = 8.0
    #: Lane-ops for one hash-table insert (Listing 2: hash, atomicExchange,
    #: link write, contention).
    lane_ops_insert: float = 20.0
    #: Lane-ops per chain node visited while probing (§III-C).
    lane_ops_chain_step: float = 12.0
    #: Warp divergence inflates the effective chain walk: lanes finish at
    #: different depths and the warp pays the maximum.  Modelled as
    #: ``load + factor * sqrt(load)`` visited nodes at load factor `load`.
    chain_divergence_factor: float = 2.5
    #: Lane-ops to stage one build tuple into shared memory.
    lane_ops_build_copy: float = 2.0
    #: Ballot-based NLJ (Listing 1): per 32-element round, a fixed setup
    #: plus a per-differing-bit ballot/bitmask cost (per lane).
    nlj_round_base_ops: float = 12.0
    nlj_ops_per_bit: float = 12.0
    #: Lane-ops to buffer and flush one result tuple (§III-C).
    lane_ops_flush_per_match: float = 6.0
    #: Chain steps of a co-partition hash table kept in *device* memory
    #: cost this multiple of the shared-memory lane cost (served mostly by
    #: L2 at co-partition footprints — Fig 6).
    device_ht_step_penalty: float = 3.0
    #: A join block is configured for ``threads_per_block`` elements; a
    #: co-partition with fewer probe tuples leaves lanes idle.  Utilization
    #: is floored here (Fig 5/6 rising flanks, Fig 8 left end).
    min_block_utilization: float = 0.02

    # ---------------------------------------------- non-partitioned joins
    #: Dependent random device accesses per probe of the chaining table:
    #: hash-table head, key, successor check, payload ("three to four
    #: random memory accesses", §V-B).
    nonpartitioned_accesses_per_probe: float = 3.5
    #: Random device accesses per probe with the perfect hash function.
    perfect_hash_accesses_per_probe: float = 1.0
    #: Random device accesses per build insert (head exchange + link).
    nonpartitioned_accesses_per_build: float = 2.0
    #: Random-access latency model: cost per access at the reference
    #: footprint, plus an increment per footprint doubling (L2/TLB decay).
    #: Drives the non-partitioned joins' decline with size (Fig 8).
    gpu_random_base_seconds: float = 0.10e-9
    gpu_random_growth_seconds: float = 0.05e-9
    gpu_random_reference_bytes: float = 8.0e6

    # ------------------------------------------------------------------ CPU
    #: Achieved per-thread CPU radix-partition throughput (bytes of input
    #: per second) with software-managed buffers and non-temporal stores:
    #: 16 threads x 2.5 GB/s = 40 GB/s, the paper's §V-C figure.
    cpu_partition_bytes_per_thread: float = 2.5e9
    #: Memory traffic multiplier of one CPU partitioning pass (read input,
    #: NT-store output — no write-allocate).
    cpu_partition_traffic_factor: float = 2.0
    #: CPU cycles per tuple for PRO's cache-resident build+probe phase.
    cpu_pro_join_cycles_per_tuple: float = 22.0
    #: PRO's partitioning pass throughput relative to the software
    #: managed-buffer pass above (PRO performs a histogram pass first).
    cpu_pro_partition_efficiency: float = 0.62
    #: Per-pass fixed overhead of PRO (thread barriers, task queues).
    cpu_pro_sync_seconds_per_pass: float = 7e-4
    #: NPO: cache lines touched per probe / per build insert, and the
    #: cycles of its cache-resident instruction path (latch/atomic on the
    #: shared table makes it pricier than PRO's private builds).
    cpu_npo_lines_per_probe: float = 2.2
    cpu_npo_build_lines_per_tuple: float = 2.0
    cpu_npo_cycles_per_tuple: float = 25.0
    #: Per-thread achievable share of socket memory bandwidth.
    cpu_thread_bandwidth: float = 6.0e9

    # -------------------------------------------------------- PCIe / NUMA
    #: Utilization of pinned PCIe bandwidth achieved by the double-buffered
    #: streaming pipeline (event sync and stream gaps).
    pcie_stream_utilization: float = 0.95
    #: Effective QPI share available to GPU transfers sourced from the far
    #: socket while partitioning runs (coherency interference — Fig 16's
    #: "direct copy" case).
    qpi_transfer_utilization: float = 0.55
    #: Near-socket memory traffic one partitioning thread imposes (its
    #: reads are NUMA-local; roughly the NT-stored output half lands on
    #: the near socket).  With the DMA stream this saturates the near
    #: socket at ~26 threads — the knee the paper measures in Fig 13.
    numa_partition_near_bytes_per_thread: float = 1.67e9
    #: Synchronization overhead per pipeline stage hand-off (seconds).
    pipeline_sync_seconds: float = 10e-6

    # ------------------------------------------------------------ baselines
    #: DBMS-X: GPU-resident efficiency relative to our partitioned join
    #: (paper: we are 1.5-2x faster), its out-of-GPU fallback throughput
    #: (paper: ~10x slower), and its residency ceiling (32 M tuples).
    dbmsx_resident_efficiency: float = 0.55
    dbmsx_oog_tuples_per_second: float = 0.12e9
    dbmsx_max_resident_tuples: int = 32_000_000
    #: CoGaDB: operator-at-a-time efficiency and its size ceiling.
    cogadb_resident_efficiency: float = 0.30
    cogadb_max_tuples: int = 128_000_000

    # ------------------------------------------------------------ derived
    def validate(self) -> None:
        """Sanity-check the constants a cost model is about to consume.

        Every ``*_efficiency`` / ``*_utilization`` factor must lie in
        ``(0, 1]`` (they multiply ideal hardware rates) and every other
        numeric constant must be positive.  Raises :class:`ValueError`
        naming the offending field — per-device calibrations now arrive
        from CLI flags (``bench serve --device-calib``), so a malformed
        one must fail at construction, not as a nonsense estimate.
        """
        for spec in fields(self):
            value = getattr(self, spec.name)
            if spec.name.endswith(("_efficiency", "_utilization")):
                if not 0.0 < value <= 1.0:
                    raise ValueError(
                        f"calibration field {spec.name!r} must be in "
                        f"(0, 1], got {value!r}"
                    )
            elif isinstance(value, (int, float)) and value <= 0:
                raise ValueError(
                    f"calibration field {spec.name!r} must be positive, "
                    f"got {value!r}"
                )

    def gpu_scaled(self, speed: float) -> "Calibration":
        """A calibration for a uniformly ``speed``× faster (or, with
        ``speed < 1``, slower) GPU.

        This is a *synthetic* device family for heterogeneous-fleet
        modelling, not a physically measured card: GPU-side bandwidth
        efficiencies are scaled toward the ideal (capped at 1.0),
        per-tuple lane-op counts and random-access/launch/sync latencies
        are divided by ``speed``, and CPU/PCIe/NUMA constants are left
        untouched — the host, interconnect and baseline columns are
        shared by every device of a fleet.  For ``speed >= 1`` every
        GPU-side cost term is monotonically non-increasing, so a
        faster calibration never yields a slower estimate.
        """
        if speed <= 0:
            raise ValueError(f"speed factor must be positive, got {speed!r}")
        scaled_efficiencies = {
            name: min(1.0, getattr(self, name) * speed)
            for name in (
                "gpu_partition_efficiency",
                "gpu_scan_efficiency",
                "gpu_materialize_efficiency",
                "gpu_random_efficiency",
            )
        }
        scaled_down = {
            name: getattr(self, name) / speed
            for name in (
                "kernel_launch_seconds",
                "lane_ops_scan_per_tuple",
                "lane_ops_insert",
                "lane_ops_chain_step",
                "lane_ops_build_copy",
                "nlj_round_base_ops",
                "nlj_ops_per_bit",
                "lane_ops_flush_per_match",
                "gpu_random_base_seconds",
                "gpu_random_growth_seconds",
            )
        }
        derived = replace(self, **scaled_efficiencies, **scaled_down)
        derived.validate()
        return derived


DEFAULT_CALIBRATION = Calibration()

#: Named calibrations the CLI accepts (``bench serve --device-calib``).
#: ``fast``/``slow`` are synthetic ±2× GPU-side variants of the paper
#: calibration (see :meth:`Calibration.gpu_scaled`); the map is ordered
#: fastest-first for readable ``--help`` output.
CALIBRATION_PRESETS: dict[str, Calibration] = {
    "fast": DEFAULT_CALIBRATION.gpu_scaled(2.0),
    "default": DEFAULT_CALIBRATION,
    "slow": DEFAULT_CALIBRATION.gpu_scaled(0.5),
}


def calibration_preset(name: str) -> Calibration:
    """Resolve a named calibration preset.

    Raises :class:`ValueError` listing the registered names on a miss —
    the CLI surfaces this verbatim, so the message must name the
    choices.
    """
    try:
        return CALIBRATION_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(CALIBRATION_PRESETS))
        raise ValueError(
            f"unknown calibration preset {name!r}; registered presets: "
            f"{known}"
        ) from None
