"""The GPU cost model.

Converts the *observed or predicted statistics* of a kernel execution
(tuple counts, per-partition sizes, chain loads, match counts) into
simulated seconds, using the hardware rates of
:class:`~repro.gpusim.spec.GpuSpec` and the calibration constants of
:class:`~repro.gpusim.calibration.Calibration`.

Both execution paths share these functions: the functional kernels feed
them *empirical* per-partition statistics, the analytic ``estimate()``
paths feed them *expected* statistics from :mod:`repro.data.stats`.  Any
change to a formula therefore affects both paths identically, which is
what keeps them consistent (and lets the tests assert it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.gpusim.spec import GpuSpec, SystemSpec


@dataclass
class KernelCost:
    """Simulated cost of one kernel (or phase), with a breakdown.

    ``seconds`` is the modelled wall time; ``breakdown`` attributes it to
    components (device traffic, lane ops, launches...).  Costs add.
    """

    seconds: float = 0.0
    breakdown: dict[str, float] = field(default_factory=dict)

    @classmethod
    def zero(cls) -> "KernelCost":
        return cls()

    def __add__(self, other: "KernelCost") -> "KernelCost":
        merged = dict(self.breakdown)
        for key, value in other.breakdown.items():
            merged[key] = merged.get(key, 0.0) + value
        return KernelCost(self.seconds + other.seconds, merged)

    def scaled(self, factor: float) -> "KernelCost":
        return KernelCost(
            self.seconds * factor,
            {key: value * factor for key, value in self.breakdown.items()},
        )


@dataclass(frozen=True)
class CoPartitionStats:
    """Statistics of a set of co-partitions handed to the join kernels.

    All arrays are aligned by partition index.  ``matches`` may be a float
    array (expected counts in the analytic path).
    """

    build_sizes: np.ndarray
    probe_sizes: np.ndarray
    matches: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "build_sizes", np.asarray(self.build_sizes, dtype=np.float64))
        object.__setattr__(self, "probe_sizes", np.asarray(self.probe_sizes, dtype=np.float64))
        object.__setattr__(self, "matches", np.asarray(self.matches, dtype=np.float64))

    @property
    def total_build(self) -> float:
        return float(self.build_sizes.sum())

    @property
    def total_probe(self) -> float:
        return float(self.probe_sizes.sum())

    @property
    def total_matches(self) -> float:
        return float(self.matches.sum())

    @staticmethod
    def split_matches(
        build_sizes: np.ndarray, probe_sizes: np.ndarray, total_matches: float
    ) -> np.ndarray:
        """Attribute a total match count to partitions ∝ ``b_p * s_p``.

        Matches can only occur within a co-partition, and within one the
        expected count is proportional to the product of the two sides.
        """
        weights = np.asarray(build_sizes, dtype=np.float64) * np.asarray(
            probe_sizes, dtype=np.float64
        )
        total_weight = weights.sum()
        if total_weight <= 0:
            return np.zeros_like(weights)
        return weights * (total_matches / total_weight)


class GpuCostModel:
    """Timing formulas for the GPU kernels (see module docstring).

    ``calibration`` defaults to the paper's single calibration; a
    heterogeneous fleet passes each device's own
    :class:`~repro.gpusim.calibration.Calibration` (every strategy a
    device plans with carries that device's cost model, and the
    calibration rides in the strategy's estimate-cache fingerprint so
    cached estimates and plans never cross devices).  The calibration
    is validated here — a malformed per-device calibration (CLI-built
    fleets) must fail at construction, not as a nonsense estimate.
    """

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
    ):
        self.system = system or SystemSpec()
        self.calib = calibration or DEFAULT_CALIBRATION
        self.calib.validate()

    # ------------------------------------------------------------------
    # Primitive rates
    # ------------------------------------------------------------------
    @property
    def gpu(self) -> GpuSpec:
        return self.system.gpu

    @property
    def lane_op_rate(self) -> float:
        """Lane-operations retired per second by the whole device."""
        return self.gpu.num_sms * self.gpu.clock_hz * self.gpu.warp_size

    def scan_seconds(self, nbytes: float) -> float:
        """Coalesced sequential device traffic."""
        return nbytes / (self.gpu.device_bandwidth * self.calib.gpu_scan_efficiency)

    def materialize_seconds(self, nbytes: float) -> float:
        """Warp-buffered coalesced result writes."""
        return nbytes / (
            self.gpu.device_bandwidth * self.calib.gpu_materialize_efficiency
        )

    def random_access_seconds(self, accesses: float, footprint_bytes: float) -> float:
        """Random (dependent) device accesses against a working set.

        The achieved cost per access grows with the footprint: small
        tables are served largely from L2, while larger ones pay full
        DRAM sector transfers plus growing TLB pressure.  Modelled as a
        base cost plus a per-doubling increment beyond a reference
        footprint — the source of the non-partitioned join's steady
        decline with relation size (Fig 8).
        """
        if footprint_bytes <= 0 or accesses <= 0:
            return 0.0
        calib = self.calib
        doublings = max(
            0.0, math.log2(footprint_bytes / calib.gpu_random_reference_bytes)
        )
        per_access = (
            calib.gpu_random_base_seconds
            + calib.gpu_random_growth_seconds * doublings
        )
        return accesses * per_access

    def lane_op_seconds(self, lane_ops: float) -> float:
        return lane_ops / self.lane_op_rate

    # ------------------------------------------------------------------
    # Radix partitioning (§III-A)
    # ------------------------------------------------------------------
    def partition_pass(
        self,
        n_tuples: float,
        tuple_bytes: float,
        fanout: int,
        *,
        imbalance: float = 1.0,
    ) -> KernelCost:
        """One radix-partitioning pass over ``n_tuples``.

        ``imbalance >= 1`` inflates the pass for the partition-at-a-time
        work assignment under skew (§III-A: the longest bucket chain
        defines the block's execution time); the default bucket-at-a-time
        assignment keeps it at 1.
        """
        calib = self.calib
        traffic = 2.0 * n_tuples * tuple_bytes  # read input + write buckets
        metadata = fanout * calib.partition_metadata_bytes
        seconds = (
            (traffic + metadata)
            / (self.gpu.device_bandwidth * calib.gpu_partition_efficiency)
            * imbalance
            + calib.kernel_launch_seconds
        )
        return KernelCost(
            seconds,
            {
                "partition_traffic": traffic / (self.gpu.device_bandwidth * calib.gpu_partition_efficiency),
                "partition_metadata": metadata / (self.gpu.device_bandwidth * calib.gpu_partition_efficiency),
                "launch": calib.kernel_launch_seconds,
            },
        )

    def multi_pass_partition(
        self,
        n_tuples: float,
        tuple_bytes: float,
        bits_per_pass: list[int],
        *,
        imbalance: float = 1.0,
    ) -> KernelCost:
        """All partitioning passes; fanout compounds across passes."""
        cost = KernelCost.zero()
        cumulative_fanout = 1
        for bits in bits_per_pass:
            cumulative_fanout <<= bits
            cost = cost + self.partition_pass(
                n_tuples, tuple_bytes, cumulative_fanout, imbalance=imbalance
            )
        return cost

    def build_tables_seconds(self, n_entries: float, tuple_bytes: float) -> float:
        """Standalone build of co-partition hash tables: scan the
        partitioned build side once and insert every tuple (Listing 2).
        Used when tables are built once and probed by many chunks."""
        inserts = self.lane_op_seconds(n_entries * self.calib.lane_ops_insert)
        scan = self.scan_seconds(n_entries * tuple_bytes)
        return max(inserts, scan) + self.calib.kernel_launch_seconds

    # ------------------------------------------------------------------
    # Co-partition join kernels (§III-B, §III-C)
    # ------------------------------------------------------------------
    def _utilization(self, probe_sizes: np.ndarray, threads_per_block: int) -> np.ndarray:
        util = probe_sizes / float(threads_per_block)
        # minimum(maximum(...)) is clip() without the ufunc-dispatch
        # detour through numpy.fromnumeric — identical for finite inputs
        # and measurably faster on the 2^15-element arrays of the
        # standard configuration.
        return np.minimum(np.maximum(util, self.calib.min_block_utilization), 1.0)

    def _chain_steps(self, build_sizes: np.ndarray, nslots: int) -> np.ndarray:
        """Expected chain nodes visited per probe, with warp divergence.

        The walk visits the whole slot chain: expected length equals the
        load factor, and divergence makes the warp pay roughly the
        maximum over its lanes (``load + factor * sqrt(load)``).
        """
        load = np.asarray(build_sizes, dtype=np.float64) / float(nslots)
        return load + self.calib.chain_divergence_factor * np.sqrt(load)

    def join_copartitions_hash(
        self,
        stats: CoPartitionStats,
        tuple_bytes: float,
        *,
        ht_slots: int,
        elements_per_block: int,
        threads_per_block: int,
        use_shared_memory: bool = True,
        materialize: bool = False,
        out_tuple_bytes: float = 8.0,
        charge_build: bool = True,
    ) -> KernelCost:
        """Hash-join all co-partitions (build in shared or device memory).

        Partitions whose build side exceeds ``elements_per_block`` fall
        back to hash-based block nested loops (§V-E): the probe side is
        re-scanned once per build block.

        ``charge_build=False`` prices a probe-only invocation against
        tables built earlier (the out-of-GPU strategies build each
        working set's tables once and probe them with many chunks).
        """
        calib = self.calib
        passes = np.maximum(1.0, np.ceil(stats.build_sizes / float(elements_per_block)))
        # Fallback partitions are processed one build block at a time, so
        # each pass's table holds at most ``elements_per_block`` entries.
        block_sizes = np.minimum(stats.build_sizes, float(elements_per_block))
        steps = self._chain_steps(block_sizes, ht_slots)

        build_ops = (
            stats.build_sizes * calib.lane_ops_insert
            if charge_build
            else np.zeros_like(stats.build_sizes)
        )
        step_cost = calib.lane_ops_chain_step
        if not use_shared_memory:
            step_cost *= calib.device_ht_step_penalty
        probe_ops = stats.probe_sizes * passes * (
            calib.lane_ops_scan_per_tuple + steps * step_cost
        )
        # Every true match is visited exactly once across all passes and
        # buffered through the warp output buffer.
        match_ops = stats.matches * (step_cost + calib.lane_ops_flush_per_match)
        util = self._utilization(stats.probe_sizes, threads_per_block)
        lane_ops = float(((build_ops + probe_ops + match_ops) / util).sum())

        build_traffic = stats.total_build if charge_build else 0.0
        traffic = (build_traffic + float((stats.probe_sizes * passes).sum())) * tuple_bytes
        traffic_seconds = self.scan_seconds(traffic)
        ops_seconds = self.lane_op_seconds(lane_ops)
        seconds = max(traffic_seconds, ops_seconds) + calib.kernel_launch_seconds

        breakdown = {
            "join_traffic": traffic_seconds,
            "join_lane_ops": ops_seconds,
            "launch": calib.kernel_launch_seconds,
        }
        if materialize:
            mat = self.materialize_seconds(stats.total_matches * out_tuple_bytes)
            seconds += mat
            breakdown["materialize"] = mat
        return KernelCost(seconds, breakdown)

    def join_copartitions_nlj(
        self,
        stats: CoPartitionStats,
        tuple_bytes: float,
        *,
        differing_bits: int,
        threads_per_block: int,
        materialize: bool = False,
        out_tuple_bytes: float = 8.0,
    ) -> KernelCost:
        """Ballot-based nested-loop join of all co-partitions (Listing 1).

        Each probe warp scans the build side 32 elements at a time; every
        round costs a fixed setup plus one ballot per bit not already
        fixed by partitioning.
        """
        calib = self.calib
        warp = float(self.gpu.warp_size)
        rounds = np.ceil(stats.build_sizes / warp)
        per_round = calib.nlj_round_base_ops + differing_bits * calib.nlj_ops_per_bit
        probe_ops = stats.probe_sizes * rounds * per_round / warp
        build_ops = stats.build_sizes * calib.lane_ops_build_copy
        flush_ops = stats.matches * calib.lane_ops_flush_per_match
        util = self._utilization(stats.probe_sizes, threads_per_block)
        lane_ops = float(((build_ops + probe_ops + flush_ops) / util).sum())

        traffic = (stats.total_build + stats.total_probe) * tuple_bytes
        traffic_seconds = self.scan_seconds(traffic)
        ops_seconds = self.lane_op_seconds(lane_ops)
        seconds = max(traffic_seconds, ops_seconds) + calib.kernel_launch_seconds
        breakdown = {
            "join_traffic": traffic_seconds,
            "join_lane_ops": ops_seconds,
            "launch": calib.kernel_launch_seconds,
        }
        if materialize:
            mat = self.materialize_seconds(stats.total_matches * out_tuple_bytes)
            seconds += mat
            breakdown["materialize"] = mat
        return KernelCost(seconds, breakdown)

    # ------------------------------------------------------------------
    # Non-partitioned join kernels (§V-B)
    # ------------------------------------------------------------------
    def nonpartitioned_build(self, n_tuples: float, tuple_bytes: float) -> KernelCost:
        """Build one global chaining hash table with device atomics."""
        footprint = n_tuples * (tuple_bytes + 2 * 4)  # entries + slot heads
        seconds = (
            self.random_access_seconds(
                n_tuples * self.calib.nonpartitioned_accesses_per_build, footprint
            )
            + self.scan_seconds(n_tuples * tuple_bytes)
            + self.calib.kernel_launch_seconds
        )
        return KernelCost(seconds, {"np_build": seconds})

    def nonpartitioned_probe(
        self,
        n_probe: float,
        build_n: float,
        tuple_bytes: float,
        *,
        accesses_per_probe: float | None = None,
        matches: float = 0.0,
        materialize: bool = False,
        out_tuple_bytes: float = 8.0,
    ) -> KernelCost:
        """Probe the global table: 3–4 random accesses per tuple (chaining)
        or one (perfect hash) against an ``O(build)`` footprint."""
        calib = self.calib
        accesses = (
            calib.nonpartitioned_accesses_per_probe
            if accesses_per_probe is None
            else accesses_per_probe
        )
        footprint = build_n * (tuple_bytes + 2 * 4)
        random_seconds = self.random_access_seconds(n_probe * accesses, footprint)
        scan = self.scan_seconds(n_probe * tuple_bytes)
        seconds = random_seconds + scan + calib.kernel_launch_seconds
        breakdown = {
            "np_probe_random": random_seconds,
            "np_probe_scan": scan,
            "launch": calib.kernel_launch_seconds,
        }
        if materialize:
            mat = self.materialize_seconds(matches * out_tuple_bytes)
            seconds += mat
            breakdown["materialize"] = mat
        return KernelCost(seconds, breakdown)

    # ------------------------------------------------------------------
    # Scaled (batch) join evaluation — the out-of-GPU fast path
    # ------------------------------------------------------------------
    def hash_join_evaluator(
        self,
        build_sizes: np.ndarray,
        probe_sizes: np.ndarray,
        total_matches: float,
        tuple_bytes: float,
        *,
        ht_slots: int,
        elements_per_block: int,
        threads_per_block: int,
        use_shared_memory: bool = True,
        materialize: bool = False,
        out_tuple_bytes: float = 8.0,
        charge_build: bool = True,
    ) -> "ScaledHashJoinCost":
        """Precompute the per-working-set invariants of
        :meth:`join_copartitions_hash` for probe sides that are a fixed
        base scaled by a scalar (the out-of-GPU chunk loops)."""
        return ScaledHashJoinCost(
            self,
            build_sizes,
            probe_sizes,
            total_matches,
            tuple_bytes,
            ht_slots=ht_slots,
            elements_per_block=elements_per_block,
            threads_per_block=threads_per_block,
            use_shared_memory=use_shared_memory,
            materialize=materialize,
            out_tuple_bytes=out_tuple_bytes,
            charge_build=charge_build,
        )

    def nlj_join_evaluator(
        self,
        build_sizes: np.ndarray,
        probe_sizes: np.ndarray,
        total_matches: float,
        tuple_bytes: float,
        *,
        differing_bits: int,
        threads_per_block: int,
        materialize: bool = False,
        out_tuple_bytes: float = 8.0,
    ) -> "ScaledNljJoinCost":
        """NLJ twin of :meth:`hash_join_evaluator`."""
        return ScaledNljJoinCost(
            self,
            build_sizes,
            probe_sizes,
            total_matches,
            tuple_bytes,
            differing_bits=differing_bits,
            threads_per_block=threads_per_block,
            materialize=materialize,
            out_tuple_bytes=out_tuple_bytes,
        )

    # ------------------------------------------------------------------
    # Late materialization (Figs 9, 10)
    # ------------------------------------------------------------------
    def gather_payload(
        self, n_tuples: float, width_bytes: float, *, random: bool
    ) -> KernelCost:
        """Fetch late-materialized attributes by tuple identifier.

        Sequential when identifiers are still in input order (the
        non-partitioned join's probe side); random after partitioning has
        reordered the tuples (§V-B, payload-size experiments).
        """
        if width_bytes <= 0 or n_tuples <= 0:
            return KernelCost.zero()
        if random:
            sector = self.gpu.random_sector_bytes
            # A W-byte tuple at a random (unaligned) offset touches
            # 1 + (W-1)/S sectors in expectation.  Costed with the same
            # footprint-scaled model as the non-partitioned probe —
            # gathers through reordered identifiers behave identically.
            sectors_per_tuple = 1.0 + (width_bytes - 1.0) / sector
            seconds = self.random_access_seconds(
                n_tuples * sectors_per_tuple, n_tuples * width_bytes
            )
        else:
            seconds = self.scan_seconds(n_tuples * width_bytes)
        return KernelCost(float(seconds), {"gather": float(seconds)})


# ---------------------------------------------------------------------------
# Scaled co-partition join evaluators (the cost-model fast path)
# ---------------------------------------------------------------------------
class _ScaledJoinCostBase:
    """Shared machinery of the scaled join evaluators.

    The out-of-GPU strategies evaluate the very same co-partition join
    formula once per (working set, probe chunk): the build side (and
    therefore per-partition passes, chain steps, and build lane-ops) is
    *fixed* per working set, and the probe side is a fixed base histogram
    scaled by the chunk fraction — which takes at most two distinct
    values (full chunks plus one trailing partial chunk).  The evaluator
    precomputes every build-side invariant once and reduces each
    evaluation to a handful of vector ops; results are memoized per
    scale, so the per-chunk inner loop collapses to a dict lookup.

    Subclasses fill in the kernel-specific invariants and must agree
    with their one-shot counterpart (``join_copartitions_hash`` /
    ``join_copartitions_nlj``) to within 1e-9 — asserted by
    ``tests/gpusim/test_cost_fastpath.py`` and ``bench/regress.py``.
    """

    def __init__(
        self,
        model: GpuCostModel,
        build_sizes: np.ndarray,
        probe_sizes: np.ndarray,
        total_matches: float,
        tuple_bytes: float,
        *,
        threads_per_block: int,
        materialize: bool,
        out_tuple_bytes: float,
    ) -> None:
        self.model = model
        self.build_sizes = np.asarray(build_sizes, dtype=np.float64)
        self.probe_base = np.asarray(probe_sizes, dtype=np.float64)
        self.matches_base = CoPartitionStats.split_matches(
            self.build_sizes, self.probe_base, float(total_matches)
        )
        self.tuple_bytes = float(tuple_bytes)
        self.materialize = materialize
        self.out_tuple_bytes = float(out_tuple_bytes)
        self.total_matches_base = float(self.matches_base.sum())
        self._util_base = self.probe_base / float(threads_per_block)
        self._cache: dict[float, KernelCost] = {}

    # Subclass invariants, set by their __init__:
    #: Lane-ops independent of the probe scale (build inserts/copies).
    _fixed_ops: np.ndarray | float = 0.0
    #: Per-partition lane-ops at probe scale 1.0.
    _scaled_ops: np.ndarray
    #: Device traffic (tuples) independent of the probe scale.
    _fixed_traffic: float = 0.0
    #: Device traffic (tuples) at probe scale 1.0.
    _scaled_traffic: float = 0.0

    def cost(self, scale: float = 1.0) -> KernelCost:
        """Kernel cost with the probe side (and matches) scaled."""
        scale = float(scale)
        cached = self._cache.get(scale)
        if cached is None:
            cached = self._evaluate(scale)
            self._cache[scale] = cached
        return cached

    def seconds(self, scale: float = 1.0) -> float:
        return self.cost(scale).seconds

    def _evaluate(self, scale: float) -> KernelCost:
        model = self.model
        calib = model.calib
        util = np.minimum(
            np.maximum(self._util_base * scale, calib.min_block_utilization), 1.0
        )
        lane_ops = float(
            ((self._fixed_ops + self._scaled_ops * scale) / util).sum()
        )
        traffic = (
            self._fixed_traffic + self._scaled_traffic * scale
        ) * self.tuple_bytes
        traffic_seconds = model.scan_seconds(traffic)
        ops_seconds = model.lane_op_seconds(lane_ops)
        seconds = max(traffic_seconds, ops_seconds) + calib.kernel_launch_seconds
        breakdown = {
            "join_traffic": traffic_seconds,
            "join_lane_ops": ops_seconds,
            "launch": calib.kernel_launch_seconds,
        }
        if self.materialize:
            mat = model.materialize_seconds(
                self.total_matches_base * scale * self.out_tuple_bytes
            )
            seconds += mat
            breakdown["materialize"] = mat
        return KernelCost(seconds, breakdown)


class ScaledHashJoinCost(_ScaledJoinCostBase):
    """Scaled evaluator of :meth:`GpuCostModel.join_copartitions_hash`.

    Precomputed once per working set: per-partition fallback passes
    (``ceil(build / elements_per_block)``), per-pass block sizes and
    chain steps, build inserts, and the probe/match lane-op coefficient
    arrays.  Each ``cost(scale)`` is then two vector multiplies, one
    divide and a sum.
    """

    def __init__(
        self,
        model: GpuCostModel,
        build_sizes: np.ndarray,
        probe_sizes: np.ndarray,
        total_matches: float,
        tuple_bytes: float,
        *,
        ht_slots: int,
        elements_per_block: int,
        threads_per_block: int,
        use_shared_memory: bool,
        materialize: bool,
        out_tuple_bytes: float,
        charge_build: bool,
    ) -> None:
        super().__init__(
            model,
            build_sizes,
            probe_sizes,
            total_matches,
            tuple_bytes,
            threads_per_block=threads_per_block,
            materialize=materialize,
            out_tuple_bytes=out_tuple_bytes,
        )
        calib = model.calib
        passes = np.maximum(
            1.0, np.ceil(self.build_sizes / float(elements_per_block))
        )
        block_sizes = np.minimum(self.build_sizes, float(elements_per_block))
        steps = model._chain_steps(block_sizes, ht_slots)
        step_cost = calib.lane_ops_chain_step
        if not use_shared_memory:
            step_cost *= calib.device_ht_step_penalty
        self._fixed_ops = (
            self.build_sizes * calib.lane_ops_insert if charge_build else 0.0
        )
        self._scaled_ops = self.probe_base * passes * (
            calib.lane_ops_scan_per_tuple + steps * step_cost
        ) + self.matches_base * (step_cost + calib.lane_ops_flush_per_match)
        self._fixed_traffic = (
            float(self.build_sizes.sum()) if charge_build else 0.0
        )
        self._scaled_traffic = float((self.probe_base * passes).sum())


class ScaledNljJoinCost(_ScaledJoinCostBase):
    """Scaled evaluator of :meth:`GpuCostModel.join_copartitions_nlj`."""

    def __init__(
        self,
        model: GpuCostModel,
        build_sizes: np.ndarray,
        probe_sizes: np.ndarray,
        total_matches: float,
        tuple_bytes: float,
        *,
        differing_bits: int,
        threads_per_block: int,
        materialize: bool,
        out_tuple_bytes: float,
    ) -> None:
        super().__init__(
            model,
            build_sizes,
            probe_sizes,
            total_matches,
            tuple_bytes,
            threads_per_block=threads_per_block,
            materialize=materialize,
            out_tuple_bytes=out_tuple_bytes,
        )
        calib = model.calib
        warp = float(model.gpu.warp_size)
        rounds = np.ceil(self.build_sizes / warp)
        per_round = calib.nlj_round_base_ops + differing_bits * calib.nlj_ops_per_bit
        self._fixed_ops = self.build_sizes * calib.lane_ops_build_copy
        self._scaled_ops = (
            self.probe_base * rounds * per_round / warp
            + self.matches_base * calib.lane_ops_flush_per_match
        )
        self._fixed_traffic = float(self.build_sizes.sum())
        self._scaled_traffic = float(self.probe_base.sum())
