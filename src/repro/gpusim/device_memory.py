"""Device (global) memory accounting.

Tracks allocations against the GPU's capacity so the out-of-GPU
strategies can size chunk buffers, working sets, and output buffers the
way the paper does (§IV): the planner asks "does this working set plus
two chunk buffers plus two output buffers fit?" and the answer gates the
choice between the in-GPU, streaming and co-processing strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceMemoryOverflowError


@dataclass
class DeviceMemory:
    """A capacity-checked allocator for simulated device memory."""

    capacity_bytes: int
    allocations: dict[str, int] = field(default_factory=dict)
    peak_bytes: int = 0

    def allocate(self, name: str, nbytes: int) -> None:
        if nbytes < 0:
            raise DeviceMemoryOverflowError(f"negative allocation: {name}")
        if name in self.allocations:
            raise DeviceMemoryOverflowError(f"duplicate allocation: {name}")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise DeviceMemoryOverflowError(
                f"device memory overflow allocating {name!r} "
                f"({nbytes / 1e9:.2f} GB): {self.used_bytes / 1e9:.2f} GB used "
                f"of {self.capacity_bytes / 1e9:.2f} GB"
            )
        self.allocations[name] = nbytes
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def free(self, name: str) -> None:
        if name not in self.allocations:
            raise DeviceMemoryOverflowError(f"freeing unknown allocation {name!r}")
        del self.allocations[name]

    @property
    def used_bytes(self) -> int:
        return sum(self.allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes

    def reset(self) -> None:
        self.allocations.clear()
