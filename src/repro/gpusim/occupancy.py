"""SM occupancy analysis for kernel configurations.

Shared memory is the binding resource for the paper's kernels: each join
block reserves the co-partition working set, hash-table slots, 16-bit
links and the output buffer, so the number of blocks an SM can host —
and with it the device's latency-hiding ability — follows directly from
the configuration.  This module computes that occupancy, letting users
reason about configuration changes ("would 8192-element blocks still
keep two blocks per SM?") the way CUDA's occupancy calculator does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidConfigError
from repro.gpusim.shared_memory import join_block_reservation, partition_block_reservation
from repro.gpusim.spec import GpuSpec

#: Hardware limit on resident blocks per SM (Pascal-class devices).
MAX_BLOCKS_PER_SM = 32
#: Hardware limit on resident threads per SM (Pascal-class devices).
MAX_THREADS_PER_SM = 2048


@dataclass(frozen=True)
class Occupancy:
    """Resident blocks/warps of one kernel configuration on one SM."""

    blocks_per_sm: int
    threads_per_block: int
    limited_by: str

    @property
    def resident_threads(self) -> int:
        return self.blocks_per_sm * self.threads_per_block

    @property
    def occupancy_fraction(self) -> float:
        """Resident threads relative to the SM's hardware maximum."""
        return min(1.0, self.resident_threads / MAX_THREADS_PER_SM)


def occupancy_for(
    gpu: GpuSpec,
    *,
    threads_per_block: int,
    shared_bytes_per_block: int,
) -> Occupancy:
    """Occupancy of a kernel with the given per-block resources."""
    if threads_per_block <= 0:
        raise InvalidConfigError("threads_per_block must be positive")
    if threads_per_block > gpu.max_threads_per_block:
        raise InvalidConfigError(
            f"{threads_per_block} threads exceed the device's "
            f"{gpu.max_threads_per_block}-thread block limit"
        )
    if shared_bytes_per_block > gpu.shared_mem_per_sm:
        raise InvalidConfigError(
            f"block needs {shared_bytes_per_block} B shared memory; the SM "
            f"provides {gpu.shared_mem_per_sm} B"
        )

    limits: dict[str, float] = {
        "shared_memory": (
            gpu.shared_mem_per_sm // shared_bytes_per_block
            if shared_bytes_per_block
            else float("inf")
        ),
        "threads": MAX_THREADS_PER_SM // threads_per_block,
        "blocks": MAX_BLOCKS_PER_SM,
    }
    limiter = min(limits, key=limits.get)  # type: ignore[arg-type]
    return Occupancy(
        blocks_per_sm=max(1, int(limits[limiter])),
        threads_per_block=threads_per_block,
        limited_by=limiter,
    )


def join_kernel_occupancy(
    gpu: GpuSpec,
    *,
    elements_per_block: int,
    ht_slots: int,
    threads_per_block: int,
    tuple_bytes: int = 8,
    output_buffer_bytes: int = 1024,
) -> Occupancy:
    """Occupancy of the co-partition join kernel (§III-C reservation)."""
    return occupancy_for(
        gpu,
        threads_per_block=threads_per_block,
        shared_bytes_per_block=join_block_reservation(
            elements_per_block,
            ht_slots,
            tuple_bytes,
            output_buffer_bytes=output_buffer_bytes,
        ),
    )


def partition_kernel_occupancy(
    gpu: GpuSpec,
    *,
    fanout: int,
    threads_per_block: int,
    shuffle_elements: int = 1024,
    tuple_bytes: int = 8,
) -> Occupancy:
    """Occupancy of the partitioning kernel (§III-A reservation)."""
    return occupancy_for(
        gpu,
        threads_per_block=threads_per_block,
        shared_bytes_per_block=partition_block_reservation(
            fanout, shuffle_elements, tuple_bytes
        ),
    )
