"""Per-block shared-memory accounting.

Shared memory is the scarce resource the paper's in-GPU join is designed
around (§III-A): the build side of every co-partition, the hash-table
slot array, the partitioning metadata, and the warp output buffers must
all fit in the ~96 KB each SM exposes.  This allocator tracks those
reservations and raises :class:`SharedMemoryOverflowError` when a kernel
configuration over-commits — the same constraint that caps partitioning
fanout at "a few thousand partitions" in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SharedMemoryOverflowError


@dataclass
class SharedMemoryArena:
    """Tracks named reservations within one thread block's shared memory."""

    capacity_bytes: int
    reservations: dict[str, int] = field(default_factory=dict)

    def allocate(self, name: str, nbytes: int) -> None:
        """Reserve ``nbytes`` under ``name``; raises on overflow."""
        if nbytes < 0:
            raise SharedMemoryOverflowError(f"negative allocation: {name}")
        if name in self.reservations:
            raise SharedMemoryOverflowError(f"duplicate allocation: {name}")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise SharedMemoryOverflowError(
                f"shared memory overflow allocating {name!r}: "
                f"{self.used_bytes} + {nbytes} > {self.capacity_bytes} bytes "
                f"(existing: {sorted(self.reservations)})"
            )
        self.reservations[name] = nbytes

    def free(self, name: str) -> None:
        self.reservations.pop(name)

    @property
    def used_bytes(self) -> int:
        return sum(self.reservations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def fits(self, nbytes: int) -> bool:
        return nbytes <= self.free_bytes


def join_block_reservation(
    elements_per_block: int,
    ht_buckets: int,
    tuple_bytes: int,
    *,
    offset_bytes: int = 2,
    output_buffer_bytes: int = 1024,
) -> int:
    """Shared-memory footprint of one co-partition join block.

    Holds the build-side working set (keys + payloads), the hash-table
    slot heads and 16-bit chain offsets (§III-C: "the limited size of
    shared memory allows us to trim the offsets to 16 bits"), and the
    warp output buffer used for coalesced result flushes.
    """
    build_set = elements_per_block * tuple_bytes
    slot_heads = ht_buckets * offset_bytes
    chain_links = elements_per_block * offset_bytes
    return build_set + slot_heads + chain_links + output_buffer_bytes


def partition_block_reservation(
    fanout: int,
    shuffle_elements: int,
    tuple_bytes: int,
    *,
    metadata_bytes_per_partition: int = 8,
) -> int:
    """Shared-memory footprint of one partitioning block.

    Per-partition metadata (current bucket pointer + fill counter) plus
    the shuffle staging space used to coalesce writes (§III-A).
    """
    return fanout * metadata_bytes_per_partition + shuffle_elements * tuple_bytes


def max_partition_fanout(
    shared_bytes: int,
    tuple_bytes: int,
    *,
    shuffle_elements: int = 1024,
    metadata_bytes_per_partition: int = 8,
) -> int:
    """Largest per-pass fanout whose metadata fits in shared memory."""
    available = shared_bytes - shuffle_elements * tuple_bytes
    if available <= 0:
        raise SharedMemoryOverflowError(
            "shuffle space alone exceeds shared memory"
        )
    return max(1, available // metadata_bytes_per_partition)
