"""Hardware specifications for the simulated system.

The default specs model the paper's testbed (§V-A): an NVIDIA GTX 1080
(8 GB GDDR5X, 20 SMs) attached over PCIe 3.0 x16 to a dual-socket machine
with two 12-core Xeon E5-2650L v3 and 256 GB of memory.  All join
algorithms and cost models are parameterized by these specs, so the same
code can model other devices (a V100 preset is provided for illustration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidConfigError

GIB = 1024**3
GB = 1e9
WARP_SIZE = 32


@dataclass(frozen=True)
class GpuSpec:
    """A discrete GPU device."""

    name: str = "GTX 1080"
    num_sms: int = 20
    cores_per_sm: int = 128
    clock_hz: float = 1.607e9
    warp_size: int = WARP_SIZE
    max_threads_per_block: int = 1024
    #: Programmable shared memory per SM (bytes).
    shared_mem_per_sm: int = 96 * 1024
    #: Device (global) memory capacity.
    device_memory: int = 8 * GIB
    #: Peak device-memory bandwidth (GDDR5X on the GTX 1080).
    device_bandwidth: float = 320.0 * GB
    #: Aggregate shared-memory bandwidth: 128 B/cycle/SM.
    shared_bandwidth: float = 20 * 128 * 1.607e9
    #: L2 cache size and the minimum transaction granularity for
    #: non-coalesced (random) global accesses.
    l2_bytes: int = 2 * 1024 * 1024
    random_sector_bytes: int = 32
    #: Number of DMA copy engines (the paper exploits both, §IV-C).
    dma_engines: int = 2

    def __post_init__(self) -> None:
        if self.num_sms <= 0 or self.device_bandwidth <= 0:
            raise InvalidConfigError("GPU spec values must be positive")

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def total_shared_memory(self) -> int:
        return self.num_sms * self.shared_mem_per_sm


@dataclass(frozen=True)
class CpuSpec:
    """A multi-socket host CPU."""

    name: str = "2x Xeon E5-2650L v3"
    sockets: int = 2
    cores_per_socket: int = 12
    smt: int = 2
    clock_hz: float = 1.8e9
    #: Effective memory bandwidth per socket (DDR4-2133, 4 channels).
    memory_bandwidth_per_socket: float = 55.0 * GB
    #: Effective cross-socket (QPI) bandwidth.
    qpi_bandwidth: float = 12.0 * GB
    l3_per_socket: int = 30 * 1024 * 1024
    host_memory: int = 256 * GIB

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def total_threads(self) -> int:
        return self.total_cores * self.smt

    @property
    def total_memory_bandwidth(self) -> float:
        return self.sockets * self.memory_bandwidth_per_socket


@dataclass(frozen=True)
class InterconnectSpec:
    """The CPU–GPU link (PCIe 3.0 x16 on the testbed)."""

    name: str = "PCIe 3.0 x16"
    #: Theoretical maximum quoted in the paper's introduction.
    theoretical_bandwidth: float = 15.8 * GB
    #: Achievable bandwidth for large pinned-memory DMA transfers.
    pinned_bandwidth: float = 12.3 * GB
    #: Achievable bandwidth for pageable-memory transfers (staged by the
    #: driver through an internal pinned buffer).
    pageable_bandwidth: float = 6.0 * GB
    #: UVA (zero-copy) sequential streaming efficiency relative to pinned.
    uva_sequential_efficiency: float = 0.90
    #: Minimum transaction size for UVA random accesses over the bus.
    uva_random_granularity: int = 128
    #: Unified Memory page size and per-fault overhead.
    um_page_bytes: int = 64 * 1024
    um_fault_seconds: float = 20e-6


@dataclass(frozen=True)
class SystemSpec:
    """Complete modelled system: GPU + host + interconnect."""

    gpu: GpuSpec = field(default_factory=GpuSpec)
    cpu: CpuSpec = field(default_factory=CpuSpec)
    interconnect: InterconnectSpec = field(default_factory=InterconnectSpec)

    @property
    def pcie_bandwidth(self) -> float:
        return self.interconnect.pinned_bandwidth


def gtx1080_system() -> SystemSpec:
    """The paper's testbed (default everywhere)."""
    return SystemSpec()


def v100_system() -> SystemSpec:
    """A Tesla V100 + NVLink-class host, for what-if experiments.

    The paper (§V-C) predicts its out-of-GPU joins would scale with faster
    interconnects; this preset lets examples demonstrate that claim.
    """
    gpu = GpuSpec(
        name="Tesla V100",
        num_sms=80,
        cores_per_sm=64,
        clock_hz=1.53e9,
        shared_mem_per_sm=96 * 1024,
        device_memory=32 * GIB,
        device_bandwidth=900.0 * GB,
        shared_bandwidth=80 * 128 * 1.53e9,
        l2_bytes=6 * 1024 * 1024,
    )
    interconnect = InterconnectSpec(
        name="NVLink 2.0",
        theoretical_bandwidth=75.0 * GB,
        pinned_bandwidth=65.0 * GB,
        pageable_bandwidth=20.0 * GB,
    )
    return SystemSpec(gpu=gpu, interconnect=interconnect)
