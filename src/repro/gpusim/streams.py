"""CUDA-style streams and events on top of the pipeline engine.

The paper's out-of-GPU strategies are written against CUDA's stream
abstraction: operations enqueued on one stream execute in order,
different streams overlap, and *events* express cross-stream
dependencies ("we use one stream for transfers and another for the GPU
execution itself, synchronizing tasks on the same chunk with events",
§IV-A).  This module exposes exactly that programming model and lowers
it to a :class:`~repro.pipeline.engine.PipelineEngine` task graph, so
pipelines can be authored the way the paper's CUDA code is.

Example (the §IV-A double-buffered skeleton)::

    ctx = StreamContext()
    copy, exec_ = ctx.stream("copy", H2D), ctx.stream("exec", GPU)
    done: list[Event] = []
    for i in range(chunks):
        if i >= 2:                       # buffer reuse: wait two behind
            copy.wait(done[i - 2])
        moved = copy.launch(f"h2d[{i}]", transfer_seconds)
        exec_.wait(moved)
        done.append(exec_.launch(f"join[{i}]", kernel_seconds))
    schedule = ctx.run()
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchedulingError
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Schedule


@dataclass(frozen=True)
class Event:
    """A recorded completion point (``cudaEventRecord`` semantics).

    Wraps the name of the task whose completion it marks.
    """

    task_name: str


@dataclass
class Stream:
    """An in-order execution queue bound to one resource."""

    name: str
    resource: str
    _context: "StreamContext"
    _pending_waits: list[str] = field(default_factory=list)
    last_event: Event | None = None

    def wait(self, event: Event | None) -> "Stream":
        """``cudaStreamWaitEvent``: the next launch waits for ``event``."""
        if event is not None:
            self._pending_waits.append(event.task_name)
        return self

    def launch(self, name: str, seconds: float) -> Event:
        """Enqueue an operation; returns the event marking its completion.

        In-stream ordering is implicit (the engine executes each
        resource's queue FIFO); accumulated waits become dependencies.
        """
        deps = tuple(self._pending_waits)
        self._pending_waits.clear()
        self._context.engine.add_task(name, self.resource, seconds, deps)
        self.last_event = Event(name)
        return self.last_event

    def synchronize_event(self) -> Event:
        """Event for everything enqueued so far (``cudaStreamSynchronize``
        expressed as a dependency rather than a host block)."""
        if self.last_event is None:
            raise SchedulingError(f"stream {self.name!r} has no operations")
        return self.last_event


class StreamContext:
    """Owns the streams and lowers them to one pipeline simulation."""

    def __init__(self) -> None:
        self.engine = PipelineEngine()
        self._streams: dict[str, Stream] = {}

    def stream(self, name: str, resource: str) -> Stream:
        """Create (or fetch) a named stream bound to ``resource``.

        Two streams may share a resource — they then serialize against
        each other exactly as two CUDA streams sharing one copy engine.
        """
        if name not in self._streams:
            self._streams[name] = Stream(name=name, resource=resource, _context=self)
        return self._streams[name]

    def run(self) -> Schedule:
        """Simulate everything enqueued so far."""
        return self.engine.run()
