"""CPU–GPU transfer models: DMA over PCIe, UVA, and Unified Memory.

The paper's out-of-GPU strategies are built on explicit asynchronous DMA
copies from pinned memory (§IV-A); Figures 21 and 22 compare them against
the driver-managed alternatives — UVA (zero-copy access over the bus) and
Unified Memory (page migration on fault).  This module provides the
timing for all three mechanisms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.gpusim.spec import SystemSpec


@dataclass(frozen=True)
class TransferModel:
    """Seconds needed by each transfer mechanism."""

    system: SystemSpec
    calibration: Calibration = DEFAULT_CALIBRATION

    # ------------------------------------------------------------ DMA copy
    def dma_seconds(self, nbytes: float, *, pinned: bool = True) -> float:
        """One explicit ``cudaMemcpyAsync`` (either direction).

        Pinned-memory copies run at full DMA rate; pageable copies are
        staged by the driver and roughly halve throughput.
        """
        link = self.system.interconnect
        bandwidth = link.pinned_bandwidth if pinned else link.pageable_bandwidth
        return nbytes / bandwidth

    def pipelined_dma_rate(self) -> float:
        """Sustained bandwidth of a double-buffered stream of DMA copies,
        accounting for event-synchronization gaps between chunks."""
        return (
            self.system.interconnect.pinned_bandwidth
            * self.calibration.pcie_stream_utilization
        )

    # ----------------------------------------------------------------- UVA
    def uva_sequential_seconds(self, nbytes: float) -> float:
        """Coalesced streaming reads of host memory through UVA."""
        link = self.system.interconnect
        return nbytes / (link.pinned_bandwidth * link.uva_sequential_efficiency)

    def uva_random_seconds(self, accesses: float, access_bytes: float) -> float:
        """Irregular UVA accesses: every access moves a full bus
        transaction of :attr:`InterconnectSpec.uva_random_granularity`
        bytes no matter how few bytes are needed (§IV: "only a small
        portion of a page is needed during an access")."""
        link = self.system.interconnect
        granularity = link.uva_random_granularity
        transactions = accesses * max(1.0, math.ceil(access_bytes / granularity))
        return transactions * granularity / link.pinned_bandwidth

    # ------------------------------------------------------------------ UM
    def um_migration_seconds(
        self,
        touched_bytes: float,
        *,
        working_set_bytes: float | None = None,
        reuse_passes: float = 1.0,
    ) -> float:
        """Unified Memory page migration.

        Moves data at near-PCIe rate plus a per-page fault overhead.  When
        the working set exceeds device capacity, pages are evicted and
        re-faulted on every pass over the data (thrashing, §IV-B), so the
        traffic multiplies by ``reuse_passes``.
        """
        link = self.system.interconnect
        working_set = touched_bytes if working_set_bytes is None else working_set_bytes
        passes = 1.0
        if working_set > self.system.gpu.device_memory:
            passes = max(1.0, reuse_passes)
        total = touched_bytes * passes
        pages = total / link.um_page_bytes
        return total / link.pinned_bandwidth + pages * link.um_fault_seconds
