"""Warp-level execution primitives.

CUDA exposes intra-warp communication through ``__ballot_sync`` and
``__shfl_sync``; the paper's nested-loop probe kernel (Listing 1) is built
entirely on ``ballot``.  This module provides functionally equivalent,
numpy-vectorized primitives: a *lane vector* is an array whose last axis
has length :data:`WARP_SIZE`, one element per lane, and warp instructions
map lane vectors to per-warp scalars (bitmasks) or new lane vectors.

A scalar :class:`Warp` class with explicit per-lane loops is also provided
as the reference semantics; the vectorized primitives are property-tested
against it.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfigError

WARP_SIZE = 32
FULL_MASK = 0xFFFFFFFF


def _check_lanes(lanes: np.ndarray) -> np.ndarray:
    lanes = np.asarray(lanes)
    if lanes.shape[-1] != WARP_SIZE:
        raise InvalidConfigError(
            f"lane vectors must have a trailing axis of {WARP_SIZE}, "
            f"got shape {lanes.shape}"
        )
    return lanes


def lane_ids() -> np.ndarray:
    """The lane index of each thread in a warp (0..31)."""
    return np.arange(WARP_SIZE, dtype=np.int64)


def ballot(predicate: np.ndarray) -> np.ndarray:
    """``__ballot_sync(FULL_MASK, pred)``: pack one bit per lane.

    ``predicate`` is a boolean lane vector ``(..., 32)``; the result drops
    the lane axis and holds a ``uint32`` bitmask per warp, bit *l* set iff
    lane *l*'s predicate holds.
    """
    predicate = _check_lanes(predicate).astype(np.uint32)
    weights = (np.uint32(1) << np.arange(WARP_SIZE, dtype=np.uint32))
    return (predicate * weights).sum(axis=-1, dtype=np.uint32)


def shfl(values: np.ndarray, src_lane: int | np.ndarray) -> np.ndarray:
    """``__shfl_sync``: every lane reads the value held by ``src_lane``."""
    values = _check_lanes(values)
    if np.isscalar(src_lane):
        src = np.broadcast_to(np.asarray(src_lane), values.shape[:-1] + (WARP_SIZE,))
    else:
        src = _check_lanes(np.asarray(src_lane))
    return np.take_along_axis(values, src.astype(np.int64), axis=-1)


def any_sync(predicate: np.ndarray) -> np.ndarray:
    """``__any_sync``: true for the warp iff any lane's predicate holds."""
    return _check_lanes(predicate).any(axis=-1)


def all_sync(predicate: np.ndarray) -> np.ndarray:
    """``__all_sync``: true for the warp iff every lane's predicate holds."""
    return _check_lanes(predicate).all(axis=-1)


def popc(mask: np.ndarray) -> np.ndarray:
    """``__popc``: number of set bits per 32-bit mask."""
    mask = np.asarray(mask, dtype=np.uint32)
    count = np.zeros(mask.shape, dtype=np.int64)
    work = mask.astype(np.uint64)
    for _ in range(WARP_SIZE):
        count += (work & 1).astype(np.int64)
        work >>= np.uint64(1)
    return count


class Warp:
    """Reference warp with explicit per-lane state (tests only).

    Executes the same primitives with plain Python loops, serving as the
    ground-truth semantics for the vectorized functions above.
    """

    def __init__(self, values: list[int] | np.ndarray):
        values = list(values)
        if len(values) != WARP_SIZE:
            raise InvalidConfigError(f"a warp has exactly {WARP_SIZE} lanes")
        self.values = [int(v) for v in values]

    def ballot(self, predicate) -> int:
        mask = 0
        for lane, value in enumerate(self.values):
            if predicate(value, lane):
                mask |= 1 << lane
        return mask

    def shfl(self, src_lane: int) -> list[int]:
        return [self.values[src_lane]] * WARP_SIZE
