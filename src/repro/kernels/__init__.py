"""Functional GPU join kernels (with cost accounting)."""

from repro.kernels.aggregate import JoinAggregate, aggregate_pairs
from repro.kernels.buckets import PartitionedRelation
from repro.kernels.build_hash import (
    MAX_OFFSET_16BIT,
    CoPartitionHashTables,
    build_copartition_tables,
)
from repro.kernels.common import ht_slot, key_bit_width, next_power_of_two
from repro.kernels.histogram import (
    exclusive_prefix_sum,
    histogram_pass,
    histogram_radix_partition,
    partitioning_approach_costs,
)
from repro.kernels.nonpartitioned import (
    CHAINING,
    PERFECT,
    NonPartitionedResult,
    chaining_join,
    perfect_hash_join,
)
from repro.kernels.output_buffer import WarpOutputBuffer, expected_flushes
from repro.kernels.probe_hash import ProbeResult, probe_copartitions
from repro.kernels.probe_nlj import ballot_match_masks, nlj_copartitions
from repro.kernels.radix_partition import (
    BUCKET_AT_A_TIME,
    PARTITION_AT_A_TIME,
    derive_bits_per_pass,
    estimate_partition_cost,
    gpu_radix_partition,
    partition_pass_arrays,
)

__all__ = [
    "BUCKET_AT_A_TIME",
    "CHAINING",
    "CoPartitionHashTables",
    "JoinAggregate",
    "MAX_OFFSET_16BIT",
    "NonPartitionedResult",
    "PARTITION_AT_A_TIME",
    "PERFECT",
    "PartitionedRelation",
    "ProbeResult",
    "WarpOutputBuffer",
    "aggregate_pairs",
    "ballot_match_masks",
    "build_copartition_tables",
    "chaining_join",
    "derive_bits_per_pass",
    "estimate_partition_cost",
    "exclusive_prefix_sum",
    "expected_flushes",
    "gpu_radix_partition",
    "histogram_pass",
    "histogram_radix_partition",
    "ht_slot",
    "key_bit_width",
    "next_power_of_two",
    "nlj_copartitions",
    "partitioning_approach_costs",
    "partition_pass_arrays",
    "perfect_hash_join",
    "probe_copartitions",
]
