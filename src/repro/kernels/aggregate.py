"""Aggregation of join output (the paper's non-materializing mode).

Most experiments "locally aggregate the output payload columns and at the
end atomically update the global aggregates" (§V-B) so that measured
times isolate join work from result materialization.  The simulated
kernels do the same: each thread accumulates into registers and one
atomic per block folds the partial sums.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class JoinAggregate:
    """Checksum-style aggregate over the matched pairs."""

    matches: int
    build_payload_sum: int
    probe_payload_sum: int

    def __add__(self, other: "JoinAggregate") -> "JoinAggregate":
        return JoinAggregate(
            matches=self.matches + other.matches,
            build_payload_sum=self.build_payload_sum + other.build_payload_sum,
            probe_payload_sum=self.probe_payload_sum + other.probe_payload_sum,
        )

    @classmethod
    def zero(cls) -> "JoinAggregate":
        return cls(0, 0, 0)


def aggregate_pairs(
    build_payloads: np.ndarray, probe_payloads: np.ndarray
) -> JoinAggregate:
    """Fold matched payload pairs into a :class:`JoinAggregate`."""
    return JoinAggregate(
        matches=int(build_payloads.shape[0]),
        build_payload_sum=int(build_payloads.sum()) if build_payloads.size else 0,
        probe_payload_sum=int(probe_payloads.sum()) if probe_payloads.size else 0,
    )
