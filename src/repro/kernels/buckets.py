"""Partitioned relations as bucket chains.

The GPU partitioning kernel (§III-A) materializes each partition as a
linked list of fixed-capacity buckets drawn from a pre-allocated pool:
buckets amortize pointer chasing and keep scans coalesced, and the pool
lets blocks grab new buckets with a single atomic.  Functionally the
layout is a CSR grouping (tuples contiguous per partition); the bucket
structure matters for *costs* and *memory footprints* (padding of the
last bucket per partition) — both are tracked here because the
working-set packing of §IV-D reserves space "padding included".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfigError


@dataclass
class PartitionedRelation:
    """A relation grouped into ``2**radix_bits`` radix partitions.

    ``keys``/``payloads`` are reordered so partition ``p`` occupies rows
    ``offsets[p]:offsets[p + 1]``; partition ``p`` holds exactly the
    tuples whose key satisfies ``key & (fanout - 1) == p``.
    """

    keys: np.ndarray
    payloads: np.ndarray
    offsets: np.ndarray
    radix_bits: int
    bucket_capacity: int
    tuple_bytes: int = 8

    def __post_init__(self) -> None:
        if self.radix_bits < 0:
            raise InvalidConfigError("radix_bits must be non-negative")
        if self.bucket_capacity <= 0:
            raise InvalidConfigError("bucket capacity must be positive")
        if self.offsets.shape[0] != self.fanout + 1:
            raise InvalidConfigError(
                f"offsets must have fanout + 1 entries, got {self.offsets.shape[0]}"
            )

    # ------------------------------------------------------------------
    @property
    def fanout(self) -> int:
        return 1 << self.radix_bits

    @property
    def num_tuples(self) -> int:
        return int(self.keys.shape[0])

    def partition_sizes(self) -> np.ndarray:
        return np.diff(self.offsets)

    def partition(self, p: int) -> tuple[np.ndarray, np.ndarray]:
        """Zero-copy view of partition ``p``'s keys and payloads."""
        lo, hi = int(self.offsets[p]), int(self.offsets[p + 1])
        return self.keys[lo:hi], self.payloads[lo:hi]

    def partition_of(self, row: int) -> int:
        """Partition id of a row in the reordered layout."""
        return int(np.searchsorted(self.offsets, row, side="right") - 1)

    # ------------------------------------------------------------------
    # Bucket accounting (drives costs and §IV-D packing footprints)
    # ------------------------------------------------------------------
    def buckets_per_partition(self) -> np.ndarray:
        """Number of pool buckets chained per partition (>= 1 each)."""
        sizes = self.partition_sizes()
        return np.maximum(1, -(-sizes // self.bucket_capacity))

    def total_buckets(self) -> int:
        return int(self.buckets_per_partition().sum())

    def padded_sizes(self) -> np.ndarray:
        """Per-partition footprint in tuples, including last-bucket padding."""
        return self.buckets_per_partition() * self.bucket_capacity

    def padded_bytes(self) -> np.ndarray:
        """Per-partition footprint in bytes, padding included (§IV-D)."""
        return self.padded_sizes() * self.tuple_bytes

    def chain_imbalance(self) -> float:
        """Longest bucket chain relative to the average (>= 1).

        Under the partition-at-a-time work assignment a CUDA block
        sub-partitions one whole chain, so the longest chain bounds the
        pass (§III-A); bucket-at-a-time keeps blocks balanced.
        """
        buckets = self.buckets_per_partition()
        mean = float(buckets.mean())
        return float(buckets.max()) / mean if mean > 0 else 1.0
