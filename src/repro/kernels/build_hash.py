"""Build phase: per-co-partition chaining hash tables (§III-C).

Each co-partition's build side becomes a hash table in (simulated) shared
memory: a slot-head array plus 16-bit next-offsets, populated wait-free
with ``atomicExchange`` (Listing 2).  All per-partition tables are stored
in one flat array pair indexed by ``partition * nslots + slot``, which is
the vectorized equivalent of building the tables independently per block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfigError, SharedMemoryOverflowError
from repro.gpusim import atomics
from repro.gpusim.cost import GpuCostModel, KernelCost
from repro.kernels.buckets import PartitionedRelation
from repro.kernels.common import ht_slot, is_power_of_two

#: Largest partition a 16-bit chain offset can address (§III-C: "the
#: limited size of shared memory allows us to trim the offsets to 16 bits").
MAX_OFFSET_16BIT = 1 << 16


@dataclass
class CoPartitionHashTables:
    """Hash tables over every build-side co-partition.

    ``heads`` has ``fanout * nslots`` entries holding *global* row
    indices into the partitioned build relation (or ``NIL``); ``next``
    links rows within a partition.  ``next`` offsets stay within one
    partition, so on the real device they fit in 16 bits relative to the
    partition base — validated at construction.
    """

    build: PartitionedRelation
    nslots: int
    heads: np.ndarray
    next: np.ndarray
    fallback_partitions: np.ndarray

    @property
    def fanout(self) -> int:
        return self.build.fanout

    def global_slot(self, partition_ids: np.ndarray, keys: np.ndarray) -> np.ndarray:
        local = ht_slot(keys, self.nslots, radix_bits=self.build.radix_bits)
        return partition_ids * self.nslots + local


def build_copartition_tables(
    build: PartitionedRelation,
    *,
    nslots: int,
    elements_per_block: int,
    cost_model: GpuCostModel,
    strict_offsets: bool = False,
) -> tuple[CoPartitionHashTables, KernelCost]:
    """Build all co-partition hash tables.

    Partitions larger than ``elements_per_block`` do not fit the shared
    memory reserved for the build side; they are flagged for the
    hash-based block-nested-loop fallback (§V-E) — the probe kernel's
    cost model processes them in ``ceil(size / elements_per_block)``
    passes.  The 16-bit offset representation caps the *shared-memory*
    table at 65 536 tuples; fallback partitions are processed block-wise,
    so larger partitions only error under ``strict_offsets`` (used by
    tests that pin down the representation limit).
    """
    if not is_power_of_two(nslots):
        raise InvalidConfigError(f"nslots must be a power of two, got {nslots}")
    sizes = build.partition_sizes()
    if strict_offsets and sizes.size and int(sizes.max()) > MAX_OFFSET_16BIT:
        raise SharedMemoryOverflowError(
            f"partition of {int(sizes.max())} tuples exceeds 16-bit chain "
            f"offsets; increase the partitioning fanout"
        )

    partition_ids = np.repeat(np.arange(build.fanout, dtype=np.int64), sizes)
    local_slots = ht_slot(build.keys, nslots, radix_bits=build.radix_bits)
    global_slots = partition_ids * nslots + local_slots
    table = atomics.chain_insert(global_slots, build.fanout * nslots)

    tables = CoPartitionHashTables(
        build=build,
        nslots=nslots,
        heads=table.heads,
        next=table.next,
        fallback_partitions=np.nonzero(sizes > elements_per_block)[0],
    )
    # Build cost is part of the fused co-partition join kernel; the join
    # cost function charges the inserts.  Only the launch is charged here
    # when the build runs as its own kernel.
    cost = KernelCost(
        cost_model.calib.kernel_launch_seconds,
        {"launch": cost_model.calib.kernel_launch_seconds},
    )
    return tables, cost
