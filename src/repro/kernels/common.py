"""Shared kernel helpers: hash functions and bit-width utilities."""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfigError

#: Knuth's multiplicative constant (2^32 / phi), the classic cheap hash.
MULTIPLIER = np.int64(2654435761)


def is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    if value <= 1:
        return 1
    return 1 << (int(value) - 1).bit_length()


def key_bit_width(max_key: int) -> int:
    """Number of bits needed to represent keys up to ``max_key``."""
    if max_key < 0:
        raise InvalidConfigError("keys must be non-negative")
    return max(1, int(max_key).bit_length())


def ht_slot(keys: np.ndarray, nslots: int, *, radix_bits: int = 0) -> np.ndarray:
    """Hash-table slot of each key.

    The low ``radix_bits`` bits are identical within a partition (they
    selected the partition), so the hash mixes only the remaining bits —
    otherwise every tuple of a partition would land in one slot.
    ``nslots`` must be a power of two (slot = hash & (nslots - 1)).
    """
    if not is_power_of_two(nslots):
        raise InvalidConfigError(f"nslots must be a power of two, got {nslots}")
    keys = np.asarray(keys, dtype=np.int64)
    mixed = ((keys >> radix_bits) * MULTIPLIER) & np.int64(0x7FFFFFFFFFFFFFFF)
    return (mixed & np.int64(nslots - 1)).astype(np.int64)
