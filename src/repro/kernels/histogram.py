"""Histogram-based partitioning — the alternative the paper avoids.

Rui & Tu's GPU radix join computes an exact per-digit histogram and a
prefix sum before each scatter pass, which costs one extra read of the
input per pass.  The paper's design instead allocates bucket-pool
buckets with atomics and needs no histogram ("our approach avoids an
extra pass on each partitioning step by using GPU atomic operations
instead of building histograms", §VI).  Both variants are implemented
here so the trade-off can be measured (see
``benchmarks/bench_ablations.py``).
"""

from __future__ import annotations

import numpy as np

from repro.data.relation import Relation
from repro.errors import InvalidConfigError
from repro.gpusim.cost import GpuCostModel, KernelCost
from repro.kernels.buckets import PartitionedRelation
from repro.kernels.radix_partition import gpu_radix_partition


def histogram_pass(keys: np.ndarray, bits: int, shift: int = 0) -> np.ndarray:
    """Exact digit histogram of one pass (the extra read Rui & Tu pay)."""
    if bits <= 0:
        raise InvalidConfigError("histogram needs bits >= 1")
    digit = (keys >> shift) & ((1 << bits) - 1)
    return np.bincount(digit, minlength=1 << bits)


def exclusive_prefix_sum(histogram: np.ndarray) -> np.ndarray:
    """Partition base offsets from a histogram (GPU scan primitive)."""
    offsets = np.zeros(histogram.shape[0] + 1, dtype=np.int64)
    np.cumsum(histogram, out=offsets[1:])
    return offsets[:-1]


def histogram_radix_partition(
    relation: Relation,
    bits_per_pass: list[int],
    cost_model: GpuCostModel,
    *,
    bucket_capacity: int = 1024,
) -> tuple[PartitionedRelation, KernelCost]:
    """Partition with per-pass histogram + prefix sum + scatter.

    Functionally identical to :func:`gpu_radix_partition` (tuples end up
    grouped by the combined low bits, with *exact* dense offsets instead
    of padded bucket chains); the cost charges each pass's extra
    histogram read of the input plus the scan of the histogram itself.
    """
    partitioned, scatter_cost = gpu_radix_partition(
        relation, bits_per_pass, cost_model, bucket_capacity=bucket_capacity
    )

    histogram_cost = KernelCost.zero()
    cumulative_fanout = 1
    for bits in bits_per_pass:
        cumulative_fanout <<= bits
        read_input = cost_model.scan_seconds(
            relation.num_tuples * relation.tuple_bytes
        )
        scan_histogram = cost_model.scan_seconds(cumulative_fanout * 4 * 2)
        seconds = read_input + scan_histogram + cost_model.calib.kernel_launch_seconds
        histogram_cost = histogram_cost + KernelCost(
            seconds, {"histogram_pass": seconds}
        )
    return partitioned, scatter_cost + histogram_cost


def partitioning_approach_costs(
    n_tuples: int,
    tuple_bytes: int,
    bits_per_pass: list[int],
    cost_model: GpuCostModel,
) -> dict[str, float]:
    """Modelled seconds of the two approaches for a workload (analytic)."""
    from repro.kernels.radix_partition import estimate_partition_cost

    atomic = estimate_partition_cost(
        n_tuples, tuple_bytes, bits_per_pass, cost_model
    ).seconds
    histogram_extra = 0.0
    cumulative_fanout = 1
    for bits in bits_per_pass:
        cumulative_fanout <<= bits
        histogram_extra += (
            cost_model.scan_seconds(n_tuples * tuple_bytes)
            + cost_model.scan_seconds(cumulative_fanout * 8)
            + cost_model.calib.kernel_launch_seconds
        )
    return {"atomic_buckets": atomic, "histogram": atomic + histogram_extra}
