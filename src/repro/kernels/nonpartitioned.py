"""Non-partitioned GPU hash joins (the paper's comparison points, §V-B).

Two variants:

* **chaining** — one global hash table in device memory, built with
  atomic exchanges; probing follows offset chains and costs "three to
  four random memory accesses" per lookup;
* **perfect hash** — a best-case construction exploiting unique,
  contiguous keys: payloads live in a dense array indexed by key, so a
  probe is a single random access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.relation import Relation
from repro.errors import InvalidConfigError
from repro.gpusim import atomics
from repro.gpusim.atomics import NIL
from repro.gpusim.cost import GpuCostModel, KernelCost
from repro.kernels.common import ht_slot, next_power_of_two

CHAINING = "chaining"
PERFECT = "perfect"


@dataclass
class NonPartitionedResult:
    """Output and cost of a non-partitioned join."""

    build_payloads: np.ndarray
    probe_payloads: np.ndarray
    build_cost: KernelCost
    probe_cost: KernelCost

    @property
    def matches(self) -> int:
        return int(self.build_payloads.shape[0])

    @property
    def cost(self) -> KernelCost:
        return self.build_cost + self.probe_cost

    def pairs(self) -> np.ndarray:
        out = np.stack([self.build_payloads, self.probe_payloads], axis=1)
        return out[np.lexsort((out[:, 1], out[:, 0]))]


def chaining_join(
    build: Relation,
    probe: Relation,
    cost_model: GpuCostModel,
    *,
    slots_per_tuple: float = 1.0,
    materialize: bool = False,
    out_tuple_bytes: float = 8.0,
) -> NonPartitionedResult:
    """Global chaining hash table in device memory."""
    nslots = next_power_of_two(max(1, int(build.num_tuples * slots_per_tuple)))
    slots = ht_slot(build.key, nslots)
    table = atomics.chain_insert(slots, nslots)

    cursors = table.heads[ht_slot(probe.key, nslots)]
    build_hits: list[np.ndarray] = []
    probe_hits: list[np.ndarray] = []
    live = np.nonzero(cursors != NIL)[0]
    cursors = cursors[live]
    while live.size:
        hit = build.key[cursors] == probe.key[live]
        if hit.any():
            build_hits.append(build.payload[cursors[hit]])
            probe_hits.append(probe.payload[live[hit]])
        cursors = table.next[cursors]
        alive = cursors != NIL
        live = live[alive]
        cursors = cursors[alive]

    build_payloads = (
        np.concatenate(build_hits) if build_hits else np.empty(0, dtype=np.int64)
    )
    probe_payloads = (
        np.concatenate(probe_hits) if probe_hits else np.empty(0, dtype=np.int64)
    )
    build_cost = cost_model.nonpartitioned_build(build.num_tuples, build.tuple_bytes)
    probe_cost = cost_model.nonpartitioned_probe(
        probe.num_tuples,
        build.num_tuples,
        probe.tuple_bytes,
        matches=float(build_payloads.shape[0]),
        materialize=materialize,
        out_tuple_bytes=out_tuple_bytes,
    )
    return NonPartitionedResult(build_payloads, probe_payloads, build_cost, probe_cost)


def perfect_hash_join(
    build: Relation,
    probe: Relation,
    cost_model: GpuCostModel,
    *,
    materialize: bool = False,
    out_tuple_bytes: float = 8.0,
) -> NonPartitionedResult:
    """Best-case non-partitioned join: dense payload array indexed by key.

    Requires the build keys to be unique and contiguous from zero — the
    exact assumption the paper grants this baseline (§V-B: "designed to
    incorporate the knowledge of no-collisions and the contiguous range
    of unique keys").
    """
    n = build.num_tuples
    if n and (int(build.key.min()) < 0 or int(build.key.max()) >= n):
        raise InvalidConfigError("perfect hashing requires dense keys in [0, n)")
    dense = np.full(n, NIL, dtype=np.int64)
    dense[build.key] = np.arange(n, dtype=np.int64)
    if np.count_nonzero(dense == NIL):
        raise InvalidConfigError("perfect hashing requires unique keys")

    in_range = (probe.key >= 0) & (probe.key < n)
    rows = np.nonzero(in_range)[0]
    build_rows = dense[probe.key[rows]]

    build_cost = KernelCost(
        cost_model.scan_seconds(n * build.tuple_bytes)
        + cost_model.calib.kernel_launch_seconds,
        {"perfect_build": cost_model.scan_seconds(n * build.tuple_bytes)},
    )
    probe_cost = cost_model.nonpartitioned_probe(
        probe.num_tuples,
        build.num_tuples,
        probe.tuple_bytes,
        accesses_per_probe=cost_model.calib.perfect_hash_accesses_per_probe,
        matches=float(rows.shape[0]),
        materialize=materialize,
        out_tuple_bytes=out_tuple_bytes,
    )
    return NonPartitionedResult(
        build.payload[build_rows],
        probe.payload[rows],
        build_cost,
        probe_cost,
    )
