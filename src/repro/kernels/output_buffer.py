"""Warp-level output buffering (§III-C).

Join results are produced irregularly (divergent chain walks, matches in
different cycles per lane).  Writing each match straight to device
memory would issue random, uncoalesced stores, so the paper buffers a
warp's results in shared memory: lanes compute write offsets with warp
prefix sums, and when the buffer fills the warp flushes it to a global
output array whose base offset is claimed with a single ``atomicAdd``.

This module simulates that mechanism faithfully enough to test its
invariants (no loss, no duplication, coalesced flush segments) and to
count flushes for the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import InvalidConfigError


@dataclass
class FlushRecord:
    """One coalesced flush: ``count`` values written at ``base``."""

    base: int
    count: int


@dataclass
class WarpOutputBuffer:
    """A shared-memory staging buffer for one warp's join output."""

    capacity: int
    _staged: list[int] = field(default_factory=list)
    _output: list[int] = field(default_factory=list)
    flushes: list[FlushRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise InvalidConfigError("output buffer capacity must be positive")

    def emit(self, lane_values: list[int]) -> None:
        """One probe step: each lane contributes zero or more matches.

        Lanes cooperatively compute offsets (prefix sum over the warp's
        match counts) and store; anything past the buffer's capacity
        triggers a flush and is then staged (§III-C: "store any
        outstanding output that did not fit on the buffer").
        """
        for value in lane_values:
            if len(self._staged) == self.capacity:
                self.flush()
            self._staged.append(value)

    def flush(self) -> None:
        """Claim a global base offset with one atomicAdd and copy the
        staged values out contiguously."""
        if not self._staged:
            return
        base = len(self._output)
        self.flushes.append(FlushRecord(base=base, count=len(self._staged)))
        self._output.extend(self._staged)
        self._staged.clear()

    def finish(self) -> np.ndarray:
        """Final flush; returns everything written in output order."""
        self.flush()
        return np.asarray(self._output, dtype=np.int64)

    @property
    def flush_count(self) -> int:
        return len(self.flushes)


def expected_flushes(total_matches: int, buffer_capacity: int) -> int:
    """Number of atomicAdd-claimed flushes a warp performs for
    ``total_matches`` buffered values."""
    if buffer_capacity <= 0:
        raise InvalidConfigError("buffer capacity must be positive")
    if total_matches == 0:
        return 0
    return -(-total_matches // buffer_capacity)
