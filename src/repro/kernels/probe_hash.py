"""Probe phase: chain-walking lookups against co-partition tables (§III-C).

Every probe tuple hashes into its co-partition's table and follows the
chain, comparing keys; matches emit ``(build_payload, probe_payload)``
pairs through the warp output buffer.  The walk is vectorized as a
frontier iteration: all live probe cursors advance one chain node per
step, which preserves the per-tuple visit counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidConfigError
from repro.gpusim.atomics import NIL
from repro.gpusim.cost import CoPartitionStats, GpuCostModel, KernelCost
from repro.kernels.build_hash import CoPartitionHashTables
from repro.kernels.buckets import PartitionedRelation


@dataclass
class ProbeResult:
    """Join output plus the execution statistics the cost model consumed."""

    build_payloads: np.ndarray
    probe_payloads: np.ndarray
    chain_visits: int
    stats: CoPartitionStats
    cost: KernelCost

    @property
    def matches(self) -> int:
        return int(self.build_payloads.shape[0])

    def pairs(self) -> np.ndarray:
        """``(matches, 2)`` array sorted for comparison against oracles."""
        out = np.stack([self.build_payloads, self.probe_payloads], axis=1)
        return out[np.lexsort((out[:, 1], out[:, 0]))]


def probe_copartitions(
    tables: CoPartitionHashTables,
    probe: PartitionedRelation,
    *,
    elements_per_block: int,
    threads_per_block: int,
    cost_model: GpuCostModel,
    use_shared_memory: bool = True,
    materialize: bool = False,
    out_tuple_bytes: float = 8.0,
) -> ProbeResult:
    """Probe every co-partition and collect matches.

    ``probe`` must be partitioned with the same radix bits as the build
    side (the co-partitioning invariant: all matches of partition ``p``
    live in the build's partition ``p``).
    """
    build = tables.build
    if probe.radix_bits != build.radix_bits:
        raise InvalidConfigError(
            f"co-partitioning mismatch: build has {build.radix_bits} radix "
            f"bits, probe has {probe.radix_bits}"
        )

    probe_sizes = probe.partition_sizes()
    partition_ids = np.repeat(np.arange(probe.fanout, dtype=np.int64), probe_sizes)
    cursors = tables.heads[tables.global_slot(partition_ids, probe.keys)]

    build_hits: list[np.ndarray] = []
    probe_hits: list[np.ndarray] = []
    visits = 0

    live = np.nonzero(cursors != NIL)[0]
    cursors = cursors[live]
    while live.size:
        visits += int(live.size)
        hit = build.keys[cursors] == probe.keys[live]
        if hit.any():
            build_hits.append(build.payloads[cursors[hit]])
            probe_hits.append(probe.payloads[live[hit]])
        cursors = tables.next[cursors]
        alive = cursors != NIL
        live = live[alive]
        cursors = cursors[alive]

    build_payloads = (
        np.concatenate(build_hits) if build_hits else np.empty(0, dtype=np.int64)
    )
    probe_payloads = (
        np.concatenate(probe_hits) if probe_hits else np.empty(0, dtype=np.int64)
    )

    matches = CoPartitionStats.split_matches(
        build.partition_sizes(), probe_sizes, float(build_payloads.shape[0])
    )
    stats = CoPartitionStats(
        build_sizes=build.partition_sizes(),
        probe_sizes=probe_sizes,
        matches=matches,
    )
    cost = cost_model.join_copartitions_hash(
        stats,
        build.tuple_bytes,
        ht_slots=tables.nslots,
        elements_per_block=elements_per_block,
        threads_per_block=threads_per_block,
        use_shared_memory=use_shared_memory,
        materialize=materialize,
        out_tuple_bytes=out_tuple_bytes,
    )
    return ProbeResult(
        build_payloads=build_payloads,
        probe_payloads=probe_payloads,
        chain_visits=visits,
        stats=stats,
        cost=cost,
    )
