"""Ballot-based nested-loop probe (Listing 1, §III-B).

The build side of a co-partition sits contiguously in shared memory.
Each warp holds 32 probe tuples (one per lane) and scans the build side
32 elements at a time: every lane reads one build value, and for every
key bit *not* fixed by partitioning the warp executes one ``ballot``,
broadcasting that bit of all 32 build values as a bitmask.  Each lane
then AND-combines the ballots against its own probe key's bits, ending
with a 32-bit mask of matching build lanes — 32x32 comparisons for a
handful of ballot instructions and a single shared-memory read per lane.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidConfigError
from repro.gpusim.cost import CoPartitionStats, GpuCostModel, KernelCost
from repro.gpusim.warp import WARP_SIZE, ballot
from repro.kernels.buckets import PartitionedRelation
from repro.kernels.probe_hash import ProbeResult

#: Build value used to pad partial warp chunks; never equals a real key.
_PAD = np.int64(-1)


def ballot_match_masks(
    build_chunk: np.ndarray,
    probe_keys: np.ndarray,
    differing_bits: list[int],
) -> np.ndarray:
    """The Listing 1 inner loop for one 32-element build chunk.

    ``build_chunk`` holds exactly :data:`WARP_SIZE` values (padded with
    :data:`_PAD`); returns a ``uint32`` mask per probe key whose bit *l*
    is set iff build lane *l* matches that probe key on every bit in
    ``differing_bits``.
    """
    if build_chunk.shape[0] != WARP_SIZE:
        raise InvalidConfigError("build chunk must hold exactly one warp of values")
    masks = np.full(probe_keys.shape[0], 0xFFFFFFFF, dtype=np.uint32)
    valid = np.uint32(0)
    for lane in range(WARP_SIZE):
        if build_chunk[lane] != _PAD:
            valid |= np.uint32(1) << np.uint32(lane)
    for bit_index in diff_iter(differing_bits):
        bit = np.int64(1) << np.int64(bit_index)
        vote = ballot((build_chunk & bit) != 0)  # one ballot per bit
        probe_has_bit = (probe_keys & bit) != 0
        masks = np.where(probe_has_bit, masks & vote, masks & ~vote)
    return masks & valid


def diff_iter(differing_bits: list[int]):
    """Iterate the bit indexes that may differ inside a partition."""
    return tuple(differing_bits)


def nlj_copartitions(
    build: PartitionedRelation,
    probe: PartitionedRelation,
    *,
    key_bits: int,
    threads_per_block: int,
    cost_model: GpuCostModel,
    materialize: bool = False,
    out_tuple_bytes: float = 8.0,
) -> ProbeResult:
    """Ballot-NLJ every co-partition pair.

    ``key_bits`` is the width of the key domain; the bits below
    ``build.radix_bits`` are fixed by partitioning, so only
    ``key_bits - radix_bits`` ballots are needed per 32-element chunk
    (line 6 of Listing 1: "indexes of bits that may differ").
    """
    if probe.radix_bits != build.radix_bits:
        raise InvalidConfigError("co-partitioning mismatch between build and probe")
    differing = list(range(build.radix_bits, max(key_bits, build.radix_bits + 1)))

    build_hits: list[np.ndarray] = []
    probe_hits: list[np.ndarray] = []
    lane_index = np.arange(WARP_SIZE, dtype=np.uint32)

    for p in range(build.fanout):
        r_keys, r_payloads = build.partition(p)
        s_keys, s_payloads = probe.partition(p)
        if r_keys.shape[0] == 0 or s_keys.shape[0] == 0:
            continue
        for offset in range(0, r_keys.shape[0], WARP_SIZE):
            chunk = r_keys[offset : offset + WARP_SIZE]
            if chunk.shape[0] < WARP_SIZE:
                chunk = np.concatenate(
                    [chunk, np.full(WARP_SIZE - chunk.shape[0], _PAD, dtype=np.int64)]
                )
            masks = ballot_match_masks(chunk, s_keys, differing)
            hit_rows, hit_lanes = np.nonzero(
                (masks[:, None] >> lane_index[None, :]).astype(np.uint32) & np.uint32(1)
            )
            if hit_rows.size:
                build_hits.append(r_payloads[offset + hit_lanes])
                probe_hits.append(s_payloads[hit_rows])

    build_payloads = (
        np.concatenate(build_hits) if build_hits else np.empty(0, dtype=np.int64)
    )
    probe_payloads = (
        np.concatenate(probe_hits) if probe_hits else np.empty(0, dtype=np.int64)
    )

    build_sizes = build.partition_sizes()
    probe_sizes = probe.partition_sizes()
    matches = CoPartitionStats.split_matches(
        build_sizes, probe_sizes, float(build_payloads.shape[0])
    )
    stats = CoPartitionStats(
        build_sizes=build_sizes, probe_sizes=probe_sizes, matches=matches
    )
    cost: KernelCost = cost_model.join_copartitions_nlj(
        stats,
        build.tuple_bytes,
        differing_bits=len(differing),
        threads_per_block=threads_per_block,
        materialize=materialize,
        out_tuple_bytes=out_tuple_bytes,
    )
    return ProbeResult(
        build_payloads=build_payloads,
        probe_payloads=probe_payloads,
        chain_visits=0,
        stats=stats,
        cost=cost,
    )
