"""GPU radix partitioning (functional kernel + cost).

Implements the multi-pass radix partitioning of §III-A.  Each pass
refines every partition by the next group of key bits; the final layout
groups tuples by the combined low bits.  For the data structure itself
the passes are emulated with stable counting sorts (bit-exact with the
pass-by-pass result); the cost model charges every pass's device traffic,
per-partition metadata, and — under the partition-at-a-time work
assignment — the bucket-chain imbalance (§III-A's skew discussion).
"""

from __future__ import annotations

import numpy as np

from repro.data.relation import Relation
from repro.errors import InvalidConfigError
from repro.gpusim.cost import GpuCostModel, KernelCost
from repro.kernels.buckets import PartitionedRelation

#: Work-assignment granularities discussed in §III-A.
BUCKET_AT_A_TIME = "bucket"
PARTITION_AT_A_TIME = "partition"


def partition_pass_arrays(
    keys: np.ndarray,
    payloads: np.ndarray,
    bits: int,
    shift: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One stable partitioning pass on digit ``(key >> shift) & mask``.

    Returns the reordered ``(keys, payloads)`` and the per-digit offsets.
    Stability matches the GPU kernel's behaviour of appending tuples to
    their partition's current bucket in scan order.
    """
    if bits <= 0:
        raise InvalidConfigError("a partitioning pass needs bits >= 1")
    digit = (keys >> shift) & ((1 << bits) - 1)
    order = np.argsort(digit, kind="stable")
    histogram = np.bincount(digit, minlength=1 << bits)
    offsets = np.zeros((1 << bits) + 1, dtype=np.int64)
    np.cumsum(histogram, out=offsets[1:])
    return keys[order], payloads[order], offsets


def _combined_partition(
    keys: np.ndarray,
    payloads: np.ndarray,
    bits_per_pass: list[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All passes at once: group by the combined low bits.

    Pass *i* partitions on bit range ``[sum(bits[:i]), sum(bits[:i+1]))``;
    the hierarchy of stable passes is equivalent (verified by tests
    against :func:`partition_pass_arrays`) to a single stable sort on the
    partition id ``key & (fanout - 1)``.
    """
    total_bits = int(sum(bits_per_pass))
    fanout = 1 << total_bits
    pid = keys & (fanout - 1)
    order = np.argsort(pid, kind="stable")
    histogram = np.bincount(pid, minlength=fanout)
    offsets = np.zeros(fanout + 1, dtype=np.int64)
    np.cumsum(histogram, out=offsets[1:])
    return keys[order], payloads[order], offsets


def bucket_skew_imbalance(partition_sizes: np.ndarray, *, threshold: float = 4.0) -> float:
    """Residual load imbalance of the bucket-at-a-time assignment.

    Bucket-at-a-time largely absorbs skew (§III-A), but tuples funnelling
    into very hot partitions still serialize on those partitions' bucket
    metadata and leave the final pass's chain decomposition with extra
    work.  Modelled as a mild penalty proportional to the fraction of
    tuples living in partitions more than ``threshold``x the average.
    """
    sizes = np.asarray(partition_sizes, dtype=np.float64)
    total = float(sizes.sum())
    if total <= 0:
        return 1.0
    mean = total / sizes.shape[0]
    heavy_fraction = float(sizes[sizes > threshold * mean].sum()) / total
    return 1.0 + 0.5 * heavy_fraction


def gpu_radix_partition(
    relation: Relation,
    bits_per_pass: list[int],
    cost_model: GpuCostModel,
    *,
    bucket_capacity: int = 1024,
    assignment: str = BUCKET_AT_A_TIME,
) -> tuple[PartitionedRelation, KernelCost]:
    """Partition ``relation`` into ``2**sum(bits_per_pass)`` partitions.

    ``assignment`` selects the work-assignment granularity for passes
    after the first: the paper opts for bucket-at-a-time because
    partition-at-a-time degrades under skew (the longest bucket chain
    bounds the pass) even though it is slightly better for uniform data.
    """
    if not bits_per_pass:
        raise InvalidConfigError("at least one partitioning pass is required")
    if assignment not in (BUCKET_AT_A_TIME, PARTITION_AT_A_TIME):
        raise InvalidConfigError(f"unknown work assignment: {assignment!r}")

    keys, payloads, offsets = _combined_partition(
        relation.key, relation.payload, bits_per_pass
    )
    partitioned = PartitionedRelation(
        keys=keys,
        payloads=payloads,
        offsets=offsets,
        radix_bits=int(sum(bits_per_pass)),
        bucket_capacity=bucket_capacity,
        tuple_bytes=relation.tuple_bytes,
    )

    if assignment == PARTITION_AT_A_TIME:
        imbalance = partitioned.chain_imbalance()
    else:
        # Bucket-at-a-time pays a small constant for re-initializing
        # per-bucket state and never suffers chain imbalance (§III-A);
        # only a residual hot-partition penalty remains under skew.
        imbalance = (1.05 if len(bits_per_pass) > 1 else 1.0) * bucket_skew_imbalance(
            partitioned.partition_sizes()
        )

    cost = cost_model.multi_pass_partition(
        relation.num_tuples,
        relation.tuple_bytes,
        bits_per_pass,
        imbalance=imbalance,
    )
    return partitioned, cost


def estimate_partition_cost(
    n_tuples: float,
    tuple_bytes: float,
    bits_per_pass: list[int],
    cost_model: GpuCostModel,
    *,
    imbalance: float = 1.0,
) -> KernelCost:
    """Analytic twin of :func:`gpu_radix_partition`'s cost (same formulas,
    fed with a workload spec instead of data).  ``imbalance`` carries the
    skew penalty (see :func:`bucket_skew_imbalance`); the bucket-at-a-time
    multi-pass constant composes with it exactly as in the functional path."""
    adjusted = imbalance * (1.05 if len(bits_per_pass) > 1 else 1.0)
    return cost_model.multi_pass_partition(
        n_tuples, tuple_bytes, bits_per_pass, imbalance=adjusted
    )


def derive_bits_per_pass(
    total_bits: int,
    *,
    max_bits_per_pass: int = 8,
) -> list[int]:
    """Split a total fanout into passes of at most ``max_bits_per_pass``.

    Shared-memory metadata caps per-pass fanout at "a few thousand
    partitions" (§III-A); 8 bits per pass (256-way) is the conservative
    default the evaluation uses, giving two passes for the standard
    2^15-partition configuration.
    """
    if total_bits <= 0:
        raise InvalidConfigError("total_bits must be positive")
    if max_bits_per_pass <= 0:
        raise InvalidConfigError("max_bits_per_pass must be positive")
    passes, remainder = divmod(total_bits, max_bits_per_pass)
    bits = [max_bits_per_pass] * passes
    if remainder:
        bits.append(remainder)
    return bits
