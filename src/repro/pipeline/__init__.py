"""Discrete-event pipeline simulation (CUDA streams/events semantics)."""

from repro.pipeline.engine import PipelineEngine, double_buffered_stream
from repro.pipeline.tasks import (
    CPU,
    D2H,
    GPU,
    H2D,
    ResourcePool,
    Schedule,
    ScheduledTask,
    Task,
)

__all__ = [
    "CPU",
    "D2H",
    "GPU",
    "H2D",
    "PipelineEngine",
    "ResourcePool",
    "Schedule",
    "ScheduledTask",
    "Task",
    "double_buffered_stream",
]
