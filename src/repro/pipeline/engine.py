"""Discrete-event simulation of stream pipelines.

Semantics (mirroring CUDA streams + events):

* every resource executes its tasks **in submission order** (FIFO);
* a task starts when its resource is free *and* all its dependencies
  have finished (and not before its ``available_at`` release time);
* durations are fixed when the task is created.

The engine computes start/finish times for every task and the resulting
makespan.  This is what turns per-phase kernel/transfer costs into the
overlapped end-to-end times of the paper's Figures 11–13: "the total
execution time is the transfer time for the data plus the GPU execution
time for the last chunk" (§IV-A) falls out of the simulation rather than
being hard-coded.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import SchedulingError
from repro.pipeline.tasks import ResourcePool, Schedule, ScheduledTask, Task


class PipelineEngine:
    """Builds and simulates a task graph.

    ``resources`` optionally maps resource names to lane counts (or is a
    collection of :class:`ResourcePool`); unnamed resources default to a
    single lane, i.e. one serially-executing queue.
    """

    def __init__(
        self,
        resources: dict[str, int] | list[ResourcePool] | None = None,
    ) -> None:
        self._tasks: list[Task] = []
        self._by_name: dict[str, Task] = {}
        self._lanes: dict[str, int] = {}
        if resources:
            pools = (
                [ResourcePool(name, lanes) for name, lanes in resources.items()]
                if isinstance(resources, dict)
                else list(resources)
            )
            for pool in pools:
                self._lanes[pool.name] = pool.lanes

    def lanes_of(self, resource: str) -> int:
        return self._lanes.get(resource, 1)

    # ------------------------------------------------------------------
    def add(self, task: Task) -> Task:
        """Append a task to its resource's queue."""
        if task.name in self._by_name:
            raise SchedulingError(f"duplicate task name: {task.name!r}")
        if task.duration < 0:
            raise SchedulingError(f"negative duration for task {task.name!r}")
        if task.available_at < 0:
            raise SchedulingError(f"negative available_at for task {task.name!r}")
        self._tasks.append(task)
        self._by_name[task.name] = task
        return task

    def add_task(
        self,
        name: str,
        resource: str,
        duration: float,
        deps: tuple[str, ...] | list[str] = (),
        phase: str | None = None,
    ) -> Task:
        """Convenience wrapper around :meth:`add`."""
        return self.add(
            Task(
                name=name,
                resource=resource,
                duration=duration,
                deps=tuple(deps),
                phase=phase,
            )
        )

    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks)

    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        """Simulate the graph and return the schedule.

        Repeatedly starts the earliest-ready head-of-queue task.  If no
        queue head is ready while tasks remain, the dependency structure
        is cyclic (or references an unknown task) and a
        :class:`SchedulingError` is raised.
        """
        for task in self._tasks:
            for dep in task.deps:
                if dep not in self._by_name:
                    raise SchedulingError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )

        queues: dict[str, list[Task]] = defaultdict(list)
        for task in self._tasks:
            queues[task.resource].append(task)
        cursor = {resource: 0 for resource in queues}
        # One free-time per lane; a pool's next task is dispatched onto
        # whichever lane frees first (round-robin copy engines/streams).
        lane_free = {
            resource: [0.0] * self.lanes_of(resource) for resource in queues
        }

        schedule = Schedule(
            lanes={resource: self.lanes_of(resource) for resource in queues}
        )
        remaining = len(self._tasks)
        while remaining:
            best_name = None
            best_start = None
            best_lane = 0
            for resource, queue in queues.items():
                position = cursor[resource]
                if position >= len(queue):
                    continue
                task = queue[position]
                if any(dep not in schedule.tasks for dep in task.deps):
                    continue
                dep_ready = max(
                    (schedule.tasks[dep].finish for dep in task.deps), default=0.0
                )
                lane = min(
                    range(len(lane_free[resource])),
                    key=lane_free[resource].__getitem__,
                )
                start = max(lane_free[resource][lane], dep_ready, task.available_at)
                if best_start is None or start < best_start:
                    best_start, best_name, best_lane = start, task.name, lane
            if best_name is None:
                pending = [
                    queue[cursor[resource]].name
                    for resource, queue in queues.items()
                    if cursor[resource] < len(queue)
                ]
                raise SchedulingError(
                    f"pipeline deadlock: queue heads {pending} all blocked "
                    "(cyclic dependencies across FIFO queues?)"
                )
            task = self._by_name[best_name]
            finish = best_start + task.duration
            schedule.tasks[task.name] = ScheduledTask(
                task, best_start, finish, lane=best_lane
            )
            lane_free[task.resource][best_lane] = finish
            cursor[task.resource] += 1
            remaining -= 1
        return schedule


def double_buffered_stream(
    engine: PipelineEngine,
    *,
    prefix: str,
    chunks: int,
    transfer_seconds,
    compute_seconds,
    buffers: int = 2,
    transfer_resource: str = "h2d",
    compute_resource: str = "gpu",
    output_seconds=None,
    output_resource: str = "d2h",
    first_transfer_dep: str | None = None,
) -> tuple[str, str]:
    """Emit the paper's §IV-A double-buffered pipeline into ``engine``.

    For each chunk ``i``: a transfer task, a compute task depending on it,
    and (optionally) an output copy-back task.  Buffer recycling adds a
    dependency of transfer ``i`` on compute ``i - buffers`` and, when
    output is enabled, of compute ``i`` on output ``i - buffers``
    (the §IV-C result double-buffering).

    ``transfer_seconds``/``compute_seconds``/``output_seconds`` are either
    scalars or callables of the chunk index.  Returns the names of the
    last transfer and last compute task.
    """

    def _dur(value, index: int) -> float:
        return float(value(index)) if callable(value) else float(value)

    last_transfer = ""
    last_compute = ""
    for index in range(chunks):
        transfer = f"{prefix}.h2d[{index}]"
        compute = f"{prefix}.join[{index}]"
        deps: list[str] = []
        if first_transfer_dep and index == 0:
            deps.append(first_transfer_dep)
        if index >= buffers:
            deps.append(f"{prefix}.join[{index - buffers}]")
        engine.add_task(transfer, transfer_resource, _dur(transfer_seconds, index), deps)
        compute_deps = [transfer]
        if output_seconds is not None and index >= buffers:
            compute_deps.append(f"{prefix}.d2h[{index - buffers}]")
        engine.add_task(compute, compute_resource, _dur(compute_seconds, index), compute_deps)
        if output_seconds is not None:
            engine.add_task(
                f"{prefix}.d2h[{index}]",
                output_resource,
                _dur(output_seconds, index),
                [compute],
            )
        last_transfer, last_compute = transfer, compute
    return last_transfer, last_compute
