"""Discrete-event simulation of stream pipelines.

Semantics (mirroring CUDA streams + events):

* every resource executes its tasks **in submission order** (FIFO);
* a task starts when its resource is free *and* all its dependencies
  have finished (and not before its ``available_at`` release time);
* durations are fixed when the task is created.

The engine computes start/finish times for every task and the resulting
makespan.  This is what turns per-phase kernel/transfer costs into the
overlapped end-to-end times of the paper's Figures 11–13: "the total
execution time is the transfer time for the data plus the GPU execution
time for the last chunk" (§IV-A) falls out of the simulation rather than
being hard-coded.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.errors import SchedulingError
from repro.pipeline.tasks import ResourcePool, Schedule, ScheduledTask, Task


class PipelineEngine:
    """Builds and simulates a task graph.

    ``resources`` optionally maps resource names to lane counts (or is a
    collection of :class:`ResourcePool`); unnamed resources default to a
    single lane, i.e. one serially-executing queue.

    All task durations, release times and schedule timestamps are
    **simulated seconds** on the modelled device, never wall clock.
    Simulation is deterministic: the same submission order, durations,
    dependencies and lane counts always yield the same schedule —
    ties are broken by submission order and lowest lane index, and no
    unordered-container iteration or randomness is involved.  The three
    entry points (:meth:`run`, :meth:`run_reference`, :meth:`extend`)
    are pinned to identical schedules by the pipeline test suite.
    """

    def __init__(
        self,
        resources: dict[str, int] | list[ResourcePool] | None = None,
        *,
        device: int = 0,
    ) -> None:
        if device < 0:
            raise SchedulingError(f"engine device must be >= 0, got {device}")
        #: Which GPU of a sharded fleet this engine simulates.  Every
        #: submitted task must carry the same tag — a task routed to the
        #: wrong device's engine is a placement bug, not a schedulable
        #: input.  Single-device code never sets it (both default to 0).
        self.device = device
        self._tasks: list[Task] = []
        self._by_name: dict[str, Task] = {}
        self._lanes: dict[str, int] = {}
        #: Tasks dropped by :meth:`compact` — once nonzero the engine
        #: only supports :meth:`extend`, never a full re-simulation.
        self._retired = 0
        #: Set by :meth:`retire`: the device left the fleet, so no new
        #: tasks may be submitted (the schedule and lane state survive
        #: for reporting and compaction of in-flight work).
        self._device_retired = False
        #: Set by :meth:`crash`: the device failed ungracefully.  Like
        #: retirement this seals the engine against new tasks, but the
        #: unfinished tail of the schedule was invalidated too.
        self._crashed = False
        if resources:
            pools = (
                # A bare name->lanes dict describes THIS engine's pools,
                # so they inherit its device tag; explicit ResourcePool
                # lists must already carry the right device.
                [
                    ResourcePool(name, lanes, device=device)
                    for name, lanes in resources.items()
                ]
                if isinstance(resources, dict)
                else list(resources)
            )
            for pool in pools:
                if pool.device != device:
                    raise SchedulingError(
                        f"resource pool {pool.name!r} belongs to device "
                        f"{pool.device} but the engine simulates device "
                        f"{device}"
                    )
                self._lanes[pool.name] = pool.lanes

    def lanes_of(self, resource: str) -> int:
        return self._lanes.get(resource, 1)

    # ------------------------------------------------------------------
    def add(self, task: Task) -> Task:
        """Append a task to its resource's queue."""
        if self._device_retired:
            raise SchedulingError(
                f"device {self.device} is retired: task {task.name!r} "
                "cannot be placed on an engine that left the fleet"
            )
        if task.name in self._by_name:
            raise SchedulingError(f"duplicate task name: {task.name!r}")
        if task.duration < 0:
            raise SchedulingError(f"negative duration for task {task.name!r}")
        if task.available_at < 0:
            raise SchedulingError(f"negative available_at for task {task.name!r}")
        if task.device != self.device:
            raise SchedulingError(
                f"task {task.name!r} is placed on device {task.device} but "
                f"this engine simulates device {self.device}"
            )
        self._tasks.append(task)
        self._by_name[task.name] = task
        return task

    def add_task(
        self,
        name: str,
        resource: str,
        duration: float,
        deps: tuple[str, ...] | list[str] = (),
        phase: str | None = None,
    ) -> Task:
        """Convenience wrapper around :meth:`add`."""
        return self.add(
            Task(
                name=name,
                resource=resource,
                duration=duration,
                deps=tuple(deps),
                phase=phase,
            )
        )

    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks)

    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        """Simulate the graph and return the schedule (event-driven).

        A task is *dispatchable* once it reaches the head of its
        resource's FIFO queue and all its dependencies have finished —
        at that point its start time is final: every earlier task of the
        same queue has already been placed (fixing the lane-free times)
        and dependency finishes never change once recorded.  The
        simulator therefore tracks dependency indegrees, keeps one heap
        of free times per resource pool's lanes, and drains an event
        calendar of dispatchable tasks ordered by start time — placing
        each task exactly once, O((T + E) log T) overall, instead of
        rescanning every queue head per decision as the original
        scanner (retained as :meth:`run_reference`) did.

        The schedule is identical to :meth:`run_reference`'s, including
        lane assignment (ties go to the lowest lane index) and deadlock
        detection: if no queue head is dispatchable while tasks remain,
        the dependency structure is cyclic across the FIFO queues (or
        references an unknown task) and a :class:`SchedulingError` is
        raised.
        """
        self._check_not_compacted("run()")
        for task in self._tasks:
            for dep in task.deps:
                if dep not in self._by_name:
                    raise SchedulingError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )

        queues: dict[str, list[Task]] = defaultdict(list)
        position: dict[str, int] = {}
        for task in self._tasks:
            position[task.name] = len(queues[task.resource])
            queues[task.resource].append(task)
        cursor = {resource: 0 for resource in queues}
        # One free-time per lane, as a heap of (free_at, lane_index): a
        # pool's next task is dispatched onto whichever lane frees first
        # (round-robin copy engines/streams), lowest index on ties.
        lane_free = {
            resource: [(0.0, lane) for lane in range(self.lanes_of(resource))]
            for resource in queues
        }
        finish_at: dict[str, float] = {}
        indegree: dict[str, int] = {}
        dependents: dict[str, list[str]] = defaultdict(list)
        for task in self._tasks:
            unique_deps = set(task.deps)
            indegree[task.name] = len(unique_deps)
            for dep in unique_deps:
                dependents[dep].append(task.name)

        schedule = Schedule(
            lanes={resource: self.lanes_of(resource) for resource in queues}
        )

        # Event calendar: dispatchable tasks keyed by their (final)
        # start time; the sequence number makes heap entries total-ordered
        # and preserves submission order among equal start times.
        calendar: list[tuple[float, int, str]] = []
        queued: set[str] = set()
        sequence = 0

        def maybe_push(task: Task) -> None:
            nonlocal sequence
            if (
                task.name in queued
                or indegree[task.name] > 0
                or cursor[task.resource] != position[task.name]
            ):
                return
            dep_ready = max(
                (finish_at[dep] for dep in task.deps), default=0.0
            )
            start = max(lane_free[task.resource][0][0], dep_ready, task.available_at)
            heapq.heappush(calendar, (start, sequence, task.name))
            queued.add(task.name)
            sequence += 1

        for queue in queues.values():
            maybe_push(queue[0])

        remaining = len(self._tasks)
        while remaining:
            if not calendar:
                pending = [
                    queue[cursor[resource]].name
                    for resource, queue in queues.items()
                    if cursor[resource] < len(queue)
                ]
                raise SchedulingError(
                    f"pipeline deadlock: queue heads {pending} all blocked "
                    "(cyclic dependencies across FIFO queues?)"
                )
            start, _, name = heapq.heappop(calendar)
            task = self._by_name[name]
            _, lane = heapq.heappop(lane_free[task.resource])
            finish = start + task.duration
            schedule.tasks[name] = ScheduledTask(task, start, finish, lane=lane)
            finish_at[name] = finish
            heapq.heappush(lane_free[task.resource], (finish, lane))
            cursor[task.resource] += 1
            remaining -= 1
            # Two kinds of tasks may have become dispatchable: the next
            # task of this queue, and dependents that were only waiting
            # on this finish.  (A dependent still behind its queue head
            # is woken later, by its own queue's cursor reaching it.)
            queue = queues[task.resource]
            if cursor[task.resource] < len(queue):
                maybe_push(queue[cursor[task.resource]])
            for child in dependents[name]:
                indegree[child] -= 1
                maybe_push(self._by_name[child])
        schedule.lane_state = {
            resource: sorted(heap) for resource, heap in lane_free.items()
        }
        return schedule

    # ------------------------------------------------------------------
    def extend(
        self,
        schedule: Schedule,
        new_tasks: list[Task],
        *,
        in_place: bool = False,
    ) -> Schedule:
        """Incrementally place ``new_tasks`` on top of ``schedule``.

        ``schedule`` must be the result of :meth:`run` (or a previous
        :meth:`extend`) over *every* task currently in the engine; the
        new tasks are appended to their resources' FIFO queues and the
        combined schedule is returned, **without re-simulating the
        already-placed graph**.  This is what makes per-arrival
        re-scheduling in the serving layer cheap: one admission wave
        costs O(new tasks), not O(all tasks admitted so far).

        Equivalence (pinned by ``tests/pipeline/test_engine_extend.py``
        and kept honest by retaining :meth:`run` as the oracle): since
        tasks already in the engine occupy earlier positions of every
        FIFO queue and never depend on later submissions, their start
        times, finishes and lane assignments are unaffected by the new
        tasks — so carrying over the end-of-run per-pool lane heaps
        (:attr:`~repro.pipeline.tasks.Schedule.lane_state`) and the
        recorded finish times reproduces, bit-for-bit, the schedule a
        full :meth:`run` over old + new tasks would compute.

        New tasks may depend on already-scheduled tasks or on each
        other, carry ``available_at`` release times (simulated seconds,
        e.g. the admission clock of a newly admitted query), and may
        introduce new resources (defaulting to one lane).  The engine's
        task list is extended, so a subsequent full :meth:`run` — or
        another :meth:`extend` — covers old and new tasks alike.

        By default the input ``schedule`` is left untouched and a
        combined copy is returned — copying the accumulated task dict
        costs O(all tasks so far) per wave.  Callers that retire the
        input schedule anyway (the serve scheduler's online mode) pass
        ``in_place=True`` to mutate and return ``schedule`` itself,
        making a wave genuinely O(new tasks).

        Raises :class:`SchedulingError` when ``schedule`` is a merged
        multi-device reporting view
        (:attr:`~repro.pipeline.tasks.Schedule.is_merged_view`), when
        ``schedule`` does not
        cover the engine's current tasks, when a new task duplicates a
        name / has negative duration or ``available_at`` / depends on
        an unknown task, when lane counts changed since ``schedule``
        was computed, or when the new tasks deadlock.  A rejected
        batch — including a deadlocked one — rolls back: the engine
        and, with ``in_place=True``, the schedule are left exactly as
        they were, still extendable.
        """
        if schedule.is_merged_view:
            raise SchedulingError(
                "cannot extend a merged reporting view: it unions "
                "per-device schedules whose same-named pools are distinct "
                "physical resources; extend the owning device's schedule "
                "instead"
            )
        if len(schedule.tasks) != len(self._tasks):
            raise SchedulingError(
                f"stale schedule: covers {len(schedule.tasks)} tasks but "
                f"the engine holds {len(self._tasks)}; extend() needs the "
                "schedule of exactly the tasks already submitted"
            )
        if new_tasks and self._device_retired:
            raise SchedulingError(
                f"device {self.device} is retired: "
                f"{len(new_tasks)} new task(s) cannot be placed on an "
                "engine that left the fleet"
            )
        new_names = {task.name for task in new_tasks}
        if len(new_names) != len(new_tasks):
            raise SchedulingError("duplicate task names in new_tasks")
        # Validate everything up front so a bad batch leaves the engine
        # (and the caller's schedule) untouched.
        for task in new_tasks:
            if task.name in self._by_name:
                raise SchedulingError(f"duplicate task name: {task.name!r}")
            if task.duration < 0:
                raise SchedulingError(
                    f"negative duration for task {task.name!r}"
                )
            if task.available_at < 0:
                raise SchedulingError(
                    f"negative available_at for task {task.name!r}"
                )
            if task.device != self.device:
                raise SchedulingError(
                    f"task {task.name!r} is placed on device {task.device} "
                    f"but this engine simulates device {self.device}"
                )
            for dep in task.deps:
                if dep not in self._by_name and dep not in new_names:
                    hint = (
                        " (or one retired by compact()?)"
                        if self._retired
                        else ""
                    )
                    raise SchedulingError(
                        f"task {task.name!r} depends on unknown task "
                        f"{dep!r}{hint}"
                    )
        for resource, lanes in schedule.lanes.items():
            if lanes != self.lanes_of(resource):
                raise SchedulingError(
                    f"resource {resource!r} changed from {lanes} to "
                    f"{self.lanes_of(resource)} lanes since the schedule "
                    "was computed; lane counts must be declared up front"
                )
        for task in new_tasks:
            self.add(task)  # validates name collisions and durations

        queues: dict[str, list[Task]] = defaultdict(list)
        position: dict[str, int] = {}
        for task in new_tasks:
            position[task.name] = len(queues[task.resource])
            queues[task.resource].append(task)
        cursor = {resource: 0 for resource in queues}
        # Carried-over lane heaps: each pool resumes from the free
        # times the previous run left behind (sorted lists are valid
        # heaps, so pop order matches an uninterrupted simulation).
        lane_free: dict[str, list[tuple[float, int]]] = {}
        for resource in queues:
            state = schedule.lane_state.get(resource)
            if state is None:
                state = self._reconstruct_lane_state(schedule, resource)
            lane_free[resource] = list(state)

        old = schedule.tasks
        finish_at: dict[str, float] = {}

        def dep_finish(dep: str) -> float:
            got = finish_at.get(dep)
            return got if got is not None else old[dep].finish

        indegree: dict[str, int] = {}
        dependents: dict[str, list[str]] = defaultdict(list)
        for task in new_tasks:
            unresolved = {dep for dep in task.deps if dep in new_names}
            indegree[task.name] = len(unresolved)
            for dep in unresolved:
                dependents[dep].append(task.name)

        if in_place:
            combined = schedule
        else:
            combined = Schedule(
                tasks=dict(schedule.tasks),
                lanes=dict(schedule.lanes),
                lane_state=dict(schedule.lane_state),
            )
        added_lanes: list[str] = []
        for resource in queues:
            if resource not in combined.lanes:
                combined.lanes[resource] = self.lanes_of(resource)
                added_lanes.append(resource)

        calendar: list[tuple[float, int, str]] = []
        queued: set[str] = set()
        sequence = 0

        def maybe_push(task: Task) -> None:
            nonlocal sequence
            if (
                task.name in queued
                or indegree[task.name] > 0
                or cursor[task.resource] != position[task.name]
            ):
                return
            dep_ready = max(
                (dep_finish(dep) for dep in task.deps), default=0.0
            )
            start = max(lane_free[task.resource][0][0], dep_ready, task.available_at)
            heapq.heappush(calendar, (start, sequence, task.name))
            queued.add(task.name)
            sequence += 1

        for queue in queues.values():
            maybe_push(queue[0])

        remaining = len(new_tasks)
        while remaining:
            if not calendar:
                pending = [
                    queue[cursor[resource]].name
                    for resource, queue in queues.items()
                    if cursor[resource] < len(queue)
                ]
                # Roll back: a deadlocked batch must leave the engine
                # (and, in place, the schedule) extendable, like every
                # other rejected batch.
                del self._tasks[len(self._tasks) - len(new_tasks):]
                for task in new_tasks:
                    del self._by_name[task.name]
                    combined.tasks.pop(task.name, None)
                for resource in added_lanes:
                    del combined.lanes[resource]
                raise SchedulingError(
                    f"pipeline deadlock: queue heads {pending} all blocked "
                    "(cyclic dependencies across FIFO queues?)"
                )
            start, _, name = heapq.heappop(calendar)
            task = self._by_name[name]
            _, lane = heapq.heappop(lane_free[task.resource])
            finish = start + task.duration
            combined.tasks[name] = ScheduledTask(task, start, finish, lane=lane)
            finish_at[name] = finish
            heapq.heappush(lane_free[task.resource], (finish, lane))
            cursor[task.resource] += 1
            remaining -= 1
            queue = queues[task.resource]
            if cursor[task.resource] < len(queue):
                maybe_push(queue[cursor[task.resource]])
            for child in dependents[name]:
                indegree[child] -= 1
                maybe_push(self._by_name[child])
        for resource, heap in lane_free.items():
            combined.lane_state[resource] = sorted(heap)
        return combined

    def compact(self, schedule: Schedule, horizon: float) -> int:
        """Retire tasks finished at or before ``horizon`` from both
        ``schedule`` and this engine's books, in lockstep.

        This is the engine half of steady-state streaming: without it a
        long-lived serving engine accumulates every task ever admitted
        (the ``_tasks`` list and name index grow O(total arrivals));
        with it, retained state is O(in-flight + one compaction
        interval).  ``schedule`` must be this engine's current schedule
        (the result of :meth:`run` or :meth:`extend` over exactly the
        engine's tasks) and is compacted **in place**
        (:meth:`~repro.pipeline.tasks.Schedule.compact`), so a
        subsequent :meth:`extend` still sees schedule and engine in
        agreement.  Returns the number of tasks retired.

        Lane heaps (``lane_state``) and recorded finishes of retained
        tasks are untouched, so extensions after a compaction are
        **bit-identical** to the uncompacted run — pinned by
        ``tests/pipeline/test_compaction.py`` on randomized arrival
        waves.  The contract is the caller's horizon choice: new tasks
        must never depend on a retired task (the serving layer only
        retires queries whose dependents all finished; a violation
        raises ``unknown task`` at the next ``extend``).  A compacted
        engine refuses :meth:`run` / :meth:`run_reference` — the full
        graph no longer exists to re-simulate.
        """
        if schedule.is_merged_view:
            raise SchedulingError(
                "cannot compact a merged reporting view: compact each "
                "owning device's schedule through its own engine"
            )
        if len(schedule.tasks) != len(self._tasks):
            raise SchedulingError(
                f"stale schedule: covers {len(schedule.tasks)} tasks but "
                f"the engine holds {len(self._tasks)}; compact() needs the "
                "schedule of exactly the tasks currently submitted"
            )
        retired = {
            name
            for name, item in schedule.tasks.items()
            if item.finish <= horizon
        }
        if not retired:
            return 0
        schedule.compact(horizon)
        self._tasks = [task for task in self._tasks if task.name not in retired]
        for name in retired:
            del self._by_name[name]
        self._retired += len(retired)
        return len(retired)

    def crash(self, schedule: Schedule, at: float) -> list[str]:
        """Ungraceful device failure at simulated time ``at``.

        Unlike :meth:`retire` — a drain that lets in-flight work finish
        — a crash **invalidates** every task that had not finished by
        ``at``: those tasks are deleted from ``schedule`` and from the
        engine's books in lockstep (so the stale-schedule checks of
        :meth:`compact` / :meth:`extend` stay consistent), and their
        names are returned, sorted, for the caller's recovery
        bookkeeping.  Tasks that *did* finish by ``at`` stay in the
        schedule — wasted-but-real history of queries whose later tasks
        were lost.  Invalidated work is **not** folded into
        ``retired_makespan``: the schedule's makespan only ever reflects
        work that completed.

        The engine is sealed exactly like retirement (new
        :meth:`add` / non-empty :meth:`extend` raise) and additionally
        refuses :meth:`run` / :meth:`run_reference` — a crashed device
        has no future to simulate.  :meth:`compact` keeps working on
        the surviving history, so a streaming run's periodic sweeps
        need not special-case crashed devices.  ``schedule`` must
        be this engine's own current schedule, not a merged reporting
        view.  Idempotent in effect: a second crash on an already-sealed
        engine just invalidates whatever (nothing) remains unfinished.
        """
        if schedule.is_merged_view:
            raise SchedulingError(
                "cannot crash a merged reporting view: crash the owning "
                "device's schedule through its own engine"
            )
        if len(schedule.tasks) != len(self._tasks):
            raise SchedulingError(
                f"stale schedule: covers {len(schedule.tasks)} tasks but "
                f"the engine holds {len(self._tasks)}; crash() needs the "
                "schedule of exactly the tasks currently submitted"
            )
        lost = sorted(
            name
            for name, item in schedule.tasks.items()
            if item.finish > at
        )
        for name in lost:
            del schedule.tasks[name]
            del self._by_name[name]
        if lost:
            gone = set(lost)
            self._tasks = [t for t in self._tasks if t.name not in gone]
        self._crashed = True
        self._device_retired = True
        return lost

    @property
    def is_crashed(self) -> bool:
        """Has :meth:`crash` sealed this engine and voided its tail?"""
        return self._crashed

    @property
    def is_retired(self) -> bool:
        """Has :meth:`retire` sealed this engine against new tasks?"""
        return self._device_retired

    def retire(self) -> None:
        """Seal the engine: its device left the fleet.

        Device-tagged lanes *survive* retirement — the schedule, lane
        heaps and recorded finishes stay intact so in-flight queries
        drain normally, reports still merge this device's history, and
        :meth:`compact` keeps working on the drained tail.  What
        retirement forbids is **new work**: any subsequent :meth:`add`
        or non-empty :meth:`extend` raises
        :class:`~repro.errors.SchedulingError` naming the device, so a
        placement bug that routes a query onto a retired device fails
        loudly instead of silently resurrecting it.  Idempotent.
        """
        self._device_retired = True

    def _check_not_compacted(self, entry_point: str) -> None:
        if self._crashed:
            raise SchedulingError(
                f"cannot {entry_point} after crash(): device "
                f"{self.device} failed and its unfinished tasks were "
                "invalidated; the graph no longer exists to re-simulate"
            )
        if self._retired:
            raise SchedulingError(
                f"cannot {entry_point} after compact(): {self._retired} "
                "task(s) were retired, so the full graph no longer exists "
                "to re-simulate; keep using extend()"
            )

    def _reconstruct_lane_state(
        self, schedule: Schedule, resource: str
    ) -> list[tuple[float, int]]:
        """Per-lane free times of one pool, rebuilt from a schedule that
        did not record :attr:`~repro.pipeline.tasks.Schedule.lane_state`
        (e.g. one deserialized or hand-built by a test)."""
        free = [0.0] * self.lanes_of(resource)
        for item in schedule.tasks.values():
            if item.task.resource == resource and item.finish > free[item.lane]:
                free[item.lane] = item.finish
        return sorted((free_at, lane) for lane, free_at in enumerate(free))

    # ------------------------------------------------------------------
    def run_reference(self) -> Schedule:
        """The original all-queue-heads scanner, kept as the executable
        specification of :meth:`run`: repeatedly starts the earliest-
        ready head-of-queue task, rescanning every queue per decision.
        ``tests/pipeline/test_engine_reference.py`` asserts both produce
        identical schedules on randomized DAGs.
        """
        self._check_not_compacted("run_reference()")
        for task in self._tasks:
            for dep in task.deps:
                if dep not in self._by_name:
                    raise SchedulingError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )

        queues: dict[str, list[Task]] = defaultdict(list)
        for task in self._tasks:
            queues[task.resource].append(task)
        cursor = {resource: 0 for resource in queues}
        # One free-time per lane; a pool's next task is dispatched onto
        # whichever lane frees first (round-robin copy engines/streams).
        lane_free = {
            resource: [0.0] * self.lanes_of(resource) for resource in queues
        }

        schedule = Schedule(
            lanes={resource: self.lanes_of(resource) for resource in queues}
        )
        remaining = len(self._tasks)
        while remaining:
            best_name = None
            best_start = None
            best_lane = 0
            for resource, queue in queues.items():
                position = cursor[resource]
                if position >= len(queue):
                    continue
                task = queue[position]
                if any(dep not in schedule.tasks for dep in task.deps):
                    continue
                dep_ready = max(
                    (schedule.tasks[dep].finish for dep in task.deps), default=0.0
                )
                lane = min(
                    range(len(lane_free[resource])),
                    key=lane_free[resource].__getitem__,
                )
                start = max(lane_free[resource][lane], dep_ready, task.available_at)
                if best_start is None or start < best_start:
                    best_start, best_name, best_lane = start, task.name, lane
            if best_name is None:
                pending = [
                    queue[cursor[resource]].name
                    for resource, queue in queues.items()
                    if cursor[resource] < len(queue)
                ]
                raise SchedulingError(
                    f"pipeline deadlock: queue heads {pending} all blocked "
                    "(cyclic dependencies across FIFO queues?)"
                )
            task = self._by_name[best_name]
            finish = best_start + task.duration
            schedule.tasks[task.name] = ScheduledTask(
                task, best_start, finish, lane=best_lane
            )
            lane_free[task.resource][best_lane] = finish
            cursor[task.resource] += 1
            remaining -= 1
        schedule.lane_state = {
            resource: sorted(
                (free_at, lane) for lane, free_at in enumerate(frees)
            )
            for resource, frees in lane_free.items()
        }
        return schedule


def double_buffered_stream(
    engine: PipelineEngine,
    *,
    prefix: str,
    chunks: int,
    transfer_seconds,
    compute_seconds,
    buffers: int = 2,
    transfer_resource: str = "h2d",
    compute_resource: str = "gpu",
    output_seconds=None,
    output_resource: str = "d2h",
    first_transfer_dep: str | None = None,
) -> tuple[str, str]:
    """Emit the paper's §IV-A double-buffered pipeline into ``engine``.

    For each chunk ``i``: a transfer task, a compute task depending on it,
    and (optionally) an output copy-back task.  Buffer recycling adds a
    dependency of transfer ``i`` on compute ``i - buffers`` and, when
    output is enabled, of compute ``i`` on output ``i - buffers``
    (the §IV-C result double-buffering).

    ``transfer_seconds``/``compute_seconds``/``output_seconds`` are either
    scalars or callables of the chunk index.  Returns the names of the
    last transfer and last compute task.
    """

    def _dur(value, index: int) -> float:
        return float(value(index)) if callable(value) else float(value)

    last_transfer = ""
    last_compute = ""
    for index in range(chunks):
        transfer = f"{prefix}.h2d[{index}]"
        compute = f"{prefix}.join[{index}]"
        deps: list[str] = []
        if first_transfer_dep and index == 0:
            deps.append(first_transfer_dep)
        if index >= buffers:
            deps.append(f"{prefix}.join[{index - buffers}]")
        engine.add_task(transfer, transfer_resource, _dur(transfer_seconds, index), deps)
        compute_deps = [transfer]
        if output_seconds is not None and index >= buffers:
            compute_deps.append(f"{prefix}.d2h[{index - buffers}]")
        engine.add_task(compute, compute_resource, _dur(compute_seconds, index), compute_deps)
        if output_seconds is not None:
            engine.add_task(
                f"{prefix}.d2h[{index}]",
                output_resource,
                _dur(output_seconds, index),
                [compute],
            )
        last_transfer, last_compute = transfer, compute
    return last_transfer, last_compute
