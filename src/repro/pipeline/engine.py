"""Discrete-event simulation of stream pipelines.

Semantics (mirroring CUDA streams + events):

* every resource executes its tasks **in submission order** (FIFO);
* a task starts when its resource is free *and* all its dependencies
  have finished (and not before its ``available_at`` release time);
* durations are fixed when the task is created.

The engine computes start/finish times for every task and the resulting
makespan.  This is what turns per-phase kernel/transfer costs into the
overlapped end-to-end times of the paper's Figures 11–13: "the total
execution time is the transfer time for the data plus the GPU execution
time for the last chunk" (§IV-A) falls out of the simulation rather than
being hard-coded.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.errors import SchedulingError
from repro.pipeline.tasks import ResourcePool, Schedule, ScheduledTask, Task


class PipelineEngine:
    """Builds and simulates a task graph.

    ``resources`` optionally maps resource names to lane counts (or is a
    collection of :class:`ResourcePool`); unnamed resources default to a
    single lane, i.e. one serially-executing queue.
    """

    def __init__(
        self,
        resources: dict[str, int] | list[ResourcePool] | None = None,
    ) -> None:
        self._tasks: list[Task] = []
        self._by_name: dict[str, Task] = {}
        self._lanes: dict[str, int] = {}
        if resources:
            pools = (
                [ResourcePool(name, lanes) for name, lanes in resources.items()]
                if isinstance(resources, dict)
                else list(resources)
            )
            for pool in pools:
                self._lanes[pool.name] = pool.lanes

    def lanes_of(self, resource: str) -> int:
        return self._lanes.get(resource, 1)

    # ------------------------------------------------------------------
    def add(self, task: Task) -> Task:
        """Append a task to its resource's queue."""
        if task.name in self._by_name:
            raise SchedulingError(f"duplicate task name: {task.name!r}")
        if task.duration < 0:
            raise SchedulingError(f"negative duration for task {task.name!r}")
        if task.available_at < 0:
            raise SchedulingError(f"negative available_at for task {task.name!r}")
        self._tasks.append(task)
        self._by_name[task.name] = task
        return task

    def add_task(
        self,
        name: str,
        resource: str,
        duration: float,
        deps: tuple[str, ...] | list[str] = (),
        phase: str | None = None,
    ) -> Task:
        """Convenience wrapper around :meth:`add`."""
        return self.add(
            Task(
                name=name,
                resource=resource,
                duration=duration,
                deps=tuple(deps),
                phase=phase,
            )
        )

    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks)

    # ------------------------------------------------------------------
    def run(self) -> Schedule:
        """Simulate the graph and return the schedule (event-driven).

        A task is *dispatchable* once it reaches the head of its
        resource's FIFO queue and all its dependencies have finished —
        at that point its start time is final: every earlier task of the
        same queue has already been placed (fixing the lane-free times)
        and dependency finishes never change once recorded.  The
        simulator therefore tracks dependency indegrees, keeps one heap
        of free times per resource pool's lanes, and drains an event
        calendar of dispatchable tasks ordered by start time — placing
        each task exactly once, O((T + E) log T) overall, instead of
        rescanning every queue head per decision as the original
        scanner (retained as :meth:`run_reference`) did.

        The schedule is identical to :meth:`run_reference`'s, including
        lane assignment (ties go to the lowest lane index) and deadlock
        detection: if no queue head is dispatchable while tasks remain,
        the dependency structure is cyclic across the FIFO queues (or
        references an unknown task) and a :class:`SchedulingError` is
        raised.
        """
        for task in self._tasks:
            for dep in task.deps:
                if dep not in self._by_name:
                    raise SchedulingError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )

        queues: dict[str, list[Task]] = defaultdict(list)
        position: dict[str, int] = {}
        for task in self._tasks:
            position[task.name] = len(queues[task.resource])
            queues[task.resource].append(task)
        cursor = {resource: 0 for resource in queues}
        # One free-time per lane, as a heap of (free_at, lane_index): a
        # pool's next task is dispatched onto whichever lane frees first
        # (round-robin copy engines/streams), lowest index on ties.
        lane_free = {
            resource: [(0.0, lane) for lane in range(self.lanes_of(resource))]
            for resource in queues
        }
        finish_at: dict[str, float] = {}
        indegree: dict[str, int] = {}
        dependents: dict[str, list[str]] = defaultdict(list)
        for task in self._tasks:
            unique_deps = set(task.deps)
            indegree[task.name] = len(unique_deps)
            for dep in unique_deps:
                dependents[dep].append(task.name)

        schedule = Schedule(
            lanes={resource: self.lanes_of(resource) for resource in queues}
        )

        # Event calendar: dispatchable tasks keyed by their (final)
        # start time; the sequence number makes heap entries total-ordered
        # and preserves submission order among equal start times.
        calendar: list[tuple[float, int, str]] = []
        queued: set[str] = set()
        sequence = 0

        def maybe_push(task: Task) -> None:
            nonlocal sequence
            if (
                task.name in queued
                or indegree[task.name] > 0
                or cursor[task.resource] != position[task.name]
            ):
                return
            dep_ready = max(
                (finish_at[dep] for dep in task.deps), default=0.0
            )
            start = max(lane_free[task.resource][0][0], dep_ready, task.available_at)
            heapq.heappush(calendar, (start, sequence, task.name))
            queued.add(task.name)
            sequence += 1

        for queue in queues.values():
            maybe_push(queue[0])

        remaining = len(self._tasks)
        while remaining:
            if not calendar:
                pending = [
                    queue[cursor[resource]].name
                    for resource, queue in queues.items()
                    if cursor[resource] < len(queue)
                ]
                raise SchedulingError(
                    f"pipeline deadlock: queue heads {pending} all blocked "
                    "(cyclic dependencies across FIFO queues?)"
                )
            start, _, name = heapq.heappop(calendar)
            task = self._by_name[name]
            _, lane = heapq.heappop(lane_free[task.resource])
            finish = start + task.duration
            schedule.tasks[name] = ScheduledTask(task, start, finish, lane=lane)
            finish_at[name] = finish
            heapq.heappush(lane_free[task.resource], (finish, lane))
            cursor[task.resource] += 1
            remaining -= 1
            # Two kinds of tasks may have become dispatchable: the next
            # task of this queue, and dependents that were only waiting
            # on this finish.  (A dependent still behind its queue head
            # is woken later, by its own queue's cursor reaching it.)
            queue = queues[task.resource]
            if cursor[task.resource] < len(queue):
                maybe_push(queue[cursor[task.resource]])
            for child in dependents[name]:
                indegree[child] -= 1
                maybe_push(self._by_name[child])
        return schedule

    # ------------------------------------------------------------------
    def run_reference(self) -> Schedule:
        """The original all-queue-heads scanner, kept as the executable
        specification of :meth:`run`: repeatedly starts the earliest-
        ready head-of-queue task, rescanning every queue per decision.
        ``tests/pipeline/test_engine_reference.py`` asserts both produce
        identical schedules on randomized DAGs.
        """
        for task in self._tasks:
            for dep in task.deps:
                if dep not in self._by_name:
                    raise SchedulingError(
                        f"task {task.name!r} depends on unknown task {dep!r}"
                    )

        queues: dict[str, list[Task]] = defaultdict(list)
        for task in self._tasks:
            queues[task.resource].append(task)
        cursor = {resource: 0 for resource in queues}
        # One free-time per lane; a pool's next task is dispatched onto
        # whichever lane frees first (round-robin copy engines/streams).
        lane_free = {
            resource: [0.0] * self.lanes_of(resource) for resource in queues
        }

        schedule = Schedule(
            lanes={resource: self.lanes_of(resource) for resource in queues}
        )
        remaining = len(self._tasks)
        while remaining:
            best_name = None
            best_start = None
            best_lane = 0
            for resource, queue in queues.items():
                position = cursor[resource]
                if position >= len(queue):
                    continue
                task = queue[position]
                if any(dep not in schedule.tasks for dep in task.deps):
                    continue
                dep_ready = max(
                    (schedule.tasks[dep].finish for dep in task.deps), default=0.0
                )
                lane = min(
                    range(len(lane_free[resource])),
                    key=lane_free[resource].__getitem__,
                )
                start = max(lane_free[resource][lane], dep_ready, task.available_at)
                if best_start is None or start < best_start:
                    best_start, best_name, best_lane = start, task.name, lane
            if best_name is None:
                pending = [
                    queue[cursor[resource]].name
                    for resource, queue in queues.items()
                    if cursor[resource] < len(queue)
                ]
                raise SchedulingError(
                    f"pipeline deadlock: queue heads {pending} all blocked "
                    "(cyclic dependencies across FIFO queues?)"
                )
            task = self._by_name[best_name]
            finish = best_start + task.duration
            schedule.tasks[task.name] = ScheduledTask(
                task, best_start, finish, lane=best_lane
            )
            lane_free[task.resource][best_lane] = finish
            cursor[task.resource] += 1
            remaining -= 1
        return schedule


def double_buffered_stream(
    engine: PipelineEngine,
    *,
    prefix: str,
    chunks: int,
    transfer_seconds,
    compute_seconds,
    buffers: int = 2,
    transfer_resource: str = "h2d",
    compute_resource: str = "gpu",
    output_seconds=None,
    output_resource: str = "d2h",
    first_transfer_dep: str | None = None,
) -> tuple[str, str]:
    """Emit the paper's §IV-A double-buffered pipeline into ``engine``.

    For each chunk ``i``: a transfer task, a compute task depending on it,
    and (optionally) an output copy-back task.  Buffer recycling adds a
    dependency of transfer ``i`` on compute ``i - buffers`` and, when
    output is enabled, of compute ``i`` on output ``i - buffers``
    (the §IV-C result double-buffering).

    ``transfer_seconds``/``compute_seconds``/``output_seconds`` are either
    scalars or callables of the chunk index.  Returns the names of the
    last transfer and last compute task.
    """

    def _dur(value, index: int) -> float:
        return float(value(index)) if callable(value) else float(value)

    last_transfer = ""
    last_compute = ""
    for index in range(chunks):
        transfer = f"{prefix}.h2d[{index}]"
        compute = f"{prefix}.join[{index}]"
        deps: list[str] = []
        if first_transfer_dep and index == 0:
            deps.append(first_transfer_dep)
        if index >= buffers:
            deps.append(f"{prefix}.join[{index - buffers}]")
        engine.add_task(transfer, transfer_resource, _dur(transfer_seconds, index), deps)
        compute_deps = [transfer]
        if output_seconds is not None and index >= buffers:
            compute_deps.append(f"{prefix}.d2h[{index - buffers}]")
        engine.add_task(compute, compute_resource, _dur(compute_seconds, index), compute_deps)
        if output_seconds is not None:
            engine.add_task(
                f"{prefix}.d2h[{index}]",
                output_resource,
                _dur(output_seconds, index),
                [compute],
            )
        last_transfer, last_compute = transfer, compute
    return last_transfer, last_compute
