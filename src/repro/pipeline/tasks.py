"""Task-graph vocabulary for the pipeline engine.

The out-of-GPU strategies (§IV) are pipelines of operations on a small
set of serially-executing resources — exactly how CUDA streams behave:
one H2D DMA engine, one D2H DMA engine, the GPU compute queue, and the
host CPU.  A :class:`Task` occupies one resource for a duration and may
depend on other tasks (CUDA event semantics); buffer reuse is expressed
as a dependency on the task that last released the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Conventional resource names used by the join strategies.
H2D = "h2d"
D2H = "d2h"
GPU = "gpu"
CPU = "cpu"


@dataclass(frozen=True)
class ResourcePool:
    """A named execution resource with a fixed number of parallel lanes.

    ``lanes=1`` models a serially-executing queue (one DMA engine, the
    GPU compute queue); ``lanes=n`` models *n* interchangeable CUDA
    streams or copy engines fed from one FIFO submission queue: each
    task is dispatched, in submission order, onto whichever lane frees
    first.  ``device`` tags which GPU of a sharded fleet owns the pool:
    device 0's ``h2d`` engine and device 1's ``h2d`` engine are distinct
    physical resources even though they share a name, and every device's
    pools live in that device's own :class:`~repro.pipeline.engine.
    PipelineEngine`.
    """

    name: str
    lanes: int = 1
    device: int = 0

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValueError(f"resource {self.name!r} needs >= 1 lane")
        if self.device < 0:
            raise ValueError(f"resource {self.name!r} needs a device >= 0")


@dataclass
class Task:
    """One unit of work bound to a resource.

    Parameters
    ----------
    name:
        Unique identifier, referenced by dependents.
    resource:
        The (pool of) serially-executing lane(s) this task occupies.
    duration:
        Modelled seconds of occupancy.
    deps:
        Names of tasks that must finish before this task may start
        (in addition to the implicit FIFO order of its resource).
    phase:
        Reporting label grouping this task into a named phase of the
        join (``partition``, ``join``, ...).  Defaults to the resource
        name, which reproduces per-resource busy-time reporting.
    available_at:
        Earliest simulated time the task may start (in addition to its
        dependencies and resource FIFO order).  Models work submitted
        mid-simulation — e.g. a query admitted by the serving layer once
        device memory frees up.
    device:
        Which GPU of a sharded fleet executes the task.  Single-device
        code never sets it (``0``); the sharded serving layer tags every
        task with its placement so an engine can refuse tasks routed to
        the wrong device.
    """

    name: str
    resource: str
    duration: float
    deps: tuple[str, ...] = ()
    phase: str | None = None
    available_at: float = 0.0
    device: int = 0

    def __post_init__(self) -> None:
        self.deps = tuple(self.deps)

    @property
    def effective_phase(self) -> str:
        return self.phase if self.phase is not None else self.resource


@dataclass
class ScheduledTask:
    """A task with its computed start/finish times and assigned lane."""

    task: Task
    start: float
    finish: float
    lane: int = 0


@dataclass
class Schedule:
    """The result of simulating a task graph.

    All times are simulated seconds on the modelled device, not wall
    clock.  A schedule is deterministic: the same task graph (same
    submission order, durations, dependencies and lane counts) always
    produces the same start/finish times and lane assignments.
    """

    tasks: dict[str, ScheduledTask] = field(default_factory=dict)
    #: Lane counts of the pools the schedule ran on (default 1 each).
    lanes: dict[str, int] = field(default_factory=dict)
    #: How many tasks :meth:`compact` has retired so far.
    retired_tasks: int = 0
    #: Latest finish among retired tasks, so :attr:`makespan` stays the
    #: whole run's makespan — compaction drops bookkeeping, not history.
    retired_makespan: float = 0.0
    #: End-of-run per-pool lane state: ``resource -> sorted list of
    #: (free_at_seconds, lane_index)``.  This is the carry-over that
    #: lets :meth:`repro.pipeline.engine.PipelineEngine.extend` place
    #: newly admitted tasks without re-simulating the whole graph; a
    #: sorted list is a valid binary heap, so the extension pops lanes
    #: in exactly the order a full re-run would.
    lane_state: dict[str, list[tuple[float, int]]] = field(
        default_factory=dict, repr=False
    )
    #: True for the read-only union built by :meth:`merged`.  A merged
    #: view spans devices whose same-named pools are physically
    #: distinct, so it cannot seed an engine extension;
    #: :meth:`repro.pipeline.engine.PipelineEngine.extend` refuses it.
    is_merged_view: bool = False

    @property
    def makespan(self) -> float:
        live = max(
            (item.finish for item in self.tasks.values()), default=0.0
        )
        return max(live, self.retired_makespan)

    def compact(self, horizon: float) -> int:
        """Retire every task whose finish time is at or before
        ``horizon`` (simulated seconds); returns how many were dropped.

        Compaction is the steady-state memory story of the serving
        layer: a streaming run otherwise accumulates one
        :class:`ScheduledTask` per task *ever* scheduled, O(total
        arrivals).  Dropping tasks that finished at or before the live
        frontier keeps the retained dict O(in-flight).  What survives:

        * :attr:`makespan` — the retired maximum is folded into
          :attr:`retired_makespan`, so the whole-run makespan is
          unchanged by compaction;
        * :attr:`lane_state` and :attr:`lanes` — untouched, which is
          what keeps subsequent
          :meth:`repro.pipeline.engine.PipelineEngine.extend` calls
          bit-identical to an uncompacted run (extension reads only
          the lane heaps and the finishes of tasks new work depends
          on — callers must not retire tasks future work will name as
          dependencies; pick ``horizon`` at or before the live
          dependency frontier).

        Occupancy reports (:meth:`busy_time`, :meth:`utilization`,
        :meth:`phase_times`) cover only retained tasks afterwards —
        streaming callers fold per-query stats into their running
        accumulator *before* compacting.  A schedule compacted behind
        its engine's back can no longer seed ``extend``; use
        :meth:`repro.pipeline.engine.PipelineEngine.compact`, which
        retires the same tasks from the engine's books in lockstep.
        """
        retired = [
            name for name, item in self.tasks.items() if item.finish <= horizon
        ]
        for name in retired:
            item = self.tasks.pop(name)
            if item.finish > self.retired_makespan:
                self.retired_makespan = item.finish
        self.retired_tasks += len(retired)
        return len(retired)

    def finish_of(self, name: str) -> float:
        return self.tasks[name].finish

    def busy_time(self, resource: str) -> float:
        """Total occupancy of one resource."""
        return sum(
            item.task.duration
            for item in self.tasks.values()
            if item.task.resource == resource
        )

    def utilization(self, resource: str) -> float:
        """Occupancy fraction of one resource (all lanes) over the makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_time(resource) / (span * self.lanes.get(resource, 1))

    def phase_time(self, phase: str) -> float:
        """Total occupancy attributed to one reporting phase."""
        return sum(
            item.task.duration
            for item in self.tasks.values()
            if item.task.effective_phase == phase
        )

    def phase_times(self) -> dict[str, float]:
        """Occupancy per reporting phase, keyed in scheduling order."""
        times: dict[str, float] = {}
        for item in self.tasks.values():
            phase = item.task.effective_phase
            times[phase] = times.get(phase, 0.0) + item.task.duration
        return times

    def critical_resource(self) -> str | None:
        """The resource with the highest busy time (the bottleneck)."""
        resources = {item.task.resource for item in self.tasks.values()}
        if not resources:
            return None
        return max(resources, key=self.busy_time)

    @classmethod
    def merged(cls, schedules: "list[Schedule]") -> "Schedule":
        """One read-only view over per-device schedules of a sharded run.

        Task dicts are unioned (names must be globally unique — the
        serving layer's qid prefixes guarantee it, since a query runs
        entirely on one device) and lane counts are merged at their
        maximum per resource name.  The merged view is for *reporting*
        (makespan, per-query latency, cross-query overlap); same-named
        resources on different devices are distinct physical pools, so
        :meth:`busy_time` aggregates over all devices sharing the name
        and lane counts are **summed** per resource name — the fleet's
        real capacity — keeping :meth:`utilization` a genuine occupancy
        fraction.  ``lane_state`` is deliberately empty and
        :attr:`is_merged_view` is set: a merged view cannot be
        extended, and the engine enforces that.
        """
        merged = cls(is_merged_view=True)
        for schedule in schedules:
            for name, item in schedule.tasks.items():
                if name in merged.tasks:
                    raise ValueError(
                        f"cannot merge schedules: task {name!r} appears on "
                        "more than one device"
                    )
                merged.tasks[name] = item
            for resource, lanes in schedule.lanes.items():
                merged.lanes[resource] = merged.lanes.get(resource, 0) + lanes
        return merged
