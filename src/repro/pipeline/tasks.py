"""Task-graph vocabulary for the pipeline engine.

The out-of-GPU strategies (§IV) are pipelines of operations on a small
set of serially-executing resources — exactly how CUDA streams behave:
one H2D DMA engine, one D2H DMA engine, the GPU compute queue, and the
host CPU.  A :class:`Task` occupies one resource for a duration and may
depend on other tasks (CUDA event semantics); buffer reuse is expressed
as a dependency on the task that last released the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Conventional resource names used by the join strategies.
H2D = "h2d"
D2H = "d2h"
GPU = "gpu"
CPU = "cpu"


@dataclass
class Task:
    """One unit of work bound to a resource.

    Parameters
    ----------
    name:
        Unique identifier, referenced by dependents.
    resource:
        The serially-executing queue this task occupies.
    duration:
        Modelled seconds of occupancy.
    deps:
        Names of tasks that must finish before this task may start
        (in addition to the implicit FIFO order of its resource).
    """

    name: str
    resource: str
    duration: float
    deps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        self.deps = tuple(self.deps)


@dataclass
class ScheduledTask:
    """A task with its computed start/finish times."""

    task: Task
    start: float
    finish: float


@dataclass
class Schedule:
    """The result of simulating a task graph."""

    tasks: dict[str, ScheduledTask] = field(default_factory=dict)

    @property
    def makespan(self) -> float:
        if not self.tasks:
            return 0.0
        return max(item.finish for item in self.tasks.values())

    def finish_of(self, name: str) -> float:
        return self.tasks[name].finish

    def busy_time(self, resource: str) -> float:
        """Total occupancy of one resource."""
        return sum(
            item.task.duration
            for item in self.tasks.values()
            if item.task.resource == resource
        )

    def utilization(self, resource: str) -> float:
        """Occupancy fraction of one resource over the makespan."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_time(resource) / span

    def critical_resource(self) -> str | None:
        """The resource with the highest busy time (the bottleneck)."""
        resources = {item.task.resource for item in self.tasks.values()}
        if not resources:
            return None
        return max(resources, key=self.busy_time)
