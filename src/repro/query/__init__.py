"""Query layer: columnar tables, logical plans, and the executor."""

from repro.query.executor import OperatorReport, QueryExecutor, QueryResult
from repro.query.plan import Aggregate, Comparison, Filter, HashJoin, PlanNode, Scan
from repro.query.table import Table

__all__ = [
    "Aggregate",
    "Comparison",
    "Filter",
    "HashJoin",
    "OperatorReport",
    "PlanNode",
    "QueryExecutor",
    "QueryResult",
    "Scan",
    "Table",
]
