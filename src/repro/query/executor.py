"""Query executor: evaluates plans with the paper's join strategies.

Each :class:`~repro.query.plan.HashJoin` is executed functionally with
the strategy the §IV planner selects for the inputs' sizes (or a pinned
one), using late materialization: the join carries row identifiers, and
the surviving columns of both sides are gathered afterwards.  Simulated
operator times are accumulated into a query-level report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import GpuJoinConfig
from repro.core.gpu_partitioned import spec_from_relations
from repro.core.planner import choose_strategy_name
from repro.core.strategy import create_strategy
from repro.errors import InvalidConfigError
from repro.gpusim.spec import SystemSpec
from repro.query.plan import (
    Aggregate,
    Comparison,
    Filter,
    HashJoin,
    PlanNode,
    Scan,
    validate,
)
from repro.query.table import Table


@dataclass
class OperatorReport:
    """Simulated cost of one executed operator."""

    operator: str
    detail: str
    rows_out: int
    seconds: float


@dataclass
class QueryResult:
    """Output table (or aggregate row) plus the per-operator report."""

    table: Table
    aggregates: dict[str, int] | None = None
    report: list[OperatorReport] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        return sum(item.seconds for item in self.report)

    def explain(self) -> str:
        lines = [
            f"{item.operator:10s} {item.detail:42s} "
            f"{item.rows_out:>12,} rows {item.seconds * 1e3:10.3f} ms"
            for item in self.report
        ]
        lines.append(f"{'total':10s} {'':42s} {'':>17} {self.seconds * 1e3:10.3f} ms")
        return "\n".join(lines)


class QueryExecutor:
    """Evaluates plan trees bottom-up."""

    def __init__(
        self,
        system: SystemSpec | None = None,
        config: GpuJoinConfig | None = None,
    ):
        self.system = system or SystemSpec()
        self.config = config

    # ------------------------------------------------------------------
    def execute(self, node: PlanNode) -> QueryResult:
        validate(node)
        report: list[OperatorReport] = []
        table = self._evaluate(node, report)
        if isinstance(node, Aggregate):
            sums = {
                column: int(table.column(column).sum())
                for column in node.sum_columns
            }
            aggregates = {"count": table.num_rows, **sums}
            return QueryResult(table=table, aggregates=aggregates, report=report)
        return QueryResult(table=table, report=report)

    # ------------------------------------------------------------------
    def _evaluate(self, node: PlanNode, report: list[OperatorReport]) -> Table:
        if isinstance(node, Scan):
            report.append(
                OperatorReport("scan", node.table.name, node.table.num_rows, 0.0)
            )
            return node.table
        if isinstance(node, Filter):
            child = self._evaluate(node.child, report)
            column = child.column(node.column)
            mask = _apply_comparison(column, node.op, node.literal)
            out = child.filter(mask)
            # A filter is one coalesced scan of the predicate column, at
            # the column's actual width (narrow flag/date columns cost
            # proportionally less than 8-byte keys).
            from repro.gpusim.cost import GpuCostModel

            seconds = GpuCostModel(self.system).scan_seconds(
                column.shape[0] * column.dtype.itemsize
            )
            report.append(
                OperatorReport(
                    "filter",
                    f"{node.column} {node.op.value} {node.literal}",
                    out.num_rows,
                    seconds,
                )
            )
            return out
        if isinstance(node, HashJoin):
            return self._join(node, report)
        if isinstance(node, Aggregate):
            child = self._evaluate(node.child, report)
            report.append(
                OperatorReport(
                    "aggregate", ",".join(node.sum_columns) or "count", 1, 0.0
                )
            )
            return child
        raise InvalidConfigError(f"unknown plan node: {type(node).__name__}")

    def _join(self, node: HashJoin, report: list[OperatorReport]) -> Table:
        build_table = self._evaluate(node.build, report)
        probe_table = self._evaluate(node.probe, report)
        build_rel = build_table.key_relation(node.build_key)
        probe_rel = probe_table.key_relation(node.probe_key)

        # A pinned strategy key overrides the planner; both paths are
        # registry lookups (unknown keys raise UnknownStrategyError).
        spec = spec_from_relations(build_rel, probe_rel)
        key = node.strategy or choose_strategy_name(spec, self.system)
        strategy = create_strategy(key, self.system, config=self.config)

        result = strategy.execute(build_rel, probe_rel, materialize=True)
        build_rows = result.build_payloads
        probe_rows = result.probe_payloads

        out = Table.concat_columns(
            f"({build_table.name}x{probe_table.name})",
            build_table.gather(build_rows),
            probe_table.gather(probe_rows),
        )
        report.append(
            OperatorReport(
                "hash-join",
                f"{build_table.name}.{node.build_key} = "
                f"{probe_table.name}.{node.probe_key} [{strategy.name}]",
                out.num_rows,
                result.metrics.seconds,
            )
        )
        return out


def _apply_comparison(
    column: np.ndarray, op: Comparison, literal: int
) -> np.ndarray:
    if op is Comparison.EQ:
        return column == literal
    if op is Comparison.LT:
        return column < literal
    if op is Comparison.LE:
        return column <= literal
    if op is Comparison.GT:
        return column > literal
    if op is Comparison.GE:
        return column >= literal
    raise InvalidConfigError(f"unknown comparison: {op!r}")
