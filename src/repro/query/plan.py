"""Logical query plans over the GPU join family.

A deliberately small operator algebra — scans, filters, hash joins and
aggregates — sufficient to express the paper's query-level workloads
(the TPC-H joins of Fig 14 and multi-join pipelines built on them).
Plans are trees of dataclasses; :mod:`repro.query.executor` evaluates
them, choosing an execution strategy per join via the §IV planner.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import InvalidConfigError
from repro.query.table import Table


class Comparison(enum.Enum):
    """Filter predicates on a single column."""

    EQ = "=="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="


@dataclass
class PlanNode:
    """Base class for plan operators."""

    def children(self) -> tuple["PlanNode", ...]:  # pragma: no cover - trivial
        return ()


@dataclass
class Scan(PlanNode):
    """Leaf: produce a base table."""

    table: Table

    def children(self) -> tuple[PlanNode, ...]:
        return ()


@dataclass
class Filter(PlanNode):
    """Select rows where ``column <op> literal``."""

    child: PlanNode
    column: str
    op: Comparison
    literal: int

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass
class HashJoin(PlanNode):
    """Equi-join two subplans.

    The *build* side should be the smaller input (as in the paper, the
    planner does not reorder); the execution strategy (GPU-resident,
    streaming, or co-processing) is chosen per join from the inputs'
    sizes unless ``strategy`` pins one.
    """

    build: PlanNode
    probe: PlanNode
    build_key: str
    probe_key: str
    strategy: str | None = None

    def children(self) -> tuple[PlanNode, ...]:
        return (self.build, self.probe)


@dataclass
class Aggregate(PlanNode):
    """Terminal aggregate: COUNT(*) plus SUM over selected columns."""

    child: PlanNode
    sum_columns: tuple[str, ...] = field(default_factory=tuple)

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


def validate(node: PlanNode) -> None:
    """Reject malformed plans before execution."""
    if isinstance(node, Scan):
        return
    if isinstance(node, Filter):
        if not isinstance(node.op, Comparison):
            raise InvalidConfigError(f"bad comparison: {node.op!r}")
        validate(node.child)
        return
    if isinstance(node, HashJoin):
        validate(node.build)
        validate(node.probe)
        return
    if isinstance(node, Aggregate):
        validate(node.child)
        return
    raise InvalidConfigError(f"unknown plan node: {type(node).__name__}")
