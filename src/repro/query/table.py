"""Named-column tables for the query layer.

The join strategies operate on ``(key, payload)`` relations, the format
of the paper's microbenchmark.  Real queries join *tables* with several
columns; this module provides the thin columnar table the query executor
works over, with late materialization built in: joins carry row
identifiers and gather the surviving columns afterwards, exactly the
execution style the paper's payload experiments assume (§V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.relation import Relation
from repro.errors import InvalidRelationError


@dataclass
class Table:
    """An immutable columnar table: named integer columns of equal length.

    Integer columns keep their declared width (an ``int8`` flag column
    scans at 1 B/row in the cost model); everything else is coerced to
    ``int64``, the width the join kernels operate on.
    """

    name: str
    columns: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        lengths = {column.shape[0] for column in self.columns.values()}
        if len(lengths) > 1:
            raise InvalidRelationError(
                f"table {self.name!r} has ragged columns: {sorted(lengths)}"
            )
        self.columns = {
            name: (
                np.ascontiguousarray(column)
                if isinstance(column, np.ndarray)
                and np.issubdtype(column.dtype, np.integer)
                else np.ascontiguousarray(column, dtype=np.int64)
            )
            for name, column in self.columns.items()
        }

    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return int(next(iter(self.columns.values())).shape[0])

    @property
    def column_names(self) -> list[str]:
        return list(self.columns)

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise InvalidRelationError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            )
        return self.columns[name]

    # ------------------------------------------------------------------
    def key_relation(self, key_column: str) -> Relation:
        """View this table as a join relation on ``key_column``.

        The payload is the row identifier, enabling late materialization
        of the remaining columns after the join.
        """
        return Relation.from_keys(
            self.column(key_column), name=f"{self.name}.{key_column}"
        )

    def gather(self, rows: np.ndarray, *, prefix: str | None = None) -> "Table":
        """Late materialization: fetch whole rows by identifier.

        Column names gain a ``table.`` prefix on first gather; columns
        that already carry a qualifier (outputs of earlier joins) keep it.
        """
        prefix = f"{prefix or self.name}."
        return Table(
            name=self.name,
            columns={
                (name if "." in name else prefix + name): column[rows]
                for name, column in self.columns.items()
            },
        )

    def filter(self, mask: np.ndarray) -> "Table":
        if mask.shape[0] != self.num_rows:
            raise InvalidRelationError("filter mask length mismatch")
        return Table(
            name=self.name,
            columns={name: column[mask] for name, column in self.columns.items()},
        )

    @staticmethod
    def concat_columns(name: str, *tables: "Table") -> "Table":
        """Zip equally-long tables side by side (join output assembly)."""
        lengths = {table.num_rows for table in tables}
        if len(lengths) > 1:
            raise InvalidRelationError("cannot zip tables of different lengths")
        merged: dict[str, np.ndarray] = {}
        for table in tables:
            for column_name, column in table.columns.items():
                if column_name in merged:
                    raise InvalidRelationError(
                        f"duplicate column {column_name!r} while joining"
                    )
                merged[column_name] = column
        return Table(name=name, columns=merged)
