"""Multi-query GPU serving: shared-arena admission and scheduling.

The ROADMAP's north star — serving heavy concurrent traffic from one
device — needs more than a single-query planner.  This package runs
*batches* of queries against one simulated GPU: a
:class:`~repro.gpusim.arena.DeviceMemoryArena` makes co-resident
queries share device memory honestly, and the
:class:`~repro.serve.scheduler.QueryScheduler` admits queries FIFO,
re-planning each one against the memory actually free at admission and
lowering all admitted plans into one shared pipeline-engine run — per
wave in batch mode (``run``), or incrementally per arrival in online
mode (``run_online``, bit-identical outcomes at a fraction of the
wall clock).  See ``docs/serving.md`` for the full policy.
"""

from repro.serve.scheduler import (
    QueryOutcome,
    QueryRequest,
    QueryScheduler,
    ServeReport,
)
from repro.serve.workload import mixed_workload

__all__ = [
    "QueryOutcome",
    "QueryRequest",
    "QueryScheduler",
    "ServeReport",
    "mixed_workload",
]
