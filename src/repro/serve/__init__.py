"""Multi-query GPU serving: shared-arena admission and scheduling.

The ROADMAP's north star — serving heavy concurrent traffic — needs
more than a single-query planner.  This package runs *batches* of
queries against a simulated GPU fleet: every device gets its own
:class:`~repro.gpusim.arena.DeviceMemoryArena` so co-resident queries
share device memory honestly, the
:class:`~repro.serve.placement.DeviceFleet` and its
:class:`~repro.serve.placement.PlacementPolicy` decide *which* device
hosts each admission, and the
:class:`~repro.serve.scheduler.QueryScheduler` admits queries FIFO,
re-planning each one against the memory actually free at admission and
lowering all admitted plans into the placed device's pipeline-engine
run — per wave in batch mode (``run``), incrementally per arrival
in online mode (``run_online``, bit-identical outcomes at a fraction
of the wall clock), or as a bounded-queue steady-state stream
(``run_stream``: load shedding plus schedule compaction, memory
O(in-flight) over 10^5+ arrivals).  ``devices=1`` (the default) is the classic
single-GPU scheduler, bit-identical to the pre-sharding
implementation.

Fleets may be heterogeneous and elastic: per-device capacities and
:class:`~repro.gpusim.calibration.Calibration` instances
(``QueryScheduler(device_capacities=..., device_calibrations=...)``),
timed :class:`~repro.serve.placement.FleetEvent` join/leave lists on
every run method, and an opt-in cross-device work-stealing pass
(``steal=True``).  See ``docs/serving.md`` for the full policy.
"""

from repro.gpusim.calibration import (
    CALIBRATION_PRESETS,
    Calibration,
    calibration_preset,
)
from repro.serve.placement import (
    DeviceFleet,
    FleetEvent,
    PlacementCandidate,
    PlacementPolicy,
    create_placement_policy,
    registered_placement_policies,
)
from repro.serve.scheduler import (
    QueryOutcome,
    QueryRequest,
    QueryScheduler,
    ServeReport,
    ShedOutcome,
    StreamReport,
    percentile,
)
from repro.serve.workload import (
    mixed_workload,
    random_workload,
    stream_workload,
)

__all__ = [
    "CALIBRATION_PRESETS",
    "Calibration",
    "DeviceFleet",
    "FleetEvent",
    "PlacementCandidate",
    "PlacementPolicy",
    "QueryOutcome",
    "QueryRequest",
    "QueryScheduler",
    "ServeReport",
    "ShedOutcome",
    "StreamReport",
    "calibration_preset",
    "create_placement_policy",
    "percentile",
    "registered_placement_policies",
    "mixed_workload",
    "random_workload",
    "stream_workload",
]
