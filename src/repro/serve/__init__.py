"""Multi-query GPU serving: shared-arena admission and scheduling.

The ROADMAP's north star — serving heavy concurrent traffic — needs
more than a single-query planner.  This package runs *batches* of
queries against a simulated GPU fleet: every device gets its own
:class:`~repro.gpusim.arena.DeviceMemoryArena` so co-resident queries
share device memory honestly, the
:class:`~repro.serve.placement.DeviceFleet` and its
:class:`~repro.serve.placement.PlacementPolicy` decide *which* device
hosts each admission, an
:class:`~repro.serve.admission.AdmissionPolicy` decides *which queued
query* each admission attempt tries (``fifo`` — the default, pinned
bit-identical to the historical head-of-line scheduler — ``sjf``,
``edf``, or ``weighted_fair`` over per-query
:class:`~repro.serve.admission.QueryClass` service classes), and the
:class:`~repro.serve.scheduler.QueryScheduler` admits queries in that
order,
re-planning each one against the memory actually free at admission and
lowering all admitted plans into the placed device's pipeline-engine
run — per wave in batch mode (``run``), incrementally per arrival
in online mode (``run_online``, bit-identical outcomes at a fraction
of the wall clock), or as a bounded-queue steady-state stream
(``run_stream``: load shedding plus schedule compaction, memory
O(in-flight) over 10^5+ arrivals).  ``devices=1`` (the default) is the classic
single-GPU scheduler, bit-identical to the pre-sharding
implementation.

Fleets may be heterogeneous and elastic: per-device capacities and
:class:`~repro.gpusim.calibration.Calibration` instances
(``QueryScheduler(device_capacities=..., device_calibrations=...)``),
timed :class:`~repro.serve.placement.FleetEvent` join/leave lists on
every run method, and an opt-in cross-device work-stealing pass
(``steal=True``).  Failures are injectable and recoverable: a
:class:`~repro.serve.faults.FaultPlan` (``faults=`` on every run
method) schedules deterministic device crashes and transient admission
failures, lost queries retry through the shared admission path under a
bounded budget, and exhausted/stranded queries are recorded as
:class:`~repro.serve.faults.FailedOutcome` — audited after every
faulted run by :func:`~repro.serve.faults.check_fault_invariants`.
See ``docs/serving.md`` for the full policy.
"""

from repro.gpusim.calibration import (
    CALIBRATION_PRESETS,
    Calibration,
    calibration_preset,
)
from repro.serve.admission import (
    AdmissionPolicy,
    QueryClass,
    create_admission_policy,
    registered_admission_policies,
)
from repro.serve.faults import (
    DeviceCrash,
    FailedOutcome,
    FaultPlan,
    check_fault_invariants,
)
from repro.serve.placement import (
    DeviceFleet,
    FleetEvent,
    PlacementCandidate,
    PlacementPolicy,
    create_placement_policy,
    registered_placement_policies,
    validate_fleet_events,
)
from repro.serve.scheduler import (
    ClassStats,
    QueryOutcome,
    QueryRequest,
    QueryScheduler,
    ServeReport,
    ShedOutcome,
    StreamReport,
    percentile,
)
from repro.serve.workload import (
    DEADLINE_CLASSES,
    classed_workload,
    mixed_workload,
    random_workload,
    stream_workload,
    with_classes,
)

__all__ = [
    "AdmissionPolicy",
    "CALIBRATION_PRESETS",
    "Calibration",
    "ClassStats",
    "DEADLINE_CLASSES",
    "DeviceCrash",
    "DeviceFleet",
    "FailedOutcome",
    "FaultPlan",
    "FleetEvent",
    "PlacementCandidate",
    "PlacementPolicy",
    "QueryClass",
    "QueryOutcome",
    "QueryRequest",
    "QueryScheduler",
    "ServeReport",
    "ShedOutcome",
    "StreamReport",
    "calibration_preset",
    "check_fault_invariants",
    "classed_workload",
    "create_admission_policy",
    "create_placement_policy",
    "percentile",
    "registered_admission_policies",
    "registered_placement_policies",
    "validate_fleet_events",
    "mixed_workload",
    "random_workload",
    "stream_workload",
    "with_classes",
]
