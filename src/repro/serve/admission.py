"""SLO-aware admission: service classes and wait-queue ordering policies.

The schedulers in :mod:`repro.serve.scheduler` historically admitted
queries strictly in arrival order (head-of-line FIFO).  The paper's
cost model — and the estimate/plan caches built on it — make it cheap
to *search* over admission orders instead: every queued query already
carries a cached solo estimate, so reordering the wait queue by job
size, deadline, or tenant fairness costs one dictionary lookup per
candidate.  This module owns that axis:

* :class:`QueryClass` — the per-query service contract: a priority
  weight, an optional hard deadline (relative to submission), a tenant
  id for fairness accounting, and an optional override of the
  scheduler's degrade-vs-wait threshold;
* :class:`AdmissionPolicy` and its registry — given the *arrived*
  prefix of the wait queue, pick which query the scheduler should try
  to place next.  ``fifo`` (the default) always picks the queue head
  and is pinned bit-identical to the pre-registry scheduler by the
  recorded golden schedules; ``sjf``, ``edf`` and ``weighted_fair``
  reorder admissions without touching placement, stealing, fleet
  elasticity, or fault recovery (a retried query re-enters the queue
  carrying its original :class:`QueryClass`).

Everything here is deterministic.  Policies see candidates in queue
order, tie-break on stable keys (qid for equal deadlines / equal
estimates, first-seen order for tenants), and keep any per-run state
on the instance — the scheduler calls :meth:`AdmissionPolicy.reset` at
the start of every run, mirroring :class:`~repro.serve.placement.PlacementPolicy`.

Head-of-line blocking is preserved, just re-pointed: when the policy's
chosen candidate cannot be placed, the scheduler waits for a finish
instead of trying the next candidate.  Skipping ahead past a blocked
head would silently starve large queries under memory pressure; a
policy that wants small queries first must *rank* them first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar, Sequence

from repro.errors import InvalidConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.serve.scheduler import QueryRequest

#: Registry keys of the built-in policies.
FIFO = "fifo"
SJF = "sjf"
EDF = "edf"
WEIGHTED_FAIR = "weighted_fair"

#: Class/tenant label carried by requests that declare no QueryClass.
DEFAULT_CLASS = "default"
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class QueryClass:
    """One service class: the SLO contract a query is admitted under.

    ``deadline_seconds`` is **relative to the query's submission time**;
    the absolute hard deadline is ``submit_at + deadline_seconds``
    (``None`` = no deadline).  ``priority`` is the tenant-fairness
    weight (higher = a larger share under ``weighted_fair``; 0 means
    "unweighted", i.e. weight 1).  ``max_degradation`` overrides the
    scheduler's fleet-wide degrade-vs-wait threshold for queries of
    this class (``None`` = inherit the scheduler's setting) — an
    interactive class can accept a 4x-degraded placement to start *now*
    while the batch class keeps the conservative default.

    Instances are frozen and hashable, so one class object is shared by
    every request admitted under it; per-tenant stamping goes through
    :func:`dataclasses.replace`.
    """

    name: str
    priority: int = 0
    deadline_seconds: float | None = None
    tenant: str = DEFAULT_TENANT
    max_degradation: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise InvalidConfigError("query class needs a non-empty name")
        if not self.tenant:
            raise InvalidConfigError(
                f"query class {self.name!r} needs a non-empty tenant"
            )
        if self.priority < 0:
            raise InvalidConfigError(
                f"query class {self.name!r} priority must be >= 0, got "
                f"{self.priority!r}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise InvalidConfigError(
                f"query class {self.name!r} deadline must be > 0 seconds "
                f"(or None for no deadline), got {self.deadline_seconds!r}"
            )
        if self.max_degradation is not None and self.max_degradation < 1.0:
            raise InvalidConfigError(
                f"query class {self.name!r} max_degradation must be >= 1.0 "
                f"(or None to inherit the scheduler's), got "
                f"{self.max_degradation!r}"
            )

    @property
    def weight(self) -> int:
        """Fairness weight: ``priority`` floored at 1."""
        return self.priority if self.priority > 0 else 1


def class_name_of(request: "QueryRequest") -> str:
    """The request's service-class label (``"default"`` when unclassed)."""
    qc = request.query_class
    return qc.name if qc is not None else DEFAULT_CLASS


def tenant_of(request: "QueryRequest") -> str:
    """The request's tenant id (``"default"`` when unclassed)."""
    qc = request.query_class
    return qc.tenant if qc is not None else DEFAULT_TENANT


def hard_deadline(request: "QueryRequest") -> float:
    """Absolute hard deadline in simulated seconds (``inf`` = none)."""
    qc = request.query_class
    if qc is None or qc.deadline_seconds is None:
        return math.inf
    return request.submit_at + qc.deadline_seconds


@dataclass
class AdmissionContext:
    """What a policy may read besides the queue itself.

    ``clock`` is the simulated time of the admission attempt (the
    scheduler refreshes it before every :meth:`AdmissionPolicy.select`
    call — one context object lives per run); ``solo_seconds`` maps a
    request to its cached unconstrained solo estimate (the scheduler's
    ``_solo`` cache — a dict hit after the first call per distinct
    spec, so ranking the queue is cheap).
    """

    clock: float
    solo_seconds: Callable[["QueryRequest"], float]


class AdmissionPolicy:
    """Picks which *arrived* queued query to try to place next.

    :meth:`select` receives the arrived prefix of the wait queue (every
    entry's ``submit_at <= ctx.clock``), never empty, in queue order,
    and returns the index of the candidate to attempt.  The scheduler
    validates the index and raises on a bad one, so a buggy policy
    cannot corrupt the run's books — the queue and arenas are only
    mutated after a successful placement.

    Implementations must be deterministic.  Per-run state (the fairness
    ledger) lives on the instance; the scheduler calls :meth:`reset` at
    the start of every run and :meth:`record_admit` after every
    successful admission, so batch, online, and streaming replays of
    the same request list see identical policy decisions.
    """

    #: Registry key; subclasses must override.
    key: ClassVar[str] = ""
    #: ``False`` only for FIFO: lets the scheduler skip building the
    #: arrived-prefix view entirely, keeping the default path's cost
    #: (and behavior) bit-identical to the pre-registry scheduler.
    reorders: ClassVar[bool] = True

    def reset(self) -> None:
        """Forget per-run state (fairness ledgers, cursors)."""

    def select(
        self, arrived: Sequence["QueryRequest"], ctx: AdmissionContext
    ) -> int:
        raise NotImplementedError

    def record_admit(
        self, request: "QueryRequest", ctx: AdmissionContext
    ) -> None:
        """Hook called after ``request`` was successfully admitted."""


class FifoAdmission(AdmissionPolicy):
    """Default: strict arrival order — always the queue head.

    Pinned bit-identical to the historical scheduler by the recorded
    golden schedules (``tests/serve/golden_single_device.json``) and the
    admission column of ``repro.bench.regress``.  Fault retries keep
    their historical head-of-queue re-entry under this policy.
    """

    key = FIFO
    reorders = False

    def select(
        self, arrived: Sequence["QueryRequest"], ctx: AdmissionContext
    ) -> int:
        return 0


class SjfAdmission(AdmissionPolicy):
    """Shortest-estimated-job-first, via the cached solo estimates.

    Ranks arrived queries by their unconstrained solo makespan (the
    same cached estimate the degrade-vs-wait rule already uses), ties
    broken by qid.  Classic SJF: minimizes mean wait when estimates are
    honest; the property suite asserts it never worsens mean latency
    against FIFO on the canonical mixed workload.
    """

    key = SJF

    def select(
        self, arrived: Sequence["QueryRequest"], ctx: AdmissionContext
    ) -> int:
        return min(
            range(len(arrived)),
            key=lambda i: (ctx.solo_seconds(arrived[i]), arrived[i].qid),
        )


class EdfAdmission(AdmissionPolicy):
    """Earliest-deadline-first over the hard deadlines.

    Ranks arrived queries by absolute hard deadline
    (``submit_at + deadline_seconds``; no deadline sorts last as
    ``inf``), with **equal deadlines tie-breaking deterministically by
    qid**.  Optimal for meeting deadlines on a single resource when the
    load is feasible; the bench pins that it strictly reduces the
    deadline-miss rate against FIFO on the deadline-skewed canonical
    workload.
    """

    key = EDF

    def select(
        self, arrived: Sequence["QueryRequest"], ctx: AdmissionContext
    ) -> int:
        return min(
            range(len(arrived)),
            key=lambda i: (hard_deadline(arrived[i]), arrived[i].qid),
        )


class WeightedFairAdmission(AdmissionPolicy):
    """Deficit-style weighted fair queueing across tenants.

    Keeps a per-run ledger of *charged* service per tenant: every
    admission charges the query's cached solo estimate divided by its
    class weight (:attr:`QueryClass.weight`) to the query's tenant.
    :meth:`select` serves the least-charged tenant's oldest arrived
    query — FIFO within a tenant, fair across tenants.  Ties break by
    first-seen order, then tenant name, so replays are deterministic.

    Starvation bound: a waiting tenant's charge never grows, while
    every admission grows the serving tenant's charge by a positive
    amount, so with T active tenants a tenant with queued work is
    served at least once per T admissions once its charge is minimal —
    the adversarial suite pins a round bound on that guarantee.  The
    ledger only mutates in :meth:`record_admit` (never in
    :meth:`select`), so a blocked head retried across waves — or a
    policy exception mid-pop — cannot drift the fairness books.
    """

    key = WEIGHTED_FAIR

    def __init__(self) -> None:
        self._charged: dict[str, float] = {}
        self._seen: dict[str, int] = {}

    def reset(self) -> None:
        self._charged.clear()
        self._seen.clear()

    def _rank(self, tenant: str) -> tuple[float, int, str]:
        return (
            self._charged.get(tenant, 0.0),
            self._seen.get(tenant, len(self._seen)),
            tenant,
        )

    def select(
        self, arrived: Sequence["QueryRequest"], ctx: AdmissionContext
    ) -> int:
        heads: dict[str, int] = {}
        for pos, request in enumerate(arrived):
            tenant = tenant_of(request)
            if tenant not in self._seen:
                self._seen[tenant] = len(self._seen)
            if tenant not in heads:
                heads[tenant] = pos
        return heads[min(heads, key=self._rank)]

    def record_admit(
        self, request: "QueryRequest", ctx: AdmissionContext
    ) -> None:
        tenant = tenant_of(request)
        qc = request.query_class
        weight = qc.weight if qc is not None else 1
        charge = ctx.solo_seconds(request) / weight
        self._charged[tenant] = self._charged.get(tenant, 0.0) + charge


_POLICIES: dict[str, type[AdmissionPolicy]] = {
    policy.key: policy
    for policy in (
        FifoAdmission,
        SjfAdmission,
        EdfAdmission,
        WeightedFairAdmission,
    )
}


def registered_admission_policies() -> tuple[str, ...]:
    """Registry keys of the available policies, FIFO (the default) first."""
    return tuple(_POLICIES)


def create_admission_policy(key: str | AdmissionPolicy) -> AdmissionPolicy:
    """Instantiate a policy by registry key (or pass an instance through).

    A fresh instance per scheduler run keeps stateful policies (the
    weighted-fair ledger) deterministic across runs.
    """
    if isinstance(key, AdmissionPolicy):
        return key
    try:
        factory = _POLICIES[key]
    except KeyError:
        raise InvalidConfigError(
            f"unknown admission policy {key!r}; registered: "
            f"{', '.join(_POLICIES)}"
        ) from None
    return factory()
