"""Deterministic crash-failure injection and recovery for the fleet.

Real serving fleets lose devices: a GPU falls off the bus, a host
reboots, a driver wedges.  The scheduler's elasticity events model the
*graceful* exit (``retire`` drains in-flight work); this module models
the ungraceful one — and the recovery machinery that turns "device
died mid-query" into "query retried elsewhere, or failed with a
recorded reason", never into silent loss.

Everything is an **input**, not an accident: a :class:`FaultPlan` is a
seed-derivable schedule of :class:`DeviceCrash` events (simulated
seconds) plus per-query transient admission failures, validated up
front (:meth:`FaultPlan.validate`, raising
:class:`~repro.errors.FaultPlanError`) and applied by the scheduler
between admissions — so a faulted run is exactly as deterministic and
replayable as a fault-free one.  Recovery spans the stack:

* :meth:`~repro.pipeline.engine.PipelineEngine.crash` invalidates the
  unfinished schedule tail and seals the engine;
* :meth:`~repro.gpusim.arena.DeviceMemoryArena.reconcile`
  force-releases the reservations of the queries lost with the device,
  keeping the ledger exact (the :attr:`forced` audit log records why);
* the scheduler re-enqueues each lost query at the *front* of the
  admission queue once its backoff expires, up to ``max_retries``
  attempts; an exhausted budget records a :class:`FailedOutcome` with
  reason ``"retries_exhausted"``, and a fleet with no accepting device
  left (and none joining) fails everything still waiting with reason
  ``"fleet_lost"``.

After every faulted run :func:`check_fault_invariants` audits the
report: conservation (``completed + shed + failed == arrivals``),
every arena drained, nothing admitted to or finishing on a crashed
device after its crash time, and no retry budget silently exceeded —
violations raise :class:`~repro.errors.FaultInvariantError` instead of
producing a plausible-looking report.

An **empty** plan is the contract's anchor: the scheduler treats
``FaultPlan()`` (or ``faults=None``) as "no fault machinery at all",
so fault-free runs stay bit-identical to the recorded golden
schedules.
"""

from __future__ import annotations

import heapq
import math
import random
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.errors import FaultInvariantError, FaultPlanError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.serve.placement import FleetEvent
    from repro.serve.scheduler import QueryRequest


@dataclass(frozen=True)
class DeviceCrash:
    """One ungraceful device failure: device ``device`` stops dead at
    simulated time ``at`` — no drain, in-flight queries are lost."""

    at: float
    device: int

    def __post_init__(self) -> None:
        if self.at < 0:
            raise FaultPlanError(
                f"crash time must be >= 0, got {self.at!r}"
            )
        if self.device < 0:
            raise FaultPlanError(
                f"crash device index must be >= 0, got {self.device!r}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of failures to inject into one run.

    ``crashes`` (sorted by ``(at, device)``, at most one per device —
    a device only dies once) name when each device fails;
    ``admission_failures`` maps query ids to how many times their
    admission transiently fails (each refusal consumes one unit of the
    same per-query retry budget crashes use).  Plans are plain data:
    build them by hand for targeted tests, or derive one from a seed
    with :meth:`random` for chaos suites and benches.  The **empty**
    plan is inert — schedulers given ``FaultPlan()`` run the exact
    fault-free code path, bit-identical to ``faults=None``.
    """

    crashes: tuple[DeviceCrash, ...] = ()
    admission_failures: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(
            self, "admission_failures", dict(self.admission_failures)
        )

    @property
    def is_empty(self) -> bool:
        return not self.crashes and not self.admission_failures

    def validate(
        self,
        initial_devices: int,
        fleet_events: "Iterable[FleetEvent] | None" = None,
    ) -> None:
        """Reject an inconsistent plan before the run starts.

        Checks that crashes are sorted by ``(at, device)``, that no
        device crashes twice, that every crashed device exists by its
        crash time (counting devices joined by ``add`` fleet events at
        or before it), and that transient-failure counts are positive.
        Raises :class:`~repro.errors.FaultPlanError` — the same
        fail-before-mutating contract
        :func:`~repro.serve.placement.validate_fleet_events` gives
        elasticity schedules.
        """
        if initial_devices < 1:
            raise FaultPlanError(
                f"initial_devices must be >= 1, got {initial_devices!r}"
            )
        order = [(crash.at, crash.device) for crash in self.crashes]
        if order != sorted(order):
            raise FaultPlanError(
                "fault plan crashes must be sorted by (at, device), got "
                f"{order}"
            )
        add_times = sorted(
            event.at
            for event in (fleet_events or [])
            if event.action == "add"
        )
        seen: set[int] = set()
        for crash in self.crashes:
            if crash.device in seen:
                raise FaultPlanError(
                    f"device {crash.device} crashes twice; a device only "
                    "dies once"
                )
            seen.add(crash.device)
            known = initial_devices + sum(
                1 for at in add_times if at <= crash.at
            )
            if crash.device >= known:
                raise FaultPlanError(
                    f"crash at t={crash.at} names device {crash.device}, "
                    f"but only {known} device(s) exist by then"
                )
        for qid, count in self.admission_failures.items():
            if not qid:
                raise FaultPlanError(
                    "admission_failures keys must be non-empty query ids"
                )
            if not isinstance(count, int) or count < 1:
                raise FaultPlanError(
                    f"admission_failures[{qid!r}] must be a positive "
                    f"int, got {count!r}"
                )

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        devices: int,
        horizon: float,
        qids: "Iterable[str]" = (),
        max_crashes: int | None = None,
        admission_fault_rate: float = 0.0,
        max_admission_faults: int = 2,
        allow_total_loss: bool = True,
    ) -> "FaultPlan":
        """Derive a plan from ``seed`` — same seed, same plan.

        Picks 0..``max_crashes`` (default: every device) distinct
        devices of the initial ``devices`` and crashes each at a
        uniform time in ``[0, horizon]`` simulated seconds;
        ``allow_total_loss=False`` keeps at least one device alive
        (benches that want completions set it).  Each qid in ``qids``
        independently suffers 1..``max_admission_faults`` transient
        admission failures with probability ``admission_fault_rate``.
        """
        if devices < 1:
            raise FaultPlanError(f"devices must be >= 1, got {devices!r}")
        if horizon < 0:
            raise FaultPlanError(f"horizon must be >= 0, got {horizon!r}")
        rng = random.Random(seed)
        limit = devices if max_crashes is None else min(max_crashes, devices)
        if not allow_total_loss:
            limit = min(limit, devices - 1)
        count = rng.randint(0, max(0, limit))
        chosen = sorted(rng.sample(range(devices), count))
        crashes = tuple(
            sorted(
                (
                    DeviceCrash(at=round(rng.uniform(0.0, horizon), 6), device=d)
                    for d in chosen
                ),
                key=lambda crash: (crash.at, crash.device),
            )
        )
        failures: dict[str, int] = {}
        if admission_fault_rate > 0.0:
            for qid in qids:
                if rng.random() < admission_fault_rate:
                    failures[qid] = rng.randint(1, max_admission_faults)
        return cls(crashes=crashes, admission_failures=failures)


@dataclass(frozen=True)
class FailedOutcome:
    """One query the run gave up on — the third outcome class next to
    completed (:class:`~repro.serve.scheduler.QueryOutcome`) and shed
    (:class:`~repro.serve.scheduler.ShedOutcome`).

    ``reason`` is ``"retries_exhausted"`` (lost or refused more than
    ``max_retries`` times) or ``"fleet_lost"`` (no accepting device
    left and none joining — the query could never be admitted again).
    ``attempts`` counts the retries actually performed, and
    ``last_device`` the device whose crash finally killed it (``None``
    for admission-refusal or fleet-loss failures).
    """

    qid: str
    submit_at: float
    reason: str
    attempts: int
    last_device: int | None = None


class _FaultRun:
    """Mutable per-run fault state the scheduler threads through a
    faulted run (``None`` on the fault-free path — every hook is gated
    on it, which is what keeps empty plans bit-identical).

    Owns the due-crash queue, the per-query transient-failure budget,
    the retry backlog (a heap of ``(ready_at, seq, request)`` — ``seq``
    preserves submission order among same-time retries), the attempt
    counters that drive retry aliases and budgets, and the growing
    :attr:`failed` list.
    """

    def __init__(
        self,
        plan: FaultPlan,
        *,
        max_retries: int,
        backoff: float,
    ) -> None:
        self.plan = plan
        self.crashes: "deque[DeviceCrash]" = deque(
            sorted(plan.crashes, key=lambda crash: (crash.at, crash.device))
        )
        self.admission_faults = dict(plan.admission_failures)
        #: Failures suffered so far per qid — also the retry
        #: *generation*: attempt N re-admits under alias ``qid~rN``.
        self.attempts: dict[str, int] = {}
        self.failed: list[FailedOutcome] = []
        #: Requests currently admitted somewhere, so a crash can map the
        #: lost qids back to re-enqueueable requests.
        self.live: dict[str, Any] = {}
        self.retry_heap: list[tuple[float, int, Any]] = []
        self._seq = 0
        self.max_retries = max_retries
        self.backoff = backoff
        #: Crash times actually applied, by device index.
        self.crashed_devices: dict[int, float] = {}

    # -- queries ---------------------------------------------------------
    def has_work(self) -> bool:
        """Retries waiting on their backoff — work the admission queue
        does not know about yet, so run loops must not exit on it.
        (Pending crashes alone are *not* work: with nothing running and
        nothing queued they are no-ops.)"""
        return bool(self.retry_heap)

    def next_wake(self) -> float | None:
        """Earliest future fault event the clock must stop at: the next
        crash (so in-flight queries cannot simulate through it) or the
        next retry's ready time (so re-admission is not delayed past
        its backoff).  ``None`` when neither remains."""
        candidates = []
        if self.crashes:
            candidates.append(self.crashes[0].at)
        if self.retry_heap:
            candidates.append(self.retry_heap[0][0])
        return min(candidates) if candidates else None

    def generation(self, qid: str) -> int:
        """How many times ``qid`` has failed so far — 0 for a first
        admission; re-admission N runs under task alias ``qid~rN``."""
        return self.attempts.get(qid, 0)

    # -- transitions -----------------------------------------------------
    def take_admission_fault(self, qid: str) -> bool:
        """Consume one planned transient admission failure for ``qid``
        (``False`` when none remain)."""
        remaining = self.admission_faults.get(qid, 0)
        if remaining <= 0:
            return False
        self.admission_faults[qid] = remaining - 1
        return True

    def record_failure(
        self,
        request: "QueryRequest",
        at: float,
        *,
        device: int | None = None,
    ) -> bool:
        """``request`` was lost (crash) or refused (transient fault) at
        simulated time ``at``.  Charges one attempt; within budget the
        request is queued for re-admission at ``at + backoff * attempt``
        (linear backoff) and ``True`` is returned, otherwise a
        :class:`FailedOutcome` with reason ``"retries_exhausted"`` is
        recorded and ``False`` returned."""
        attempt = self.attempts.get(request.qid, 0) + 1
        self.attempts[request.qid] = attempt
        if attempt > self.max_retries:
            self.failed.append(
                FailedOutcome(
                    qid=request.qid,
                    submit_at=request.submit_at,
                    reason="retries_exhausted",
                    attempts=attempt - 1,
                    last_device=device,
                )
            )
            return False
        heapq.heappush(self.retry_heap, (at + self.backoff * attempt, self._seq, request))
        self._seq += 1
        return True

    def fail_now(
        self,
        request: "QueryRequest",
        *,
        reason: str,
        device: int | None = None,
    ) -> None:
        """Record a terminal failure without charging or retrying."""
        self.failed.append(
            FailedOutcome(
                qid=request.qid,
                submit_at=request.submit_at,
                reason=reason,
                attempts=self.attempts.get(request.qid, 0),
                last_device=device,
            )
        )

    def requeue_ready(self, queue: "deque[Any]", clock: float) -> int:
        """Move every retry whose ready time has arrived to the *front*
        of the admission queue (in ready order — the earliest-ready
        retry ends up at the head), returning how many moved.  Front
        placement means a recovered query does not also lose its FIFO
        position to arrivals that came after it."""
        ready: list[tuple[float, int, Any]] = []
        while self.retry_heap and self.retry_heap[0][0] <= clock:
            ready.append(heapq.heappop(self.retry_heap))
        for _, _, request in reversed(ready):
            queue.appendleft(request)
        return len(ready)

    def fail_stranded(self, queue: "deque[Any]") -> int:
        """No accepting device remains and none will join: everything
        still waiting — the admission queue *and* the retry backlog —
        fails with reason ``"fleet_lost"``.  Returns how many failed."""
        count = 0
        for request in queue:
            self.fail_now(request, reason="fleet_lost")
            count += 1
        queue.clear()
        while self.retry_heap:
            _, _, request = heapq.heappop(self.retry_heap)
            self.fail_now(request, reason="fleet_lost")
            count += 1
        return count


def check_fault_invariants(
    report: Any,
    plan: FaultPlan,
    *,
    arrivals: int,
    max_retries: int,
) -> None:
    """Audit a faulted run's report; raise
    :class:`~repro.errors.FaultInvariantError` on any violation.

    Duck-typed over :class:`~repro.serve.scheduler.ServeReport` and
    :class:`~repro.serve.scheduler.StreamReport`: reads ``outcomes``,
    ``failed``, ``shed`` (absent on batch reports), ``arenas`` and
    ``schedule`` (absent on stream reports).  Checks:

    * **conservation** — every arrival is exactly one of completed,
      shed, or failed;
    * **ledgers drain** — every device arena passes its invariants and
      holds no reservation (crash reconciliation returned every grant);
    * **crash-time safety** — no completed query was admitted on a
      crashed device at/after its crash, none finished there after it,
      and (when a merged schedule is present) no surviving task on a
      crashed device finishes past the crash;
    * **retry budgets** — no outcome records more retries than
      ``max_retries`` and no failure more attempts than that;
    * **deadline recording** — no outcome finishes after its hard
      deadline (``deadline_at``, from its
      :class:`~repro.serve.admission.QueryClass`) unless it is recorded
      as a miss (``deadline_missed``), and nothing is recorded as a
      miss that finished in time.
    """
    completed = list(report.outcomes)
    failed = list(getattr(report, "failed", ()) or ())
    shed = list(getattr(report, "shed", ()) or ())
    if len(completed) + len(shed) + len(failed) != arrivals:
        raise FaultInvariantError(
            f"conservation violated: {len(completed)} completed + "
            f"{len(shed)} shed + {len(failed)} failed != {arrivals} "
            "arrivals"
        )
    for arena in getattr(report, "arenas", None) or ():
        arena.check_invariants()
        if not arena.drained:
            raise FaultInvariantError(
                f"device {arena.device} arena still holds "
                f"{sorted(arena.reservations)} after a faulted run"
            )
    crash_at = {crash.device: crash.at for crash in plan.crashes}
    for outcome in completed:
        crashed = crash_at.get(outcome.device)
        if crashed is not None:
            if outcome.admit_at >= crashed:
                raise FaultInvariantError(
                    f"{outcome.qid!r} was admitted on device "
                    f"{outcome.device} at t={outcome.admit_at}, at or "
                    f"after its crash at t={crashed}"
                )
            if outcome.finish_at > crashed:
                raise FaultInvariantError(
                    f"{outcome.qid!r} completed on crashed device "
                    f"{outcome.device} at t={outcome.finish_at}, after "
                    f"the crash at t={crashed}"
                )
        retries = getattr(outcome, "retries", 0)
        if retries > max_retries:
            raise FaultInvariantError(
                f"{outcome.qid!r} recorded {retries} retries, over the "
                f"budget of {max_retries}"
            )
        deadline_at = getattr(outcome, "deadline_at", math.inf)
        missed = bool(getattr(outcome, "deadline_missed", False))
        if outcome.finish_at > deadline_at and not missed:
            raise FaultInvariantError(
                f"{outcome.qid!r} finished at t={outcome.finish_at}, "
                f"past its hard deadline t={deadline_at}, but was not "
                "recorded as a deadline miss"
            )
        if missed and outcome.finish_at <= deadline_at:
            raise FaultInvariantError(
                f"{outcome.qid!r} is recorded as a deadline miss but "
                f"finished at t={outcome.finish_at}, within its "
                f"deadline t={deadline_at}"
            )
    for failure in failed:
        if failure.attempts > max_retries:
            raise FaultInvariantError(
                f"failed query {failure.qid!r} records "
                f"{failure.attempts} attempts, over the budget of "
                f"{max_retries}"
            )
    schedule = getattr(report, "schedule", None)
    if schedule is not None:
        for name, item in schedule.tasks.items():
            crashed = crash_at.get(item.task.device)
            if crashed is not None and item.finish > crashed:
                raise FaultInvariantError(
                    f"task {name!r} on crashed device "
                    f"{item.task.device} finishes at t={item.finish}, "
                    f"after the crash at t={crashed}"
                )
