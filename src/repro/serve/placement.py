"""Multi-GPU placement: a device fleet and the policies that shard it.

The single-device scheduler answers "admit, degrade, or wait?" against
one arena and one engine.  Sharded serving adds a third axis — *where*
— and this module owns it:

* :class:`DeviceState` — one GPU's serving state: its private
  :class:`~repro.gpusim.arena.DeviceMemoryArena`, its own
  :class:`~repro.pipeline.engine.PipelineEngine` (with independent
  ``lane_state``, so online extension stays per-device), the tasks
  lowered onto it so far, and the running/predicted-finish books the
  wait-vs-degrade estimator reads;
* :class:`DeviceFleet` — the ordered collection of K device states plus
  the aggregate views reports need (merged schedule, fleet makespan,
  per-device peaks, drain check);
* :class:`PlacementPolicy` and its registry — given the per-device
  admission candidates for one query, pick the device.  Policies only
  ever choose among *feasible, non-degraded* candidates; whether to
  accept a degraded placement or wait is the scheduler's
  admission-policy call (it compares the best degraded placement across
  devices against the fleet-wide estimated wait, using cached
  estimates), not a placement concern.

Everything here is deterministic: candidate lists arrive in device
order, ties break toward the lowest device index, and the round-robin
cursor is per-run state — identical request lists shard identically.
With one device every policy degenerates to "device 0", which is what
keeps ``devices=1`` bit-identical to the historical single-device
scheduler (pinned against recorded golden schedules by
``tests/serve/test_placement_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterator

from repro.errors import InvalidConfigError, SchedulingError
from repro.gpusim.arena import DeviceMemoryArena
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Schedule, Task

#: Registry keys of the built-in policies.
LEAST_LOADED = "least_loaded"
FIRST_FIT = "first_fit"
ROUND_ROBIN = "round_robin"


@dataclass
class DeviceState:
    """One GPU's serving state inside a scheduler run.

    Memory quantities are **bytes**, every time is **simulated
    seconds**.  The engine is created lazily (online mode) with the lane
    widths declared up to the first wave; ``schedule`` always covers
    exactly the tasks lowered onto this device so far.
    """

    index: int
    arena: DeviceMemoryArena
    #: Lane widths declared for this device's resource pools so far.
    resources: dict[str, int] = field(default_factory=dict)
    #: Every task lowered onto this device, in admission order.
    tasks: list[Task] = field(default_factory=list)
    #: Tasks admitted since the last engine pass (online mode).
    wave_tasks: list[Task] = field(default_factory=list)
    engine: PipelineEngine | None = None
    schedule: Schedule = field(default_factory=Schedule)
    #: Tasks were added since ``schedule`` was computed.
    dirty: bool = False
    #: Query ids currently holding a reservation on this device.
    running: set[str] = field(default_factory=set)
    #: Expected finish per running query — engine-accurate once the
    #: query has been through a pass, alone-estimate before that.
    predicted_finish: dict[str, float] = field(default_factory=dict)

    @property
    def free_bytes(self) -> int:
        return self.arena.free_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.arena.capacity_bytes

    def busy_until(self) -> float:
        """Estimated time this device finishes everything now running
        (0.0 when idle) — the load signal :data:`LEAST_LOADED` ranks."""
        return max(self.predicted_finish.values(), default=0.0)


@dataclass(frozen=True)
class PlacementCandidate:
    """One device's admission offer for the query under consideration.

    ``strategy`` is the registry key the planner ladder picks under the
    device's *current* headroom, ``need_bytes`` that strategy's whole
    device footprint, ``fits`` whether the footprint fits the headroom
    right now, and ``degraded`` whether the offer is cheaper than the
    query's unconstrained solo placement.
    """

    device: int
    strategy: str
    need_bytes: int
    fits: bool
    degraded: bool


class PlacementPolicy:
    """Picks the device for one admission from feasible candidates.

    :meth:`select` receives only candidates with ``fits=True`` and
    ``degraded=False``, in device order, and must return one of them.
    Implementations must be deterministic; any per-run state (the
    round-robin cursor) lives on the instance, and the scheduler
    creates a fresh instance per run.
    """

    #: Registry key; subclasses must override.
    key: ClassVar[str] = ""

    def reset(self) -> None:
        """Forget per-run state.  The scheduler calls this at the start
        of every run so a policy *instance* reused across runs (rather
        than recreated from its registry key) still places
        deterministically."""

    def select(
        self, candidates: list[PlacementCandidate], fleet: "DeviceFleet"
    ) -> PlacementCandidate:
        raise NotImplementedError


class LeastLoadedPolicy(PlacementPolicy):
    """Default: the device estimated to finish its running work first.

    Load is :meth:`DeviceState.busy_until` — the max predicted finish
    of the queries currently holding memory — so an idle device always
    wins and ties (e.g. an all-idle fleet) break toward the lowest
    device index.
    """

    key = LEAST_LOADED

    def select(
        self, candidates: list[PlacementCandidate], fleet: "DeviceFleet"
    ) -> PlacementCandidate:
        return min(
            candidates,
            key=lambda c: (fleet[c.device].busy_until(), c.device),
        )


class FirstFitPolicy(PlacementPolicy):
    """Memory-fit first: the lowest-indexed device where the query fits.

    Packs queries onto early devices and only spills rightward under
    memory pressure — maximizing co-residency per device, at the cost
    of lane contention the least-loaded policy avoids.
    """

    key = FIRST_FIT

    def select(
        self, candidates: list[PlacementCandidate], fleet: "DeviceFleet"
    ) -> PlacementCandidate:
        return min(candidates, key=lambda c: c.device)


class RoundRobinPolicy(PlacementPolicy):
    """Baseline: cycle the admission cursor across devices.

    Ignores load entirely; each admission goes to the first feasible
    device at or after the cursor (wrapping), and the cursor advances
    past it.  Kept as the control the smarter policies are measured
    against.
    """

    key = ROUND_ROBIN

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select(
        self, candidates: list[PlacementCandidate], fleet: "DeviceFleet"
    ) -> PlacementCandidate:
        by_device = {c.device: c for c in candidates}
        for offset in range(len(fleet)):
            device = (self._cursor + offset) % len(fleet)
            candidate = by_device.get(device)
            if candidate is not None:
                self._cursor = (device + 1) % len(fleet)
                return candidate
        raise InvalidConfigError("select() called with no candidates")


_POLICIES: dict[str, type[PlacementPolicy]] = {
    policy.key: policy
    for policy in (LeastLoadedPolicy, FirstFitPolicy, RoundRobinPolicy)
}


def registered_placement_policies() -> tuple[str, ...]:
    """Registry keys of the available policies, in preference order."""
    return tuple(_POLICIES)


def create_placement_policy(key: str | PlacementPolicy) -> PlacementPolicy:
    """Instantiate a policy by registry key (or pass an instance through).

    A fresh instance per scheduler run keeps stateful policies (the
    round-robin cursor) deterministic across runs.
    """
    if isinstance(key, PlacementPolicy):
        return key
    try:
        factory = _POLICIES[key]
    except KeyError:
        raise InvalidConfigError(
            f"unknown placement policy {key!r}; registered: "
            f"{', '.join(_POLICIES)}"
        ) from None
    return factory()


class DeviceFleet:
    """K per-device arenas and engines, indexed by device id.

    ``capacities`` gives each device's memory in **bytes** (one entry
    per device; a homogeneous fleet repeats the same value).  ``lanes``
    seeds every device's resource pools with the same lane widths —
    each device still gets its *own* pools; the shared dict only sets
    their widths.
    """

    def __init__(
        self, capacities: list[int], *, lanes: dict[str, int] | None = None
    ) -> None:
        if not capacities:
            raise InvalidConfigError("a fleet needs at least one device")
        self.devices = [
            DeviceState(
                index=index,
                arena=DeviceMemoryArena(capacity, device=index),
                resources=dict(lanes or {}),
            )
            for index, capacity in enumerate(capacities)
        ]

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[DeviceState]:
        return iter(self.devices)

    def __getitem__(self, index: int) -> DeviceState:
        return self.devices[index]

    # -- aggregate views ------------------------------------------------
    def any_running(self) -> bool:
        return any(device.running for device in self.devices)

    def merged_schedule(self) -> Schedule:
        """One reporting view over all devices (see
        :meth:`~repro.pipeline.tasks.Schedule.merged`).  With one device
        this is *the* device's schedule object, unchanged — the
        ``devices=1`` bit-identity guarantee extends to the report."""
        if len(self.devices) == 1:
            return self.devices[0].schedule
        return Schedule.merged([device.schedule for device in self.devices])

    def device_peaks(self) -> tuple[int, ...]:
        return tuple(device.arena.peak_bytes for device in self.devices)

    def check_drained(self) -> None:
        """Every arena's invariants plus: all reservations returned.

        Called once per completed run; a reservation that outlives its
        query is a scheduler bug (a leaked grant would starve later
        admissions), so it raises rather than warns.
        """
        for device in self.devices:
            device.arena.check_invariants()
            if not device.arena.drained:
                raise SchedulingError(
                    f"device {device.index} still holds reservations for "
                    f"{sorted(device.arena.reservations)} after the run "
                    "drained"
                )
