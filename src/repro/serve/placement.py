"""Multi-GPU placement: a device fleet and the policies that shard it.

The single-device scheduler answers "admit, degrade, or wait?" against
one arena and one engine.  Sharded serving adds a third axis — *where*
— and this module owns it:

* :class:`DeviceState` — one GPU's serving state: its private
  :class:`~repro.gpusim.arena.DeviceMemoryArena`, its own
  :class:`~repro.pipeline.engine.PipelineEngine` (with independent
  ``lane_state``, so online extension stays per-device), the tasks
  lowered onto it so far, and the running/predicted-finish books the
  wait-vs-degrade estimator reads;
* :class:`DeviceFleet` — the ordered collection of K device states plus
  the aggregate views reports need (merged schedule, fleet makespan,
  per-device peaks, drain check);
* :class:`PlacementPolicy` and its registry — given the per-device
  admission candidates for one query, pick the device.  Policies only
  ever choose among *feasible, non-degraded* candidates; whether to
  accept a degraded placement or wait is the scheduler's
  admission-policy call (it compares the best degraded placement across
  devices against the fleet-wide estimated wait, using cached
  estimates), not a placement concern.

Everything here is deterministic: candidate lists arrive in device
order, ties break toward the lowest device index, and the round-robin
cursor is per-run state — identical request lists shard identically.
With one device every policy degenerates to "device 0", which is what
keeps ``devices=1`` bit-identical to the historical single-device
scheduler (pinned against recorded golden schedules by
``tests/serve/test_placement_properties.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Iterator

from repro.errors import FleetEventError, InvalidConfigError, SchedulingError
from repro.gpusim.arena import DeviceMemoryArena
from repro.gpusim.calibration import Calibration
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Schedule, Task

#: Registry keys of the built-in policies.
LEAST_LOADED = "least_loaded"
FIRST_FIT = "first_fit"
ROUND_ROBIN = "round_robin"


@dataclass
class DeviceState:
    """One GPU's serving state inside a scheduler run.

    Memory quantities are **bytes**, every time is **simulated
    seconds**.  The engine is created lazily (online mode) with the lane
    widths declared up to the first wave; ``schedule`` always covers
    exactly the tasks lowered onto this device so far.
    """

    index: int
    arena: DeviceMemoryArena
    #: This device's own cost-model calibration (``None`` means the
    #: scheduler's fleet-wide default).  Every estimate, plan and
    #: placement decision for a query lands on *this* calibration — a
    #: heterogeneous fleet mixes fast and slow devices, so a global
    #: calibration would mis-cost every placement comparison.
    calibration: Calibration | None = None
    #: Lane widths declared for this device's resource pools so far.
    resources: dict[str, int] = field(default_factory=dict)
    #: Every task lowered onto this device, in admission order.
    tasks: list[Task] = field(default_factory=list)
    #: Tasks admitted since the last engine pass (online mode).
    wave_tasks: list[Task] = field(default_factory=list)
    engine: PipelineEngine | None = None
    schedule: Schedule = field(default_factory=Schedule)
    #: Tasks were added since ``schedule`` was computed.
    dirty: bool = False
    #: Query ids currently holding a reservation on this device.
    running: set[str] = field(default_factory=set)
    #: Expected finish per running query — engine-accurate once the
    #: query has been through a pass, alone-estimate before that.
    predicted_finish: dict[str, float] = field(default_factory=dict)
    #: The device was asked to leave the fleet: it finishes in-flight
    #: work but receives no further placements (including steals).
    retiring: bool = False
    #: Retirement completed — the device drained and its engine was
    #: sealed; kept in the fleet for reporting and arena audits.
    retired: bool = False
    #: The device failed ungracefully (:meth:`crash`): in-flight
    #: queries were lost, their unfinished tasks invalidated, and no
    #: further placements may land here.
    crashed: bool = False
    #: Simulated time of the crash (``None`` while healthy).
    crashed_at: float | None = None

    @property
    def free_bytes(self) -> int:
        return self.arena.free_bytes

    @property
    def capacity_bytes(self) -> int:
        return self.arena.capacity_bytes

    @property
    def accepting(self) -> bool:
        """May new queries be placed here?  False from the moment
        retirement is requested (not merely once the drain completes)
        and forever after a crash."""
        return not (self.retiring or self.retired or self.crashed)

    def busy_until(self) -> float:
        """Estimated time this device finishes everything now running
        (0.0 when idle) — the load signal :data:`LEAST_LOADED` ranks."""
        return max(self.predicted_finish.values(), default=0.0)

    def finalize_retirement(self) -> bool:
        """Complete a requested retirement once the device drained.

        Returns ``True`` the moment the transition happens: the engine
        (if one exists — batch mode never instantiates it) is sealed
        via :meth:`~repro.pipeline.engine.PipelineEngine.retire`, so a
        later placement bug raises instead of resurrecting the device.
        """
        if self.crashed or not self.retiring or self.retired or self.running:
            # A crash supersedes a pending retirement: the engine was
            # already sealed (harder) and there is nothing left to drain.
            return False
        if self.engine is not None:
            self.engine.retire()
        self.retired = True
        return True

    def crash(self, at: float) -> list[str]:
        """Ungraceful failure at simulated time ``at``: every running
        query is lost and returned (sorted), their unfinished tasks are
        invalidated from the schedule (and the engine's books, in
        lockstep, via :meth:`~repro.pipeline.engine.PipelineEngine.crash`
        when an engine exists — batch mode prunes the recorded schedule
        directly), and the device stops accepting forever.  The arena
        is **not** touched here — the scheduler reconciles it with the
        lost-query list so the release bookkeeping stays in one place.
        """
        lost = sorted(self.running)
        if self.engine is not None:
            self.engine.crash(self.schedule, at)
        else:
            stale = [
                name
                for name, item in self.schedule.tasks.items()
                if item.finish > at
            ]
            for name in stale:
                del self.schedule.tasks[name]
        self.wave_tasks = []
        self.running.clear()
        self.predicted_finish.clear()
        self.dirty = False
        self.crashed = True
        self.crashed_at = at
        return lost


@dataclass(frozen=True)
class PlacementCandidate:
    """One device's admission offer for the query under consideration.

    ``strategy`` is the registry key the planner ladder picks under the
    device's *current* headroom, ``need_bytes`` that strategy's whole
    device footprint, ``fits`` whether the footprint fits the headroom
    right now, and ``degraded`` whether the offer is cheaper than the
    query's unconstrained solo placement.  ``est_seconds`` is the
    estimated makespan of running the offer alone **on this device** —
    computed with the device's own calibration and memory grant, so on
    a heterogeneous fleet the same query carries different estimates
    per device and policies can compare actual speed instead of
    assuming uniform devices.
    """

    device: int
    strategy: str
    need_bytes: int
    fits: bool
    degraded: bool
    #: Alone-makespan of this offer under the device's calibration, in
    #: **simulated seconds** (0.0 when the scheduler did not estimate).
    est_seconds: float = 0.0


class PlacementPolicy:
    """Picks the device for one admission from feasible candidates.

    :meth:`select` receives only candidates with ``fits=True`` and
    ``degraded=False``, in device order, and must return one of them.
    Implementations must be deterministic; any per-run state (the
    round-robin cursor) lives on the instance, and the scheduler
    creates a fresh instance per run.
    """

    #: Registry key; subclasses must override.
    key: ClassVar[str] = ""

    def reset(self) -> None:
        """Forget per-run state.  The scheduler calls this at the start
        of every run so a policy *instance* reused across runs (rather
        than recreated from its registry key) still places
        deterministically."""

    def select(
        self, candidates: list[PlacementCandidate], fleet: "DeviceFleet"
    ) -> PlacementCandidate:
        raise NotImplementedError


class LeastLoadedPolicy(PlacementPolicy):
    """Default: the device estimated to *complete this query* first.

    Ranks candidates by ``busy_until + est_seconds`` — the device's
    drain estimate (:meth:`DeviceState.busy_until`, max predicted
    finish of the queries currently holding memory) plus the offer's
    own alone-makespan under that device's calibration.  On a
    heterogeneous fleet a fast-but-busy device can therefore beat an
    idle slow one.  Ties fall back to the bare load signal and then the
    lowest device index; on a homogeneous fleet ``est_seconds`` is the
    same constant on every device, so the ranking reduces *exactly* to
    the historical ``(busy_until, device)`` order — the property suite
    pins that bit-identity against the recorded golden schedules.
    """

    key = LEAST_LOADED

    def select(
        self, candidates: list[PlacementCandidate], fleet: "DeviceFleet"
    ) -> PlacementCandidate:
        return min(
            candidates,
            key=lambda c: (
                fleet[c.device].busy_until() + c.est_seconds,
                fleet[c.device].busy_until(),
                c.device,
            ),
        )


class FirstFitPolicy(PlacementPolicy):
    """Memory-fit first: the lowest-indexed device where the query fits.

    Packs queries onto early devices and only spills rightward under
    memory pressure — maximizing co-residency per device, at the cost
    of lane contention the least-loaded policy avoids.
    """

    key = FIRST_FIT

    def select(
        self, candidates: list[PlacementCandidate], fleet: "DeviceFleet"
    ) -> PlacementCandidate:
        return min(candidates, key=lambda c: c.device)


class RoundRobinPolicy(PlacementPolicy):
    """Baseline: cycle the admission cursor across devices.

    Ignores load entirely; each admission goes to the first feasible
    device at or after the cursor (wrapping), and the cursor advances
    past it.  Kept as the control the smarter policies are measured
    against.
    """

    key = ROUND_ROBIN

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def select(
        self, candidates: list[PlacementCandidate], fleet: "DeviceFleet"
    ) -> PlacementCandidate:
        by_device = {c.device: c for c in candidates}
        for offset in range(len(fleet)):
            device = (self._cursor + offset) % len(fleet)
            candidate = by_device.get(device)
            if candidate is not None:
                self._cursor = (device + 1) % len(fleet)
                return candidate
        raise InvalidConfigError("select() called with no candidates")


_POLICIES: dict[str, type[PlacementPolicy]] = {
    policy.key: policy
    for policy in (LeastLoadedPolicy, FirstFitPolicy, RoundRobinPolicy)
}


def registered_placement_policies() -> tuple[str, ...]:
    """Registry keys of the available policies, in preference order."""
    return tuple(_POLICIES)


def create_placement_policy(key: str | PlacementPolicy) -> PlacementPolicy:
    """Instantiate a policy by registry key (or pass an instance through).

    A fresh instance per scheduler run keeps stateful policies (the
    round-robin cursor) deterministic across runs.
    """
    if isinstance(key, PlacementPolicy):
        return key
    try:
        factory = _POLICIES[key]
    except KeyError:
        raise InvalidConfigError(
            f"unknown placement policy {key!r}; registered: "
            f"{', '.join(_POLICIES)}"
        ) from None
    return factory()


class DeviceFleet:
    """Per-device arenas and engines, indexed by device id.

    ``capacities`` gives each device's memory in **bytes** (one entry
    per device; a homogeneous fleet repeats the same value), and
    ``calibrations`` optionally pairs each device with its own
    cost-model :class:`~repro.gpusim.calibration.Calibration` (``None``
    entries — or ``calibrations=None`` — mean the scheduler's fleet-wide
    default; a heterogeneous fleet mixes values).  ``lanes`` seeds every
    device's resource pools with the same lane widths — each device
    still gets its *own* pools; the shared dict only sets their widths.

    The fleet is **elastic**: :meth:`add_device` joins a new device
    mid-run (it starts receiving placements at the next admission) and
    :meth:`retire_device` begins a drain — the device finishes its
    in-flight queries, then its engine is sealed
    (:meth:`DeviceState.finalize_retirement`).  Retired devices stay in
    :attr:`devices` so indices remain stable and reports keep their
    history; :meth:`active` yields only the devices placements may
    target.
    """

    def __init__(
        self,
        capacities: list[int],
        *,
        lanes: dict[str, int] | None = None,
        calibrations: "list[Calibration | None] | None" = None,
    ) -> None:
        if not capacities:
            raise InvalidConfigError("a fleet needs at least one device")
        if calibrations is not None and len(calibrations) != len(capacities):
            raise InvalidConfigError(
                f"fleet got {len(capacities)} capacities but "
                f"{len(calibrations)} calibrations; one per device"
            )
        self._lanes = dict(lanes or {})
        self.devices: list[DeviceState] = []
        for index, capacity in enumerate(capacities):
            self.add_device(
                capacity,
                calibration=calibrations[index] if calibrations else None,
            )

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[DeviceState]:
        return iter(self.devices)

    def __getitem__(self, index: int) -> DeviceState:
        return self.devices[index]

    # -- elasticity -----------------------------------------------------
    def add_device(
        self,
        capacity_bytes: int,
        *,
        calibration: Calibration | None = None,
    ) -> DeviceState:
        """Join a new device (its id is the next free index) and return
        its state.  Legal between admissions of a live run: the device
        simply shows up in the next placement round's candidate list.
        """
        device = DeviceState(
            index=len(self.devices),
            arena=DeviceMemoryArena(capacity_bytes, device=len(self.devices)),
            calibration=calibration,
            resources=dict(self._lanes),
        )
        self.devices.append(device)
        return device

    def retire_device(self, index: int) -> DeviceState:
        """Begin retiring device ``index``: it stops receiving
        placements immediately and finishes in-flight work.  The last
        accepting device cannot retire (an empty fleet could never
        admit again), and double retirement is an error — both raise
        :class:`~repro.errors.InvalidConfigError`.
        """
        try:
            device = self.devices[index]
        except IndexError:
            raise InvalidConfigError(
                f"cannot retire unknown device {index} of a "
                f"{len(self.devices)}-device fleet"
            ) from None
        if not device.accepting:
            raise InvalidConfigError(
                f"device {index} is already retiring or retired"
            )
        if sum(1 for d in self.devices if d.accepting) <= 1:
            raise InvalidConfigError(
                f"cannot retire device {index}: it is the last accepting "
                "device of the fleet"
            )
        device.retiring = True
        device.finalize_retirement()  # already idle -> seal immediately
        return device

    def crash_device(self, index: int, at: float) -> list[str]:
        """Fail device ``index`` ungracefully at simulated time ``at``,
        returning the sorted query ids lost with it.

        Unlike :meth:`retire_device` there is no drain: in-flight
        queries die, and the scheduler is responsible for reconciling
        the device's arena against the returned loss list and retrying
        the lost queries elsewhere.  A crash may hit a retiring or
        retired device (killing whatever was still draining), but not a
        device that already crashed, and — unlike retirement — it *may*
        take down the last accepting device: real failures do not wait
        for spare capacity.
        """
        try:
            device = self.devices[index]
        except IndexError:
            raise InvalidConfigError(
                f"cannot crash unknown device {index} of a "
                f"{len(self.devices)}-device fleet"
            ) from None
        if device.crashed:
            raise InvalidConfigError(f"device {index} already crashed")
        return device.crash(at)

    def active(self) -> list[DeviceState]:
        """The devices placements may target, in index order."""
        return [device for device in self.devices if device.accepting]

    def finalize_retirements(self) -> None:
        """Seal every requested retirement whose device has drained —
        called after each batch of release events."""
        for device in self.devices:
            device.finalize_retirement()

    # -- aggregate views ------------------------------------------------
    def any_running(self) -> bool:
        return any(device.running for device in self.devices)

    def merged_schedule(self) -> Schedule:
        """One reporting view over all devices (see
        :meth:`~repro.pipeline.tasks.Schedule.merged`).  With one device
        this is *the* device's schedule object, unchanged — the
        ``devices=1`` bit-identity guarantee extends to the report."""
        if len(self.devices) == 1:
            return self.devices[0].schedule
        return Schedule.merged([device.schedule for device in self.devices])

    def device_peaks(self) -> tuple[int, ...]:
        return tuple(device.arena.peak_bytes for device in self.devices)

    def device_capacities(self) -> tuple[int, ...]:
        return tuple(device.capacity_bytes for device in self.devices)

    def check_drained(self) -> None:
        """Every arena's invariants plus: all reservations returned.

        Called once per completed run; a reservation that outlives its
        query is a scheduler bug (a leaked grant would starve later
        admissions), so it raises rather than warns.
        """
        for device in self.devices:
            device.arena.check_invariants()
            if not device.arena.drained:
                raise SchedulingError(
                    f"device {device.index} still holds reservations for "
                    f"{sorted(device.arena.reservations)} after the run "
                    "drained"
                )


@dataclass(frozen=True)
class FleetEvent:
    """One timed elasticity event of a serving run.

    Schedulers take a list of these (``fleet_events=``) and apply each
    one the first time the simulated clock reaches ``at`` — always
    *between* admissions, never mid-admission, so a placement decision
    only ever sees a consistent fleet.  ``action`` is ``"add"`` (a
    device with ``capacity_bytes`` of memory and an optional per-device
    ``calibration`` joins at the next free index) or ``"retire"``
    (device ``device`` stops receiving placements at ``at`` and drains).
    Events are deterministic inputs, which keeps elastic runs exactly
    reproducible — re-running the same request list with the same event
    list yields the same schedule.
    """

    #: Simulated time at which the event takes effect.
    at: float
    action: str
    #: ``add`` only: the joining device's arena capacity in bytes.
    capacity_bytes: int | None = None
    #: ``add`` only: the joining device's calibration (``None`` =
    #: scheduler default).
    calibration: Calibration | None = None
    #: ``retire`` only: index of the device asked to leave.
    device: int | None = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise InvalidConfigError(
                f"fleet event time must be >= 0, got {self.at!r}"
            )
        if self.action == "add":
            if self.capacity_bytes is None or self.capacity_bytes <= 0:
                raise InvalidConfigError(
                    "fleet 'add' event needs a positive capacity_bytes, "
                    f"got {self.capacity_bytes!r}"
                )
            if self.device is not None:
                raise InvalidConfigError(
                    "fleet 'add' event must not name a device: the new "
                    "device takes the next free index"
                )
        elif self.action == "retire":
            if self.device is None or self.device < 0:
                raise InvalidConfigError(
                    "fleet 'retire' event needs a device index, got "
                    f"{self.device!r}"
                )
            if self.capacity_bytes is not None or self.calibration is not None:
                raise InvalidConfigError(
                    "fleet 'retire' event takes no capacity or calibration"
                )
        else:
            raise InvalidConfigError(
                f"unknown fleet event action {self.action!r}; expected "
                "'add' or 'retire'"
            )


def validate_fleet_events(
    events: "list[FleetEvent] | tuple[FleetEvent, ...]",
    initial_devices: int,
) -> None:
    """Reject an inconsistent elasticity schedule *before* the run.

    Simulates the fleet's device count through the events in
    chronological order (stable-sorted by ``at``, preserving list order
    for ties — exactly how the schedulers apply them) and raises
    :class:`~repro.errors.FleetEventError` when a ``retire`` names a
    device index the fleet has not reached by that time, or retires the
    same device twice.  Per-event field validation already happened in
    :meth:`FleetEvent.__post_init__`; this catches the cross-event
    inconsistencies a single event cannot see.  Without this check a
    bad schedule would fail mid-run, after the simulation has already
    mutated arenas and engines.
    """
    count = initial_devices
    gone: set[int] = set()
    for event in sorted(events, key=lambda e: e.at):
        if event.action == "add":
            count += 1
        else:  # "retire" — __post_init__ rejected everything else
            assert event.device is not None
            if event.device >= count:
                raise FleetEventError(
                    f"fleet event at t={event.at} retires device "
                    f"{event.device}, but only {count} device(s) exist "
                    "by then (devices are indexed from 0 in join order)"
                )
            if event.device in gone:
                raise FleetEventError(
                    f"fleet event at t={event.at} retires device "
                    f"{event.device} twice"
                )
            gone.add(event.device)
