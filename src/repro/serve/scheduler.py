"""Admission-controlled multi-query scheduling on a simulated GPU fleet.

The single-query planner answers "which join strategy fits this
workload on an idle device?".  Serving inverts the question: many
queries contend for device memory and copy/exec lanes, and the right
strategy for a query depends on how much memory is free *when it is
admitted* — and, on a sharded fleet, *where*.  The scheduler:

* keeps a FIFO of submitted queries and a
  :class:`~repro.serve.placement.DeviceFleet` of K devices, each with
  its own :class:`~repro.gpusim.arena.DeviceMemoryArena` and its own
  :class:`~repro.pipeline.engine.PipelineEngine` (``devices=1``, the
  default, is the classic single-GPU scheduler, bit-identical to the
  pre-sharding implementation);
* on admission, re-plans the query against every device's current
  headroom (``choose_strategy_name(..., available_bytes=...)``) and
  asks the :class:`~repro.serve.placement.PlacementPolicy` to pick
  among the devices that can host the query's *unconstrained* solo
  placement right now.  When no device can, the best degraded
  placement across the fleet (by cached alone-estimate) competes with
  the fleet-wide estimated wait: a query degrades only when the
  cheaper placement is within ``max_degradation`` of its solo makespan
  *and* starting now beats queueing for the memory the solo placement
  wants on whichever device frees it first;
* lowers every admitted query's :class:`JoinPlan` into **its device's**
  engine, task names prefixed with the query id, tagged with the
  device, and released at the admission time, so H2D/D2H/GPU resource
  lanes interleave across co-resident queries per device;
* releases the reservation at the query's simulated finish time, which
  is the event that admits the next waiting query.

Three scheduling modes share that admission policy: batch
(:meth:`QueryScheduler.run`, one full per-device re-simulation per
admission wave — only devices that gained tasks re-simulate), online
(:meth:`QueryScheduler.run_online`, incremental schedule extension per
arrival via :meth:`~repro.pipeline.engine.PipelineEngine.extend`, each
device carrying its own ``lane_state``), and streaming
(:meth:`QueryScheduler.run_stream`, the online loop plus bounded-queue
admission with load shedding and periodic schedule compaction, built
for steady-state runs of 10^5+ arrivals).  Batch and online outcomes
are bit-identical, and streaming is bit-identical to both whenever
shedding is disabled; only the wall-clock and memory costs differ.

The fleet may be **heterogeneous and elastic**.  Each device carries
its own :class:`~repro.gpusim.calibration.Calibration`
(``QueryScheduler(device_capacities=..., device_calibrations=...)``),
and every estimate, plan and placement comparison for a candidate
device is made under *that device's* calibration — the process-wide
estimate/plan caches key on the calibration through the strategy
fingerprint, so cached entries never cross devices.  Timed
:class:`~repro.serve.placement.FleetEvent` lists (``fleet_events=`` on
every run method) add or retire devices *between* admissions: a
retiring device finishes its in-flight queries and then its engine is
sealed.  An opt-in work-stealing pass (``steal=True``) lets an idle
device bypass head-of-line blocking by re-placing the best waiting
query behind the blocked head, using the same cached estimates.  All
of it stays deterministic, and a homogeneous fleet with no events and
no stealing is bit-identical to the pre-heterogeneity scheduler.

Failures are injectable.  A :class:`~repro.serve.faults.FaultPlan`
(``faults=`` on every run method) schedules ungraceful device crashes
and transient admission failures; lost queries are retried through the
shared admission path under a per-query budget, exhausted budgets and
fleet loss are recorded as :class:`~repro.serve.faults.FailedOutcome`
(the third outcome class next to completed and shed), and every
faulted run is audited by
:func:`~repro.serve.faults.check_fault_invariants`.  An empty plan (or
``faults=None``) takes the exact fault-free code path — bit-identical
to the recorded golden schedules.

The simulation is deterministic: identical request lists produce
identical schedules, admissions, placements and latencies, for any
device count, calibration mix, event list, fault plan and placement
policy.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core import estimate_cache, learned_cost
from repro.core.config import GpuJoinConfig
from repro.core.planner import choose_strategy_name
from repro.core.strategy import (
    COPROCESSING,
    COPROCESSING_ADAPTIVE,
    JoinPlan,
    create_strategy,
    strategy_factory,
)
from repro.data.spec import JoinSpec
from repro.errors import InvalidConfigError, SchedulingError
from repro.gpusim.arena import DeviceMemoryArena
from repro.gpusim.calibration import Calibration
from repro.gpusim.spec import SystemSpec
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Schedule, Task
from repro.serve.admission import (
    AdmissionContext,
    AdmissionPolicy,
    FIFO,
    QueryClass,
    class_name_of,
    create_admission_policy,
    hard_deadline,
    tenant_of,
)
from repro.serve.faults import (
    FailedOutcome,
    FaultPlan,
    _FaultRun,
    check_fault_invariants,
)
from repro.serve.placement import (
    LEAST_LOADED,
    DeviceFleet,
    DeviceState,
    FleetEvent,
    PlacementCandidate,
    PlacementPolicy,
    create_placement_policy,
    validate_fleet_events,
)


def percentile(
    values: "Iterable[float]", q: float, *, empty: float | None = 0.0
) -> float | None:
    """Nearest-rank percentile: the smallest value with at least ``q``
    of the population at or below it (``rank = ceil(q*n) - 1`` into the
    sorted list, clamped).  This is the convention
    :attr:`ServeReport.p95_latency` has always used — every latency /
    queue-depth percentile in the serving layer goes through this one
    helper so reports and benches can't drift apart.  Returns ``empty``
    for an empty population — 0.0 by default (the report-level
    convention, pinned by the stream property suite), but group-level
    stats pass ``empty=None`` so a class with zero completed queries
    reports *no* latency rather than a fake 0.0 one."""
    ordered = sorted(values)
    if not ordered:
        return empty
    rank = math.ceil(q * len(ordered)) - 1
    return ordered[max(0, min(len(ordered) - 1, rank))]


def _fmt_secs(value: float | None) -> str:
    """Render a possibly-absent latency: ``n/a`` when the group it
    aggregates is empty (None), else seconds to ms precision."""
    return "n/a" if value is None else f"{value:.3f}"


@dataclass(frozen=True)
class ClassStats:
    """Latency and deadline aggregates for one service class or tenant.

    Latencies are **simulated seconds** over the completed queries in
    the group (percentiles via :func:`percentile`, the serving layer's
    one nearest-rank helper) — or ``None`` when the group completed
    nothing (e.g. a class whose every query was shed at deadline
    expiry), rendered as ``n/a``: an explicit absence, never a fake 0.0
    latency.  ``deadline_count`` is the completed queries carrying a
    finite hard deadline, ``deadline_missed`` how many of those
    finished past it, and ``deadline_expired`` the queued queries
    streaming shed at deadline expiry (always 0 for batch / online
    runs, which never shed).
    """

    count: int
    mean_latency: float | None
    p50_latency: float | None
    p99_latency: float | None
    deadline_count: int
    deadline_missed: int
    deadline_expired: int = 0

    @property
    def deadline_miss_rate(self) -> float:
        """Missed-plus-expired over every deadline-bearing query that
        reached a terminal state (0.0 when the group has no deadlines).
        An expired shed counts as a miss: the query never ran, which is
        the worst way to miss a deadline."""
        total = self.deadline_count + self.deadline_expired
        if total == 0:
            return 0.0
        return (self.deadline_missed + self.deadline_expired) / total


def _group_class_stats(
    outcomes: "Iterable[QueryOutcome]",
    key: str,
    shed: "Iterable[ShedOutcome] | None" = None,
) -> dict[str, ClassStats]:
    """Group by ``key`` (``"class_name"`` or ``"tenant"``) into
    :class:`ClassStats`, labels sorted.  ``shed`` (stream reports) adds
    ``deadline_expired`` sheds to the label they were admitted under —
    conservation audits can then attribute every shed per class."""
    groups: dict[str, list[QueryOutcome]] = {}
    for outcome in outcomes:
        groups.setdefault(getattr(outcome, key), []).append(outcome)
    expired: dict[str, int] = {}
    for item in shed or ():
        if item.reason == "deadline_expired":
            label = getattr(item, key)
            expired[label] = expired.get(label, 0) + 1
            groups.setdefault(label, [])
    stats: dict[str, ClassStats] = {}
    for label in sorted(groups):
        members = groups[label]
        latencies = [o.latency_seconds for o in members]
        stats[label] = ClassStats(
            count=len(members),
            mean_latency=(
                sum(latencies) / len(latencies) if latencies else None
            ),
            p50_latency=percentile(latencies, 0.50, empty=None),
            p99_latency=percentile(latencies, 0.99, empty=None),
            deadline_count=sum(
                1 for o in members if o.deadline_at != math.inf
            ),
            deadline_missed=sum(1 for o in members if o.deadline_missed),
            deadline_expired=expired.get(label, 0),
        )
    return stats


@dataclass(frozen=True)
class QueryRequest:
    """One client query: a join workload submitted at a point in time.

    ``submit_at`` is the arrival time in **simulated seconds** (the
    clock the scheduler and engine share), not wall clock.
    ``slo_wait_seconds`` is this query's own admission-wait ceiling for
    :meth:`QueryScheduler.run_stream` (simulated seconds; overrides the
    stream-wide default; ignored by :meth:`QueryScheduler.run` /
    :meth:`~QueryScheduler.run_online`, which never shed).
    """

    qid: str
    spec: JoinSpec
    submit_at: float = 0.0
    materialize: bool = False
    #: Pin a registry strategy key, bypassing admission-time planning.
    strategy: str | None = None
    #: Per-query SLO on estimated admission wait (simulated seconds);
    #: ``None`` defers to ``run_stream``'s fleet-wide default.
    slo_wait_seconds: float | None = None
    #: Service class (:class:`~repro.serve.admission.QueryClass`):
    #: priority/tenant for the admission policies, hard deadline for
    #: miss accounting and streaming deadline expiry, and an optional
    #: per-class degrade-vs-wait override.  ``None`` = the default
    #: class (no deadline, tenant ``"default"``).  A fault-retried
    #: query re-enters the queue carrying this same class.
    query_class: QueryClass | None = None

    def __post_init__(self) -> None:
        if not self.qid:
            raise InvalidConfigError("query id must be non-empty")
        if self.submit_at < 0:
            raise InvalidConfigError(f"{self.qid}: negative submit time")
        if self.slo_wait_seconds is not None and self.slo_wait_seconds < 0:
            raise InvalidConfigError(
                f"{self.qid}: negative slo_wait_seconds"
            )
        if self.query_class is not None and not isinstance(
            self.query_class, QueryClass
        ):
            raise InvalidConfigError(
                f"{self.qid}: query_class must be a QueryClass, got "
                f"{type(self.query_class).__name__}"
            )


@dataclass
class QueryOutcome:
    """How one query fared: placement, timing, and memory.

    ``reserved_bytes`` is the arena grant in **bytes**; every ``*_at``
    / ``*_seconds`` field is in **simulated seconds**.  ``device`` is
    the fleet device the query ran on (always 0 with ``devices=1``).
    """

    qid: str
    strategy: str
    solo_strategy: str
    reserved_bytes: int
    submit_at: float
    admit_at: float
    finish_at: float = 0.0
    #: Makespan of this query run alone on an idle device with the
    #: planner's unconstrained choice — the serial-execution baseline
    #: (always under the scheduler's *default* calibration, so serial
    #: baselines stay comparable across heterogeneous fleets).
    solo_seconds: float = 0.0
    device: int = 0
    #: The query was admitted by the work-stealing pass: an idle device
    #: pulled it past a blocked FIFO head (``steal=True`` runs only).
    stolen: bool = False
    #: How many times this query was re-admitted after a device crash
    #: or transient admission failure before completing (0 on the
    #: fault-free path; never exceeds the scheduler's ``max_retries``).
    retries: int = 0
    #: Service-class label and tenant the query was admitted under
    #: (``"default"`` for unclassed queries).
    class_name: str = "default"
    tenant: str = "default"
    #: Absolute hard deadline in simulated seconds (``inf`` = none).
    deadline_at: float = math.inf
    #: Recorded at release: did the query finish past ``deadline_at``?
    #: Stored rather than derived so :func:`check_fault_invariants` can
    #: audit the recording itself.
    deadline_missed: bool = False

    @property
    def wait_seconds(self) -> float:
        return self.admit_at - self.submit_at

    @property
    def latency_seconds(self) -> float:
        return self.finish_at - self.submit_at

    @property
    def degraded(self) -> bool:
        """Did memory pressure force a cheaper placement than solo?"""
        return self.strategy != self.solo_strategy


@dataclass
class ServeReport:
    """The outcome of one scheduler run over a batch of queries.

    ``makespan`` and the latency aggregates are **simulated seconds**;
    ``capacity_bytes`` / ``peak_reserved_bytes`` are **bytes** — with a
    sharded fleet, ``capacity_bytes`` is *per device* and
    ``peak_reserved_bytes`` is the highest single-device peak
    (per-device peaks in :attr:`device_peak_bytes`).  ``schedule`` is
    the single device's schedule with ``devices=1`` and the merged
    reporting view (:meth:`~repro.pipeline.tasks.Schedule.merged`)
    otherwise.  Batch (:meth:`QueryScheduler.run`) and online
    (:meth:`QueryScheduler.run_online`) admission produce identical
    reports for the same requests.
    """

    outcomes: list[QueryOutcome]
    makespan: float
    capacity_bytes: int
    peak_reserved_bytes: int
    schedule: Schedule | None = field(default=None, repr=False)
    devices: int = 1
    #: Exact per-device reservation high-water marks, in **bytes**.
    device_peak_bytes: tuple[int, ...] = ()
    #: Per-device arena capacities, in **bytes** — unequal on a
    #: heterogeneous fleet (``capacity_bytes`` is then the largest).
    #: Grows past the configured device count when a fleet event added
    #: devices mid-run.
    device_capacity_bytes: tuple[int, ...] = ()
    #: The drained per-device arenas — their ledgers and timelines are
    #: what the property-based suite audits after every run.
    arenas: list[DeviceMemoryArena] | None = field(default=None, repr=False)
    #: Queries the run gave up on (fault-injected runs only — empty
    #: otherwise): retry budget exhausted, or the whole fleet was lost.
    #: With faults, ``completed + failed == submitted`` always holds.
    failed: list[FailedOutcome] = field(default_factory=list)

    @property
    def failed_count(self) -> int:
        return len(self.failed)

    @property
    def retried_count(self) -> int:
        """Completed queries that needed at least one re-admission."""
        return sum(1 for o in self.outcomes if o.retries > 0)

    @property
    def serial_seconds(self) -> float:
        """Total solo work: the sum of solo makespans."""
        return sum(item.solo_seconds for item in self.outcomes)

    @property
    def serial_makespan(self) -> float:
        """Serial back-to-back baseline honouring submission times: each
        query starts at ``max(previous finish, submit_at)`` on **one**
        device.  For one batch (all submitted together) this equals
        :attr:`serial_seconds`; for staggered arrivals it includes the
        idle gaps a serial executor would also sit through."""
        clock = 0.0
        for item in sorted(self.outcomes, key=lambda o: o.submit_at):
            clock = max(clock, item.submit_at) + item.solo_seconds
        return clock

    @property
    def speedup(self) -> float:
        return self.serial_makespan / self.makespan if self.makespan > 0 else 0.0

    @property
    def queries_per_second(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return len(self.outcomes) / self.makespan

    @property
    def mean_latency(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.latency_seconds for o in self.outcomes) / len(self.outcomes)

    @property
    def p50_latency(self) -> float:
        return percentile((o.latency_seconds for o in self.outcomes), 0.50)

    @property
    def p95_latency(self) -> float:
        return percentile((o.latency_seconds for o in self.outcomes), 0.95)

    @property
    def p99_latency(self) -> float:
        return percentile((o.latency_seconds for o in self.outcomes), 0.99)

    @property
    def degraded_count(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def stolen_count(self) -> int:
        return sum(1 for o in self.outcomes if o.stolen)

    @property
    def deadline_count(self) -> int:
        """Completed queries carrying a finite hard deadline."""
        return sum(1 for o in self.outcomes if o.deadline_at != math.inf)

    @property
    def deadline_missed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.deadline_missed)

    @property
    def deadline_miss_rate(self) -> float:
        """Misses over deadline-bearing completions (0.0 if none)."""
        total = self.deadline_count
        return self.deadline_missed_count / total if total else 0.0

    def per_class_stats(self) -> dict[str, ClassStats]:
        """Per-service-class p50/p99 latency and deadline-miss rate."""
        return _group_class_stats(self.outcomes, "class_name")

    def per_tenant_stats(self) -> dict[str, ClassStats]:
        """Per-tenant p50/p99 latency and deadline-miss rate."""
        return _group_class_stats(self.outcomes, "tenant")

    @property
    def _classed(self) -> bool:
        """Any non-default class or deadline present?  Gates the render
        additions so unclassed reports stay byte-identical to the
        historical format."""
        return any(
            o.class_name != "default"
            or o.tenant != "default"
            or o.deadline_at != math.inf
            for o in self.outcomes
        )

    def render(self) -> str:
        """Aligned per-query table plus the summary line."""
        sharded = self.devices > 1
        device_header = f" {'dev':>3s}" if sharded else ""
        lines = [
            f"{'query':10s} {'strategy':22s}{device_header} {'reserved':>10s} "
            f"{'admit (s)':>10s} {'finish (s)':>11s} {'latency (s)':>12s}  note"
        ]
        for o in self.outcomes:
            notes = []
            if o.degraded:
                notes.append(f"degraded from {o.solo_strategy}")
            if o.stolen:
                notes.append(f"stolen by device {o.device}")
            note = ", ".join(notes)
            device_cell = f" {o.device:3d}" if sharded else ""
            lines.append(
                f"{o.qid:10s} {o.strategy:22s}{device_cell} "
                f"{o.reserved_bytes / 1e9:8.2f}GB "
                f"{o.admit_at:10.3f} {o.finish_at:11.3f} "
                f"{o.latency_seconds:12.3f}  {note}"
            )
        fleet = f" across {self.devices} devices" if sharded else ""
        lines.append(
            f"makespan {self.makespan:.3f} s vs serial "
            f"{self.serial_makespan:.3f} s ({self.speedup:.2f}x), "
            f"{self.queries_per_second:.2f} q/s, latency p50/p95/p99 "
            f"{self.p50_latency:.3f}/{self.p95_latency:.3f}/"
            f"{self.p99_latency:.3f} s, peak memory "
            f"{self.peak_reserved_bytes / 1e9:.2f} of "
            f"{self.capacity_bytes / 1e9:.2f} GB{fleet}"
        )
        if self._classed:
            # Classed runs only, so unclassed renders stay byte-
            # identical to the historical format.
            for label, stats in self.per_class_stats().items():
                lines.append(
                    f"class {label}: {stats.count} completed, p50/p99 "
                    f"{_fmt_secs(stats.p50_latency)}/"
                    f"{_fmt_secs(stats.p99_latency)} s, "
                    f"deadline miss {stats.deadline_miss_rate * 100:.1f}% "
                    f"({stats.deadline_missed}/{stats.deadline_count})"
                )
        if self.failed:
            # Only faulted runs ever reach here, so fault-free renders
            # stay byte-identical to the historical format.
            lines.append(
                f"{self.failed_count} failed ("
                + ", ".join(
                    f"{f.qid}: {f.reason} after {f.attempts} retr"
                    + ("y" if f.attempts == 1 else "ies")
                    for f in self.failed
                )
                + f"); {self.retried_count} completed after retries"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class ShedOutcome:
    """One load-shed query: rejected or expired, never completed.

    ``reason`` is ``"queue_full"`` (wait-queue depth was at the cap
    when the query arrived), ``"slo_wait"`` (the fleet-wide estimated
    wait exceeded the query's SLO at ingestion), or
    ``"deadline_expired"`` (the query's hard deadline — from its
    :class:`~repro.serve.admission.QueryClass` — passed while it sat in
    the wait queue; distinct from ``"slo_wait"`` so conservation audits
    can attribute deadline sheds per class).  The first two verdicts
    fire at ingestion; deadline expiry is checked against every queued
    query as the clock advances.  ``estimated_wait_seconds`` is the
    optimistic work-based wait estimate the verdict saw (for
    ``"deadline_expired"``: the wait actually endured, ``shed time -
    submit_at``; simulated seconds, referenced to the query's own
    ``submit_at``) and ``queue_depth`` the number of queries waiting at
    the verdict.  ``class_name`` / ``tenant`` carry the query's service
    class for per-class attribution (``"default"`` when unclassed).
    Verdicts are deterministic: identical streams and limits shed
    identical queries.
    """

    qid: str
    submit_at: float
    reason: str
    queue_depth: int
    estimated_wait_seconds: float
    class_name: str = "default"
    tenant: str = "default"


@dataclass
class StreamReport:
    """The outcome of one :meth:`QueryScheduler.run_stream` run.

    Aggregates are folded into running accumulators as queries finish —
    before their tasks are compacted away — so the report is exact even
    though the retained schedule stays O(in-flight).  Times are
    **simulated seconds**, memory **bytes**.  Shed queries are recorded
    in :attr:`shed` and fault-failed queries in :attr:`failed`, never
    silently dropped:
    ``completed + shed_count + failed_count == arrivals`` always holds
    (``failed`` is empty without fault injection).
    """

    outcomes: list[QueryOutcome]
    shed: list[ShedOutcome]
    arrivals: int
    makespan: float
    capacity_bytes: int
    devices: int
    device_peak_bytes: tuple[int, ...] = ()
    #: Per-device arena capacities, in **bytes** (see
    #: :attr:`ServeReport.device_capacity_bytes`).
    device_capacity_bytes: tuple[int, ...] = ()
    #: High-water mark of retained (non-retired) scheduled tasks across
    #: the fleet — the quantity compaction bounds to O(in-flight).
    peak_retained_tasks: int = 0
    #: High-water mark of tasks belonging to queries running right now.
    peak_inflight_tasks: int = 0
    #: Largest task graph any single admitted query lowered.
    max_tasks_per_query: int = 0
    #: Tasks retired by compaction, and how many compaction sweeps ran.
    retired_tasks: int = 0
    compactions: int = 0
    #: Wait-queue depth sampled at every ingestion (one per arrival).
    queue_depths: list[int] = field(default_factory=list, repr=False)
    arenas: list[DeviceMemoryArena] | None = field(default=None, repr=False)
    #: Queries the run gave up on (fault-injected runs only):
    #: retry budget exhausted, or the whole fleet was lost.
    failed: list[FailedOutcome] = field(default_factory=list)

    @property
    def completed(self) -> int:
        return len(self.outcomes)

    @property
    def shed_count(self) -> int:
        return len(self.shed)

    @property
    def shed_rate(self) -> float:
        return self.shed_count / self.arrivals if self.arrivals else 0.0

    @property
    def failed_count(self) -> int:
        return len(self.failed)

    @property
    def failed_rate(self) -> float:
        return self.failed_count / self.arrivals if self.arrivals else 0.0

    @property
    def retried_count(self) -> int:
        """Completed queries that needed at least one re-admission."""
        return sum(1 for o in self.outcomes if o.retries > 0)

    @property
    def sustained_qps(self) -> float:
        """Completed queries per simulated second over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.completed / self.makespan

    @property
    def mean_latency(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.latency_seconds for o in self.outcomes) / len(self.outcomes)

    @property
    def p50_latency(self) -> float:
        return percentile((o.latency_seconds for o in self.outcomes), 0.50)

    @property
    def p95_latency(self) -> float:
        return percentile((o.latency_seconds for o in self.outcomes), 0.95)

    @property
    def p99_latency(self) -> float:
        return percentile((o.latency_seconds for o in self.outcomes), 0.99)

    @property
    def degraded_count(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def stolen_count(self) -> int:
        return sum(1 for o in self.outcomes if o.stolen)

    @property
    def deadline_count(self) -> int:
        """Completed queries carrying a finite hard deadline."""
        return sum(1 for o in self.outcomes if o.deadline_at != math.inf)

    @property
    def deadline_missed_count(self) -> int:
        return sum(1 for o in self.outcomes if o.deadline_missed)

    @property
    def deadline_expired_count(self) -> int:
        """Queued queries shed because their hard deadline passed."""
        return sum(1 for s in self.shed if s.reason == "deadline_expired")

    @property
    def deadline_miss_rate(self) -> float:
        """Missed completions plus expired sheds, over every
        deadline-bearing query that reached a terminal state (0.0 when
        none carried a deadline).  An expired shed counts as a miss —
        the query never ran at all."""
        total = self.deadline_count + self.deadline_expired_count
        if total == 0:
            return 0.0
        return (
            self.deadline_missed_count + self.deadline_expired_count
        ) / total

    def per_class_stats(self) -> dict[str, ClassStats]:
        """Per-service-class p50/p99 latency and deadline-miss rate
        (expired sheds attributed to their class)."""
        return _group_class_stats(self.outcomes, "class_name", self.shed)

    def per_tenant_stats(self) -> dict[str, ClassStats]:
        """Per-tenant p50/p99 latency and deadline-miss rate."""
        return _group_class_stats(self.outcomes, "tenant", self.shed)

    @property
    def _classed(self) -> bool:
        """Any non-default class or deadline present?  Gates the render
        additions so unclassed reports stay byte-identical."""
        return any(
            o.class_name != "default"
            or o.tenant != "default"
            or o.deadline_at != math.inf
            for o in self.outcomes
        ) or any(
            s.class_name != "default" or s.tenant != "default"
            for s in self.shed
        )

    @property
    def peak_queue_depth(self) -> int:
        return max(self.queue_depths, default=0)

    def queue_depth_percentile(self, q: float) -> float:
        return percentile(self.queue_depths, q)

    def render(self) -> str:
        """Summary block (per-query tables don't scale to 10^5 rows)."""
        lines = [
            f"arrivals {self.arrivals}: {self.completed} completed, "
            f"{self.shed_count} shed ({self.shed_rate * 100:.2f}%), "
            f"{self.degraded_count} degraded, {self.stolen_count} stolen",
            f"makespan {self.makespan:.3f} s, sustained "
            f"{self.sustained_qps:.2f} q/s across {self.devices} device(s)",
            f"latency mean/p50/p95/p99 {self.mean_latency:.3f}/"
            f"{self.p50_latency:.3f}/{self.p95_latency:.3f}/"
            f"{self.p99_latency:.3f} s",
            f"queue depth p50/p99/max "
            f"{self.queue_depth_percentile(0.50):.0f}/"
            f"{self.queue_depth_percentile(0.99):.0f}/"
            f"{self.peak_queue_depth}",
            f"retained tasks peak {self.peak_retained_tasks} "
            f"(in-flight peak {self.peak_inflight_tasks}); "
            f"{self.retired_tasks} retired in {self.compactions} sweeps",
        ]
        if self._classed:
            # Classed runs only, so unclassed renders stay byte-
            # identical to the historical format.
            for label, stats in self.per_class_stats().items():
                lines.append(
                    f"class {label}: {stats.count} completed, p50/p99 "
                    f"{_fmt_secs(stats.p50_latency)}/"
                    f"{_fmt_secs(stats.p99_latency)} s, "
                    f"deadline miss {stats.deadline_miss_rate * 100:.1f}% "
                    f"({stats.deadline_missed} late + "
                    f"{stats.deadline_expired} expired / "
                    f"{stats.deadline_count + stats.deadline_expired})"
                )
        if self.failed:
            # Faulted runs only, so fault-free renders are unchanged.
            lines.append(
                f"{self.failed_count} failed "
                f"({self.failed_rate * 100:.2f}%), "
                f"{self.retried_count} completed after retries"
            )
        return "\n".join(lines)


class QueryScheduler:
    """Runs batches of queries concurrently on a simulated GPU fleet.

    Two entry points with **bit-identical outcomes**: :meth:`run`
    (batch — full per-device re-simulation per admission wave, the
    executable specification) and :meth:`run_online` (incremental
    schedule extension, the cheap production path).  Both are
    deterministic — identical request lists produce identical reports —
    and both lean on the process-wide :mod:`repro.core.estimate_cache`
    for every solo/degraded/wait estimate *and* every prepared plan,
    which are pure memoizations: cached and recomputed values are
    interchangeable.  Memory quantities are **bytes**, times
    **simulated seconds**.

    ``devices`` shards the fleet: each device gets its own arena,
    engine and resource lanes, and ``placement`` (a registry key from
    :mod:`repro.serve.placement`, or a policy instance) picks the
    device per admission.  ``devices=1`` — the default — reduces every
    policy to "device 0" and is pinned bit-identical to the historical
    single-device scheduler.

    ``admission`` (a registry key from :mod:`repro.serve.admission`,
    or a policy instance) picks which *arrived* queued query each
    admission attempt tries to place: ``fifo`` (the default) is pinned
    bit-identical to the historical head-of-line scheduler; ``sjf``,
    ``edf`` and ``weighted_fair`` reorder the queue by cached solo
    estimate, hard deadline, or tenant fairness.  Head-of-line blocking
    applies to the policy's *chosen* head — when it cannot be placed,
    the scheduler waits rather than skipping past it — and composes
    unchanged with placement, stealing, fleet events and fault recovery
    (a retried query re-enters under its original
    :class:`~repro.serve.admission.QueryClass`).

    ``device_capacities`` / ``device_calibrations`` make the fleet
    heterogeneous: one entry per device (capacities in **bytes**;
    calibration ``None`` means the scheduler-wide ``calibration``).
    Every solo/degraded/alone estimate and every prepared plan for a
    candidate placement is computed under that device's calibration —
    the calibration rides in the strategy fingerprint, so the shared
    caches never serve one device's numbers to another.  ``steal=True``
    enables the work-stealing pass: whenever FIFO admission blocks on
    the head, each idle device may pull the best waiting query from
    behind it (recorded via :attr:`QueryOutcome.stolen`).  Stealing is
    off by default because it deliberately breaks FIFO admission order
    — the golden-schedule bit-identity contract only covers
    ``steal=False``.

    ``lanes`` optionally widens resource pools on every device
    (e.g. ``{"h2d": 2}`` to model both DMA engines copying inputs);
    per-plan resource declarations are merged in at their maximum, but
    only before the first engine run on that device — widening a pool
    mid-run would silently re-place already-recorded finishes, so it
    raises instead.

    ``max_degradation`` bounds how much slower an admission-time
    placement may be (estimated solo-vs-solo) than the unconstrained
    one before the query prefers waiting for memory; a degraded
    placement is also rejected when queueing for the unconstrained
    placement's memory — on whichever device is estimated to free it
    first — is estimated to finish sooner than starting the cheaper
    plan now.  ``None`` degrades eagerly whenever anything fits,
    trading the no-worse-than-serial guarantee for admission
    throughput.
    """

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
        config: GpuJoinConfig | None = None,
        *,
        lanes: dict[str, int] | None = None,
        max_degradation: float | None = 2.0,
        devices: int = 1,
        placement: str | PlacementPolicy = LEAST_LOADED,
        admission: str | AdmissionPolicy = FIFO,
        device_capacities: list[int] | None = None,
        device_calibrations: "list[Calibration | None] | None" = None,
        steal: bool = False,
        max_retries: int = 3,
        retry_backoff_seconds: float = 0.05,
        learned: bool = False,
    ):
        if max_degradation is not None and max_degradation < 1.0:
            raise InvalidConfigError("max_degradation must be >= 1.0")
        if devices < 1:
            raise InvalidConfigError("devices must be >= 1")
        if max_retries < 0:
            raise InvalidConfigError("max_retries must be >= 0")
        if retry_backoff_seconds < 0:
            raise InvalidConfigError("retry_backoff_seconds must be >= 0")
        if device_capacities is not None:
            if len(device_capacities) != devices:
                raise InvalidConfigError(
                    f"device_capacities has {len(device_capacities)} "
                    f"entries for devices={devices}; give one capacity "
                    "per device"
                )
            for index, cap in enumerate(device_capacities):
                if cap <= 0:
                    raise InvalidConfigError(
                        f"device_capacities[{index}] must be positive "
                        f"bytes, got {cap!r}"
                    )
        if device_calibrations is not None and len(device_calibrations) != devices:
            raise InvalidConfigError(
                f"device_calibrations has {len(device_calibrations)} "
                f"entries for devices={devices}; give one calibration "
                "(or None for the default) per device"
            )
        self.system = system or SystemSpec()
        self.calibration = calibration
        self.config = config
        self.lanes = dict(lanes or {})
        self.max_degradation = max_degradation
        self.devices = devices
        self.placement = placement
        self.device_capacities = (
            list(device_capacities) if device_capacities is not None else None
        )
        self.device_calibrations = (
            list(device_calibrations)
            if device_calibrations is not None
            else None
        )
        self.admission = admission
        self.steal = steal
        #: Opt-in learned cost-model fast path: every run of this
        #: scheduler executes inside
        #: ``learned_cost.activation(self.learned)`` — a force-set in
        #: both directions, so ``learned=False`` (the default) keeps
        #: runs bit-identical to golden even when some other component
        #: in the process has installed a fitted model.  ``learned=True``
        #: additionally requires a model (``learned_cost.set_model``) to
        #: actually change anything; without one every estimate falls
        #: through to the analytic path.
        self.learned = learned
        #: Fault recovery (used only when a run gets a non-empty
        #: ``faults=`` plan): how many times one query may be
        #: re-admitted after a crash or transient admission failure,
        #: and the linear re-admission backoff — attempt N becomes
        #: eligible ``N * retry_backoff_seconds`` simulated seconds
        #: after the failure.
        self.max_retries = max_retries
        self.retry_backoff_seconds = retry_backoff_seconds
        if isinstance(placement, str):
            create_placement_policy(placement)  # validate the key eagerly
        if isinstance(admission, str):
            create_admission_policy(admission)  # validate the key eagerly
        #: Solo-placement cache; workloads repeat spec templates and the
        #: baseline is a pure function of (spec, materialize, pin,
        #: calibration).  The makespans themselves are memoized
        #: process-wide by :mod:`repro.core.estimate_cache` (underneath
        #: ``estimate()``), so re-planning, determinism re-runs and
        #: sweep levels share kernel-cost work; this dict only saves the
        #: re-dispatch.
        self._solo_cache: dict[
            tuple[JoinSpec, bool, str | None, Calibration | None],
            tuple[str, float],
        ] = {}

    def _build_fleet(self) -> DeviceFleet:
        """A fresh fleet per run, honouring per-device overrides."""
        capacities = self.device_capacities or (
            [self.system.gpu.device_memory] * self.devices
        )
        return DeviceFleet(
            list(capacities),
            lanes=self.lanes,
            calibrations=(
                list(self.device_calibrations)
                if self.device_calibrations is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    def _choose(self, request: QueryRequest, available_bytes: int) -> str:
        if request.strategy is not None:
            return request.strategy
        # calibration/config only matter to the opt-in learned ladder
        # filter (they pick which fingerprints it predicts under); the
        # analytic walk ignores them, so learned=False is unchanged.
        return choose_strategy_name(
            request.spec,
            self.system,
            available_bytes=available_bytes,
            calibration=self.calibration,
            config=self.config,
        )

    def _strategy_kwargs(self, key: str, reserved_bytes: int) -> dict[str, Any]:
        """Constructor extras making the strategy honour its grant."""
        if key in (COPROCESSING, COPROCESSING_ADAPTIVE):
            return {"device_budget": reserved_bytes}
        return {}

    def _max_degradation_for(self, request: QueryRequest) -> float | None:
        """The degrade-vs-wait bound this query is admitted under: its
        service class's ``max_degradation`` override when set, the
        scheduler-wide setting otherwise — an interactive class can
        accept a worse placement to start sooner without loosening the
        bound for everyone."""
        qc = request.query_class
        if qc is not None and qc.max_degradation is not None:
            return qc.max_degradation
        return self.max_degradation

    def _admission_pos(
        self,
        policy: AdmissionPolicy,
        queue: "deque[QueryRequest]",
        ctx: AdmissionContext,
        clock: float,
    ) -> int:
        """Queue index of the admission policy's chosen candidate.

        Builds the arrived-prefix view — every entry with ``submit_at
        <= clock``; fault retries re-enter at the front with past
        submit times and the tail stays submit-sorted, so arrivals are
        always a contiguous prefix — asks the policy, and validates the
        answer so a buggy policy raises *before* any queue or arena
        mutation: an exception mid-pop leaves the run's books exactly
        as they were.  FIFO never reaches here (``reorders=False``
        short-circuits to index 0 at the call sites), keeping the
        default path bit-identical to the pre-registry scheduler.
        """
        ctx.clock = clock
        arrived: list[QueryRequest] = []
        for request in queue:
            if request.submit_at > clock:
                break
            arrived.append(request)
        pos = policy.select(arrived, ctx)
        if (
            not isinstance(pos, int)
            or isinstance(pos, bool)
            or not 0 <= pos < len(arrived)
        ):
            raise SchedulingError(
                f"admission policy {policy.key!r} selected {pos!r}; "
                f"expected an index in [0, {len(arrived)})"
            )
        return pos

    def _solo(
        self,
        request: QueryRequest,
        calibration: Calibration | None = None,
    ) -> tuple[str, float]:
        """Unconstrained placement and makespan on an idle device.

        The strategy *choice* is calibration-independent (the planner
        ladder ranks by memory fit), but the makespan is computed under
        ``calibration`` — a specific device's, or the scheduler default
        when ``None`` — so heterogeneous placement comparisons see each
        device's own speed.
        """
        calib = calibration if calibration is not None else self.calibration
        cache_key = (request.spec, request.materialize, request.strategy, calib)
        cached = self._solo_cache.get(cache_key)
        if cached is not None:
            return cached
        key = request.strategy or choose_strategy_name(
            request.spec, self.system, calibration=calib, config=self.config
        )
        strategy = create_strategy(key, self.system, calib, self.config)
        metrics = strategy.estimate(request.spec, materialize=request.materialize)
        self._solo_cache[cache_key] = (key, metrics.seconds)
        return key, metrics.seconds

    def _estimate_alone(
        self,
        key: str,
        request: QueryRequest,
        reserved_bytes: int,
        calibration: Calibration | None = None,
    ) -> float:
        """Estimated makespan of running ``key`` alone for this query,
        under the same memory grant the admitted strategy would get and
        under ``calibration`` (the candidate device's; scheduler default
        when ``None``).  Memoized by the shared estimate cache — the
        grant and the calibration are both part of the strategy
        fingerprint, so per-device entries never collide."""
        calib = calibration if calibration is not None else self.calibration
        strategy = create_strategy(
            key,
            self.system,
            calib,
            self.config,
            **self._strategy_kwargs(key, reserved_bytes),
        )
        return strategy.estimate(
            request.spec, materialize=request.materialize
        ).seconds

    def _offer_estimate(
        self,
        request: QueryRequest,
        key: str,
        need: int,
        calibration: Calibration | None,
        solo_key: str,
    ) -> float:
        """Alone-makespan of offer ``key`` on a device with
        ``calibration`` — the :attr:`PlacementCandidate.est_seconds`
        placement policies rank.  The common non-degraded, no-extras
        offer short-circuits to the cached solo makespan (the exact
        same float, which is what keeps homogeneous ranking
        bit-identical to the historical load-only order)."""
        if key == solo_key and not self._strategy_kwargs(key, need):
            return self._solo(request, calibration)[1]
        return self._estimate_alone(key, request, need, calibration=calibration)

    def _prepare_plan(
        self,
        key: str,
        request: QueryRequest,
        need: int,
        calibration: Calibration | None = None,
    ) -> JoinPlan:
        """The admitted strategy's plan, memoized process-wide.

        Plans are pure in (strategy fingerprint, spec, materialize) —
        the per-device memory grant and the device's calibration both
        ride in the fingerprint — and the scheduler only *reads* them
        (tasks are re-materialized by :meth:`_namespace`), so cached
        plans are shared safely across runs, determinism re-runs and
        devices, and a fast device's task durations can never be served
        to a slow one.
        """
        calib = calibration if calibration is not None else self.calibration
        strategy = create_strategy(
            key,
            self.system,
            calib,
            self.config,
            **self._strategy_kwargs(key, need),
        )
        plan_key = estimate_cache.make_key(
            strategy.cache_fingerprint(), request.spec, request.materialize, {}
        )
        return estimate_cache.cached_plan(
            plan_key,
            lambda: strategy.prepare(
                request.spec, materialize=request.materialize
            ),
        )

    @staticmethod
    def _estimated_wait(
        need_bytes: int,
        *,
        clock: float,
        free_bytes: int,
        reserved: dict[str, int],
        predicted_finish: dict[str, float],
    ) -> float:
        """Time until ``need_bytes`` could be free on one device,
        assuming running queries release at their predicted finishes and
        nothing else is admitted meanwhile.  Optimistic (contention can
        stretch the predictions), which biases the degrade-vs-wait
        choice toward waiting — the direction that never loses to serial
        execution."""
        if need_bytes <= free_bytes:
            return 0.0
        freed = free_bytes
        for qid in sorted(predicted_finish, key=lambda q: predicted_finish[q]):
            freed += reserved.get(qid, 0)
            if freed >= need_bytes:
                return max(0.0, predicted_finish[qid] - clock)
        return float("inf")

    @staticmethod
    def _namespace(
        plan: JoinPlan, qid: str, available_at: float, device: int
    ) -> list[Task]:
        """Prefix a plan's task graph so it can share one engine, and
        tag every task with the device the query was placed on."""
        return [
            Task(
                name=f"{qid}:{task.name}",
                resource=task.resource,
                duration=task.duration,
                deps=tuple(f"{qid}:{dep}" for dep in task.deps),
                phase=task.phase,
                available_at=available_at,
                device=device,
            )
            for task in plan.tasks
        ]

    def _run_engine(
        self, tasks: list[Task], resources: dict[str, int], device: int
    ) -> Schedule:
        engine = PipelineEngine(resources, device=device)
        for task in tasks:
            engine.add(task)
        return engine.run()

    # ------------------------------------------------------------------
    def run(
        self,
        requests: list[QueryRequest],
        *,
        fleet_events: "Iterable[FleetEvent] | None" = None,
        faults: "FaultPlan | None" = None,
    ) -> ServeReport:
        """Schedule a batch of queries and simulate to completion.

        Arrivals (``submit_at``, simulated seconds) are processed
        event-by-event, but every admission wave re-simulates each
        device's whole task graph from scratch (devices untouched by
        the wave keep their schedule) — the executable specification
        that :meth:`run_online` is pinned against.  ``fleet_events``
        adds/retires devices at their timestamps, between admissions;
        ``faults`` injects device crashes and transient admission
        failures (see :class:`~repro.serve.faults.FaultPlan`), with
        lost queries retried through the same admission path.
        Deterministic: identical request, event and fault lists produce
        identical reports.
        """
        return self._serve(
            requests, incremental=False, fleet_events=fleet_events,
            faults=faults,
        )

    def run_online(
        self,
        requests: list[QueryRequest],
        *,
        fleet_events: "Iterable[FleetEvent] | None" = None,
        faults: "FaultPlan | None" = None,
    ) -> ServeReport:
        """Online admission: extend per-device schedules incrementally.

        Same arrival-driven admission policy (admit / place / wait /
        degrade against every device's live headroom, all placement
        estimates served by the process-wide estimate cache) and
        **bit-identical outcomes** to :meth:`run` — later admissions
        join the tail of every FIFO lane on their device, so
        already-placed tasks never move.  The difference is cost: each
        arrival wave is placed by
        :meth:`~repro.pipeline.engine.PipelineEngine.extend` on top of
        the placed device's carried-over lane heaps, O(new tasks) per
        wave instead of a re-simulation, which makes the serve wall
        clock near-linear in client count.  Equivalence is asserted by
        ``tests/serve/test_online.py``,
        ``tests/serve/test_placement_properties.py`` and
        ``bench/regress.py``.
        """
        return self._serve(
            requests, incremental=True, fleet_events=fleet_events,
            faults=faults,
        )

    # ------------------------------------------------------------------
    def _place(
        self,
        request: QueryRequest,
        fleet: DeviceFleet,
        policy: PlacementPolicy,
        outcomes: dict[str, QueryOutcome],
        clock: float,
        *,
        can_grow: bool = False,
    ) -> tuple[DeviceState, str, int] | None:
        """Pick (device, strategy, footprint) for the FIFO head query.

        Only *accepting* devices (not retiring/retired) are candidates.
        Every per-device offer is estimated under that device's own
        calibration.  Returns ``None`` when the query should wait:
        nothing fits anywhere, or every feasible placement is degraded
        and loses to the bounded-degradation / wait comparison.  Raises
        when the query could never be admitted on any device —
        unless ``can_grow`` (pending ``add`` fleet events), in which
        case it waits for a bigger device to join.
        """
        active = fleet.active()
        offers = [
            (device, self._choose(request, device.free_bytes))
            for device in active
        ]
        needs = {
            key: strategy_factory(key).device_bytes_needed(
                request.spec, self.system
            )
            for key in {key for _, key in offers}
        }
        if all(
            needs[key] > device.capacity_bytes for device, key in offers
        ):
            # Checked before the solo estimate on purpose: estimating a
            # pinned, never-fitting strategy can itself overflow device
            # memory, and "can never be admitted" is the clearer error.
            if can_grow:
                return None  # a pending 'add' event may bring a bigger device
            _, key = offers[0]
            raise SchedulingError(
                f"query {request.qid!r} needs {needs[key] / 1e9:.2f} GB "
                f"({key}) but no fleet device has that much memory; "
                "it can never be admitted"
            )
        solo_key, _ = self._solo(request)
        candidates = [
            PlacementCandidate(
                device=device.index,
                strategy=key,
                need_bytes=needs[key],
                fits=needs[key] <= device.free_bytes,
                degraded=key != solo_key,
                # Estimated only for fitting offers — placement and the
                # degrade comparison never look at the rest (and a
                # never-fitting pinned strategy may not even estimate).
                est_seconds=(
                    self._offer_estimate(
                        request, key, needs[key], device.calibration, solo_key
                    )
                    if needs[key] <= device.free_bytes
                    else 0.0
                ),
            )
            for device, key in offers
        ]

        feasible_solo = [c for c in candidates if c.fits and not c.degraded]
        if feasible_solo:
            chosen = policy.select(feasible_solo, fleet)
            return fleet[chosen.device], chosen.strategy, chosen.need_bytes

        feasible = [c for c in candidates if c.fits]
        if not feasible:
            return None  # wait for a release event
        # Best degraded placement across the fleet, by cached
        # alone-estimate under each candidate's own memory grant and
        # its device's calibration; ties break toward the lowest device
        # index.
        best = min(feasible, key=lambda c: (c.est_seconds, c.device))
        max_degradation = self._max_degradation_for(request)
        if max_degradation is not None and fleet.any_running():
            degraded_alone = best.est_seconds
            solo_on_best = self._solo(
                request, fleet[best.device].calibration
            )[1]
            solo_need = strategy_factory(solo_key).device_bytes_needed(
                request.spec, self.system
            )
            # Queueing alternative: for each accepting device, the time
            # until the unconstrained placement's memory frees there
            # plus the solo makespan *under that device's calibration*
            # — a heterogeneous fleet may prefer waiting for the fast
            # device over a degraded start on the slow one.  On a
            # homogeneous fleet the solo term is one constant, so the
            # min is exactly the historical min-wait plus solo.
            wait_then_solo = min(
                self._estimated_wait(
                    solo_need,
                    clock=clock,
                    free_bytes=device.free_bytes,
                    reserved={
                        qid: outcomes[qid].reserved_bytes
                        for qid in device.running
                    },
                    predicted_finish=device.predicted_finish,
                )
                + self._solo(request, device.calibration)[1]
                for device in active
            )
            if (
                degraded_alone > max_degradation * solo_on_best
                or degraded_alone >= wait_then_solo
            ):
                # Starting now with the cheaper placement is estimated
                # to lose to queueing for the memory the unconstrained
                # placement wants on the first device to free it.
                return None
        return fleet[best.device], best.strategy, best.need_bytes

    def _admit(
        self,
        request: QueryRequest,
        placed: tuple[DeviceState, str, int],
        outcomes: dict[str, QueryOutcome],
        task_names: dict[str, list[str]],
        owner: dict[str, DeviceState],
        clock: float,
        *,
        incremental: bool,
        keep_tasks: bool = True,
        stolen: bool = False,
        fault_run: "_FaultRun | None" = None,
    ) -> DeviceState:
        """Commit a placement decision: reserve the arena grant, lower
        the plan's namespaced task graph onto the device, and record the
        outcome skeleton.  The plan and the predicted finish are built
        under the *placed device's* calibration; the recorded
        ``solo_seconds`` baseline stays on the scheduler default so
        serial comparisons are device-independent.  Shared verbatim by
        batch, online, streaming and stealing admission so their
        committed state cannot drift.  ``keep_tasks=False`` (streaming)
        skips the device's cumulative task list, which only batch
        re-simulation reads — retaining it would be O(total
        arrivals).

        Re-admissions after a fault (``fault_run`` generation > 0)
        namespace their tasks under the alias ``qid~rN`` instead of the
        bare qid: the crashed device's schedule may retain the query's
        *finished* pre-crash task fragments under the original names,
        and the merged reporting view refuses duplicates.  The arena
        reservation and every outcome/bookkeeping key stay on the bare
        qid — only task names carry the generation."""
        device, key, need = placed
        attempt = 0 if fault_run is None else fault_run.generation(request.qid)
        alias = request.qid if attempt == 0 else f"{request.qid}~r{attempt}"
        if not device.arena.try_reserve(request.qid, need, at=clock):
            raise SchedulingError(  # pragma: no cover - _place bug
                f"placement chose device {device.index} for "
                f"{request.qid!r} but the reservation failed"
            )
        solo_key, solo_seconds = self._solo(request)
        plan = self._prepare_plan(
            key, request, need, calibration=device.calibration
        )
        for name, width in plan.resources.items():
            if width > device.resources.get(name, 1) and device.schedule.tasks:
                # Widening a pool after tasks were scheduled on
                # this device would re-place already-recorded
                # finishes on the next re-run; fail loudly
                # instead of silently corrupting latencies.
                raise SchedulingError(
                    f"query {request.qid!r} widens resource "
                    f"{name!r} to {width} lanes after scheduling "
                    f"started on device {device.index}; declare "
                    "lane counts up front via "
                    "QueryScheduler(lanes=...)"
                )
            device.resources[name] = max(
                device.resources.get(name, 1), width
            )
        namespaced = self._namespace(
            plan, alias, clock, device.index
        )
        if keep_tasks:
            device.tasks.extend(namespaced)
        if incremental:
            device.wave_tasks.extend(namespaced)
        task_names[request.qid] = [task.name for task in namespaced]
        outcomes[request.qid] = QueryOutcome(
            qid=request.qid,
            strategy=key,
            solo_strategy=solo_key,
            reserved_bytes=need,
            submit_at=request.submit_at,
            admit_at=clock,
            solo_seconds=solo_seconds,
            device=device.index,
            stolen=stolen,
            retries=attempt,
            class_name=class_name_of(request),
            tenant=tenant_of(request),
            deadline_at=hard_deadline(request),
        )
        device.running.add(request.qid)
        owner[request.qid] = device
        if fault_run is not None:
            fault_run.live[request.qid] = request
        # The wait estimator's predicted finish must reflect *this*
        # device's speed; `_offer_estimate` short-circuits the common
        # non-degraded, no-extras admission to the cached solo makespan
        # under the device's calibration.
        alone = self._offer_estimate(
            request, key, need, device.calibration, solo_key
        )
        device.predicted_finish[request.qid] = clock + alone
        device.dirty = True
        return device

    def _steal(
        self,
        queue: "deque[QueryRequest]",
        fleet: DeviceFleet,
        outcomes: dict[str, QueryOutcome],
        task_names: dict[str, list[str]],
        owner: dict[str, DeviceState],
        clock: float,
        *,
        incremental: bool,
        keep_tasks: bool = True,
        fault_run: "_FaultRun | None" = None,
    ) -> list[tuple[DeviceState, str]]:
        """Work-stealing pass, run only after FIFO admission blocked on
        the queue head.  Each *idle* accepting device (in index order)
        scans the arrived queries behind the head and pulls the one
        with the smallest alone-estimate under its own calibration —
        skipping any whose placement there would exceed
        ``max_degradation`` — so head-of-line blocking can't strand an
        idle device while admissible work waits.  One steal per idle
        device per pass; everything comes from the same caches and
        commits through :meth:`_admit`, so stolen admissions obey every
        arena/engine invariant.  Returns the (device, qid) pairs
        admitted, for the caller's bookkeeping."""
        admitted: list[tuple[DeviceState, str]] = []
        if len(queue) <= 1:
            return admitted
        for device in fleet.active():
            if device.running:
                continue
            best: tuple[float, int, str, int] | None = None
            for pos in range(1, len(queue)):
                request = queue[pos]
                if request.submit_at > clock:
                    # Batch/online queues hold future arrivals too, in
                    # submit order — nothing past this point has arrived.
                    break
                key = self._choose(request, device.free_bytes)
                need = strategy_factory(key).device_bytes_needed(
                    request.spec, self.system
                )
                if need > device.free_bytes:
                    continue
                solo_key, _ = self._solo(request)
                est = self._offer_estimate(
                    request, key, need, device.calibration, solo_key
                )
                max_degradation = self._max_degradation_for(request)
                if key != solo_key and max_degradation is not None:
                    solo_here = self._solo(request, device.calibration)[1]
                    if est > max_degradation * solo_here:
                        continue
                if best is None or (est, pos) < best[:2]:
                    best = (est, pos, key, need)
            if best is None:
                continue
            _, pos, key, need = best
            request = queue[pos]
            del queue[pos]
            placed_device = self._admit(
                request,
                (device, key, need),
                outcomes,
                task_names,
                owner,
                clock,
                incremental=incremental,
                keep_tasks=keep_tasks,
                stolen=True,
                fault_run=fault_run,
            )
            admitted.append((placed_device, request.qid))
        return admitted

    @staticmethod
    def _apply_fleet_events(
        fleet: DeviceFleet, events: "deque[FleetEvent]", clock: float
    ) -> None:
        """Apply every event due at or before ``clock``, in order.
        Called between admissions only, so a placement decision never
        sees a half-applied fleet."""
        while events and events[0].at <= clock:
            event = events.popleft()
            if event.action == "add":
                fleet.add_device(
                    event.capacity_bytes, calibration=event.calibration
                )
            else:
                fleet.retire_device(event.device)

    @staticmethod
    def _sorted_events(
        fleet_events: "Iterable[FleetEvent] | None",
        initial_devices: int,
    ) -> "deque[FleetEvent]":
        """Validate and time-order a run's fleet events (stable, so
        same-time events apply in list order).  Cross-event consistency
        — retires of devices the fleet never reaches, double retires —
        is rejected up front by
        :func:`~repro.serve.placement.validate_fleet_events`, so a bad
        elasticity schedule cannot fail halfway through a run."""
        events = list(fleet_events or [])
        for event in events:
            if not isinstance(event, FleetEvent):
                raise InvalidConfigError(
                    f"fleet_events entries must be FleetEvent, got "
                    f"{type(event).__name__}"
                )
        validate_fleet_events(events, initial_devices)
        return deque(sorted(events, key=lambda e: e.at))

    def _start_faults(
        self,
        faults: "FaultPlan | None",
        initial_devices: int,
        fleet_events: "Iterable[FleetEvent] | None",
    ) -> "_FaultRun | None":
        """Validate a run's fault plan and build its mutable state —
        ``None`` for no plan *or* an empty one, which is what keeps the
        fault-free path (and its golden bit-identity) untouched."""
        if faults is None or faults.is_empty:
            return None
        faults.validate(initial_devices, fleet_events=fleet_events)
        return _FaultRun(
            faults,
            max_retries=self.max_retries,
            backoff=self.retry_backoff_seconds,
        )

    @staticmethod
    def _apply_faults(
        fault_run: "_FaultRun",
        fleet: DeviceFleet,
        queue: "deque[QueryRequest]",
        outcomes: dict[str, QueryOutcome],
        task_names: dict[str, list[str]],
        owner: dict[str, DeviceState],
        clock: float,
    ) -> int:
        """Apply every crash due at or before ``clock`` and move every
        backoff-expired retry to the front of the admission queue.
        Called between admissions only (right after fleet events, and
        crash/retry times are clock stops), so a placement decision
        never sees a half-crashed fleet.

        Per crash: the device's unfinished tasks are invalidated
        (:meth:`~repro.serve.placement.DeviceState.crash`), its arena
        is reconciled against the lost-query list
        (:meth:`~repro.gpusim.arena.DeviceMemoryArena.reconcile` — the
        ledger drains through the audited force-release path), every
        lost query's in-flight bookkeeping is dropped, and the query is
        charged one attempt — requeued with backoff, or recorded as
        failed when the budget is spent.  Returns the total number of
        scheduled tasks invalidated, which streaming subtracts from its
        in-flight task accounting (batch/online ignore it)."""
        lost_tasks = 0
        while fault_run.crashes and fault_run.crashes[0].at <= clock:
            event = fault_run.crashes.popleft()
            lost = fleet.crash_device(event.device, event.at)
            fleet[event.device].arena.reconcile(lost, at=event.at)
            for qid in lost:
                outcomes.pop(qid, None)
                names = task_names.pop(qid, None)
                if names is not None:
                    lost_tasks += len(names)
                owner.pop(qid, None)
                request = fault_run.live.pop(qid)
                fault_run.record_failure(
                    request, event.at, device=event.device
                )
            fault_run.crashed_devices[event.device] = event.at
        fault_run.requeue_ready(queue, clock)
        return lost_tasks

    def _serve(
        self,
        requests: list[QueryRequest],
        *,
        incremental: bool,
        fleet_events: "Iterable[FleetEvent] | None" = None,
        faults: "FaultPlan | None" = None,
    ) -> ServeReport:
        # Every batch/online run executes under this scheduler's learned
        # setting — a force-set in both directions, so learned=False
        # runs are bit-identical to golden even when another component
        # in the process has installed and activated a model.
        with learned_cost.activation(self.learned):
            return self._serve_impl(
                requests, incremental=incremental,
                fleet_events=fleet_events, faults=faults,
            )

    def _serve_impl(
        self,
        requests: list[QueryRequest],
        *,
        incremental: bool,
        fleet_events: "Iterable[FleetEvent] | None" = None,
        faults: "FaultPlan | None" = None,
    ) -> ServeReport:
        if len({r.qid for r in requests}) != len(requests):
            raise InvalidConfigError("query ids must be unique")
        fleet = self._build_fleet()
        events = self._sorted_events(fleet_events, len(fleet))
        fault_run = self._start_faults(faults, len(fleet), fleet_events)
        capacity = max(fleet.device_capacities())
        policy = create_placement_policy(self.placement)
        policy.reset()
        admission = create_admission_policy(self.admission)
        admission.reset()
        admission_ctx = AdmissionContext(
            clock=0.0, solo_seconds=lambda r: self._solo(r)[1]
        )
        if not requests:
            return ServeReport(
                outcomes=[], makespan=0.0, capacity_bytes=capacity,
                peak_reserved_bytes=0, devices=len(fleet),
                device_peak_bytes=fleet.device_peaks(),
                device_capacity_bytes=fleet.device_capacities(),
                arenas=[device.arena for device in fleet],
            )

        pending: deque[QueryRequest] = deque(
            sorted(requests, key=lambda r: r.submit_at)
        )
        task_names: dict[str, list[str]] = {}
        outcomes: dict[str, QueryOutcome] = {}
        owner: dict[str, DeviceState] = {}
        clock = 0.0

        while (
            pending
            or fleet.any_running()
            or (fault_run is not None and fault_run.has_work())
        ):
            self._apply_fleet_events(fleet, events, clock)
            if fault_run is not None:
                self._apply_faults(
                    fault_run, fleet, pending, outcomes, task_names,
                    owner, clock,
                )
            if (
                not fleet.any_running()
                and pending
                and pending[0].submit_at > clock
            ):
                # Idle jump — but never past a fleet event or a fault
                # wakeup (crash / retry-ready), which may change what
                # the next admission can see.
                horizon = pending[0].submit_at
                if events and events[0].at < horizon:
                    horizon = events[0].at
                if fault_run is not None:
                    wake = fault_run.next_wake()
                    if wake is not None and wake < horizon:
                        horizon = wake
                clock = horizon
                self._apply_fleet_events(fleet, events, clock)
                if fault_run is not None:
                    self._apply_faults(
                        fault_run, fleet, pending, outcomes, task_names,
                        owner, clock,
                    )
            elif (
                fault_run is not None
                and not fleet.any_running()
                and not pending
                and fault_run.has_work()
            ):
                # Idle with an empty queue: only a waiting retry can
                # produce more work (that's the loop condition), so jump
                # to the next fault wakeup — clamped to fleet events.
                horizon = fault_run.next_wake()
                assert horizon is not None  # has_work() implies a retry
                if events and events[0].at < horizon:
                    horizon = events[0].at
                clock = max(clock, horizon)
                self._apply_fleet_events(fleet, events, clock)
                self._apply_faults(
                    fault_run, fleet, pending, outcomes, task_names,
                    owner, clock,
                )

            if (
                fault_run is not None
                and not fleet.active()
                and not any(e.action == "add" for e in events)
            ):
                # Fleet lost: every accepting device crashed (or was
                # retiring) and none will join.  Nothing waiting — in
                # the queue or the retry backlog — can ever be admitted;
                # fail it all now instead of spinning.  Queries still
                # draining on a retiring device finish normally.
                fault_run.fail_stranded(pending)

            # Admit while the admission policy's chosen head can be
            # placed somewhere; head-of-line blocking — on the *chosen*
            # head — keeps admission starvation-free.  FIFO (the
            # default) always chooses index 0, reproducing the
            # historical popleft loop exactly.
            while pending and pending[0].submit_at <= clock:
                pos = (
                    self._admission_pos(
                        admission, pending, admission_ctx, clock
                    )
                    if admission.reorders
                    else 0
                )
                request = pending[pos]
                if fault_run is not None and fault_run.take_admission_fault(
                    request.qid
                ):
                    # Planned transient admission failure: the refusal
                    # charges the same retry budget a crash does, and
                    # the query re-queues after its backoff.
                    del pending[pos]
                    fault_run.record_failure(request, clock)
                    continue
                placed = self._place(
                    request, fleet, policy, outcomes, clock,
                    can_grow=any(e.action == "add" for e in events),
                )
                if placed is None:
                    break
                del pending[pos]
                self._admit(
                    request, placed, outcomes, task_names, owner, clock,
                    incremental=incremental, fault_run=fault_run,
                )
                admission.record_admit(request, admission_ctx)

            if self.steal and pending:
                self._steal(
                    pending, fleet, outcomes, task_names, owner, clock,
                    incremental=incremental, fault_run=fault_run,
                )

            if not fleet.any_running():
                if not pending:
                    # Queue empty, nothing running: only waiting retries
                    # keep the loop alive (loop condition); the idle
                    # fault-wakeup jump above handles the clock.
                    continue
                if events:
                    # Nothing running and the head is blocked (or yet to
                    # arrive): only a fleet event can change the picture,
                    # so jump straight to the next one.
                    clock = max(clock, events[0].at)
                    continue
                if pending[0].submit_at > clock:
                    # The idle jump above stopped short at a fleet event
                    # or fault wakeup this pass (all applied now); loop
                    # back so it can jump the rest of the way to the
                    # head's arrival.
                    continue
                if fault_run is not None:
                    wake = fault_run.next_wake()
                    if wake is not None:
                        # Head blocked on an idle, partially-crashed
                        # fleet: a pending crash or retry is the only
                        # remaining event source.
                        clock = max(clock, wake)
                        continue
                # Livelock guard: an admission `break` with nothing
                # running would spin forever (no release event can
                # advance the clock).  Unreachable under the current
                # policy — with an empty arena every accepting device
                # offers the unconstrained placement — but a future gate
                # that drops the `running` condition must fail loudly,
                # not hang.
                head = pending[0]  # pragma: no cover
                raise SchedulingError(  # pragma: no cover
                    f"query {head.qid!r} cannot be admitted on an idle fleet"
                )

            # One engine pass per device that gained tasks — FIFO queues
            # mean later admissions never perturb earlier queries' start
            # times, so finish events stay stable across re-runs and a
            # clean device's schedule can be reused across pure release
            # events.  Batch mode re-simulates the device's whole graph;
            # online mode extends the carried-over schedule with just
            # this wave's tasks (bit-identical by the FIFO-tail
            # argument above).
            for device in fleet:
                if not device.dirty:
                    continue
                if incremental:
                    if device.engine is None:
                        device.engine = PipelineEngine(
                            device.resources, device=device.index
                        )
                    # The pre-extension schedule is never used again,
                    # so extend in place: O(new tasks) per wave.
                    device.schedule = device.engine.extend(
                        device.schedule, device.wave_tasks, in_place=True
                    )
                    device.wave_tasks = []
                else:
                    device.schedule = self._run_engine(
                        device.tasks, device.resources, device.index
                    )
                device.dirty = False
            finishes: dict[str, float] = {}
            for device in fleet:
                for qid in device.running:
                    finishes[qid] = max(
                        device.schedule.tasks[name].finish
                        for name in task_names[qid]
                    )
                    device.predicted_finish[qid] = finishes[qid]
            times = list(finishes.values())
            if pending and pending[0].submit_at > clock:
                times.append(pending[0].submit_at)
            if events:
                # A device join/retire is an admission opportunity too
                # (all remaining events are strictly in the future —
                # due ones were applied at the top of the loop).
                times.append(events[0].at)
            if fault_run is not None:
                # Crash and retry-ready times are clock stops: a query
                # must not simulate *through* a crash to a later finish,
                # and a retry must not wait past its backoff.  (Due
                # wakeups were applied at the top, so the next one is
                # strictly in the future.)
                wake = fault_run.next_wake()
                if wake is not None and wake > clock:
                    times.append(wake)
            clock = min(times)
            for qid in sorted(q for q in finishes if finishes[q] <= clock):
                outcomes[qid].finish_at = finishes[qid]
                outcomes[qid].deadline_missed = (
                    finishes[qid] > outcomes[qid].deadline_at
                )
                device = owner[qid]
                device.arena.release(qid, at=clock)
                device.running.remove(qid)
                del device.predicted_finish[qid]
                if fault_run is not None:
                    fault_run.live.pop(qid, None)
            fleet.finalize_retirements()

        fleet.check_drained()
        merged = fleet.merged_schedule()
        # Failed queries (faulted runs) have no QueryOutcome — they are
        # reported in `failed` instead; submission order is preserved
        # for the rest.
        ordered = [
            outcomes[r.qid] for r in requests if r.qid in outcomes
        ]
        report = ServeReport(
            outcomes=ordered,
            makespan=merged.makespan,
            capacity_bytes=capacity,
            peak_reserved_bytes=max(fleet.device_peaks()),
            schedule=merged,
            devices=len(fleet),
            device_peak_bytes=fleet.device_peaks(),
            device_capacity_bytes=fleet.device_capacities(),
            arenas=[device.arena for device in fleet],
            failed=list(fault_run.failed) if fault_run is not None else [],
        )
        if fault_run is not None:
            check_fault_invariants(
                report,
                faults,
                arrivals=len(requests),
                max_retries=self.max_retries,
            )
        return report

    # ------------------------------------------------------------------
    def _stream_wait_estimate(
        self,
        fleet: DeviceFleet,
        wait_queue: "deque[QueryRequest]",
        at: float,
    ) -> float:
        """Fleet-wide estimated admission wait for a query arriving at
        ``at``: outstanding running work past ``at`` (by cached
        predicted finishes) plus the queued queries' cached solo
        makespans, divided by the device count.  Optimistic — ignores
        memory fragmentation and lane contention — which biases
        shedding toward admitting; the SLO is a backpressure valve, not
        a latency guarantee.  Only *accepting* devices count — a
        retiring device's remaining work serves nobody in the queue —
        and queued solos use the scheduler-default calibration (which
        device they will land on is unknowable here).  O(running +
        queued), every term served from caches."""
        backlog = 0.0
        active = fleet.active()
        if not active:
            # Reachable only mid-fault: every device crashed and a
            # pending `add` event will bring replacements.  Until one
            # joins, the estimated wait is unbounded.
            return float("inf")
        for device in active:
            for finish in device.predicted_finish.values():
                if finish > at:
                    backlog += finish - at
        for queued in wait_queue:
            backlog += self._solo(queued)[1]
        return backlog / len(active)

    def run_stream(
        self,
        requests: "Iterable[QueryRequest]",
        *,
        max_queue_depth: int | None = None,
        slo_wait_seconds: float | None = None,
        compact_every: int | None = 256,
        fleet_events: "Iterable[FleetEvent] | None" = None,
        faults: "FaultPlan | None" = None,
    ) -> StreamReport:
        """Steady-state streaming admission: bounded queue, load
        shedding, and schedule compaction.

        Consumes ``requests`` lazily (they must arrive sorted by
        ``submit_at`` with unique qids — a generator works and keeps
        ingestion O(1) memory) and runs the **same** event loop as
        :meth:`run_online`: FIFO head-of-line admission against live
        per-device headroom, incremental schedule extension, release at
        simulated finish.  With shedding disabled (no depth cap, no SLO
        anywhere) the per-query outcomes, device assignments and final
        makespan are **bit-identical** to :meth:`run_online` on the
        same requests — asserted by
        ``tests/serve/test_stream_properties.py`` — while memory stays
        O(in-flight):

        * every ``compact_every`` releases, each device's engine
          retires tasks that finished at or before the clock
          (:meth:`~repro.pipeline.engine.PipelineEngine.compact`);
          lane state is untouched, so extension after compaction places
          new tasks exactly where the uncompacted run would;
        * per-query stats are recorded in their :class:`QueryOutcome`
          at admission/extension time — before compaction can drop the
          tasks — and folded into the :class:`StreamReport`
          accumulators at release;
        * the device's cumulative task list (batch-mode input) is not
          kept at all.

        Backpressure, applied at **ingestion** (when the stream first
        presents the arrival), recorded as :class:`ShedOutcome`, never
        silently dropped:

        * ``max_queue_depth`` — an arrival finding that many queries
          already waiting is shed with reason ``"queue_full"``;
        * ``slo_wait_seconds`` — fleet default admission-wait SLO; a
          request's own ``slo_wait_seconds`` overrides it.  An arrival
          whose :meth:`_stream_wait_estimate` (referenced to its own
          ``submit_at``) exceeds its SLO is shed with reason
          ``"slo_wait"``.  Estimates reuse the cached solo makespans
          and predicted finishes, so the verdict is O(running+queued)
          with no new planning work;
        * **deadline expiry** — a queued query whose hard deadline
          (:class:`~repro.serve.admission.QueryClass`) passes before it
          is admitted is shed with reason ``"deadline_expired"``
          (checked at every clock stop, before admission, so an
          expired query is never started).  Streams with no
          deadline-bearing class run the exact historical path.

        ``compact_every=None`` disables compaction (the run then
        retains every task ever scheduled — only sensible for
        differential testing).

        ``fleet_events`` adds/retires devices at their timestamps
        (between admissions, exactly as in :meth:`run` /
        :meth:`run_online`); with ``steal=True`` on the scheduler, the
        work-stealing pass runs here too, with stolen admissions
        counted by :attr:`StreamReport.stolen_count`.

        ``faults`` injects device crashes and transient admission
        failures (:class:`~repro.serve.faults.FaultPlan`); lost queries
        retry through the same admission path under the scheduler's
        ``max_retries`` budget and exhausted/stranded queries land in
        :attr:`StreamReport.failed` — conservation then reads
        ``completed + shed + failed == arrivals``.  An empty plan runs
        the exact fault-free path.
        """
        with learned_cost.activation(self.learned):
            return self._run_stream_impl(
                requests,
                max_queue_depth=max_queue_depth,
                slo_wait_seconds=slo_wait_seconds,
                compact_every=compact_every,
                fleet_events=fleet_events,
                faults=faults,
            )

    def _run_stream_impl(
        self,
        requests: "Iterable[QueryRequest]",
        *,
        max_queue_depth: int | None,
        slo_wait_seconds: float | None,
        compact_every: int | None,
        fleet_events: "Iterable[FleetEvent] | None",
        faults: "FaultPlan | None",
    ) -> StreamReport:
        if max_queue_depth is not None and max_queue_depth < 1:
            raise InvalidConfigError("max_queue_depth must be >= 1")
        if slo_wait_seconds is not None and slo_wait_seconds < 0:
            raise InvalidConfigError("slo_wait_seconds must be >= 0")
        if compact_every is not None and compact_every < 1:
            raise InvalidConfigError("compact_every must be >= 1")
        fleet = self._build_fleet()
        events = self._sorted_events(fleet_events, len(fleet))
        fault_run = self._start_faults(faults, len(fleet), fleet_events)
        capacity = max(fleet.device_capacities())
        policy = create_placement_policy(self.placement)
        policy.reset()
        admission = create_admission_policy(self.admission)
        admission.reset()
        admission_ctx = AdmissionContext(
            clock=0.0, solo_seconds=lambda r: self._solo(r)[1]
        )
        #: Set the first time a deadline-bearing query is ingested;
        #: gates the per-wave expiry sweep so deadline-free streams run
        #: the exact historical path.
        any_deadlines = False

        arrivals = iter(requests)
        next_req: QueryRequest | None = next(arrivals, None)
        seen: set[str] = set()
        last_submit = 0.0
        wait_queue: deque[QueryRequest] = deque()
        outcomes: dict[str, QueryOutcome] = {}
        task_names: dict[str, list[str]] = {}
        owner: dict[str, DeviceState] = {}
        completed: list[QueryOutcome] = []
        shed: list[ShedOutcome] = []
        queue_depths: list[int] = []
        #: ``(finish, qid, generation)`` — the generation (the query's
        #: fault-retry count at push time, always 0 fault-free) lets a
        #: release distinguish a live finish from a stale entry whose
        #: query was lost to a crash (and possibly re-admitted) after
        #: the push.  The extra field never changes heap order for
        #: distinct qids, so fault-free runs pop identically.
        finish_heap: list[tuple[float, str, int]] = []
        admitted_wave: list[tuple[DeviceState, str]] = []
        clock = 0.0
        arrived = 0
        makespan = 0.0
        inflight_tasks = 0
        peak_inflight_tasks = 0
        peak_retained_tasks = 0
        max_tasks_per_query = 0
        retired_tasks = 0
        compactions = 0
        released_since_compact = 0

        def ingest(request: QueryRequest) -> None:
            """Shed or enqueue one arrival, verdict referenced to the
            arrival's own submit time."""
            depth = len(wait_queue)
            queue_depths.append(depth)
            if max_queue_depth is not None and depth >= max_queue_depth:
                shed.append(ShedOutcome(
                    qid=request.qid,
                    submit_at=request.submit_at,
                    reason="queue_full",
                    queue_depth=depth,
                    estimated_wait_seconds=self._stream_wait_estimate(
                        fleet, wait_queue, request.submit_at
                    ),
                    class_name=class_name_of(request),
                    tenant=tenant_of(request),
                ))
                return
            slo = (
                request.slo_wait_seconds
                if request.slo_wait_seconds is not None
                else slo_wait_seconds
            )
            if slo is not None:
                wait = self._stream_wait_estimate(
                    fleet, wait_queue, request.submit_at
                )
                if wait > slo:
                    shed.append(ShedOutcome(
                        qid=request.qid,
                        submit_at=request.submit_at,
                        reason="slo_wait",
                        queue_depth=depth,
                        estimated_wait_seconds=wait,
                        class_name=class_name_of(request),
                        tenant=tenant_of(request),
                    ))
                    return
            wait_queue.append(request)

        while (
            wait_queue
            or next_req is not None
            or fleet.any_running()
            or (fault_run is not None and fault_run.has_work())
        ):
            self._apply_fleet_events(fleet, events, clock)
            if fault_run is not None:
                inflight_tasks -= self._apply_faults(
                    fault_run, fleet, wait_queue, outcomes, task_names,
                    owner, clock,
                )
            if (
                not fleet.any_running()
                and not wait_queue
                and next_req is not None
                and next_req.submit_at > clock
            ):
                horizon = next_req.submit_at
                if events and events[0].at < horizon:
                    horizon = events[0].at
                if fault_run is not None:
                    wake = fault_run.next_wake()
                    if wake is not None and wake < horizon:
                        horizon = wake
                clock = horizon
                self._apply_fleet_events(fleet, events, clock)
                if fault_run is not None:
                    inflight_tasks -= self._apply_faults(
                        fault_run, fleet, wait_queue, outcomes,
                        task_names, owner, clock,
                    )
            elif (
                fault_run is not None
                and not fleet.any_running()
                and not wait_queue
                and next_req is None
                and fault_run.has_work()
            ):
                # Stream exhausted, fleet idle: only a waiting retry can
                # produce more work — jump to the next fault wakeup,
                # clamped to fleet events.
                horizon = fault_run.next_wake()
                assert horizon is not None  # has_work() implies a retry
                if events and events[0].at < horizon:
                    horizon = events[0].at
                clock = max(clock, horizon)
                self._apply_fleet_events(fleet, events, clock)
                inflight_tasks -= self._apply_faults(
                    fault_run, fleet, wait_queue, outcomes, task_names,
                    owner, clock,
                )

            if (
                fault_run is not None
                and not fleet.active()
                and not any(e.action == "add" for e in events)
            ):
                # Fleet lost: nothing waiting or still arriving can ever
                # be admitted.  Fail the queue and retry backlog, then
                # drain the rest of the stream (validating it exactly as
                # ingestion would) into `failed` — conservation must
                # still account for every arrival.
                fault_run.fail_stranded(wait_queue)
                while next_req is not None:
                    request = next_req
                    if request.submit_at < last_submit:
                        raise InvalidConfigError(
                            f"stream arrivals must be sorted by "
                            f"submit_at: {request.qid!r} at "
                            f"{request.submit_at} after {last_submit}"
                        )
                    last_submit = request.submit_at
                    if request.qid in seen:
                        raise InvalidConfigError(
                            "query ids must be unique"
                        )
                    seen.add(request.qid)
                    arrived += 1
                    fault_run.fail_now(request, reason="fleet_lost")
                    next_req = next(arrivals, None)

            # Ingest every arrival due by now.  Mirrors `_serve`'s
            # pending deque exactly: an arrival behind a blocked head is
            # considered only once the clock reaches it, and ingestion
            # itself never advances the clock.
            while next_req is not None and next_req.submit_at <= clock:
                request = next_req
                if request.submit_at < last_submit:
                    raise InvalidConfigError(
                        f"stream arrivals must be sorted by submit_at: "
                        f"{request.qid!r} at {request.submit_at} after "
                        f"{last_submit}"
                    )
                last_submit = request.submit_at
                if request.qid in seen:
                    raise InvalidConfigError("query ids must be unique")
                seen.add(request.qid)
                arrived += 1
                if not any_deadlines and hard_deadline(request) != math.inf:
                    any_deadlines = True
                ingest(request)
                next_req = next(arrivals, None)

            if any_deadlines and wait_queue:
                # Shed queued queries whose hard deadline has already
                # passed — they can no longer finish in time, and
                # admitting them would burn fleet time a live query
                # needs.  Verdict "deadline_expired" (distinct from the
                # ingestion-time "slo_wait") so audits can attribute
                # deadline sheds per class.  Runs before admission so an
                # expired query is never admitted at or past its
                # deadline; a fault-retried query carries its original
                # class and is swept by the same rule.
                expired = [
                    r for r in wait_queue if hard_deadline(r) <= clock
                ]
                if expired:
                    depth = len(wait_queue)
                    gone = {r.qid for r in expired}
                    for request in expired:
                        shed.append(ShedOutcome(
                            qid=request.qid,
                            submit_at=request.submit_at,
                            reason="deadline_expired",
                            queue_depth=depth,
                            estimated_wait_seconds=(
                                clock - request.submit_at
                            ),
                            class_name=class_name_of(request),
                            tenant=tenant_of(request),
                        ))
                    for pos in range(len(wait_queue) - 1, -1, -1):
                        if wait_queue[pos].qid in gone:
                            del wait_queue[pos]

            # Admit while the admission policy's chosen head can be
            # placed somewhere — identical head-of-line blocking to
            # `_serve` (the stream's wait queue only ever holds arrived
            # queries, so the whole queue is the policy's candidate
            # view).
            while wait_queue:
                pos = (
                    self._admission_pos(
                        admission, wait_queue, admission_ctx, clock
                    )
                    if admission.reorders
                    else 0
                )
                request = wait_queue[pos]
                if fault_run is not None and fault_run.take_admission_fault(
                    request.qid
                ):
                    # Transient admission failure — same budget and
                    # backoff as a crash loss (see `_serve`).
                    del wait_queue[pos]
                    fault_run.record_failure(request, clock)
                    continue
                placed = self._place(
                    request, fleet, policy, outcomes, clock,
                    can_grow=any(e.action == "add" for e in events),
                )
                if placed is None:
                    break
                del wait_queue[pos]
                device = self._admit(
                    request, placed, outcomes, task_names, owner, clock,
                    incremental=True, keep_tasks=False,
                    fault_run=fault_run,
                )
                admission.record_admit(request, admission_ctx)
                ntasks = len(task_names[request.qid])
                inflight_tasks += ntasks
                if ntasks > max_tasks_per_query:
                    max_tasks_per_query = ntasks
                if inflight_tasks > peak_inflight_tasks:
                    peak_inflight_tasks = inflight_tasks
                admitted_wave.append((device, request.qid))

            if self.steal and wait_queue:
                for device, qid in self._steal(
                    wait_queue, fleet, outcomes, task_names, owner, clock,
                    incremental=True, keep_tasks=False,
                    fault_run=fault_run,
                ):
                    ntasks = len(task_names[qid])
                    inflight_tasks += ntasks
                    if ntasks > max_tasks_per_query:
                        max_tasks_per_query = ntasks
                    if inflight_tasks > peak_inflight_tasks:
                        peak_inflight_tasks = inflight_tasks
                    admitted_wave.append((device, qid))

            if wait_queue and not fleet.any_running():
                if events:
                    # Only a fleet event can unblock the head now.
                    clock = max(clock, events[0].at)
                    continue
                if fault_run is not None:
                    wake = fault_run.next_wake()
                    if wake is not None:
                        # A pending crash or retry is the only
                        # remaining event source.
                        clock = max(clock, wake)
                        continue
                head = wait_queue[0]  # pragma: no cover - _place bug
                raise SchedulingError(  # pragma: no cover
                    f"query {head.qid!r} cannot be admitted on an idle fleet"
                )

            for device in fleet:
                if not device.dirty:
                    continue
                if device.engine is None:
                    device.engine = PipelineEngine(
                        device.resources, device=device.index
                    )
                device.schedule = device.engine.extend(
                    device.schedule, device.wave_tasks, in_place=True
                )
                device.wave_tasks = []
                device.dirty = False

            # Each admitted query's finish is read once, right after its
            # wave's extension: FIFO lanes mean later admissions never
            # move it (the same guarantee `run_online` leans on), so
            # release events come from a heap instead of re-reading the
            # schedule — which compaction may have trimmed — every wave.
            for device, qid in admitted_wave:
                finish = max(
                    device.schedule.tasks[name].finish
                    for name in task_names[qid]
                )
                outcomes[qid].finish_at = finish
                outcomes[qid].deadline_missed = (
                    finish > outcomes[qid].deadline_at
                )
                device.predicted_finish[qid] = finish
                generation = (
                    fault_run.generation(qid) if fault_run is not None else 0
                )
                heapq.heappush(finish_heap, (finish, qid, generation))
                if fault_run is None and finish > makespan:
                    # Faulted runs fold the makespan in at release
                    # instead: a projected finish the crash voids must
                    # not count.
                    makespan = finish
            admitted_wave = []
            retained = sum(len(device.schedule.tasks) for device in fleet)
            if retained > peak_retained_tasks:
                peak_retained_tasks = retained

            times = []
            if finish_heap:
                times.append(finish_heap[0][0])
            if (
                not wait_queue
                and next_req is not None
                and next_req.submit_at > clock
            ):
                times.append(next_req.submit_at)
            if events:
                # Remaining fleet events are strictly in the future
                # (due ones were applied at the top of the loop) and
                # are admission opportunities.
                times.append(events[0].at)
            if fault_run is not None:
                # Crash / retry-ready times are clock stops (see
                # `_serve`); due ones were applied at the top, so the
                # next is strictly in the future.
                wake = fault_run.next_wake()
                if wake is not None and wake > clock:
                    times.append(wake)
            if not times:  # pragma: no cover - loop condition re-check
                break
            clock = min(times)
            due: list[tuple[float, str, int]] = []
            while finish_heap and finish_heap[0][0] <= clock:
                due.append(heapq.heappop(finish_heap))
            for finish, qid, generation in sorted(
                due, key=lambda item: item[1]
            ):
                if (
                    fault_run is not None
                    and fault_run.generation(qid) != generation
                ):
                    # Stale entry: the query was lost to a crash (and
                    # possibly re-admitted under a newer generation)
                    # after this finish was predicted.
                    continue
                if fault_run is not None and finish > makespan:
                    makespan = finish
                completed.append(outcomes.pop(qid))
                device = owner.pop(qid)
                device.arena.release(qid, at=clock)
                device.running.remove(qid)
                del device.predicted_finish[qid]
                inflight_tasks -= len(task_names.pop(qid))
                released_since_compact += 1
                if fault_run is not None:
                    fault_run.live.pop(qid, None)
            fleet.finalize_retirements()
            if (
                compact_every is not None
                and released_since_compact >= compact_every
            ):
                for device in fleet:
                    if device.engine is not None:
                        retired_tasks += device.engine.compact(
                            device.schedule, clock
                        )
                compactions += 1
                released_since_compact = 0

        fleet.check_drained()
        report = StreamReport(
            outcomes=completed,
            shed=shed,
            arrivals=arrived,
            makespan=makespan,
            capacity_bytes=capacity,
            devices=len(fleet),
            device_peak_bytes=fleet.device_peaks(),
            device_capacity_bytes=fleet.device_capacities(),
            peak_retained_tasks=peak_retained_tasks,
            peak_inflight_tasks=peak_inflight_tasks,
            max_tasks_per_query=max_tasks_per_query,
            retired_tasks=retired_tasks,
            compactions=compactions,
            queue_depths=queue_depths,
            arenas=[device.arena for device in fleet],
            failed=list(fault_run.failed) if fault_run is not None else [],
        )
        if fault_run is not None:
            check_fault_invariants(
                report,
                faults,
                arrivals=arrived,
                max_retries=self.max_retries,
            )
        return report
