"""Admission-controlled multi-query scheduling on one simulated GPU.

The single-query planner answers "which join strategy fits this
workload on an idle device?".  Serving inverts the question: many
queries contend for one device's memory and copy/exec lanes, and the
right strategy for a query depends on how much memory is free *when it
is admitted*.  The scheduler:

* keeps a FIFO of submitted queries and a shared
  :class:`~repro.gpusim.arena.DeviceMemoryArena`;
* on admission, re-plans the query with the ladder restricted to the
  arena's current headroom (``choose_strategy_name(...,
  available_bytes=...)``) — a query that would run GPU-resident alone
  degrades to streaming or co-processing under load — and reserves the
  chosen strategy's whole device footprint.  Degradation is *bounded*:
  if the cheaper placement is estimated to run more than
  ``max_degradation`` times slower than the unconstrained one, the
  query waits for memory instead (a pathologically degraded plan can
  cost more GPU time than simply queueing);
* lowers every admitted query's :class:`JoinPlan` into **one** shared
  :class:`~repro.pipeline.engine.PipelineEngine`, task names prefixed
  with the query id and released at the admission time, so H2D/D2H/GPU
  resource lanes interleave across co-resident queries;
* releases the reservation at the query's simulated finish time, which
  is the event that admits the next waiting query.

Two scheduling modes share that admission policy: batch
(:meth:`QueryScheduler.run`, one full engine re-simulation per
admission wave) and online (:meth:`QueryScheduler.run_online`,
incremental schedule extension per arrival via
:meth:`~repro.pipeline.engine.PipelineEngine.extend`).  Their outcomes
are bit-identical; only the wall-clock cost differs.

The simulation is deterministic: identical request lists produce
identical schedules, admissions, and latencies.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.core.config import GpuJoinConfig
from repro.core.planner import choose_strategy_name
from repro.core.strategy import (
    COPROCESSING,
    COPROCESSING_ADAPTIVE,
    JoinPlan,
    create_strategy,
    strategy_factory,
)
from repro.data.spec import JoinSpec
from repro.errors import InvalidConfigError, SchedulingError
from repro.gpusim.arena import DeviceMemoryArena
from repro.gpusim.calibration import Calibration
from repro.gpusim.spec import SystemSpec
from repro.pipeline.engine import PipelineEngine
from repro.pipeline.tasks import Schedule, Task


@dataclass(frozen=True)
class QueryRequest:
    """One client query: a join workload submitted at a point in time.

    ``submit_at`` is the arrival time in **simulated seconds** (the
    clock the scheduler and engine share), not wall clock.
    """

    qid: str
    spec: JoinSpec
    submit_at: float = 0.0
    materialize: bool = False
    #: Pin a registry strategy key, bypassing admission-time planning.
    strategy: str | None = None

    def __post_init__(self) -> None:
        if not self.qid:
            raise InvalidConfigError("query id must be non-empty")
        if self.submit_at < 0:
            raise InvalidConfigError(f"{self.qid}: negative submit time")


@dataclass
class QueryOutcome:
    """How one query fared: placement, timing, and memory.

    ``reserved_bytes`` is the arena grant in **bytes**; every ``*_at``
    / ``*_seconds`` field is in **simulated seconds**.
    """

    qid: str
    strategy: str
    solo_strategy: str
    reserved_bytes: int
    submit_at: float
    admit_at: float
    finish_at: float = 0.0
    #: Makespan of this query run alone on an idle device with the
    #: planner's unconstrained choice — the serial-execution baseline.
    solo_seconds: float = 0.0

    @property
    def wait_seconds(self) -> float:
        return self.admit_at - self.submit_at

    @property
    def latency_seconds(self) -> float:
        return self.finish_at - self.submit_at

    @property
    def degraded(self) -> bool:
        """Did memory pressure force a cheaper placement than solo?"""
        return self.strategy != self.solo_strategy


@dataclass
class ServeReport:
    """The outcome of one scheduler run over a batch of queries.

    ``makespan`` and the latency aggregates are **simulated seconds**;
    ``capacity_bytes`` / ``peak_reserved_bytes`` are **bytes**.  Batch
    (:meth:`QueryScheduler.run`) and online
    (:meth:`QueryScheduler.run_online`) admission produce identical
    reports for the same requests.
    """

    outcomes: list[QueryOutcome]
    makespan: float
    capacity_bytes: int
    peak_reserved_bytes: int
    schedule: Schedule | None = field(default=None, repr=False)

    @property
    def serial_seconds(self) -> float:
        """Total solo work: the sum of solo makespans."""
        return sum(item.solo_seconds for item in self.outcomes)

    @property
    def serial_makespan(self) -> float:
        """Serial back-to-back baseline honouring submission times: each
        query starts at ``max(previous finish, submit_at)``.  For one
        batch (all submitted together) this equals
        :attr:`serial_seconds`; for staggered arrivals it includes the
        idle gaps a serial executor would also sit through."""
        clock = 0.0
        for item in sorted(self.outcomes, key=lambda o: o.submit_at):
            clock = max(clock, item.submit_at) + item.solo_seconds
        return clock

    @property
    def speedup(self) -> float:
        return self.serial_makespan / self.makespan if self.makespan > 0 else 0.0

    @property
    def queries_per_second(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return len(self.outcomes) / self.makespan

    @property
    def mean_latency(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.latency_seconds for o in self.outcomes) / len(self.outcomes)

    @property
    def p95_latency(self) -> float:
        if not self.outcomes:
            return 0.0
        latencies = sorted(o.latency_seconds for o in self.outcomes)
        rank = math.ceil(0.95 * len(latencies)) - 1
        return latencies[max(0, min(len(latencies) - 1, rank))]

    @property
    def degraded_count(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    def render(self) -> str:
        """Aligned per-query table plus the summary line."""
        lines = [
            f"{'query':10s} {'strategy':22s} {'reserved':>10s} "
            f"{'admit (s)':>10s} {'finish (s)':>11s} {'latency (s)':>12s}  note"
        ]
        for o in self.outcomes:
            note = f"degraded from {o.solo_strategy}" if o.degraded else ""
            lines.append(
                f"{o.qid:10s} {o.strategy:22s} "
                f"{o.reserved_bytes / 1e9:8.2f}GB "
                f"{o.admit_at:10.3f} {o.finish_at:11.3f} "
                f"{o.latency_seconds:12.3f}  {note}"
            )
        lines.append(
            f"makespan {self.makespan:.3f} s vs serial "
            f"{self.serial_makespan:.3f} s ({self.speedup:.2f}x), "
            f"{self.queries_per_second:.2f} q/s, peak memory "
            f"{self.peak_reserved_bytes / 1e9:.2f} of "
            f"{self.capacity_bytes / 1e9:.2f} GB"
        )
        return "\n".join(lines)


class QueryScheduler:
    """Runs batches of queries concurrently on one simulated GPU.

    Two entry points with **bit-identical outcomes**: :meth:`run`
    (batch — full re-simulation per admission wave, the executable
    specification) and :meth:`run_online` (incremental schedule
    extension, the cheap production path).  Both are deterministic —
    identical request lists produce identical reports — and both lean
    on the process-wide :mod:`repro.core.estimate_cache` for every
    solo/degraded/wait estimate, which is a pure memoization: cached
    and recomputed estimates are interchangeable.  Memory quantities
    are **bytes**, times **simulated seconds**.

    ``lanes`` optionally widens resource pools for the shared engine
    (e.g. ``{"h2d": 2}`` to model both DMA engines copying inputs);
    per-plan resource declarations are merged in at their maximum, but
    only before the first engine run — widening a pool mid-run would
    silently re-place already-recorded finishes, so it raises instead.

    ``max_degradation`` bounds how much slower an admission-time
    placement may be (estimated solo-vs-solo) than the unconstrained
    one before the query prefers waiting for memory; a degraded
    placement is also rejected when queueing for the unconstrained
    placement's memory is estimated to finish sooner than starting the
    cheaper plan now.  ``None`` degrades eagerly whenever anything
    fits, trading the no-worse-than-serial guarantee for admission
    throughput.
    """

    def __init__(
        self,
        system: SystemSpec | None = None,
        calibration: Calibration | None = None,
        config: GpuJoinConfig | None = None,
        *,
        lanes: dict[str, int] | None = None,
        max_degradation: float | None = 2.0,
    ):
        if max_degradation is not None and max_degradation < 1.0:
            raise InvalidConfigError("max_degradation must be >= 1.0")
        self.system = system or SystemSpec()
        self.calibration = calibration
        self.config = config
        self.lanes = dict(lanes or {})
        self.max_degradation = max_degradation
        #: Solo-placement cache; workloads repeat spec templates and the
        #: baseline is a pure function of (spec, materialize, pin).  The
        #: makespans themselves are memoized process-wide by
        #: :mod:`repro.core.estimate_cache` (underneath ``estimate()``),
        #: so re-planning, determinism re-runs and sweep levels share
        #: kernel-cost work; this dict only saves the re-dispatch.
        self._solo_cache: dict[tuple[JoinSpec, bool, str | None], tuple[str, float]] = {}

    # ------------------------------------------------------------------
    def _choose(self, request: QueryRequest, available_bytes: int) -> str:
        if request.strategy is not None:
            return request.strategy
        return choose_strategy_name(
            request.spec, self.system, available_bytes=available_bytes
        )

    def _strategy_kwargs(self, key: str, reserved_bytes: int) -> dict[str, Any]:
        """Constructor extras making the strategy honour its grant."""
        if key in (COPROCESSING, COPROCESSING_ADAPTIVE):
            return {"device_budget": reserved_bytes}
        return {}

    def _solo(self, request: QueryRequest) -> tuple[str, float]:
        """Unconstrained placement and makespan on an idle device."""
        cache_key = (request.spec, request.materialize, request.strategy)
        cached = self._solo_cache.get(cache_key)
        if cached is not None:
            return cached
        key = request.strategy or choose_strategy_name(request.spec, self.system)
        strategy = create_strategy(key, self.system, self.calibration, self.config)
        metrics = strategy.estimate(request.spec, materialize=request.materialize)
        self._solo_cache[cache_key] = (key, metrics.seconds)
        return key, metrics.seconds

    def _estimate_alone(
        self, key: str, request: QueryRequest, reserved_bytes: int
    ) -> float:
        """Estimated makespan of running ``key`` alone for this query,
        under the same memory grant the admitted strategy would get.
        Memoized by the shared estimate cache (the grant is part of the
        strategy fingerprint via ``device_budget``)."""
        strategy = create_strategy(
            key,
            self.system,
            self.calibration,
            self.config,
            **self._strategy_kwargs(key, reserved_bytes),
        )
        return strategy.estimate(
            request.spec, materialize=request.materialize
        ).seconds

    @staticmethod
    def _estimated_wait(
        need_bytes: int,
        *,
        clock: float,
        free_bytes: int,
        reserved: dict[str, int],
        predicted_finish: dict[str, float],
    ) -> float:
        """Time until ``need_bytes`` could be free, assuming running
        queries release at their predicted finishes and nothing else is
        admitted meanwhile.  Optimistic (contention can stretch the
        predictions), which biases the degrade-vs-wait choice toward
        waiting — the direction that never loses to serial execution."""
        if need_bytes <= free_bytes:
            return 0.0
        freed = free_bytes
        for qid in sorted(predicted_finish, key=lambda q: predicted_finish[q]):
            freed += reserved.get(qid, 0)
            if freed >= need_bytes:
                return max(0.0, predicted_finish[qid] - clock)
        return float("inf")

    @staticmethod
    def _namespace(plan: JoinPlan, qid: str, available_at: float) -> list[Task]:
        """Prefix a plan's task graph so it can share one engine."""
        return [
            Task(
                name=f"{qid}:{task.name}",
                resource=task.resource,
                duration=task.duration,
                deps=tuple(f"{qid}:{dep}" for dep in task.deps),
                phase=task.phase,
                available_at=available_at,
            )
            for task in plan.tasks
        ]

    def _run_engine(
        self, tasks: list[Task], resources: dict[str, int]
    ) -> Schedule:
        engine = PipelineEngine(resources)
        for task in tasks:
            engine.add(task)
        return engine.run()

    # ------------------------------------------------------------------
    def run(self, requests: list[QueryRequest]) -> ServeReport:
        """Schedule a batch of queries and simulate to completion.

        Arrivals (``submit_at``, simulated seconds) are processed
        event-by-event, but every admission wave re-simulates the whole
        shared task graph from scratch — the executable specification
        that :meth:`run_online` is pinned against.  Deterministic:
        identical request lists produce identical reports.
        """
        return self._serve(requests, incremental=False)

    def run_online(self, requests: list[QueryRequest]) -> ServeReport:
        """Online admission: extend the shared schedule incrementally.

        Same arrival-driven admission policy (admit / wait / degrade
        against the arena's live headroom, all placement estimates
        served by the process-wide estimate cache) and **bit-identical
        outcomes** to :meth:`run` — later admissions join the tail of
        every FIFO lane, so already-placed tasks never move.  The
        difference is cost: each arrival wave is placed by
        :meth:`~repro.pipeline.engine.PipelineEngine.extend` on top of
        the carried-over lane heaps, O(new tasks) per wave instead of
        one full re-simulation, which makes the serve wall clock
        near-linear in client count.  Equivalence is asserted by
        ``tests/serve/test_online.py`` and ``bench/regress.py``.
        """
        return self._serve(requests, incremental=True)

    def _serve(
        self, requests: list[QueryRequest], *, incremental: bool
    ) -> ServeReport:
        if len({r.qid for r in requests}) != len(requests):
            raise InvalidConfigError("query ids must be unique")
        capacity = self.system.gpu.device_memory
        arena = DeviceMemoryArena(capacity)
        if not requests:
            return ServeReport(
                outcomes=[], makespan=0.0, capacity_bytes=capacity,
                peak_reserved_bytes=0,
            )

        pending: deque[QueryRequest] = deque(
            sorted(requests, key=lambda r: r.submit_at)
        )
        tasks: list[Task] = []
        #: Tasks admitted since the last engine pass (incremental mode).
        wave_tasks: list[Task] = []
        engine: PipelineEngine | None = None
        resources: dict[str, int] = dict(self.lanes)
        task_names: dict[str, list[str]] = {}
        outcomes: dict[str, QueryOutcome] = {}
        running: set[str] = set()
        #: Expected finish per running query: engine-accurate once the
        #: query has been through a run, alone-estimate for queries
        #: admitted since — used only for the wait-vs-degrade heuristic.
        predicted_finish: dict[str, float] = {}
        schedule = Schedule()
        schedule_dirty = False
        clock = 0.0

        while pending or running:
            if not running and pending and pending[0].submit_at > clock:
                clock = pending[0].submit_at

            # Admit in FIFO order while the head's re-planned footprint
            # fits; head-of-line blocking keeps admission starvation-free.
            while pending and pending[0].submit_at <= clock:
                request = pending[0]
                key = self._choose(request, arena.free_bytes)
                need = strategy_factory(key).device_bytes_needed(
                    request.spec, self.system
                )
                if need > capacity:
                    raise SchedulingError(
                        f"query {request.qid!r} needs {need / 1e9:.2f} GB "
                        f"({key}) but the device has {capacity / 1e9:.2f} GB; "
                        "it can never be admitted"
                    )
                solo_key, solo_seconds = self._solo(request)
                if (
                    self.max_degradation is not None
                    and running
                    and key != solo_key
                ):
                    degraded_alone = self._estimate_alone(key, request, need)
                    solo_need = strategy_factory(solo_key).device_bytes_needed(
                        request.spec, self.system
                    )
                    wait = self._estimated_wait(
                        solo_need,
                        clock=clock,
                        free_bytes=arena.free_bytes,
                        reserved={
                            qid: outcomes[qid].reserved_bytes for qid in running
                        },
                        predicted_finish=predicted_finish,
                    )
                    if (
                        degraded_alone > self.max_degradation * solo_seconds
                        or degraded_alone >= wait + solo_seconds
                    ):
                        # Starting now with the cheaper placement is
                        # estimated to lose to queueing for the memory
                        # the unconstrained placement wants.
                        break
                if not arena.try_reserve(request.qid, need, at=clock):
                    break
                pending.popleft()
                strategy = create_strategy(
                    key,
                    self.system,
                    self.calibration,
                    self.config,
                    **self._strategy_kwargs(key, need),
                )
                plan = strategy.prepare(
                    request.spec, materialize=request.materialize
                )
                for name, width in plan.resources.items():
                    if width > resources.get(name, 1) and schedule.tasks:
                        # Widening a pool after tasks were scheduled
                        # would re-place already-recorded finishes on
                        # the next re-run; fail loudly instead of
                        # silently corrupting latencies.
                        raise SchedulingError(
                            f"query {request.qid!r} widens resource "
                            f"{name!r} to {width} lanes after scheduling "
                            "started; declare lane counts up front via "
                            "QueryScheduler(lanes=...)"
                        )
                    resources[name] = max(resources.get(name, 1), width)
                namespaced = self._namespace(plan, request.qid, clock)
                tasks.extend(namespaced)
                if incremental:
                    wave_tasks.extend(namespaced)
                task_names[request.qid] = [task.name for task in namespaced]
                outcomes[request.qid] = QueryOutcome(
                    qid=request.qid,
                    strategy=key,
                    solo_strategy=solo_key,
                    reserved_bytes=need,
                    submit_at=request.submit_at,
                    admit_at=clock,
                    solo_seconds=solo_seconds,
                )
                running.add(request.qid)
                # For the common non-degraded, no-extras admission the
                # solo estimate IS the alone estimate — skip recomputing.
                if key == solo_key and not self._strategy_kwargs(key, need):
                    alone = solo_seconds
                else:
                    alone = self._estimate_alone(key, request, need)
                predicted_finish[request.qid] = clock + alone
                schedule_dirty = True

            if not running:
                # Livelock guard: an admission `break` with nothing
                # running would spin forever (no release event can
                # advance the clock).  Unreachable under the current
                # policy — with an empty arena the unconstrained
                # placement always fits — but a future gate that drops
                # the `running` condition must fail loudly, not hang.
                head = pending[0]  # pragma: no cover
                raise SchedulingError(  # pragma: no cover
                    f"query {head.qid!r} cannot be admitted on an idle device"
                )

            # One shared engine pass over the tasks admitted so far —
            # run only when admissions added tasks: FIFO queues mean
            # later admissions never perturb earlier queries' start
            # times, so finish events stay stable across re-runs and a
            # clean schedule can be reused across pure release events.
            # Batch mode re-simulates the whole graph; online mode
            # extends the carried-over schedule with just this wave's
            # tasks (bit-identical by the FIFO-tail argument above).
            if schedule_dirty:
                if incremental:
                    if engine is None:
                        engine = PipelineEngine(resources)
                    # The pre-extension schedule is never used again,
                    # so extend in place: O(new tasks) per wave.
                    schedule = engine.extend(
                        schedule, wave_tasks, in_place=True
                    )
                    wave_tasks = []
                else:
                    schedule = self._run_engine(tasks, resources)
                schedule_dirty = False
            finishes = {
                qid: max(schedule.tasks[name].finish for name in task_names[qid])
                for qid in running
            }
            predicted_finish.update(finishes)
            events = [finishes[qid] for qid in running]
            if pending and pending[0].submit_at > clock:
                events.append(pending[0].submit_at)
            clock = min(events)
            for qid in sorted(q for q in running if finishes[q] <= clock):
                outcomes[qid].finish_at = finishes[qid]
                arena.release(qid, at=clock)
                running.remove(qid)
                del predicted_finish[qid]

        arena.check_invariants()
        ordered = [outcomes[r.qid] for r in requests]
        return ServeReport(
            outcomes=ordered,
            makespan=schedule.makespan,
            capacity_bytes=capacity,
            peak_reserved_bytes=arena.peak_bytes,
            schedule=schedule,
        )
