"""Deterministic mixed workloads for the serving benchmark.

A serving GPU sees queries from every placement regime at once: small
joins that are GPU-resident on an idle device, streaming joins whose
probe side exceeds memory, and co-processing joins where nothing fits.
:func:`mixed_workload` cycles through those regimes (with a size wobble
so queries are not identical), which is exactly the mix where admission
control matters: resident queries degrade under pressure, and the
different strategies' H2D/GPU/D2H/CPU tasks interleave.

:func:`random_workload` draws the same regimes at random from a seeded
generator — the input source for the property-based differential suite
(``tests/serve/test_placement_properties.py``).  It is **stable by
contract**: the same seed must produce the same request list across
releases, because recorded golden schedules
(``tests/serve/golden_single_device.json``) pin the scheduler's output
on these workloads.  Cardinalities come from small discrete grids, so
the process-wide estimate cache absorbs repeated specs across seeds.

:func:`stream_workload` is the open-arrival source for
:meth:`~repro.serve.scheduler.QueryScheduler.run_stream`: a lazy,
seeded generator of 10^5+ requests with exponential inter-arrival gaps,
drawing from a handful of interned spec templates so per-arrival
planning work is all cache hits.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.data.spec import Distribution, JoinSpec, RelationSpec, unique_pair
from repro.errors import InvalidConfigError
from repro.serve.scheduler import QueryRequest

M = 1_000_000

#: Size wobble applied per cycle position so repeated templates differ.
_WOBBLE = (1.0, 0.75, 1.25)


def _resident(n: int) -> JoinSpec:
    return unique_pair(max(n, 2))


def _streaming(build_n: int, probe_n: int) -> JoinSpec:
    return JoinSpec(
        build=RelationSpec(n=max(build_n, 2)),
        probe=RelationSpec(
            n=max(probe_n, 2),
            distinct=max(build_n, 2),
            distribution=Distribution.UNIFORM,
        ),
    )


def mixed_workload(
    n_queries: int,
    *,
    scale: float = 1.0,
    spacing_seconds: float = 0.0,
) -> list[QueryRequest]:
    """``n_queries`` requests cycling through the three placement regimes.

    ``scale`` shrinks cardinalities for smoke runs (strategy *regimes*
    are preserved only near ``scale=1``; smaller scales simply make
    everything cheaper and more resident).  ``spacing_seconds`` staggers
    submissions to model an open arrival process instead of one batch.
    """
    if n_queries <= 0:
        raise InvalidConfigError("n_queries must be positive")
    if scale <= 0:
        raise InvalidConfigError("scale must be positive")
    requests: list[QueryRequest] = []
    for i in range(n_queries):
        wobble = _WOBBLE[(i // 4) % len(_WOBBLE)]
        size = lambda base: max(2, int(base * scale * wobble))  # noqa: E731
        kind = i % 4
        if kind == 0:
            spec, materialize = _resident(size(16 * M)), False
        elif kind == 1:
            spec, materialize = _streaming(size(64 * M), size(512 * M)), True
        elif kind == 2:
            spec, materialize = _resident(size(48 * M)), False
        else:
            spec, materialize = _resident(size(512 * M)), False  # co-processing
        requests.append(
            QueryRequest(
                qid=f"q{i:03d}",
                spec=spec,
                submit_at=i * spacing_seconds,
                materialize=materialize,
            )
        )
    return requests


#: Cardinality grids (millions of tuples) the randomized workloads draw
#: from.  Discrete on purpose: repeated sizes keep the estimate cache
#: hot across hundreds of seeds.  Do not reorder or edit in place —
#: the golden single-device schedules are pinned against these draws;
#: extend only by appending new grids behind a new ``kind``.
_RANDOM_RESIDENT_M = (4, 8, 16, 32)
_RANDOM_PRESSURE_M = (48, 96, 128)
_RANDOM_STREAM_BUILD_M = (16, 32, 64)
_RANDOM_STREAM_PROBE_M = (128, 256, 512)
_RANDOM_COPROC_M = (256, 384, 512)


def random_workload(
    seed: int,
    *,
    max_queries: int = 6,
    spacing_max_seconds: float = 0.6,
) -> list[QueryRequest]:
    """A seeded random request list mixing all placement regimes.

    Every draw comes from one :class:`random.Random` seeded with
    ``seed``, so the same seed always yields the same workload — the
    determinism the property-based differential suite and its recorded
    golden schedules rely on.  Arrivals are a mix of batched
    (``submit_at`` repeats) and staggered submissions; cardinality
    grids span idle-resident, memory-pressure, streaming and
    co-processing regimes so admission control, degradation and
    waiting all get exercised.
    """
    if max_queries < 2:
        raise InvalidConfigError("max_queries must be at least 2")
    if spacing_max_seconds < 0:
        raise InvalidConfigError("spacing_max_seconds must be non-negative")
    rng = random.Random(seed)
    n_queries = rng.randint(2, max_queries)
    requests: list[QueryRequest] = []
    clock = 0.0
    for i in range(n_queries):
        kind = rng.randrange(4)
        materialize = False
        if kind == 0:  # small, GPU-resident even under load
            spec = _resident(rng.choice(_RANDOM_RESIDENT_M) * M)
        elif kind == 1:  # resident alone, degrades under pressure
            spec = _resident(rng.choice(_RANDOM_PRESSURE_M) * M)
        elif kind == 2:  # streaming probe
            build = rng.choice(_RANDOM_STREAM_BUILD_M) * M
            spec = _streaming(build, rng.choice(_RANDOM_STREAM_PROBE_M) * M)
            materialize = rng.random() < 0.5
        else:  # co-processing: nothing fits
            spec = _resident(rng.choice(_RANDOM_COPROC_M) * M)
        if i and rng.random() < 0.5:
            clock += round(rng.uniform(0.05, spacing_max_seconds), 3)
        requests.append(
            QueryRequest(
                qid=f"q{i:03d}",
                spec=spec,
                submit_at=clock,
                materialize=materialize,
            )
        )
    return requests


#: Interned (spec, materialize) templates the streaming workload draws
#: from.  Built once at import: 10^5+ arrivals share these few spec
#: objects, so the scheduler's solo cache and the process-wide
#: estimate/plan caches hit on every arrival after warm-up and spec
#: memory stays O(1) in stream length.  Weighted toward small resident
#: joins (3-task graphs) with a pressure band and a streaming tail —
#: the steady-state mix a serving GPU actually sees; the heavy
#: co-processing regime is left to :func:`mixed_workload`, whose
#: 50+-task graphs would dominate a 10^5-arrival stream.
_STREAM_TEMPLATES: tuple[tuple[JoinSpec, bool], ...] = tuple(
    [(_resident(n * M), False) for n in (4, 8, 16, 32)]
    + [(_resident(n * M), False) for n in (48, 96)]
    + [(_streaming(32 * M, 128 * M), True)]
)

#: Cumulative draw weights over :data:`_STREAM_TEMPLATES` (four light
#: residents, two pressure residents, one streaming probe).
_STREAM_WEIGHTS = (0.22, 0.44, 0.66, 0.84, 0.90, 0.96, 1.0)


def stream_workload(
    n_queries: int,
    *,
    arrival_rate: float = 200.0,
    seed: int = 0,
    slo_wait_seconds: float | None = None,
) -> Iterator[QueryRequest]:
    """Lazily generate an open arrival stream for
    :meth:`~repro.serve.scheduler.QueryScheduler.run_stream`.

    Yields ``n_queries`` requests with seeded-exponential inter-arrival
    gaps (``arrival_rate`` arrivals per simulated second on average),
    sorted by ``submit_at`` with unique qids — exactly the contract
    ``run_stream`` ingests.  Deterministic per ``seed``.  Specs come
    from the interned :data:`_STREAM_TEMPLATES`, so a million-arrival
    stream allocates no per-query spec objects and every admission
    decision is served from warm caches.  ``slo_wait_seconds``, when
    given, stamps each request's own admission-wait SLO (simulated
    seconds), driving per-query load shedding.
    """
    if n_queries <= 0:
        raise InvalidConfigError("n_queries must be positive")
    if arrival_rate <= 0:
        raise InvalidConfigError("arrival_rate must be positive")
    rng = random.Random(seed)
    clock = 0.0
    for i in range(n_queries):
        draw = rng.random()
        index = 0
        while _STREAM_WEIGHTS[index] < draw:
            index += 1
        spec, materialize = _STREAM_TEMPLATES[index]
        if i:
            clock += rng.expovariate(arrival_rate)
        yield QueryRequest(
            qid=f"s{i:06d}",
            spec=spec,
            submit_at=clock,
            materialize=materialize,
            slo_wait_seconds=slo_wait_seconds,
        )
