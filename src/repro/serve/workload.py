"""Deterministic mixed workloads for the serving benchmark.

A serving GPU sees queries from every placement regime at once: small
joins that are GPU-resident on an idle device, streaming joins whose
probe side exceeds memory, and co-processing joins where nothing fits.
:func:`mixed_workload` cycles through those regimes (with a size wobble
so queries are not identical), which is exactly the mix where admission
control matters: resident queries degrade under pressure, and the
different strategies' H2D/GPU/D2H/CPU tasks interleave.

:func:`random_workload` draws the same regimes at random from a seeded
generator — the input source for the property-based differential suite
(``tests/serve/test_placement_properties.py``).  It is **stable by
contract**: the same seed must produce the same request list across
releases, because recorded golden schedules
(``tests/serve/golden_single_device.json``) pin the scheduler's output
on these workloads.  Cardinalities come from small discrete grids, so
the process-wide estimate cache absorbs repeated specs across seeds.

:func:`stream_workload` is the open-arrival source for
:meth:`~repro.serve.scheduler.QueryScheduler.run_stream`: a lazy,
seeded generator of 10^5+ requests with exponential inter-arrival gaps,
drawing from a handful of interned spec templates so per-arrival
planning work is all cache hits.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Iterator

from repro.data.spec import Distribution, JoinSpec, RelationSpec, unique_pair
from repro.errors import InvalidConfigError
from repro.serve.admission import QueryClass
from repro.serve.scheduler import QueryRequest

M = 1_000_000

#: The three canonical service classes (see
#: :class:`~repro.serve.admission.QueryClass`).  Deadlines are relative
#: to submission, in simulated seconds; ``INTERACTIVE`` is tight enough
#: that FIFO admission misses it behind heavy queries while
#: deadline-aware admission does not, ``BATCH`` has none at all.
INTERACTIVE = QueryClass(
    name="interactive", priority=4, deadline_seconds=3.0
)
STANDARD = QueryClass(name="standard", priority=2, deadline_seconds=12.0)
BATCH = QueryClass(name="batch", priority=1, deadline_seconds=None)

#: The canonical class cycle, aligned with :func:`mixed_workload`'s
#: four-regime cycle so the *small, fast* queries (kind 0) carry the
#: tight interactive deadline, the mid-size residents (kind 2) the
#: standard one, and the heavy streaming/co-processing queries (kinds
#: 1, 3) run as deadline-free batch — the deadline-skewed mix the
#: admission bench measures policies on.
DEADLINE_CLASSES: tuple[QueryClass, ...] = (
    INTERACTIVE, BATCH, STANDARD, BATCH
)

#: Default tenant cycle for classed workloads.  Length 3 against the
#: length-4 class cycle, so every (class, tenant) pair occurs and the
#: weighted-fair ledger sees real cross-tenant contention.
TENANTS: tuple[str, ...] = ("tenant-a", "tenant-b", "tenant-c")


def _scaled_class(
    template: QueryClass,
    tenant: "str | None",
    deadline_scale: float,
    cache: dict,
) -> QueryClass:
    """One stamped (template, tenant, scale) class instance, interned
    so a 10^5-arrival classed stream allocates O(classes x tenants)
    QueryClass objects, not one per request."""
    key = (id(template), tenant, deadline_scale)
    stamped = cache.get(key)
    if stamped is None:
        stamped = replace(
            template,
            tenant=tenant if tenant is not None else template.tenant,
            deadline_seconds=(
                None
                if template.deadline_seconds is None
                else template.deadline_seconds * deadline_scale
            ),
        )
        cache[key] = stamped
    return stamped


def with_classes(
    requests: "list[QueryRequest]",
    *,
    classes: tuple[QueryClass, ...] = DEADLINE_CLASSES,
    deadline_scale: float = 1.0,
    tenants: "tuple[str, ...] | None" = TENANTS,
) -> "list[QueryRequest]":
    """Stamp service classes onto a request list, deterministically.

    Request ``i`` gets ``classes[i % len(classes)]`` with its deadline
    multiplied by ``deadline_scale`` and (when ``tenants`` is given)
    its tenant replaced by ``tenants[i % len(tenants)]``.  Purely a
    re-stamping — qids, specs and submit times are untouched, so a
    classed workload schedules identically to its unclassed original
    under FIFO admission (classes only change *reporting* there).
    """
    if not classes:
        raise InvalidConfigError("classes must be non-empty")
    if deadline_scale <= 0:
        raise InvalidConfigError("deadline_scale must be positive")
    cache: dict = {}
    return [
        replace(
            request,
            query_class=_scaled_class(
                classes[i % len(classes)],
                tenants[i % len(tenants)] if tenants else None,
                deadline_scale,
                cache,
            ),
        )
        for i, request in enumerate(requests)
    ]

#: Size wobble applied per cycle position so repeated templates differ.
_WOBBLE = (1.0, 0.75, 1.25)


def _resident(n: int) -> JoinSpec:
    return unique_pair(max(n, 2))


def _streaming(build_n: int, probe_n: int) -> JoinSpec:
    return JoinSpec(
        build=RelationSpec(n=max(build_n, 2)),
        probe=RelationSpec(
            n=max(probe_n, 2),
            distinct=max(build_n, 2),
            distribution=Distribution.UNIFORM,
        ),
    )


def mixed_workload(
    n_queries: int,
    *,
    scale: float = 1.0,
    spacing_seconds: float = 0.0,
) -> list[QueryRequest]:
    """``n_queries`` requests cycling through the three placement regimes.

    ``scale`` shrinks cardinalities for smoke runs (strategy *regimes*
    are preserved only near ``scale=1``; smaller scales simply make
    everything cheaper and more resident).  ``spacing_seconds`` staggers
    submissions to model an open arrival process instead of one batch.
    """
    if n_queries <= 0:
        raise InvalidConfigError("n_queries must be positive")
    if scale <= 0:
        raise InvalidConfigError("scale must be positive")
    requests: list[QueryRequest] = []
    for i in range(n_queries):
        wobble = _WOBBLE[(i // 4) % len(_WOBBLE)]
        size = lambda base: max(2, int(base * scale * wobble))  # noqa: E731
        kind = i % 4
        if kind == 0:
            spec, materialize = _resident(size(16 * M)), False
        elif kind == 1:
            spec, materialize = _streaming(size(64 * M), size(512 * M)), True
        elif kind == 2:
            spec, materialize = _resident(size(48 * M)), False
        else:
            spec, materialize = _resident(size(512 * M)), False  # co-processing
        requests.append(
            QueryRequest(
                qid=f"q{i:03d}",
                spec=spec,
                submit_at=i * spacing_seconds,
                materialize=materialize,
            )
        )
    return requests


def classed_workload(
    n_queries: int,
    *,
    scale: float = 1.0,
    spacing_seconds: float = 0.0,
    deadline_scale: float = 1.0,
) -> "list[QueryRequest]":
    """The canonical deadline-skewed serving workload: the
    :func:`mixed_workload` request list stamped with the
    :data:`DEADLINE_CLASSES` cycle and the :data:`TENANTS` rotation.

    Small resident queries carry the tight interactive deadline while
    the heavy regimes run as deadline-free batch, so FIFO admission
    strands interactive queries behind co-processing joins and misses
    their deadlines — the skew the admission bench (``bench serve
    --classes``) measures ``edf`` against.  ``deadline_scale``
    multiplies every deadline (smaller = harsher).
    """
    return with_classes(
        mixed_workload(
            n_queries, scale=scale, spacing_seconds=spacing_seconds
        ),
        deadline_scale=deadline_scale,
    )


#: Cardinality grids (millions of tuples) the randomized workloads draw
#: from.  Discrete on purpose: repeated sizes keep the estimate cache
#: hot across hundreds of seeds.  Do not reorder or edit in place —
#: the golden single-device schedules are pinned against these draws;
#: extend only by appending new grids behind a new ``kind``.
_RANDOM_RESIDENT_M = (4, 8, 16, 32)
_RANDOM_PRESSURE_M = (48, 96, 128)
_RANDOM_STREAM_BUILD_M = (16, 32, 64)
_RANDOM_STREAM_PROBE_M = (128, 256, 512)
_RANDOM_COPROC_M = (256, 384, 512)


def random_workload(
    seed: int,
    *,
    max_queries: int = 6,
    spacing_max_seconds: float = 0.6,
) -> list[QueryRequest]:
    """A seeded random request list mixing all placement regimes.

    Every draw comes from one :class:`random.Random` seeded with
    ``seed``, so the same seed always yields the same workload — the
    determinism the property-based differential suite and its recorded
    golden schedules rely on.  Arrivals are a mix of batched
    (``submit_at`` repeats) and staggered submissions; cardinality
    grids span idle-resident, memory-pressure, streaming and
    co-processing regimes so admission control, degradation and
    waiting all get exercised.
    """
    if max_queries < 2:
        raise InvalidConfigError("max_queries must be at least 2")
    if spacing_max_seconds < 0:
        raise InvalidConfigError("spacing_max_seconds must be non-negative")
    rng = random.Random(seed)
    n_queries = rng.randint(2, max_queries)
    requests: list[QueryRequest] = []
    clock = 0.0
    for i in range(n_queries):
        kind = rng.randrange(4)
        materialize = False
        if kind == 0:  # small, GPU-resident even under load
            spec = _resident(rng.choice(_RANDOM_RESIDENT_M) * M)
        elif kind == 1:  # resident alone, degrades under pressure
            spec = _resident(rng.choice(_RANDOM_PRESSURE_M) * M)
        elif kind == 2:  # streaming probe
            build = rng.choice(_RANDOM_STREAM_BUILD_M) * M
            spec = _streaming(build, rng.choice(_RANDOM_STREAM_PROBE_M) * M)
            materialize = rng.random() < 0.5
        else:  # co-processing: nothing fits
            spec = _resident(rng.choice(_RANDOM_COPROC_M) * M)
        if i and rng.random() < 0.5:
            clock += round(rng.uniform(0.05, spacing_max_seconds), 3)
        requests.append(
            QueryRequest(
                qid=f"q{i:03d}",
                spec=spec,
                submit_at=clock,
                materialize=materialize,
            )
        )
    return requests


#: Interned (spec, materialize) templates the streaming workload draws
#: from.  Built once at import: 10^5+ arrivals share these few spec
#: objects, so the scheduler's solo cache and the process-wide
#: estimate/plan caches hit on every arrival after warm-up and spec
#: memory stays O(1) in stream length.  Weighted toward small resident
#: joins (3-task graphs) with a pressure band and a streaming tail —
#: the steady-state mix a serving GPU actually sees; the heavy
#: co-processing regime is left to :func:`mixed_workload`, whose
#: 50+-task graphs would dominate a 10^5-arrival stream.
_STREAM_TEMPLATES: tuple[tuple[JoinSpec, bool], ...] = tuple(
    [(_resident(n * M), False) for n in (4, 8, 16, 32)]
    + [(_resident(n * M), False) for n in (48, 96)]
    + [(_streaming(32 * M, 128 * M), True)]
)

#: Cumulative draw weights over :data:`_STREAM_TEMPLATES` (four light
#: residents, two pressure residents, one streaming probe).
_STREAM_WEIGHTS = (0.22, 0.44, 0.66, 0.84, 0.90, 0.96, 1.0)


def stream_workload(
    n_queries: int,
    *,
    arrival_rate: float = 200.0,
    seed: int = 0,
    slo_wait_seconds: float | None = None,
    classes: "tuple[QueryClass, ...] | None" = None,
    deadline_scale: float = 1.0,
) -> Iterator[QueryRequest]:
    """Lazily generate an open arrival stream for
    :meth:`~repro.serve.scheduler.QueryScheduler.run_stream`.

    Yields ``n_queries`` requests with seeded-exponential inter-arrival
    gaps (``arrival_rate`` arrivals per simulated second on average),
    sorted by ``submit_at`` with unique qids — exactly the contract
    ``run_stream`` ingests.  Deterministic per ``seed``.  Specs come
    from the interned :data:`_STREAM_TEMPLATES`, so a million-arrival
    stream allocates no per-query spec objects and every admission
    decision is served from warm caches.  ``slo_wait_seconds``, when
    given, stamps each request's own admission-wait SLO (simulated
    seconds), driving per-query load shedding.  ``classes`` (e.g.
    :data:`DEADLINE_CLASSES`) stamps service classes in the same
    deterministic rotation :func:`with_classes` uses, deadlines scaled
    by ``deadline_scale`` — the RNG draws are untouched, so a classed
    stream's specs and arrival times match the unclassed stream
    exactly.
    """
    if n_queries <= 0:
        raise InvalidConfigError("n_queries must be positive")
    if arrival_rate <= 0:
        raise InvalidConfigError("arrival_rate must be positive")
    if classes is not None and not classes:
        raise InvalidConfigError("classes must be non-empty (or None)")
    if deadline_scale <= 0:
        raise InvalidConfigError("deadline_scale must be positive")
    rng = random.Random(seed)
    cache: dict = {}
    clock = 0.0
    for i in range(n_queries):
        draw = rng.random()
        index = 0
        while _STREAM_WEIGHTS[index] < draw:
            index += 1
        spec, materialize = _STREAM_TEMPLATES[index]
        if i:
            clock += rng.expovariate(arrival_rate)
        query_class = None
        if classes is not None:
            query_class = _scaled_class(
                classes[i % len(classes)],
                TENANTS[i % len(TENANTS)],
                deadline_scale,
                cache,
            )
        yield QueryRequest(
            qid=f"s{i:06d}",
            spec=spec,
            submit_at=clock,
            materialize=materialize,
            slo_wait_seconds=slo_wait_seconds,
            query_class=query_class,
        )
