"""Deterministic mixed workloads for the serving benchmark.

A serving GPU sees queries from every placement regime at once: small
joins that are GPU-resident on an idle device, streaming joins whose
probe side exceeds memory, and co-processing joins where nothing fits.
:func:`mixed_workload` cycles through those regimes (with a size wobble
so queries are not identical), which is exactly the mix where admission
control matters: resident queries degrade under pressure, and the
different strategies' H2D/GPU/D2H/CPU tasks interleave.
"""

from __future__ import annotations

from repro.data.spec import Distribution, JoinSpec, RelationSpec, unique_pair
from repro.errors import InvalidConfigError
from repro.serve.scheduler import QueryRequest

M = 1_000_000

#: Size wobble applied per cycle position so repeated templates differ.
_WOBBLE = (1.0, 0.75, 1.25)


def _resident(n: int) -> JoinSpec:
    return unique_pair(max(n, 2))


def _streaming(build_n: int, probe_n: int) -> JoinSpec:
    return JoinSpec(
        build=RelationSpec(n=max(build_n, 2)),
        probe=RelationSpec(
            n=max(probe_n, 2),
            distinct=max(build_n, 2),
            distribution=Distribution.UNIFORM,
        ),
    )


def mixed_workload(
    n_queries: int,
    *,
    scale: float = 1.0,
    spacing_seconds: float = 0.0,
) -> list[QueryRequest]:
    """``n_queries`` requests cycling through the three placement regimes.

    ``scale`` shrinks cardinalities for smoke runs (strategy *regimes*
    are preserved only near ``scale=1``; smaller scales simply make
    everything cheaper and more resident).  ``spacing_seconds`` staggers
    submissions to model an open arrival process instead of one batch.
    """
    if n_queries <= 0:
        raise InvalidConfigError("n_queries must be positive")
    if scale <= 0:
        raise InvalidConfigError("scale must be positive")
    requests: list[QueryRequest] = []
    for i in range(n_queries):
        wobble = _WOBBLE[(i // 4) % len(_WOBBLE)]
        size = lambda base: max(2, int(base * scale * wobble))  # noqa: E731
        kind = i % 4
        if kind == 0:
            spec, materialize = _resident(size(16 * M)), False
        elif kind == 1:
            spec, materialize = _streaming(size(64 * M), size(512 * M)), True
        elif kind == 2:
            spec, materialize = _resident(size(48 * M)), False
        else:
            spec, materialize = _resident(size(512 * M)), False  # co-processing
        requests.append(
            QueryRequest(
                qid=f"q{i:03d}",
                spec=spec,
                submit_at=i * spacing_seconds,
                materialize=materialize,
            )
        )
    return requests
