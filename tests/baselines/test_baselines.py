"""Behavioural models of the comparison systems."""

import pytest

from repro.baselines import (
    GPU_DATA_LOAD,
    IN_GPU_MODES,
    OOG_COPROCESSING,
    OOG_MODES,
    OOG_UM,
    OOG_UVA,
    CoGaDb,
    DbmsX,
    TransferStrategyComparison,
)
from repro.core import estimate_with_planner
from repro.data import unique_pair
from repro.data.tpch import join_specs
from repro.errors import BaselineUnsupportedError

M = 1_000_000


def test_dbmsx_resident_is_1_5_to_2x_slower():
    """Paper: 'our algorithms provide a 1.5-2x improvement in throughput
    over DBMS-X' when data is GPU resident."""
    spec = unique_pair(16 * M)
    ours = estimate_with_planner(spec).throughput
    theirs = DbmsX().estimate(spec).throughput
    assert 1.5 <= ours / theirs <= 2.1


def test_dbmsx_falls_off_a_cliff_beyond_32m():
    dbmsx = DbmsX()
    resident = dbmsx.estimate(unique_pair(32 * M))
    fallback = dbmsx.estimate(unique_pair(64 * M))
    assert resident.throughput > 10 * fallback.throughput
    assert "out_of_gpu" in fallback.phases


def test_dbmsx_out_of_gpu_roughly_10x_slower_than_ours():
    spec = unique_pair(512 * M)
    ours = estimate_with_planner(spec).throughput
    theirs = DbmsX().estimate(spec).throughput
    assert ours / theirs >= 8


def test_dbmsx_errors_on_sf100_orders():
    specs = join_specs(100)
    with pytest.raises(BaselineUnsupportedError):
        DbmsX().estimate(specs["orders"])
    # ... but handles the SF100 customer join.
    assert DbmsX().estimate(specs["customer"]).throughput > 0


def test_cogadb_slower_than_dbmsx_resident():
    spec = unique_pair(16 * M)
    assert CoGaDb().estimate(spec).throughput < DbmsX().estimate(spec).throughput


def test_cogadb_reaches_128m_but_not_beyond():
    assert CoGaDb().estimate(unique_pair(128 * M)).throughput > 0
    with pytest.raises(BaselineUnsupportedError):
        CoGaDb().estimate(unique_pair(256 * M))


def test_cogadb_fails_to_load_sf100():
    specs = join_specs(100)
    with pytest.raises(BaselineUnsupportedError):
        CoGaDb().estimate(specs["customer"])
    # SF10 loads fine.
    assert CoGaDb().estimate(join_specs(10)["customer"]).throughput > 0


def test_fig21_resident_baseline_is_fastest():
    comparison = TransferStrategyComparison()
    spec = unique_pair(32 * M)
    results = {
        mode: comparison.in_gpu(spec, mode).throughput for mode in IN_GPU_MODES
    }
    assert all(results[GPU_DATA_LOAD] >= v for v in results.values())
    # Every UVA/UM variant pays bus costs: strictly slower than resident.
    for mode in IN_GPU_MODES[1:]:
        assert results[mode] < results[GPU_DATA_LOAD]


def test_fig22_coprocessing_dominates_driver_managed_modes():
    comparison = TransferStrategyComparison()
    spec = unique_pair(512 * M)
    results = {
        mode: comparison.out_of_gpu(spec, mode).throughput for mode in OOG_MODES
    }
    assert results[OOG_COPROCESSING] > 3 * results[OOG_UVA]
    assert results[OOG_UVA] > results[OOG_UM]


def test_unknown_modes_rejected():
    from repro.errors import InvalidConfigError

    comparison = TransferStrategyComparison()
    spec = unique_pair(1 * M)
    with pytest.raises(InvalidConfigError):
        comparison.in_gpu(spec, "warp drive")
    with pytest.raises(InvalidConfigError):
        comparison.out_of_gpu(spec, "warp drive")
