"""Snapshot/compare regression tool."""

import json

import pytest

from repro.bench import compare as compare_mod
from repro.bench.figures import fig07
from repro.errors import InvalidConfigError

FIGS = {"fig07": fig07}
SCALE = 0.002


def test_snapshot_roundtrip_is_clean(tmp_path):
    path = tmp_path / "ref.json"
    compare_mod.snapshot(path, scale=SCALE, figures=FIGS)
    assert compare_mod.compare(path, figures=FIGS) == []


def test_compare_detects_moved_points(tmp_path):
    path = tmp_path / "ref.json"
    compare_mod.snapshot(path, scale=SCALE, figures=FIGS)
    payload = json.loads(path.read_text())
    series = payload["figures"]["fig07"]["Aggregation"]
    series[0][1] *= 2.0  # corrupt one stored point
    path.write_text(json.dumps(payload))
    deviations = compare_mod.compare(path, figures=FIGS)
    assert len(deviations) == 1
    assert deviations[0].series == "Aggregation"


def test_compare_detects_run_fail_flips(tmp_path):
    path = tmp_path / "ref.json"
    compare_mod.snapshot(path, scale=SCALE, figures=FIGS)
    payload = json.loads(path.read_text())
    payload["figures"]["fig07"]["Materialization"][2][1] = None
    path.write_text(json.dumps(payload))
    deviations = compare_mod.compare(path, figures=FIGS)
    assert any(d.reference is None for d in deviations)


def test_compare_respects_tolerance(tmp_path):
    path = tmp_path / "ref.json"
    compare_mod.snapshot(path, scale=SCALE, figures=FIGS)
    payload = json.loads(path.read_text())
    payload["figures"]["fig07"]["Aggregation"][0][1] *= 1.03  # 3% drift
    path.write_text(json.dumps(payload))
    assert compare_mod.compare(path, tolerance=0.05, figures=FIGS) == []
    assert compare_mod.compare(path, tolerance=0.01, figures=FIGS)


def test_version_mismatch_rejected(tmp_path):
    path = tmp_path / "ref.json"
    path.write_text(json.dumps({"version": 99, "figures": {}}))
    with pytest.raises(InvalidConfigError):
        compare_mod.compare(path, figures=FIGS)


def test_cli_snapshot_and_compare(tmp_path, capsys):
    from repro.bench.cli import main

    path = tmp_path / "ref.json"
    # Full CLI runs all figures; keep the scale tiny.
    assert main(["--snapshot", str(path), "--scale", "0.001"]) == 0
    assert main(["--compare", str(path), "--scale", "0.001"]) == 0
    out = capsys.readouterr().out
    assert "0 deviation(s)" in out
