"""Every figure function produces its expected series (smoke, small scale).

Shape assertions at the paper's full workload sizes live in
``benchmarks/``; here each figure is exercised end-to-end at reduced
scale to keep the unit suite fast.
"""

import pytest

from repro.bench.figures import ALL_FIGURES

#: (figure name, expected series labels, expected number of x points)
EXPECTATIONS = {
    "fig05": 4,
    "fig06": 4,
    "fig07": 2,
    "fig08": 15,
    "fig09": 2,
    "fig10": 2,
    "fig11": 3,
    "fig12": 9,
    "fig13": 2,
    "fig14": 3,
    "fig15": 3,
    "fig16": 2,
    "fig17": 6,
    "fig18": 6,
    "fig19": 4,
    "fig20": 6,
    "fig21": 1,
    "fig22": 1,
}


def test_registry_covers_every_evaluation_figure():
    assert sorted(ALL_FIGURES) == sorted(EXPECTATIONS)
    assert len(ALL_FIGURES) == 18  # Figs 5 through 22


@pytest.mark.parametrize("name", sorted(EXPECTATIONS))
def test_figure_smoke(name):
    result = ALL_FIGURES[name](scale=0.002)
    assert result.figure == name
    assert len(result.series) == EXPECTATIONS[name]
    for series in result.series:
        assert series.points, f"{name}/{series.label} is empty"
    table = result.table()
    assert name in table
    assert len(table.splitlines()) >= 4


def test_cli_single_figure(capsys):
    from repro.bench.cli import main

    assert main(["--figure", "7", "--scale", "0.002"]) == 0
    out = capsys.readouterr().out
    assert "fig07" in out


def test_cli_list(capsys):
    from repro.bench.cli import main

    assert main(["--list"]) == 0
    assert "fig22" in capsys.readouterr().out
