"""Float-tolerant series lookup and figure-table deduplication."""

import pytest

from repro.bench.harness import FigureResult, Series, canonical_x
from repro.errors import InvalidConfigError


def test_y_at_matches_accumulated_floats():
    series = Series("s")
    series.add(0.1 + 0.2, 42.0)  # 0.30000000000000004
    assert series.y_at(0.3) == 42.0
    assert series.y_at(0.1 + 0.2) == 42.0


def test_y_at_still_misses_distinct_points():
    series = Series("s")
    series.add(1.0, 10.0)
    with pytest.raises(InvalidConfigError):
        series.y_at(1.001)


def test_y_at_exact_zero():
    series = Series("s")
    series.add(0.0, 7.0)
    assert series.y_at(0.0) == 7.0


def test_canonical_x_collapses_rounding_noise():
    assert canonical_x(0.1 + 0.2) == canonical_x(0.3)
    assert canonical_x(1024.0) == 1024.0
    assert canonical_x(0.1) != canonical_x(0.2)


def test_table_dedups_noisy_x_values():
    """Two series whose x sweeps accumulated differently must share
    rows, not produce duplicate rows with '-' holes."""
    figure = FigureResult("figX", "title", "x", "y")
    a = figure.new_series("a")
    b = figure.new_series("b")
    x = 0.0
    for i in range(4):
        a.add(x, float(i))
        x += 0.1  # accumulates 0.30000000000000004 at i=3
    for i in range(4):
        b.add(i * 0.1, float(10 + i))  # computes 0.30000000000000001...
    table = figure.table()
    assert "-" not in table.split("\n", 3)[3:][0]  # no missing cells
    # One row per logical x value.
    assert len(table.strip().split("\n")) == 3 + 4
