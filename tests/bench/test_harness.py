"""FigureResult/Series containers and the table renderer."""

import pytest

from repro.bench.harness import FigureResult, Series
from repro.errors import InvalidConfigError


def test_series_accumulates_points():
    series = Series("s")
    series.add(1, 10.0)
    series.add(2, None)
    assert series.xs() == [1, 2]
    assert series.ys() == [10.0, None]
    assert series.y_at(1) == 10.0
    with pytest.raises(InvalidConfigError):
        series.y_at(99)


def test_figure_get_by_label():
    figure = FigureResult("figXX", "t", "x", "y")
    figure.new_series("a")
    assert figure.get("a").label == "a"
    with pytest.raises(InvalidConfigError):
        figure.get("b")


def test_table_renders_aligned_rows():
    figure = FigureResult("figXX", "demo", "size", "throughput")
    a = figure.new_series("A")
    b = figure.new_series("B")
    a.add(1, 1.5)
    a.add(2, 2.5)
    b.add(1, None)  # a reported failure
    table = figure.table()
    lines = table.splitlines()
    assert "figXX: demo" in lines[0]
    assert "size" in lines[1] and "A" in lines[1] and "B" in lines[1]
    assert "fail" in table
    assert "-" in table  # B has no point at x=2


def test_table_with_categorical_ticks():
    figure = FigureResult("figXX", "bars", "mode", "y", x_ticks=["alpha", "beta"])
    series = figure.new_series("v")
    series.add(0, 1.0)
    series.add(1, 2.0)
    table = figure.table()
    assert "alpha" in table and "beta" in table


def test_table_notes_appended():
    figure = FigureResult("figXX", "t", "x", "y", notes=["hello note"])
    figure.new_series("a").add(0, 0.0)
    assert "hello note" in figure.table()
