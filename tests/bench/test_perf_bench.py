"""Smoke tests of the tracked perf benchmark suite."""

import json

from repro.bench.perf_bench import (
    bench_engine,
    perf_main,
    render,
    run_perf,
    write_json,
)


def test_engine_benchmark_reports_throughput():
    entries = bench_engine(quick=True)
    entry = entries["engine_tasks_per_sec"]
    assert entry.n > 0
    assert entry.ops_per_sec > 0
    assert entry.wall_seconds > 0


def test_run_perf_schema_and_render(tmp_path):
    entries = run_perf(quick=True)
    expected = {"estimate_warm", "fig12_cell_estimate", "engine_tasks_per_sec"}
    assert expected <= set(entries)
    assert any(name.startswith("estimate_cold[") for name in entries)
    assert any(name.startswith("serve_wall[") for name in entries)
    table = render(entries)
    assert "fig12_cell_estimate" in table

    out = tmp_path / "BENCH_perf.json"
    write_json(entries, str(out))
    payload = json.loads(out.read_text())
    for name, record in payload.items():
        assert set(record) == {"wall_seconds", "ops_per_sec", "n"}, name
        assert record["n"] >= 1


def test_perf_main_ceiling(tmp_path, capsys):
    out = str(tmp_path / "perf.json")
    # A generous ceiling passes (the fast path is ~100x under it)...
    assert perf_main(["--quick", "--out", out, "--ceiling", "30"]) == 0
    # ...and an absurd one fails loudly.
    assert perf_main(["--quick", "--out", "-", "--ceiling", "1e-9"]) == 1
    captured = capsys.readouterr().out
    assert "FAIL" in captured
