"""The registry-refactor equivalence harness."""

from repro.bench.regress import (
    DEFAULT_TOLERANCE,
    reference_spec,
    render,
    run_regression,
)
from repro.core import registered_strategies


def test_all_entry_points_agree():
    rows = run_regression()
    assert {row.key for row in rows} == set(registered_strategies())
    for row in rows:
        assert row.ok(), (
            f"{row.key}: direct={row.direct_seconds!r} "
            f"registry={row.registry_seconds!r} "
            f"pipeline={row.pipeline_seconds!r} "
            f"diff={row.max_abs_diff!r} > {DEFAULT_TOLERANCE!r}"
        )


def test_serial_strategies_check_hand_summed_arithmetic():
    rows = {row.key: row for row in run_regression()}
    # The in-GPU strategies are serial chains on the compute queue: the
    # engine makespan must equal the pre-engine hand-summed phases.
    assert rows["gpu_resident"].handsum_seconds is not None
    assert rows["gpu_nonpartitioned"].handsum_seconds is not None
    # Pipelined strategies genuinely overlap resources.
    assert rows["streaming"].handsum_seconds is None
    assert rows["coprocessing"].handsum_seconds is None


def test_reference_specs_match_strategy_regimes():
    for key in registered_strategies():
        spec = reference_spec(key)
        assert spec.total_tuples > 0


def test_render_marks_ok():
    table = render(run_regression(keys=("gpu_resident",)))
    assert "gpu_resident" in table
    assert "ok" in table


def test_serve_regression_invariants():
    """The per-PR serving smoke: deterministic, within capacity, and
    covering both the single-device and the two-device sharded fleet."""
    from repro.bench.regress import run_serve_regression

    lines = run_serve_regression(levels=(1, 2))
    assert len(lines) == 4  # one single-device + one sharded line per level
    assert all(line.endswith("ok") for line in lines)
    assert sum("2 devices" in line for line in lines) == 2


def test_stream_regression_invariants():
    """Compacted streaming == uncompacted == online on a mid-size
    stream, single-device and sharded — and the check is non-vacuous
    (compaction actually retired work)."""
    from repro.bench.regress import run_stream_regression

    lines = run_stream_regression(arrivals=120)
    assert len(lines) == 2
    assert all(line.endswith("ok") for line in lines)
    assert all("compacted == uncompacted == online" in line for line in lines)


def test_serve_regression_propagates_mid_ladder_failures(monkeypatch):
    """A strategy raising mid-ladder must surface as the library error,
    not hang the online==batch comparison or report a bogus divergence.

    The serving regression re-plans every admission through the planner
    ladder; if a rung's feasibility probe explodes (a buggy strategy, a
    bad calibration), both the batch and the online pass must fail with
    that error before any equivalence verdict is printed.
    """
    import pytest

    from repro.bench.regress import run_serve_regression
    from repro.core import estimate_cache
    from repro.core.streaming import StreamingProbeJoin
    from repro.errors import ReproError, SchedulingError

    estimate_cache.clear()  # drop memoized ladder walks from other tests

    def explode(cls, spec, system, available_bytes):
        raise SchedulingError("streaming rung exploded mid-ladder")

    monkeypatch.setattr(StreamingProbeJoin, "fits_in", classmethod(explode))
    with pytest.raises(ReproError, match="mid-ladder"):
        run_serve_regression(levels=(2,))
    estimate_cache.clear()  # don't leak poisoned ladder entries
