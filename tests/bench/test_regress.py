"""The registry-refactor equivalence harness."""

from repro.bench.regress import (
    DEFAULT_TOLERANCE,
    reference_spec,
    render,
    run_regression,
)
from repro.core import registered_strategies


def test_all_entry_points_agree():
    rows = run_regression()
    assert {row.key for row in rows} == set(registered_strategies())
    for row in rows:
        assert row.ok(), (
            f"{row.key}: direct={row.direct_seconds!r} "
            f"registry={row.registry_seconds!r} "
            f"pipeline={row.pipeline_seconds!r} "
            f"diff={row.max_abs_diff!r} > {DEFAULT_TOLERANCE!r}"
        )


def test_serial_strategies_check_hand_summed_arithmetic():
    rows = {row.key: row for row in run_regression()}
    # The in-GPU strategies are serial chains on the compute queue: the
    # engine makespan must equal the pre-engine hand-summed phases.
    assert rows["gpu_resident"].handsum_seconds is not None
    assert rows["gpu_nonpartitioned"].handsum_seconds is not None
    # Pipelined strategies genuinely overlap resources.
    assert rows["streaming"].handsum_seconds is None
    assert rows["coprocessing"].handsum_seconds is None


def test_reference_specs_match_strategy_regimes():
    for key in registered_strategies():
        spec = reference_spec(key)
        assert spec.total_tuples > 0


def test_render_marks_ok():
    table = render(run_regression(keys=("gpu_resident",)))
    assert "gpu_resident" in table
    assert "ok" in table


def test_serve_regression_invariants():
    """The per-PR serving smoke: deterministic, within capacity."""
    from repro.bench.regress import run_serve_regression

    lines = run_serve_regression(levels=(1, 2))
    assert len(lines) == 2
    assert all(line.endswith("ok") for line in lines)
