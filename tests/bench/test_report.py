"""EXPERIMENTS.md table refreshing."""

import pytest

from repro.bench.report import refresh_experiments
from repro.errors import InvalidConfigError


def test_refresh_replaces_stale_tables(tmp_path):
    doc = tmp_path / "EXPERIMENTS.md"
    doc.write_text(
        "# heading\n\ncommentary stays\n\n```\nfig07: STALE TABLE\nold row\n```\n"
    )
    refreshed = refresh_experiments(doc, scale=0.002)
    assert refreshed == ["fig07"]
    text = doc.read_text()
    assert "STALE TABLE" not in text
    assert "commentary stays" in text
    assert "Aggregation" in text  # the fresh fig07 series


def test_refresh_rejects_unknown_figures(tmp_path):
    doc = tmp_path / "EXPERIMENTS.md"
    doc.write_text("```\nfig99: ghost\n```\n")
    with pytest.raises(InvalidConfigError):
        refresh_experiments(doc, scale=0.002)


def test_refresh_leaves_other_fences_alone(tmp_path):
    doc = tmp_path / "EXPERIMENTS.md"
    doc.write_text("```bash\npytest tests/\n```\n\n```\nfig07: t\n```\n")
    refresh_experiments(doc, scale=0.002)
    assert "pytest tests/" in doc.read_text()
