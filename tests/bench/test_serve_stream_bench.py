"""Smoke tests of the ``serve --stream`` steady-state harness."""

import json

import pytest

from repro.bench.serve_bench import (
    merge_perf_json,
    run_stream_bench,
    serve_main,
    stream_perf_entries,
    verify_stream_report,
)
from repro.errors import SchedulingError


def test_run_stream_bench_verifies_and_reports():
    report, wall = run_stream_bench(
        600, arrival_rate=250.0, devices=2, max_queue_depth=32,
        slo_wait_seconds=2.0, compact_every=32,
    )
    assert wall > 0
    assert report.arrivals == 600
    assert report.completed + report.shed_count == 600
    assert report.compactions > 0
    assert report.peak_retained_tasks <= (
        report.peak_inflight_tasks + 32 * report.max_tasks_per_query
    )


def test_stream_perf_entries_schema():
    report, wall = run_stream_bench(
        300, arrival_rate=250.0, max_queue_depth=16, compact_every=16
    )
    entries = stream_perf_entries(report, wall, arrivals=300, devices=1)
    expected = {
        "serve_stream_wall[300x1]",
        "serve_stream_sustained_qps[300x1]",
        "serve_stream_p50_latency[300x1]",
        "serve_stream_p99_latency[300x1]",
        "serve_stream_shed_rate[300x1]",
        "serve_stream_queue_p50[300x1]",
        "serve_stream_queue_p99[300x1]",
    }
    assert set(entries) == expected
    for name, entry in entries.items():
        assert entry.n >= 1, name
        assert entry.wall_seconds >= 0, name
    qps = entries["serve_stream_sustained_qps[300x1]"]
    assert qps.ops_per_sec == pytest.approx(report.sustained_qps)


def test_merge_perf_json_preserves_existing_records(tmp_path):
    out = tmp_path / "BENCH_perf.json"
    out.write_text(
        '{"estimate_warm": {"wall_seconds": 1.0, "ops_per_sec": 1.0, "n": 5}}\n'
    )
    report, wall = run_stream_bench(
        200, arrival_rate=250.0, max_queue_depth=16, compact_every=16
    )
    merge_perf_json(
        stream_perf_entries(report, wall, arrivals=200, devices=1), str(out)
    )
    payload = json.loads(out.read_text())
    assert payload["estimate_warm"]["n"] == 5  # untouched
    assert "serve_stream_wall[200x1]" in payload
    for name, record in payload.items():
        assert set(record) == {"wall_seconds", "ops_per_sec", "n"}, name


def test_verify_stream_report_catches_lost_arrivals():
    report, _ = run_stream_bench(
        100, arrival_rate=250.0, max_queue_depth=16, compact_every=16
    )
    report.arrivals += 1
    with pytest.raises(SchedulingError, match="lost arrivals"):
        verify_stream_report(report, compact_every=16)


def test_verify_stream_report_catches_unbounded_retention():
    report, _ = run_stream_bench(
        100, arrival_rate=250.0, max_queue_depth=16, compact_every=16
    )
    report.peak_retained_tasks = 10**9
    with pytest.raises(SchedulingError, match="not bounded"):
        verify_stream_report(report, compact_every=16)


def test_serve_main_stream_cli(tmp_path, capsys):
    out = str(tmp_path / "perf.json")
    code = serve_main(
        ["--stream", "--arrivals", "400", "--devices", "2",
         "--arrival-rate", "250", "--max-queue", "32", "--slo", "2.0",
         "--compact-every", "32", "--out", out]
    )
    assert code == 0
    captured = capsys.readouterr().out
    assert "verified" in captured
    assert "serve_stream_*" in captured
    payload = json.loads(open(out).read())
    assert "serve_stream_wall[400x2]" in payload

    # Sanity bounds fail loudly.
    assert serve_main(
        ["--stream", "--arrivals", "100", "--max-wall", "0.0", "--out", "-"]
    ) == 1
    assert "FAIL" in capsys.readouterr().out
    assert serve_main(
        ["--stream", "--arrivals", "400", "--arrival-rate", "300",
         "--max-queue", "8", "--max-shed-rate", "0.0", "--out", "-"]
    ) == 1
    assert "FAIL" in capsys.readouterr().out


def test_serve_main_stream_excludes_sweep_flags(capsys):
    with pytest.raises(SystemExit):
        serve_main(["--stream", "--clients", "4"])
