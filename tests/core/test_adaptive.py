"""Adaptive thread selection (the paper's §IV-B future work)."""

import pytest

from repro.core import (
    AdaptiveCoProcessingJoin,
    CoProcessingJoin,
    recommend_partition_threads,
    recommend_staging_threads,
)
from repro.cpu.numa import NumaModel
from repro.data import unique_pair
from repro.errors import InvalidConfigError
from repro.gpusim.spec import SystemSpec

M = 1_000_000


def test_recommendation_sits_below_the_saturation_knee():
    system = SystemSpec()
    threads = recommend_partition_threads(system, 5 / 16)
    numa = NumaModel(system)
    assert numa.dma_contention_factor(threads) == 1.0
    assert numa.dma_contention_factor(threads + 2) < 1.0


def test_recommendation_hides_partitioning():
    """The recommended count sustains at least pcie / ws_fraction."""
    system = SystemSpec()
    from repro.cpu.radix_partition import CpuPartitionModel

    fraction = 5 / 16
    threads = recommend_partition_threads(system, fraction)
    rate = CpuPartitionModel(system).pass_rate(threads)
    assert rate >= system.interconnect.pinned_bandwidth / fraction * 0.95


def test_recommendation_rejects_bad_fraction():
    with pytest.raises(InvalidConfigError):
        recommend_partition_threads(SystemSpec(), 0.0)


def test_staging_recommendation_is_small():
    """Steady-state staging needs only a handful of cores."""
    threads = recommend_staging_threads(SystemSpec())
    assert 1 <= threads <= 6


def test_adaptive_matches_best_fixed_grid():
    """Phase-adaptive threads must not lose to any fixed count."""
    spec = unique_pair(1024 * M)
    fixed = CoProcessingJoin()
    adaptive = AdaptiveCoProcessingJoin()
    best_fixed = max(
        fixed.estimate(spec, threads=t).throughput for t in (8, 16, 24, 26, 32, 46)
    )
    assert adaptive.estimate(spec).throughput >= 0.99 * best_fixed


def test_adaptive_frees_cores_in_steady_state():
    spec = unique_pair(512 * M)
    metrics = AdaptiveCoProcessingJoin().estimate(spec)
    assert metrics.notes["staging_threads"] < metrics.notes["threads"]
    assert metrics.notes["staging_threads"] <= 6


def test_explicit_threads_still_respected():
    spec = unique_pair(512 * M)
    fixed = CoProcessingJoin().estimate(spec, threads=16)
    pinned = AdaptiveCoProcessingJoin().estimate(
        spec, threads=16, staging_threads=16
    )
    assert pinned.seconds == pytest.approx(fixed.seconds, rel=1e-9)


def test_adaptive_reports_its_name():
    spec = unique_pair(512 * M)
    metrics = AdaptiveCoProcessingJoin().estimate(spec)
    assert "adaptive" in metrics.strategy
