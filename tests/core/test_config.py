"""GPU join configuration validation and derivation."""

import pytest

from repro.core.config import GpuJoinConfig, default_config, fig5_config
from repro.errors import InvalidConfigError
from repro.gpusim.spec import GpuSpec


def test_default_is_papers_standard_configuration():
    cfg = default_config()
    assert cfg.total_radix_bits == 15
    assert cfg.elements_per_block == 4096
    assert cfg.ht_slots == 2048
    assert cfg.threads_per_block_partition == 1024
    assert cfg.threads_per_block_join == 512


def test_default_fits_gtx1080_shared_memory():
    default_config().validate_against(GpuSpec(), tuple_bytes=8)


def test_oversized_block_rejected():
    cfg = GpuJoinConfig(elements_per_block=1 << 16)
    with pytest.raises(InvalidConfigError):
        cfg.validate_against(GpuSpec(), tuple_bytes=8)


def test_bits_per_pass_splits_at_eight():
    assert default_config().bits_per_pass_for(128_000_000) == [8, 7]


def test_derived_bits_track_input_size():
    cfg = GpuJoinConfig(total_radix_bits=None)
    assert cfg.radix_bits_for(4096) == 1
    bits = cfg.radix_bits_for(1 << 24)
    assert (1 << 24) >> bits <= cfg.elements_per_block


def test_invalid_values_rejected():
    with pytest.raises(InvalidConfigError):
        GpuJoinConfig(probe_kernel="sort-merge")
    with pytest.raises(InvalidConfigError):
        GpuJoinConfig(ht_slots=1000)  # not a power of two
    with pytest.raises(InvalidConfigError):
        GpuJoinConfig(total_radix_bits=0)
    with pytest.raises(InvalidConfigError):
        GpuJoinConfig(elements_per_block=0)


def test_with_updates_functionally():
    cfg = default_config()
    nlj = cfg.with_(probe_kernel="nlj")
    assert nlj.probe_kernel == "nlj"
    assert cfg.probe_kernel == "hash"  # original untouched


def test_fig5_configuration():
    cfg = fig5_config(11, "nlj")
    assert cfg.elements_per_block == 2048
    assert cfg.ht_slots == 256
    assert cfg.threads_per_block_join == 1024
    assert cfg.total_radix_bits == 11
    assert cfg.probe_kernel == "nlj"
