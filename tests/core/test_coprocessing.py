"""CPU-GPU co-processing strategy (§IV-B)."""

import numpy as np
import pytest

from repro.core import CoProcessingJoin, GpuJoinConfig
from repro.data import (
    Distribution,
    JoinSpec,
    RelationSpec,
    generate_join,
    naive_join_pairs,
    unique_pair,
    zipf_pair,
)

CFG = GpuJoinConfig(total_radix_bits=4)


def test_functional_run_equals_oracle():
    build, probe = generate_join(unique_pair(1 << 13), seed=1)
    result = CoProcessingJoin(config=CFG).run(
        build, probe, materialize=True, chunk_tuples=2048
    )
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_functional_run_with_duplicates():
    spec = JoinSpec(
        build=RelationSpec(n=6000, distinct=700, distribution=Distribution.UNIFORM),
        probe=RelationSpec(n=9000, distinct=700, distribution=Distribution.UNIFORM),
    )
    build, probe = generate_join(spec, seed=2)
    result = CoProcessingJoin(config=CFG).run(
        build, probe, materialize=True, chunk_tuples=1500
    )
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_functional_run_skewed():
    spec = zipf_pair(12_000, 0.8, skew_side="both")
    build, probe = generate_join(spec, seed=3)
    result = CoProcessingJoin(config=CFG).run(
        build, probe, materialize=True, chunk_tuples=3000
    )
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_throughput_insensitive_to_relation_size():
    """Fig 12's headline: co-processing stays flat as inputs grow."""
    coproc = CoProcessingJoin()
    values = [
        coproc.estimate(unique_pair(n * 1_000_000)).throughput_billion
        for n in (256, 512, 1024, 2048)
    ]
    assert max(values) / min(values) < 1.25


def test_thread_scaling_shape():
    """Fig 13: rapid rise, plateau around 16, small drop past ~26."""
    coproc = CoProcessingJoin()
    spec = unique_pair(512_000_000)
    by_threads = {
        t: coproc.estimate(spec, threads=t).throughput for t in (2, 6, 16, 26, 46)
    }
    assert by_threads[2] < by_threads[6] < by_threads[16]
    assert by_threads[16] == pytest.approx(by_threads[26], rel=0.1)
    assert by_threads[46] < by_threads[26]
    assert by_threads[46] > 0.8 * by_threads[26]  # a *small* drop


def test_coprocessing_with_6_threads_beats_full_cpu():
    """§V-D: 'using our coprocessing join with a single GPU and 6 cores,
    we can match the performance of a CPU-based join that uses nearly
    10x more CPU cores.'"""
    from repro.cpu import ProJoin

    spec = unique_pair(512_000_000)
    coproc = CoProcessingJoin().estimate(spec, threads=6).throughput
    best_cpu = ProJoin().estimate(spec, threads=46).throughput
    assert coproc > best_cpu


def test_first_working_set_is_largest_fraction():
    coproc = CoProcessingJoin()
    metrics = coproc.estimate(unique_pair(2_048_000_000))
    first = metrics.notes["first_ws_fraction"]
    assert first == pytest.approx(5 / 16, abs=0.01)  # §V-C: 5 of 16


def test_staging_beats_direct():
    spec = unique_pair(1_024_000_000)
    staged = CoProcessingJoin(staging=True).estimate(spec)
    direct = CoProcessingJoin(staging=False).estimate(spec)
    assert staged.throughput > direct.throughput


def test_materialization_penalty_small_for_uniform():
    coproc = CoProcessingJoin()
    spec = unique_pair(512_000_000)
    agg = coproc.estimate(spec)
    mat = coproc.estimate(spec, materialize=True)
    assert agg.seconds <= mat.seconds < 1.2 * agg.seconds


def test_identical_skew_explodes_output_and_collapses():
    coproc = CoProcessingJoin()
    uniform = coproc.estimate(zipf_pair(512_000_000, 0.0, skew_side="both"))
    skewed = coproc.estimate(zipf_pair(512_000_000, 1.0, skew_side="both"))
    assert skewed.throughput < 0.05 * uniform.throughput


def test_single_sided_skew_hidden_by_pcie():
    """Fig 18: the interconnect is slower than the GPU work, so one-sided
    skew costs (almost) nothing out-of-GPU."""
    coproc = CoProcessingJoin()
    uniform = coproc.estimate(zipf_pair(512_000_000, 0.0, skew_side="probe"))
    skewed = coproc.estimate(zipf_pair(512_000_000, 1.0, skew_side="probe"))
    assert skewed.throughput > 0.9 * uniform.throughput


def test_plan_covers_all_partitions():
    coproc = CoProcessingJoin(config=CFG)
    sizes = np.full(16, 1000.0)
    plan = coproc.plan(sizes, 8, probe_n=100_000)
    covered = sorted(p for ws in plan.working_sets for p in ws.partition_ids)
    assert covered == list(range(16))
