"""Degenerate empty inputs through the oracle and every strategy.

The serving layer sees queries whose filters can wipe out either join
side; neither the test oracle nor any registered strategy may crash on
an empty build or probe relation.
"""

import numpy as np
import pytest

from repro.core.strategy import create_strategy, registered_strategies
from repro.data.generator import naive_join_count, naive_join_pairs
from repro.data.relation import Relation


def _empty():
    return Relation.from_keys(np.empty(0, np.int64), name="empty")


def _small():
    return Relation.from_keys(np.arange(64, dtype=np.int64), name="small")


def test_oracle_count_empty_build():
    assert naive_join_count(_empty(), _small()) == 0


def test_oracle_count_empty_probe():
    assert naive_join_count(_small(), _empty()) == 0


def test_oracle_count_both_empty():
    assert naive_join_count(_empty(), _empty()) == 0


def test_oracle_pairs_empty_sides():
    assert naive_join_pairs(_empty(), _small()).shape == (0, 2)
    assert naive_join_pairs(_small(), _empty()).shape == (0, 2)


@pytest.mark.parametrize("key", registered_strategies())
@pytest.mark.parametrize(
    "build,probe",
    [
        (_empty(), _small()),
        (_small(), _empty()),
        (_empty(), _empty()),
    ],
    ids=["empty-build", "empty-probe", "both-empty"],
)
@pytest.mark.parametrize("materialize", [False, True])
def test_every_strategy_handles_empty_inputs(key, build, probe, materialize):
    result = create_strategy(key).execute(build, probe, materialize=materialize)
    assert result.matches == 0
    assert result.metrics.seconds >= 0.0
    if materialize:
        assert result.pairs().shape == (0, 2)
