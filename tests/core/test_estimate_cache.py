"""Hit/miss and invalidation behavior of the shared estimate cache."""

import pytest

from repro.core import create_strategy, estimate_cache
from repro.data import unique_pair
from repro.gpusim.calibration import Calibration
from repro.gpusim.spec import v100_system
from repro.core.config import GpuJoinConfig

SPEC = unique_pair(32_000_000)
BIG = unique_pair(512_000_000)


@pytest.fixture(autouse=True)
def fresh_cache():
    estimate_cache.clear()
    yield
    estimate_cache.configure(
        enabled=True, max_entries=estimate_cache.DEFAULT_MAX_ENTRIES
    )
    estimate_cache.clear()


def test_identical_estimates_hit():
    create_strategy("gpu_resident").estimate(SPEC)
    before = estimate_cache.stats()
    create_strategy("gpu_resident").estimate(SPEC)
    after = estimate_cache.stats()
    assert after.hits == before.hits + 1
    assert after.misses == before.misses
    assert after.entries == before.entries


def test_distinct_kwargs_and_specs_miss():
    strategy = create_strategy("gpu_resident")
    strategy.estimate(SPEC)
    strategy.estimate(SPEC, materialize=True)
    strategy.estimate(unique_pair(16_000_000))
    assert estimate_cache.stats().entries == 3
    assert estimate_cache.stats().hits == 0


def test_config_differences_invalidate():
    create_strategy("gpu_resident").estimate(SPEC)
    create_strategy(
        "gpu_resident", config=GpuJoinConfig(ht_slots=1024)
    ).estimate(SPEC)
    assert estimate_cache.stats().entries == 2
    assert estimate_cache.stats().hits == 0


def test_system_and_calibration_differences_invalidate():
    create_strategy("gpu_resident").estimate(SPEC)
    create_strategy("gpu_resident", v100_system()).estimate(SPEC)
    create_strategy(
        "gpu_resident", calibration=Calibration(gpu_scan_efficiency=0.5)
    ).estimate(SPEC)
    assert estimate_cache.stats().entries == 3
    assert estimate_cache.stats().hits == 0


def test_constructor_extras_invalidate():
    create_strategy("coprocessing").estimate(BIG)
    create_strategy("coprocessing", staging=False).estimate(BIG)
    create_strategy("coprocessing", device_budget=2 * 1024**3).estimate(BIG)
    create_strategy("coprocessing", cpu_bits=5).estimate(BIG)
    assert estimate_cache.stats().entries == 4
    assert estimate_cache.stats().hits == 0


def test_nonpartitioned_variants_do_not_collide():
    chaining = create_strategy("gpu_nonpartitioned").estimate(SPEC)
    perfect = create_strategy("gpu_nonpartitioned_perfect").estimate(SPEC)
    assert estimate_cache.stats().entries == 2
    assert chaining.seconds != perfect.seconds


def test_cached_result_is_copy_safe():
    first = create_strategy("gpu_resident").estimate(SPEC)
    first.phases["join"] = -1.0
    first.notes["poison"] = 1.0
    second = create_strategy("gpu_resident").estimate(SPEC)
    assert second.phases["join"] != -1.0
    assert "poison" not in second.notes


def test_disabled_cache_recomputes_identically():
    warm = create_strategy("coprocessing").estimate(BIG).seconds
    estimate_cache.configure(enabled=False)
    cold = create_strategy("coprocessing").estimate(BIG).seconds
    assert estimate_cache.stats().entries == 0
    assert warm == pytest.approx(cold, abs=1e-9)


def test_clear_resets_entries_and_counters():
    create_strategy("gpu_resident").estimate(SPEC)
    create_strategy("gpu_resident").estimate(SPEC)
    estimate_cache.clear()
    stats = estimate_cache.stats()
    assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)
    assert stats.hit_rate == 0.0


def test_ladder_choice_memoized_and_correct():
    from repro.core import choose_strategy_name
    from repro.gpusim.spec import SystemSpec

    system = SystemSpec()
    first = choose_strategy_name(SPEC, system)
    second = choose_strategy_name(SPEC, system)
    assert first == second == "gpu_resident"
    constrained = choose_strategy_name(SPEC, system, available_bytes=1 << 20)
    assert constrained == "coprocessing"


def test_plan_cache_counts_hits_and_misses_separately():
    """The plan cache keeps its own accounting, so a key mismatch that
    silently stops plans from hitting is visible in stats() without
    perturbing the estimate counters older tests pin exactly."""
    sentinel = object()
    calls = []

    def compute():
        calls.append(1)
        return sentinel

    assert estimate_cache.cached_plan(("plan", 1), compute) is sentinel
    assert estimate_cache.cached_plan(("plan", 1), compute) is sentinel
    assert len(calls) == 1
    stats = estimate_cache.stats()
    assert (stats.plan_hits, stats.plan_misses, stats.plan_entries) == (1, 1, 1)
    assert (stats.hits, stats.misses) == (0, 0)  # estimate counters untouched
    # Unhashable/None keys bypass the cache and recompute every time.
    assert estimate_cache.cached_plan(None, compute) is sentinel
    assert len(calls) == 2
    estimate_cache.clear()
    stats = estimate_cache.stats()
    assert (stats.plan_hits, stats.plan_misses, stats.plan_entries) == (0, 0, 0)


def test_plan_cache_disabled_recomputes():
    estimate_cache.configure(enabled=False)
    calls = []
    estimate_cache.cached_plan(("k",), lambda: calls.append(1))
    estimate_cache.cached_plan(("k",), lambda: calls.append(1))
    assert len(calls) == 2


def test_scheduler_reuses_cached_plans_across_runs():
    """The serving scheduler's prepared plans hit process-wide: a second
    run over the same workload re-prepares nothing."""
    from repro.serve import QueryScheduler, mixed_workload

    QueryScheduler().run(mixed_workload(4))
    after_first = estimate_cache.stats()
    assert after_first.plan_entries > 0
    QueryScheduler().run(mixed_workload(4))
    after_second = estimate_cache.stats()
    assert after_second.plan_misses == after_first.plan_misses
    assert after_second.plan_hits > after_first.plan_hits


# ---------------------------------------------------------------------------
# LRU bounding
# ---------------------------------------------------------------------------
def test_estimate_cache_evicts_lru_at_cap():
    estimate_cache.configure(enabled=True, max_entries=2)
    specs = [unique_pair(n * 1_000_000) for n in (4, 8, 16)]
    strategy = create_strategy("gpu_resident")
    for spec in specs:
        strategy.estimate(spec)
    stats = estimate_cache.stats()
    assert stats.entries == 2
    assert stats.evictions == 1
    assert stats.max_entries == 2
    # The oldest entry (specs[0]) was evicted: estimating it again is a
    # miss; the newest (specs[2]) is still a hit.
    strategy.estimate(specs[2])
    assert estimate_cache.stats().hits == stats.hits + 1
    strategy.estimate(specs[0])
    assert estimate_cache.stats().misses == stats.misses + 1


def test_estimate_cache_hit_refreshes_recency():
    estimate_cache.configure(enabled=True, max_entries=2)
    specs = [unique_pair(n * 1_000_000) for n in (4, 8, 16)]
    strategy = create_strategy("gpu_resident")
    strategy.estimate(specs[0])
    strategy.estimate(specs[1])
    strategy.estimate(specs[0])  # hit: specs[0] becomes most-recent
    strategy.estimate(specs[2])  # evicts specs[1], not specs[0]
    before = estimate_cache.stats()
    strategy.estimate(specs[0])
    assert estimate_cache.stats().hits == before.hits + 1


def test_shrinking_max_entries_evicts_oldest_first():
    estimate_cache.configure(enabled=True, max_entries=8)
    specs = [unique_pair(n * 1_000_000) for n in (4, 8, 16)]
    strategy = create_strategy("gpu_resident")
    for spec in specs:
        strategy.estimate(spec)
    assert estimate_cache.stats().entries == 3
    estimate_cache.configure(enabled=True, max_entries=1)
    stats = estimate_cache.stats()
    assert stats.entries == 1
    assert stats.evictions == 2
    # The survivor is the most recently stored spec.
    strategy.estimate(specs[2])
    assert estimate_cache.stats().hits == stats.hits + 1


def test_plan_and_ladder_caches_evict_at_cap():
    estimate_cache.configure(enabled=True, max_entries=2)
    for i in range(4):
        estimate_cache.cached_plan(("plan", i), lambda i=i: i)
        estimate_cache.cached_ladder_choice(("ladder", i), lambda: "x")
    stats = estimate_cache.stats()
    assert stats.plan_entries == 2
    assert stats.plan_evictions == 2
    assert stats.ladder_entries == 2
    assert stats.ladder_evictions == 2
    # Evicted keys recompute (a miss), retained keys hit.
    assert estimate_cache.cached_plan(("plan", 3), lambda: "new") == 3
    assert estimate_cache.stats().plan_hits == stats.plan_hits + 1
    assert estimate_cache.cached_plan(("plan", 0), lambda: "recomputed") == (
        "recomputed"
    )
    assert estimate_cache.stats().plan_misses == stats.plan_misses + 1


def test_configure_rejects_nonpositive_max_entries():
    with pytest.raises(ValueError):
        estimate_cache.configure(enabled=True, max_entries=0)


def test_configure_resets_counters_but_keeps_entries():
    """configure() starts a fresh accounting epoch: counters zero, the
    cached entries survive (so reconfiguring stats tracking mid-process
    doesn't throw away warm state)."""
    strategy = create_strategy("gpu_resident")
    strategy.estimate(SPEC)
    strategy.estimate(SPEC)
    assert estimate_cache.stats().hits == 1
    estimate_cache.configure(enabled=True)
    stats = estimate_cache.stats()
    assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)
    assert stats.entries == 1  # the entry itself survived
    strategy.estimate(SPEC)
    assert estimate_cache.stats().hits == 1  # ...and still hits


def test_configure_shrink_evictions_count_in_new_epoch():
    """Evictions caused by a configure() shrink land in the epoch the
    shrink begins, not the one it ends."""
    strategy = create_strategy("gpu_resident")
    for n in (4, 8, 16):
        strategy.estimate(unique_pair(n * 1_000_000))
    estimate_cache.configure(enabled=True, max_entries=1)
    stats = estimate_cache.stats()
    assert stats.evictions == 2
    assert (stats.hits, stats.misses) == (0, 0)


def test_reset_stats_zeroes_every_counter():
    strategy = create_strategy("gpu_resident")
    strategy.estimate(SPEC)
    strategy.estimate(SPEC)
    estimate_cache.cached_plan(("p",), lambda: 1)
    estimate_cache.cached_ladder_choice(("l",), lambda: "x")
    estimate_cache.reset_stats()
    stats = estimate_cache.stats()
    assert (stats.hits, stats.misses, stats.evictions) == (0, 0, 0)
    assert (stats.plan_hits, stats.plan_misses) == (0, 0)
    assert (stats.ladder_hits, stats.ladder_misses) == (0, 0)
    assert (stats.store_hits, stats.plan_store_hits,
            stats.ladder_store_hits) == (0, 0, 0)
    assert stats.entries == 1  # entries are not stats


def test_attached_store_serves_misses_and_takes_writes():
    from repro.core.sample_store import SampleStore

    store = SampleStore()
    estimate_cache.attach_store(store)
    try:
        first = create_strategy("gpu_resident").estimate(SPEC)
        assert store.cached_entries[0] == 1  # write-through on compute
        estimate_cache.clear()  # drop the LRU, keep the store
        second = create_strategy("gpu_resident").estimate(SPEC)
        assert second == first
        stats = estimate_cache.stats()
        assert stats.store_hits == 1
        assert stats.misses == 1  # a store hit still counts the miss
    finally:
        estimate_cache.detach_store()


def test_eviction_never_changes_results():
    """A thrashing one-entry cache must produce the same numbers as a
    generous one — eviction only costs recomputation."""
    strategy = create_strategy("gpu_resident")
    generous = [strategy.estimate(unique_pair(n * 1_000_000)).seconds
                for n in (4, 8, 16, 4, 8, 16)]
    estimate_cache.configure(enabled=True, max_entries=1)
    estimate_cache.clear()
    thrashed = [strategy.estimate(unique_pair(n * 1_000_000)).seconds
                for n in (4, 8, 16, 4, 8, 16)]
    assert thrashed == generous
    assert estimate_cache.stats().evictions > 0
