"""In-GPU partitioned join strategy: correctness + model consistency."""

import numpy as np
import pytest

from repro.core import GpuJoinConfig, GpuPartitionedJoin
from repro.data import (
    Distribution,
    JoinSpec,
    RelationSpec,
    generate_join,
    naive_join_count,
    naive_join_pairs,
    unique_pair,
    zipf_pair,
)
from repro.errors import DeviceMemoryOverflowError

CFG = GpuJoinConfig(total_radix_bits=6)


def test_run_materialized_equals_oracle():
    build, probe = generate_join(unique_pair(1 << 13), seed=1)
    result = GpuPartitionedJoin(config=CFG).run(build, probe, materialize=True)
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_run_aggregation_counts_matches():
    build, probe = generate_join(unique_pair(1 << 12), seed=2)
    result = GpuPartitionedJoin(config=CFG).run(build, probe)
    assert result.aggregate is not None
    assert result.aggregate.matches == naive_join_count(build, probe)
    with pytest.raises(ValueError):
        result.pairs()  # aggregation mode materializes nothing


def test_run_with_duplicates_and_ratio():
    spec = JoinSpec(
        build=RelationSpec(n=4096, distinct=512, distribution=Distribution.UNIFORM),
        probe=RelationSpec(n=16384, distinct=512, distribution=Distribution.UNIFORM),
    )
    build, probe = generate_join(spec, seed=3)
    result = GpuPartitionedJoin(config=CFG).run(build, probe, materialize=True)
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_run_with_skewed_inputs():
    spec = zipf_pair(20_000, 0.9, skew_side="both")
    build, probe = generate_join(spec, seed=4)
    result = GpuPartitionedJoin(config=CFG).run(build, probe, materialize=True)
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_nlj_kernel_through_strategy():
    build, probe = generate_join(unique_pair(1 << 11), seed=5)
    result = GpuPartitionedJoin(
        config=GpuJoinConfig(total_radix_bits=5, probe_kernel="nlj")
    ).run(build, probe, materialize=True)
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_estimate_consistent_with_run():
    """The analytic path must agree with functional-run metrics."""
    spec = unique_pair(1 << 16)
    join = GpuPartitionedJoin(config=GpuJoinConfig(total_radix_bits=8))
    build, probe = generate_join(spec, seed=6)
    run_metrics = join.run(build, probe).metrics
    est_metrics = join.estimate(spec)
    assert est_metrics.seconds == pytest.approx(run_metrics.seconds, rel=0.1)
    assert est_metrics.output_tuples == pytest.approx(
        run_metrics.output_tuples, rel=0.01
    )


def test_materialization_costs_more_than_aggregation():
    spec = unique_pair(32_000_000)
    join = GpuPartitionedJoin()
    agg = join.estimate(spec)
    mat = join.estimate(spec, materialize=True)
    assert mat.seconds > agg.seconds
    # ... but not dramatically (Fig 7: "does not degrade performance
    # significantly").
    assert mat.seconds < 1.5 * agg.seconds


def test_late_payload_gather_adds_cost():
    base = unique_pair(32_000_000)
    wide = JoinSpec(
        build=base.build, probe=base.probe.with_payload(late_payload_bytes=128)
    )
    join = GpuPartitionedJoin()
    assert join.estimate(wide).seconds > join.estimate(base).seconds


def test_device_memory_limit_enforced():
    join = GpuPartitionedJoin()
    with pytest.raises(DeviceMemoryOverflowError):
        join.estimate(unique_pair(512_000_000))


def test_phase_breakdown_reported():
    metrics = GpuPartitionedJoin().estimate(unique_pair(16_000_000))
    assert set(metrics.phases) == {"partition", "join", "gather"}
    assert metrics.phases["partition"] > metrics.phases["join"] > 0
    assert metrics.seconds == pytest.approx(sum(metrics.phases.values()))


def test_empty_overlap_join():
    build, _ = generate_join(unique_pair(1024), seed=7)
    probe = build.take(np.arange(0))  # empty probe
    result = GpuPartitionedJoin(config=GpuJoinConfig(total_radix_bits=3)).run(
        build, probe
    )
    assert result.matches == 0
