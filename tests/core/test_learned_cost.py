"""The learned cost model: fit correctness, gating, and cache hygiene.

* the closed-form ridge fit recovers exact coefficients on synthetic
  linear data (the ridge damping is negligible by construction);
* fingerprints below ``MIN_SAMPLES`` stay uncovered — the analytic
  model serves them;
* installation (:func:`~repro.core.learned_cost.set_model`) and
  activation (:func:`~repro.core.learned_cost.activation`) are
  separate gates, force-set in both directions;
* the fast path answers before the estimate cache and never writes to
  it, so switching ``learned`` off restores analytic behaviour
  bit-for-bit.
"""

import pytest

from repro.core import create_strategy, estimate_cache, learned_cost, sample_store
from repro.core.learned_cost import (
    MIN_SAMPLES,
    LearnedCostModel,
    StrategyModel,
    fit_least_squares,
)
from repro.core.sample_store import (
    KernelSample,
    SampleStore,
    stable_digest,
    working_set_features,
)
from repro.data import unique_pair

SPEC = unique_pair(32_000_000)


@pytest.fixture(autouse=True)
def clean_state():
    learned_cost.clear_model()
    sample_store.detach()
    estimate_cache.clear()
    yield
    learned_cost.clear_model()
    sample_store.detach()
    estimate_cache.clear()


def _recorded_store(steps=range(1, 13)) -> SampleStore:
    """Record gpu_resident estimates over a size sweep."""
    store = SampleStore()
    sample_store.attach(store)
    try:
        for step in steps:
            create_strategy("gpu_resident").estimate(
                unique_pair(step * 1_000_000, step * 8_000_000)
            )
    finally:
        sample_store.detach()
    return store


# ---------------------------------------------------------------------------
# The fit
# ---------------------------------------------------------------------------
def test_least_squares_recovers_synthetic_coefficients():
    true = [0.5, 2.0, -0.25]
    rows = [
        [1.0, float(i), float(i * i % 7)]
        for i in range(12)
    ]
    targets = [sum(c * x for c, x in zip(true, row)) for row in rows]
    fitted = fit_least_squares(rows, targets)
    assert fitted is not None
    for got, want in zip(fitted, true):
        assert got == pytest.approx(want, abs=1e-6)


def test_least_squares_handles_degenerate_inputs():
    assert fit_least_squares([], []) is None
    # A constant column alone is solvable (ridge keeps it conditioned).
    fitted = fit_least_squares([[1.0]] * 4, [3.0] * 4)
    assert fitted is not None
    assert fitted[0] == pytest.approx(3.0, rel=1e-6)


def test_fit_predicts_close_to_analytic_in_sample():
    store = _recorded_store()
    model = LearnedCostModel.fit(store)
    assert len(model) == 1
    spec = unique_pair(6_000_000, 48_000_000)
    strategy = create_strategy("gpu_resident")
    predicted = model.predict_for(strategy, spec, materialize=False)
    analytic = strategy.estimate(spec).seconds
    assert predicted == pytest.approx(analytic, rel=0.25)


def test_min_samples_gates_coverage():
    store = _recorded_store(steps=range(1, MIN_SAMPLES))  # one short
    assert len(store.samples) == MIN_SAMPLES - 1
    assert len(LearnedCostModel.fit(store)) == 0
    assert len(LearnedCostModel.fit(store, min_samples=2)) == 1


def test_fit_is_deterministic():
    first = LearnedCostModel.fit(_recorded_store())
    second = LearnedCostModel.fit(_recorded_store())
    fp = next(iter(first._models))
    assert first._models[fp].coefficients == second._models[fp].coefficients


def test_predict_clamps_to_positive():
    model = StrategyModel(
        fingerprint="fp", strategy="s", coefficients=(-5.0, 0.0), n_samples=9
    )
    assert model.predict([1.0, 100.0]) > 0.0


# ---------------------------------------------------------------------------
# Installation vs activation
# ---------------------------------------------------------------------------
def test_installation_alone_is_inert():
    learned_cost.set_model(LearnedCostModel.fit(_recorded_store()))
    assert learned_cost.active() is None
    assert learned_cost.fast_estimate(
        create_strategy("gpu_resident"), SPEC, False
    ) is None


def test_activation_is_forced_in_both_directions():
    model = LearnedCostModel.fit(_recorded_store())
    learned_cost.set_model(model)
    with learned_cost.activation(True):
        assert learned_cost.active() is model
        with learned_cost.activation(False):  # nested analytic scope
            assert learned_cost.active() is None
        assert learned_cost.active() is model
    assert learned_cost.active() is None  # restored on exit


def test_activation_without_model_is_a_no_op():
    with learned_cost.activation(True):
        assert learned_cost.active() is None
        analytic = create_strategy("gpu_resident").estimate(SPEC)
    assert "learned" not in analytic.notes


# ---------------------------------------------------------------------------
# The fast path and cache hygiene
# ---------------------------------------------------------------------------
def test_fast_path_answers_and_never_pollutes_the_cache():
    learned_cost.set_model(LearnedCostModel.fit(_recorded_store()))
    estimate_cache.clear()
    with learned_cost.activation(True):
        metrics = create_strategy("gpu_resident").estimate(SPEC)
    assert metrics.notes.get("learned") == 1.0
    stats = estimate_cache.stats()
    assert (stats.entries, stats.hits, stats.misses) == (0, 0, 0)
    # Learned off again: the analytic answer, computed fresh.
    analytic = create_strategy("gpu_resident").estimate(SPEC)
    assert "learned" not in analytic.notes
    assert analytic.seconds != metrics.seconds or analytic.phases


def test_uncovered_strategy_falls_through_to_analytic():
    learned_cost.set_model(LearnedCostModel.fit(_recorded_store()))
    with learned_cost.activation(True):
        metrics = create_strategy("coprocessing").estimate(
            unique_pair(512_000_000)
        )
    assert "learned" not in metrics.notes


def test_kwarg_estimates_bypass_the_fast_path():
    """Constructor-kwarg estimates aren't captured by the feature
    vector; they must stay analytic even when the model covers the
    fingerprint-free portion of the key."""
    store = SampleStore()
    sample_store.attach(store)
    try:
        with learned_cost.activation(True):
            create_strategy("coprocessing").estimate(
                unique_pair(512_000_000), threads=4
            )
    finally:
        sample_store.detach()
    assert store.samples == []  # kwarg estimates are not recorded either


def test_filter_ladder_prefers_predicted_fastest():
    fp_a = stable_digest(create_strategy("gpu_resident").cache_fingerprint())
    fp_b = stable_digest(create_strategy("streaming").cache_fingerprint())
    fast = StrategyModel(
        fingerprint=fp_b, strategy="streaming",
        coefficients=(0.001, 0.0, 0.0, 0.0, 0.0, 0.0), n_samples=9,
    )
    slow = StrategyModel(
        fingerprint=fp_a, strategy="gpu_resident",
        coefficients=(9.0, 0.0, 0.0, 0.0, 0.0, 0.0), n_samples=9,
    )
    learned_cost.set_model(LearnedCostModel({fp_a: slow, fp_b: fast}))
    rungs = ("gpu_resident", "streaming", "coprocessing")
    with learned_cost.activation(True):
        choice = learned_cost.filter_ladder(
            SPEC, None, rungs, ("gpu_resident", "streaming")
        )
        assert choice == "streaming"
        # Coverage restricted to an uncovered feasible set: fall through.
        assert learned_cost.filter_ladder(
            SPEC, None, rungs, ("coprocessing",)
        ) is None
    # Inactive: the filter never engages.
    assert learned_cost.filter_ladder(
        SPEC, None, rungs, ("gpu_resident", "streaming")
    ) is None


def test_planner_uses_filter_only_when_active():
    from repro.core import choose_strategy_name
    from repro.gpusim.spec import SystemSpec

    system = SystemSpec()
    baseline = choose_strategy_name(SPEC, system)
    assert baseline == "gpu_resident"
    fp = stable_digest(
        create_strategy("streaming", system).cache_fingerprint()
    )
    # A model claiming streaming is instant for everything.
    learned_cost.set_model(LearnedCostModel({
        fp: StrategyModel(
            fingerprint=fp, strategy="streaming",
            coefficients=(1e-6, 0.0, 0.0, 0.0, 0.0, 0.0), n_samples=9,
        )
    }))
    with learned_cost.activation(True):
        assert choose_strategy_name(SPEC, system) == "streaming"
    # Off again: analytic walk, unchanged by the installed model.
    assert choose_strategy_name(SPEC, system) == "gpu_resident"
