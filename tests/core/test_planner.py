"""Location-based strategy selection (the paper's 'no one size fits all')."""

from repro.core import (
    COPROCESSING,
    GPU_RESIDENT,
    STREAMING,
    CoProcessingJoin,
    GpuPartitionedJoin,
    StreamingProbeJoin,
    choose_strategy_name,
    estimate_with_planner,
    plan_join,
)
from repro.data import Distribution, JoinSpec, RelationSpec, unique_pair

M = 1_000_000


def _spec(build_m: int, probe_m: int) -> JoinSpec:
    return JoinSpec(
        build=RelationSpec(n=build_m * M),
        probe=RelationSpec(
            n=probe_m * M, distinct=build_m * M, distribution=Distribution.UNIFORM
        ),
    )


def test_small_joins_run_resident():
    assert choose_strategy_name(unique_pair(16 * M)) == GPU_RESIDENT


def test_resident_limit_matches_paper():
    """§V-C: 'Our join algorithm implementation is able to push this
    limit to 128M tuples' for equal GPU-resident tables."""
    assert choose_strategy_name(unique_pair(128 * M)) == GPU_RESIDENT
    assert choose_strategy_name(unique_pair(256 * M)) != GPU_RESIDENT


def test_build_fits_probe_does_not_streams():
    assert choose_strategy_name(_spec(64, 2048)) == STREAMING


def test_neither_fits_coprocesses():
    assert choose_strategy_name(_spec(1024, 1024)) == COPROCESSING


def test_plan_join_instantiates_matching_strategy():
    assert isinstance(plan_join(unique_pair(16 * M)), GpuPartitionedJoin)
    assert isinstance(plan_join(_spec(64, 2048)), StreamingProbeJoin)
    assert isinstance(plan_join(_spec(1024, 1024)), CoProcessingJoin)


def test_estimate_with_planner_runs_each_regime():
    for spec in (unique_pair(16 * M), _spec(64, 1024), _spec(1024, 1024)):
        metrics = estimate_with_planner(spec)
        assert metrics.seconds > 0
        assert metrics.throughput > 0


def test_planner_picks_fastest_feasible_option():
    """The resident strategy must dominate wherever it is chosen."""
    spec = unique_pair(64 * M)
    resident = GpuPartitionedJoin().estimate(spec)
    coproc = CoProcessingJoin().estimate(spec)
    assert resident.throughput > coproc.throughput
    assert estimate_with_planner(spec).throughput == resident.throughput
