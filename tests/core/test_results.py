"""JoinMetrics / JoinRunResult behaviour."""

import numpy as np
import pytest

from repro.core.results import JoinMetrics, JoinRunResult


def _metrics(seconds=2.0) -> JoinMetrics:
    return JoinMetrics(
        strategy="test",
        seconds=seconds,
        total_tuples=1000,
        output_tuples=500,
        phases={"a": 1.5, "b": 0.5},
        notes={"tuple_bytes": 8.0},
    )


def test_throughput_definitions():
    metrics = _metrics()
    assert metrics.throughput == 500.0
    assert metrics.throughput_billion == 500.0 / 1e9
    assert metrics.data_gbps == pytest.approx(500.0 * 8 / 1e9)


def test_zero_seconds_is_zero_throughput():
    assert _metrics(seconds=0.0).throughput == 0.0


def test_phase_throughput():
    metrics = _metrics()
    assert metrics.phase_throughput("a") == pytest.approx(1000 / 1.5)
    assert metrics.phase_throughput("missing") == 0.0


def test_run_result_matches_and_pairs():
    result = JoinRunResult(
        metrics=_metrics(),
        build_payloads=np.array([2, 1]),
        probe_payloads=np.array([20, 10]),
    )
    assert result.matches == 2
    pairs = result.pairs()
    assert pairs.tolist() == [[1, 10], [2, 20]]  # sorted


def test_aggregation_mode_has_no_pairs():
    from repro.kernels.aggregate import JoinAggregate

    result = JoinRunResult(metrics=_metrics(), aggregate=JoinAggregate(3, 0, 0))
    assert result.matches == 3
    with pytest.raises(ValueError):
        result.pairs()


def test_empty_result():
    assert JoinRunResult(metrics=_metrics()).matches == 0
