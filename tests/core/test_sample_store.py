"""Persistence contracts of the kernel-sample store.

Three anchor properties, matching ``docs/cost_model.md``:

* **Round-trip fidelity** — samples and persisted cache entries
  survive ``flush()`` + ``load()`` exactly, including across a real
  process boundary (a subprocess writes, this process reads);
* **Corruption tolerance** — a truncated or garbled record line (a
  crashed writer's tail) is *skipped* and counted, never fatal, while
  a missing/corrupt/unknown-version header raises the named
  :class:`~repro.errors.SampleStoreError`;
* **Decision identity** — a warm-started process (store attached to
  the estimate cache) returns bit-identical metrics to a cold one,
  and its store hits are visible in ``stats()``.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import create_strategy, estimate_cache, sample_store
from repro.core.sample_store import (
    FORMAT,
    VERSION,
    KernelSample,
    SampleStore,
    plan_from_dict,
    plan_to_dict,
    stable_digest,
    working_set_features,
)
from repro.data import unique_pair
from repro.errors import SampleStoreError

SPEC = unique_pair(32_000_000)


@pytest.fixture(autouse=True)
def detached():
    """Every test starts and ends with no store attached anywhere."""
    sample_store.detach()
    estimate_cache.detach_store()
    estimate_cache.clear()
    yield
    sample_store.detach()
    estimate_cache.detach_store()
    estimate_cache.clear()


def _sample(seconds: float = 1.25, spec: str = "spec-a") -> KernelSample:
    return KernelSample(
        strategy="gpu_resident",
        fingerprint="fp-1",
        spec=spec,
        calibration="none",
        features=working_set_features(SPEC, False),
        seconds=seconds,
    )


# ---------------------------------------------------------------------------
# Round trips
# ---------------------------------------------------------------------------
def test_sample_record_round_trip():
    sample = _sample()
    assert KernelSample.from_record(sample.to_record()) == sample


def test_record_sample_deduplicates():
    store = SampleStore()
    assert store.record_sample(_sample()) is True
    assert store.record_sample(_sample()) is False
    assert store.record_sample(_sample(seconds=2.5)) is True
    assert len(store.samples) == 2


def test_flush_load_round_trip(tmp_path):
    path = str(tmp_path / "store.jsonl")
    store = SampleStore(path=path)
    store.record_sample(_sample())
    store.record_sample(_sample(spec="spec-b"))
    strategy = create_strategy("gpu_resident")
    key = estimate_cache.make_key(strategy.cache_fingerprint(), SPEC, False, {})
    store.remember_estimate(key, strategy.estimate(SPEC))
    store.remember_ladder(("ladder", "k"), "gpu_resident")
    store.remember_plan(("plan", "k"), strategy.prepare(SPEC))
    assert store.flush() == 5
    assert store.pending_records == 0
    assert store.flush() == 0  # nothing new

    loaded = SampleStore.load(path)
    assert loaded.samples == store.samples
    assert loaded.skipped_records == 0
    assert loaded.cached_entries == (1, 1, 1)
    assert loaded.estimate_for_key(key) == strategy.estimate(SPEC)
    assert loaded.ladder_for_key(("ladder", "k")) == "gpu_resident"
    assert loaded.plan_for_key(("plan", "k")) == strategy.prepare(SPEC)


def test_plan_serialization_round_trip():
    plan = create_strategy("coprocessing").prepare(
        unique_pair(512_000_000), materialize=True
    )
    restored = plan_from_dict(json.loads(json.dumps(plan_to_dict(plan))))
    assert restored == plan


def test_cross_process_round_trip(tmp_path):
    """A store written by another interpreter loads here with identical
    samples and cache entries — the digests really are cross-process."""
    path = tmp_path / "store.jsonl"
    src = Path(__file__).resolve().parents[2] / "src"
    script = (
        "from repro.core import create_strategy, estimate_cache, sample_store\n"
        "from repro.core.sample_store import SampleStore\n"
        "from repro.data import unique_pair\n"
        f"store = SampleStore(path={str(path)!r})\n"
        "sample_store.attach(store)\n"
        "estimate_cache.attach_store(store)\n"
        "spec = unique_pair(32_000_000)\n"
        "metrics = create_strategy('gpu_resident').estimate(spec)\n"
        "sample_store.detach()\n"
        "estimate_cache.detach_store()\n"
        "store.flush()\n"
        "print(repr(metrics.seconds))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(src)},
        check=True,
    )
    child_seconds = float(result.stdout.strip())

    loaded = SampleStore.load(str(path))
    assert loaded.skipped_records == 0
    assert len(loaded.samples) == 1
    assert loaded.samples[0].seconds == child_seconds
    strategy = create_strategy("gpu_resident")
    key = estimate_cache.make_key(strategy.cache_fingerprint(), SPEC, False, {})
    persisted = loaded.estimate_for_key(key)
    assert persisted is not None
    assert persisted.seconds == child_seconds
    # And it agrees bit-for-bit with recomputation in this process.
    assert persisted == strategy.estimate(SPEC)


def test_warm_process_makes_identical_decisions(tmp_path):
    """Cold process records; a simulated warm process (fresh cache,
    loaded store) returns bit-identical metrics while hitting the store."""
    path = str(tmp_path / "store.jsonl")
    store = SampleStore(path=path)
    estimate_cache.attach_store(store)
    cold = create_strategy("coprocessing").estimate(SPEC)
    estimate_cache.detach_store()
    store.flush()

    estimate_cache.clear()  # simulate a fresh process: empty LRU
    estimate_cache.attach_store(SampleStore.load(path))
    warm = create_strategy("coprocessing").estimate(SPEC)
    stats = estimate_cache.stats()
    assert warm == cold
    assert stats.store_hits == 1
    # The store answer was promoted into the LRU: next lookup is a hit.
    create_strategy("coprocessing").estimate(SPEC)
    assert estimate_cache.stats().hits == stats.hits + 1


def test_recording_fires_on_cache_hits_too():
    """A warm process (every estimate a cache hit) still contributes
    samples — recording is not gated on the miss path."""
    create_strategy("gpu_resident").estimate(SPEC)  # warm the cache
    store = SampleStore()
    sample_store.attach(store)
    create_strategy("gpu_resident").estimate(SPEC)  # pure cache hit
    sample_store.detach()
    assert len(store.samples) == 1


# ---------------------------------------------------------------------------
# Corruption tolerance and the error taxonomy
# ---------------------------------------------------------------------------
def _write_store(tmp_path, *lines: str) -> str:
    path = tmp_path / "store.jsonl"
    header = json.dumps({"format": FORMAT, "version": VERSION})
    path.write_text("\n".join((header,) + lines) + "\n", encoding="utf-8")
    return str(path)


def test_truncated_tail_is_skipped_not_fatal(tmp_path):
    good = json.dumps(_sample().to_record())
    truncated = json.dumps(_sample(spec="spec-b").to_record())[:-9]
    store = SampleStore.load(_write_store(tmp_path, good, truncated))
    assert len(store.samples) == 1
    assert store.skipped_records == 1
    assert "skipped" in store.summary()


def test_garbled_and_unknown_kind_records_are_skipped(tmp_path):
    store = SampleStore.load(
        _write_store(
            tmp_path,
            "not json at all {{{",
            json.dumps({"kind": "hologram", "x": 1}),
            json.dumps({"kind": "sample"}),  # missing required fields
            json.dumps(_sample().to_record()),
        )
    )
    assert len(store.samples) == 1
    assert store.skipped_records == 3


def test_missing_file_raises_sample_store_error(tmp_path):
    with pytest.raises(SampleStoreError):
        SampleStore.load(str(tmp_path / "absent.jsonl"))
    # open() tolerates absence: an empty store bound to the path.
    store = SampleStore.open(str(tmp_path / "absent.jsonl"))
    assert store.samples == [] and store.path is not None


@pytest.mark.parametrize(
    "header",
    [
        "",  # empty file
        "{broken",  # unparsable header
        json.dumps({"format": "something-else", "version": 1}),
        json.dumps({"format": FORMAT, "version": VERSION + 1}),
        json.dumps(["not", "a", "dict"]),
    ],
)
def test_bad_headers_raise_sample_store_error(tmp_path, header):
    path = tmp_path / "store.jsonl"
    path.write_text(header + "\n" if header else "", encoding="utf-8")
    with pytest.raises(SampleStoreError):
        SampleStore.load(str(path))


def test_flush_creates_file_with_header_atomically(tmp_path):
    path = str(tmp_path / "fresh.jsonl")
    store = SampleStore(path=path)
    store.record_sample(_sample())
    store.flush()
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    assert json.loads(lines[0]) == {"format": FORMAT, "version": VERSION}
    assert len(lines) == 2
    assert not list(Path(path).parent.glob("*.tmp.*"))  # temp cleaned up


def test_in_memory_store_never_touches_disk():
    store = SampleStore()
    store.record_sample(_sample())
    assert store.flush() == 0
    assert store.pending_records == 0


# ---------------------------------------------------------------------------
# Digest stability
# ---------------------------------------------------------------------------
def test_stable_digest_refuses_address_bearing_reprs():
    assert stable_digest(object()) is None  # repr embeds " at 0x..."
    assert stable_digest(("a", 1, 2.5)) is not None
    # Strategy fingerprints are digestible — the whole scheme rests on it.
    assert stable_digest(create_strategy("gpu_resident").cache_fingerprint())


def test_digests_distinguish_specs_and_materialize():
    strategy = create_strategy("gpu_resident")
    keys = {
        stable_digest(
            estimate_cache.make_key(
                strategy.cache_fingerprint(), spec, materialize, {}
            )
        )
        for spec in (SPEC, unique_pair(16_000_000))
        for materialize in (False, True)
    }
    assert len(keys) == 4
