"""The JoinStrategy registry and the planner's selection boundaries."""

import pytest

from repro.core import (
    COPROCESSING,
    COPROCESSING_ADAPTIVE,
    GPU_NONPARTITIONED,
    GPU_NONPARTITIONED_PERFECT,
    GPU_RESIDENT,
    STREAMING,
    JoinStrategy,
    choose_strategy_name,
    create_strategy,
    registered_strategies,
    strategy_factory,
)
from repro.core.gpu_partitioned import gpu_resident_bytes_needed
from repro.data import Distribution, JoinSpec, RelationSpec, unique_pair
from repro.errors import UnknownStrategyError
from repro.gpusim.spec import SystemSpec

ALL_KEYS = (
    GPU_RESIDENT,
    GPU_NONPARTITIONED,
    GPU_NONPARTITIONED_PERFECT,
    STREAMING,
    COPROCESSING,
    COPROCESSING_ADAPTIVE,
)


def _spec(build_n: int, probe_n: int) -> JoinSpec:
    return JoinSpec(
        build=RelationSpec(n=build_n),
        probe=RelationSpec(
            n=probe_n, distinct=build_n, distribution=Distribution.UNIFORM
        ),
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_all_builtin_strategies_registered():
    keys = registered_strategies()
    for key in ALL_KEYS:
        assert key in keys


def test_created_strategies_implement_protocol():
    for key in ALL_KEYS:
        strategy = create_strategy(key)
        assert isinstance(strategy, JoinStrategy)
        assert strategy.key == key
        assert strategy.name


def test_factory_key_matches_instance_key():
    for key in ALL_KEYS:
        assert strategy_factory(key).key == key


def test_unknown_strategy_name_raises_clear_error():
    with pytest.raises(UnknownStrategyError) as excinfo:
        create_strategy("quantum_join")
    message = str(excinfo.value)
    assert "quantum_join" in message
    # The error enumerates what *is* registered.
    assert GPU_RESIDENT in message
    assert COPROCESSING in message


def test_estimate_via_registry_matches_direct_class():
    spec = unique_pair(16_000_000)
    for key in (GPU_RESIDENT, GPU_NONPARTITIONED):
        direct = strategy_factory(key)().estimate(spec)
        via_registry = create_strategy(key).estimate(spec)
        assert via_registry.seconds == direct.seconds


def test_prepare_schedule_decomposition_matches_estimate():
    spec = _spec(64_000_000, 512_000_000)
    strategy = create_strategy(STREAMING)
    plan = strategy.prepare(spec)
    assert plan.tasks, "streaming plan must declare pipeline tasks"
    assert strategy.simulate(plan).seconds == strategy.estimate(spec).seconds


# ---------------------------------------------------------------------------
# Planner selection boundaries
# ---------------------------------------------------------------------------
def test_gpu_resident_boundary():
    """Specs just under/over the device-memory footprint flip regimes."""
    system = SystemSpec()
    device = system.gpu.device_memory
    # gpu_resident_bytes_needed(unique_pair(n)) = 2.25 * 16n + 1 GiB.
    n_fit = int((device - (1 << 30)) / 36)
    assert gpu_resident_bytes_needed(unique_pair(n_fit)) <= device
    assert choose_strategy_name(unique_pair(n_fit), system) == GPU_RESIDENT
    n_over = n_fit + 1
    assert gpu_resident_bytes_needed(unique_pair(n_over)) > device
    assert choose_strategy_name(unique_pair(n_over), system) != GPU_RESIDENT


def test_streaming_boundary():
    """The build side just under/over its streaming budget flips to
    co-processing (partitioned build + 6 chunk-sized buffers = 40 bytes
    per build tuple at 8-byte tuples)."""
    system = SystemSpec()
    device = system.gpu.device_memory
    probe_n = 4_000_000_000  # far beyond any resident budget
    build_fit = int(device // 40) - (int(device // 40) % 2)
    assert choose_strategy_name(_spec(build_fit, probe_n), system) == STREAMING
    build_over = build_fit + 2
    assert choose_strategy_name(_spec(build_over, probe_n), system) == COPROCESSING


def test_streaming_requires_probe_to_exceed_resident_budget():
    # A small probe keeps the pair resident even when the build alone
    # would also satisfy the streaming budget.
    assert choose_strategy_name(_spec(64_000_000, 64_000_000)) == GPU_RESIDENT
