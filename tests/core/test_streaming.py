"""Streaming probe-side strategy (§IV-A)."""

import numpy as np
import pytest

from repro.core import GpuJoinConfig, StreamingProbeJoin
from repro.data import (
    Distribution,
    JoinSpec,
    RelationSpec,
    generate_join,
    naive_join_pairs,
    unique_pair,
)
from repro.errors import DeviceMemoryOverflowError

CFG = GpuJoinConfig(total_radix_bits=5)


def _spec(build_n: int, probe_n: int) -> JoinSpec:
    return JoinSpec(
        build=RelationSpec(n=build_n),
        probe=RelationSpec(
            n=probe_n, distinct=build_n, distribution=Distribution.UNIFORM
        ),
    )


def test_union_of_chunk_joins_equals_full_join():
    spec = _spec(2048, 10_000)
    build, probe = generate_join(spec, seed=1)
    result = StreamingProbeJoin(config=CFG).run(build, probe, materialize=True)
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


@pytest.mark.parametrize("chunk_tuples", [500, 1024, 3000, 10_000])
def test_result_invariant_to_chunking(chunk_tuples):
    spec = _spec(2048, 6000)
    build, probe = generate_join(spec, seed=2)
    result = StreamingProbeJoin(config=CFG).run(
        build, probe, materialize=True, chunk_tuples=chunk_tuples
    )
    assert np.array_equal(result.pairs(), naive_join_pairs(build, probe))


def test_default_chunk_is_half_the_build():
    assert StreamingProbeJoin().default_chunk_tuples(64_000_000) == 32_000_000


def test_makespan_at_least_total_transfer_time():
    streaming = StreamingProbeJoin()
    spec = _spec(64_000_000, 512_000_000)
    metrics = streaming.estimate(spec)
    floor = spec.total_bytes / streaming.transfer.pipelined_dma_rate()
    assert metrics.seconds >= floor
    # ... and overlap keeps it close to that floor (§IV-A).
    assert metrics.seconds < 1.3 * floor


def test_throughput_approaches_pcie_bound_with_probe_size():
    streaming = StreamingProbeJoin()
    small = streaming.estimate(_spec(64_000_000, 64_000_000))
    large = streaming.estimate(_spec(64_000_000, 2_048_000_000))
    assert large.throughput > small.throughput
    pcie_bound = streaming.transfer.pipelined_dma_rate() / 8.0
    assert large.throughput <= pcie_bound * 1.05
    assert large.throughput > 0.9 * pcie_bound


def test_materialization_uses_second_dma_engine():
    streaming = StreamingProbeJoin()
    spec = _spec(64_000_000, 512_000_000)
    agg = streaming.estimate(spec)
    mat = streaming.estimate(spec, materialize=True)
    assert mat.pcie_d2h_bytes > 0 and agg.pcie_d2h_bytes == 0
    assert mat.seconds > agg.seconds
    # Output copies overlap input transfers: the penalty stays small
    # when |output| <= |input| (§IV-C).
    assert mat.seconds < 1.25 * agg.seconds


def test_build_side_must_fit_device():
    streaming = StreamingProbeJoin()
    with pytest.raises(DeviceMemoryOverflowError):
        streaming.estimate(_spec(1_024_000_000, 2_048_000_000))


def test_pcie_bytes_accounted():
    spec = _spec(64_000_000, 256_000_000)
    metrics = StreamingProbeJoin().estimate(spec)
    assert metrics.pcie_h2d_bytes == spec.total_bytes
    assert metrics.notes["chunks"] == 8
