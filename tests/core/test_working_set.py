"""Skew-aware working-set packing (§IV-D)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.working_set import knapsack_first_working_set, pack_working_sets
from repro.errors import WorkingSetPackingError


def test_knapsack_respects_capacity():
    chosen = knapsack_first_working_set(
        np.array([60, 50, 40]), np.array([60, 50, 40]), capacity_bytes=100
    )
    assert sum([60, 50, 40][i] for i in chosen) <= 100
    # 60 + 40 = 100 beats any other feasible combination.
    assert sorted(chosen) == [0, 2]


def test_knapsack_maximizes_elements_not_bytes():
    # Partition 0 is big in bytes but small in elements (heavy padding).
    padded = np.array([100, 60, 40])
    elements = np.array([10, 55, 45])
    chosen = knapsack_first_working_set(padded, elements, capacity_bytes=100)
    assert sorted(chosen) == [1, 2]


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=10),
    capacity=st.integers(min_value=10, max_value=120),
)
def test_knapsack_optimal_vs_bruteforce(sizes, capacity):
    padded = np.asarray(sizes)
    elements = padded.copy()  # elements == bytes: plain subset-sum
    chosen = knapsack_first_working_set(padded, elements, capacity)
    achieved = int(elements[chosen].sum()) if chosen else 0
    assert int(padded[chosen].sum()) <= capacity if chosen else True

    best = 0
    for r in range(len(sizes) + 1):
        for combo in itertools.combinations(range(len(sizes)), r):
            weight = sum(sizes[i] for i in combo)
            if weight <= capacity:
                best = max(best, weight)
    # Quantization rounds weights up, so allow one quantum of slack.
    quantum = max(1, capacity // 512)
    assert achieved >= best - quantum * len(sizes)


def test_pack_covers_every_partition_exactly_once():
    padded = np.array([70, 60, 50, 40, 30, 20, 10])
    sets = pack_working_sets(padded, padded, capacity_bytes=100)
    seen = sorted(pid for ws in sets for pid in ws.partition_ids)
    assert seen == list(range(7))


def test_pack_respects_capacity_per_set():
    padded = np.array([70, 60, 50, 40, 30, 20, 10])
    for ws in pack_working_sets(padded, padded, capacity_bytes=100):
        if len(ws.partition_ids) > 1:
            assert ws.total_bytes <= 100


def test_first_set_is_knapsack_solution():
    padded = np.array([60, 50, 40, 10])
    sets = pack_working_sets(padded, padded, capacity_bytes=100)
    assert sets[0].total_bytes == 100  # 60 + 40


def test_at_most_one_oversized_partition_per_set():
    padded = np.array([40, 40, 40, 5, 5, 5])
    sets = pack_working_sets(
        padded, padded, capacity_bytes=100, oversize_threshold_bytes=30
    )
    # The constraint applies to the greedily-packed sets; the knapsack
    # first set only honours the capacity (SIV-D).
    for ws in sets[1:]:
        assert ws.oversized <= 1


def test_partition_larger_than_capacity_goes_alone():
    padded = np.array([500, 10, 10])
    sets = pack_working_sets(padded, padded, capacity_bytes=100)
    solos = [ws for ws in sets if ws.partition_ids == [0]]
    assert len(solos) == 1  # sub-partitioned on the fly by the executor


def test_uniform_16way_paper_case():
    """2048M-tuple build, 16-way partitioned, ~5.6 GB budget: the first
    working set holds 5 partitions (§V-C: '5 partitions are used as the
    working set inside the GPU for the first step')."""
    partition_bytes = 2_048_000_000 * 8 // 16
    padded = np.full(16, partition_bytes)
    sets = pack_working_sets(padded, padded, capacity_bytes=int(5.58e9))
    assert len(sets[0].partition_ids) == 5


def test_packing_errors():
    with pytest.raises(WorkingSetPackingError):
        pack_working_sets(np.array([1]), np.array([1, 2]), 10)
    with pytest.raises(WorkingSetPackingError):
        pack_working_sets(np.array([1]), np.array([1]), 0)
