"""NUMA transfer model: staging, QPI interference, saturation."""

import pytest

from repro.cpu.numa import NumaModel
from repro.errors import InvalidConfigError
from repro.gpusim.spec import SystemSpec


@pytest.fixture()
def numa() -> NumaModel:
    return NumaModel(SystemSpec())


def test_staged_beats_direct(numa):
    """Fig 16: staging to the near socket outperforms far-socket DMA."""
    for threads in (0, 16, 32):
        assert numa.h2d_rate_staged(threads) > numa.h2d_rate_direct(threads)


def test_no_contention_at_paper_thread_count(numa):
    """16 partitioning threads leave DMA at full rate (§V-C setup)."""
    assert numa.dma_contention_factor(16) == 1.0


def test_saturation_knee_near_26_threads(numa):
    """Fig 13: the memory system saturates just past ~26 threads."""
    assert numa.dma_contention_factor(24) == 1.0
    assert numa.dma_contention_factor(30) < 1.0


def test_contention_drop_is_bounded(numa):
    """The paper reports a *small* decline, not a collapse."""
    assert numa.dma_contention_factor(48) >= 0.85


def test_staging_only_phase_never_saturates(numa):
    assert numa.dma_contention_factor(0) == 1.0


def test_partition_demand_linear(numa):
    assert numa.partition_bandwidth_demand(8) == pytest.approx(
        2 * numa.partition_bandwidth_demand(4)
    )
    with pytest.raises(InvalidConfigError):
        numa.partition_bandwidth_demand(-1)


def test_staging_copy_rate_caps_at_qpi(numa):
    qpi = numa.system.cpu.qpi_bandwidth
    assert numa.staging_copy_rate(64) == pytest.approx(qpi)
    assert numa.staging_copy_rate(1) < qpi


def test_direct_rate_reflects_qpi_interference(numa):
    """Direct copies blend near-socket and degraded-QPI halves."""
    direct = numa.h2d_rate_direct(0)
    near = numa.system.interconnect.pinned_bandwidth
    far = numa.system.cpu.qpi_bandwidth
    assert direct < near
    assert direct < far  # interference pushes below even raw QPI
