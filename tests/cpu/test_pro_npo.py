"""CPU baselines: PRO and NPO."""

import numpy as np
import pytest

from repro.cpu import NpoJoin, ProJoin, radix_passes_needed
from repro.data import (
    Distribution,
    JoinSpec,
    RelationSpec,
    generate_join,
    naive_join_pairs,
    unique_pair,
)


def test_pro_functional_matches_oracle():
    build, probe = generate_join(unique_pair(4000), seed=1)
    pairs, metrics = ProJoin().run(build, probe)
    assert np.array_equal(pairs, naive_join_pairs(build, probe))
    assert metrics.seconds > 0


def test_pro_functional_with_duplicates():
    spec = JoinSpec(
        build=RelationSpec(n=3000, distinct=500, distribution=Distribution.UNIFORM),
        probe=RelationSpec(n=5000, distinct=500, distribution=Distribution.UNIFORM),
    )
    build, probe = generate_join(spec, seed=2)
    pairs, _ = ProJoin().run(build, probe)
    assert np.array_equal(pairs, naive_join_pairs(build, probe))


def test_npo_functional_matches_oracle():
    build, probe = generate_join(unique_pair(3000), seed=3)
    pairs, metrics = NpoJoin().run(build, probe)
    assert np.array_equal(pairs, naive_join_pairs(build, probe))
    assert metrics.partition_seconds == 0.0  # no partitioning phase


def test_pro_throughput_scales_with_threads():
    pro = ProJoin()
    spec = unique_pair(64_000_000)
    t8 = pro.estimate(spec, threads=8).throughput
    t16 = pro.estimate(spec, threads=16).throughput
    t48 = pro.estimate(spec, threads=48).throughput
    assert t8 < t16 < t48
    assert t16 == pytest.approx(2 * t8, rel=0.25)


def test_npo_degrades_once_table_exceeds_llc():
    npo = NpoJoin()
    small = npo.estimate(unique_pair(1_000_000)).throughput
    large = npo.estimate(unique_pair(128_000_000)).throughput
    assert small > 2 * large


def test_pro_has_a_sweet_spot():
    """PRO improves until a sweet spot, then extra passes bite (Fig 8)."""
    pro = ProJoin()
    tiny = pro.estimate(unique_pair(1_000_000)).throughput
    sweet = pro.estimate(unique_pair(64_000_000)).throughput
    huge = pro.estimate(unique_pair(1_024_000_000)).throughput
    assert sweet > tiny
    assert sweet > huge


def test_radix_passes_needed_grows_with_size():
    bits_small, passes_small = radix_passes_needed(1_000_000)
    bits_large, passes_large = radix_passes_needed(1_024_000_000)
    assert bits_large > bits_small
    assert passes_large >= passes_small
    assert passes_large <= 4


def test_pro_beats_npo_at_scale():
    """The partitioned CPU join wins at large sizes (Fig 8/12)."""
    spec = unique_pair(512_000_000)
    assert ProJoin().estimate(spec).throughput > NpoJoin().estimate(spec).throughput


def test_npo_beats_pro_on_small_cached_tables():
    spec = unique_pair(1_000_000)
    assert NpoJoin().estimate(spec).throughput > ProJoin().estimate(spec).throughput
