"""CPU radix partitioning: functional grouping + thread-scaling model."""

import numpy as np
import pytest

from repro.cpu.radix_partition import CpuPartitionModel, cpu_radix_partition
from repro.data.relation import Relation
from repro.errors import InvalidConfigError
from repro.gpusim.spec import SystemSpec


def test_functional_partition_groups_by_low_bits():
    rel = Relation.from_keys(np.random.default_rng(0).integers(0, 1 << 16, 4000))
    part = cpu_radix_partition(rel, 4)
    assert part.fanout == 16
    for p in range(16):
        keys, _ = part.partition(p)
        assert np.all((keys & 15) == p)
    assert part.partition_sizes().sum() == 4000


def test_functional_partition_is_stable():
    rel = Relation.from_keys(np.array([0, 16, 0, 16]))
    part = cpu_radix_partition(rel, 4)
    _, payloads = part.partition(0)
    assert list(payloads) == [0, 1, 2, 3]


def test_bits_must_be_positive():
    with pytest.raises(InvalidConfigError):
        cpu_radix_partition(Relation.from_keys(np.arange(4)), 0)


def test_paper_calibration_point_40gbps_at_16_threads():
    """§V-C: 'the CPU radix partitioning pass can reach a throughput of
    approximately 40 GB/s for our configuration' (16 threads)."""
    model = CpuPartitionModel(SystemSpec())
    assert model.pass_rate(16) == pytest.approx(40e9, rel=0.01)


def test_pass_rate_scales_then_saturates():
    model = CpuPartitionModel(SystemSpec())
    assert model.pass_rate(8) == pytest.approx(model.pass_rate(4) * 2)
    saturation = model.saturation_threads()
    assert model.pass_rate(saturation + 8) == model.pass_rate(saturation + 4)


def test_pass_seconds_inverse_of_rate():
    model = CpuPartitionModel(SystemSpec())
    assert model.pass_seconds(40e9, 16) == pytest.approx(1.0, rel=0.01)


def test_threads_must_be_positive():
    with pytest.raises(InvalidConfigError):
        CpuPartitionModel(SystemSpec()).pass_rate(0)
