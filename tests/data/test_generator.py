"""Tests for workload generation and the naive-join oracle."""

import numpy as np
import pytest

from repro.data import (
    Distribution,
    JoinSpec,
    RelationSpec,
    generate_join,
    generate_relation,
    naive_join_count,
    naive_join_pairs,
    replicated_pair,
    unique_pair,
    zipf_pair,
)
from repro.data.relation import Relation


def test_unique_relation_is_permutation():
    rel = generate_relation(RelationSpec(n=1000), seed=1)
    assert sorted(rel.key) == list(range(1000))


def test_generation_is_deterministic_per_seed():
    a = generate_relation(RelationSpec(n=100), seed=7)
    b = generate_relation(RelationSpec(n=100), seed=7)
    c = generate_relation(RelationSpec(n=100), seed=8)
    assert np.array_equal(a.key, b.key)
    assert not np.array_equal(a.key, c.key)


def test_uniform_keys_within_domain():
    spec = RelationSpec(n=5000, distinct=64, distribution=Distribution.UNIFORM)
    rel = generate_relation(spec, seed=2)
    assert rel.key.min() >= 0 and rel.key.max() < 64


def test_one_to_one_pair_shares_exact_key_set():
    build, probe = generate_join(unique_pair(512), seed=3)
    assert np.array_equal(np.sort(build.key), np.sort(probe.key))


def test_ratio_pair_probe_drawn_from_build_domain():
    spec = unique_pair(256, 1024)
    build, probe = generate_join(spec, seed=4)
    assert probe.num_tuples == 1024
    assert set(probe.key).issubset(set(build.key))


def test_zipf_pair_generation_runs_and_matches_domain():
    build, probe = generate_join(zipf_pair(2000, 0.9, skew_side="both"), seed=5)
    assert build.key.max() < 2000
    assert probe.key.max() < 2000


def test_replicated_pair_average_multiplicity():
    spec = replicated_pair(4000, 4)
    build, _ = generate_join(spec, seed=6)
    assert build.distinct_keys() <= 1000


def test_naive_join_count_brute_force_small():
    build = Relation.from_keys(np.array([1, 2, 2, 3]))
    probe = Relation.from_keys(np.array([2, 2, 3, 4]))
    # key 2: 2 build x 2 probe = 4; key 3: 1x1 = 1.
    assert naive_join_count(build, probe) == 5


def test_naive_join_pairs_brute_force_small():
    build = Relation.from_keys(np.array([7, 8]))
    probe = Relation.from_keys(np.array([8, 7, 8]))
    pairs = naive_join_pairs(build, probe)
    expected = {(0, 1), (1, 0), (1, 2)}  # (build row, probe row)
    assert {tuple(p) for p in pairs} == expected


def test_naive_join_pairs_count_matches_naive_join_count():
    build, probe = generate_join(
        JoinSpec(
            build=RelationSpec(n=300, distinct=40, distribution=Distribution.UNIFORM),
            probe=RelationSpec(n=500, distinct=40, distribution=Distribution.UNIFORM),
        ),
        seed=9,
    )
    assert naive_join_pairs(build, probe).shape[0] == naive_join_count(build, probe)


def test_one_to_one_join_has_exactly_n_matches():
    build, probe = generate_join(unique_pair(777), seed=10)
    assert naive_join_count(build, probe) == 777


def test_expected_cardinality_close_to_empirical():
    from repro.data import stats as stats_mod

    spec = JoinSpec(
        build=RelationSpec(n=20_000, distinct=2_000, distribution=Distribution.UNIFORM),
        probe=RelationSpec(n=30_000, distinct=2_000, distribution=Distribution.UNIFORM),
    )
    build, probe = generate_join(spec, seed=11)
    expected = stats_mod.expected_join_cardinality(spec)
    actual = naive_join_count(build, probe)
    assert actual == pytest.approx(expected, rel=0.05)
