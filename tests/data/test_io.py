"""Columnar persistence round trips."""

import numpy as np
import pytest

from repro.data import generate_relation
from repro.data.io import load_relation, load_table, save_relation, save_table
from repro.data.spec import RelationSpec
from repro.errors import InvalidRelationError
from repro.query.table import Table


def test_relation_round_trip(tmp_path):
    rel = generate_relation(
        RelationSpec(n=1000, payload_bytes=8, late_payload_bytes=32), seed=1
    )
    path = tmp_path / "rel.npz"
    save_relation(rel, path)
    loaded = load_relation(path)
    assert np.array_equal(loaded.key, rel.key)
    assert np.array_equal(loaded.payload, rel.payload)
    assert loaded.payload_bytes == 8
    assert loaded.late_payload_bytes == 32
    assert loaded.name == rel.name


def test_table_round_trip(tmp_path):
    table = Table("t", {"a": np.arange(10), "b": np.arange(10) * 2})
    path = tmp_path / "table.npz"
    save_table(table, path)
    loaded = load_table(path)
    assert loaded.name == "t"
    assert loaded.column_names == ["a", "b"]
    assert np.array_equal(loaded.column("b"), table.column("b"))


def test_wrong_kind_rejected(tmp_path):
    table = Table("t", {"a": np.arange(3)})
    path = tmp_path / "x.npz"
    save_table(table, path)
    with pytest.raises(InvalidRelationError):
        load_relation(path)
    rel = generate_relation(RelationSpec(n=10), seed=2)
    save_relation(rel, path)
    with pytest.raises(InvalidRelationError):
        load_table(path)
