"""Unit tests for :mod:`repro.data.relation`."""

import numpy as np
import pytest

from repro.data.relation import KEY_BYTES, Relation
from repro.errors import InvalidRelationError


def test_from_keys_assigns_row_ids_as_payload():
    rel = Relation.from_keys(np.array([5, 3, 9]))
    assert rel.num_tuples == 3
    assert list(rel.payload) == [0, 1, 2]


def test_tuple_and_total_bytes():
    rel = Relation.from_keys(np.arange(10), payload_bytes=4, late_payload_bytes=16)
    assert rel.tuple_bytes == KEY_BYTES + 4
    assert rel.nbytes == 10 * 8
    assert rel.total_bytes_with_late_payload == 10 * 8 + 10 * 16


def test_mismatched_columns_rejected():
    with pytest.raises(InvalidRelationError):
        Relation(key=np.arange(3), payload=np.arange(4))


def test_multidimensional_columns_rejected():
    with pytest.raises(InvalidRelationError):
        Relation(key=np.zeros((2, 2)), payload=np.zeros((2, 2)))


def test_negative_payload_width_rejected():
    with pytest.raises(InvalidRelationError):
        Relation.from_keys(np.arange(3), payload_bytes=-1)


def test_take_preserves_metadata():
    rel = Relation.from_keys(np.arange(10), payload_bytes=8, late_payload_bytes=32)
    sub = rel.take(np.array([1, 3, 5]))
    assert sub.num_tuples == 3
    assert list(sub.key) == [1, 3, 5]
    assert sub.payload_bytes == 8
    assert sub.late_payload_bytes == 32


def test_slice_is_view_and_half_open():
    rel = Relation.from_keys(np.arange(10))
    part = rel.slice(2, 5)
    assert list(part.key) == [2, 3, 4]
    assert part.key.base is not None  # zero copy


def test_distinct_keys():
    rel = Relation.from_keys(np.array([1, 1, 2, 3, 3, 3]))
    assert rel.distinct_keys() == 3


def test_len_and_describe():
    rel = Relation.from_keys(np.arange(4), name="r")
    assert len(rel) == 4
    assert "r:" in rel.describe()


def test_keys_coerced_to_int64():
    rel = Relation.from_keys(np.array([1, 2, 3], dtype=np.int32))
    assert rel.key.dtype == np.int64
