"""Unit tests for :mod:`repro.data.spec`."""

import pytest

from repro.data.spec import (
    Distribution,
    JoinSpec,
    RelationSpec,
    replicated_pair,
    unique_pair,
    zipf_pair,
)
from repro.errors import InvalidConfigError


def test_unique_defaults_distinct_to_n():
    spec = RelationSpec(n=100)
    assert spec.distinct == 100
    assert spec.distribution is Distribution.UNIQUE


def test_unique_with_mismatched_distinct_rejected():
    with pytest.raises(InvalidConfigError):
        RelationSpec(n=100, distinct=50)


def test_nonpositive_sizes_rejected():
    with pytest.raises(InvalidConfigError):
        RelationSpec(n=0)
    with pytest.raises(InvalidConfigError):
        RelationSpec(n=10, distinct=0, distribution=Distribution.UNIFORM)


def test_negative_zipf_rejected():
    with pytest.raises(InvalidConfigError):
        RelationSpec(n=10, distribution=Distribution.ZIPF, zipf_s=-0.5)


def test_scaled_preserves_multiplicity():
    spec = RelationSpec(n=1000, distinct=100, distribution=Distribution.UNIFORM)
    scaled = spec.scaled(5000)
    assert scaled.n == 5000
    assert scaled.distinct == 500
    assert scaled.avg_multiplicity == pytest.approx(spec.avg_multiplicity)


def test_scaled_unique_stays_unique():
    scaled = RelationSpec(n=10).scaled(99)
    assert scaled.distinct == 99


def test_with_payload():
    spec = RelationSpec(n=10).with_payload(late_payload_bytes=64)
    assert spec.late_payload_bytes == 64
    assert spec.payload_bytes == 4  # unchanged


def test_join_spec_totals():
    spec = unique_pair(100, 400)
    assert spec.total_tuples == 500
    assert spec.total_bytes == 500 * 8


def test_unique_pair_ratio_probe_is_uniform_over_build_domain():
    spec = unique_pair(100, 200)
    assert spec.probe.distribution is Distribution.UNIFORM
    assert spec.probe.distinct == 100


def test_join_spec_scaled_keeps_ratio():
    spec = unique_pair(100, 400).scaled(1000)
    assert spec.probe.n == 4000


def test_zipf_pair_sides():
    probe_skewed = zipf_pair(100, 0.5, skew_side="probe")
    assert probe_skewed.probe.distribution is Distribution.ZIPF
    assert probe_skewed.build.distribution is Distribution.UNIQUE

    build_skewed = zipf_pair(100, 0.5, skew_side="build")
    assert build_skewed.build.distribution is Distribution.ZIPF

    both = zipf_pair(100, 0.5, skew_side="both")
    assert both.identical_skew


def test_zipf_pair_zero_factor_degenerates_to_uniform():
    spec = zipf_pair(100, 0.0, skew_side="both")
    assert not spec.identical_skew
    assert spec.build.distribution is Distribution.UNIFORM


def test_zipf_pair_unknown_side_rejected():
    with pytest.raises(InvalidConfigError):
        zipf_pair(100, 0.5, skew_side="sideways")


def test_identical_skew_requires_zipf():
    with pytest.raises(InvalidConfigError):
        JoinSpec(
            build=RelationSpec(n=10),
            probe=RelationSpec(n=10),
            identical_skew=True,
        )


def test_replicated_pair():
    spec = replicated_pair(100, 4)
    assert spec.build.distinct == 25
    assert spec.build.avg_multiplicity == pytest.approx(4.0)
    with pytest.raises(InvalidConfigError):
        replicated_pair(100, 0)
