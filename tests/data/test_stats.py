"""Analytic vs empirical workload statistics (the estimate/run contract)."""

import numpy as np
import pytest

from repro.data import Distribution, JoinSpec, RelationSpec, generate_join, generate_relation
from repro.data import stats as stats_mod
from repro.data import zipf_pair
from repro.errors import InvalidConfigError


def test_radix_digit_and_histogram():
    keys = np.array([0b000, 0b001, 0b101, 0b100])
    assert list(stats_mod.radix_digit(keys, 2)) == [0, 1, 1, 0]
    assert list(stats_mod.radix_histogram(keys, 2)) == [2, 2, 0, 0]


def test_radix_digit_with_shift():
    keys = np.array([0b1100, 0b0100])
    assert list(stats_mod.radix_digit(keys, 2, shift=2)) == [3, 1]


def test_radix_digit_requires_bits():
    with pytest.raises(InvalidConfigError):
        stats_mod.radix_digit(np.array([1]), 0)


def test_expected_partition_sizes_uniform():
    spec = RelationSpec(n=4096)
    sizes = stats_mod.expected_partition_sizes(spec, 4)
    assert sizes.shape == (16,)
    assert np.allclose(sizes, 256.0)


def test_expected_partition_sizes_zipf_match_empirical():
    spec = RelationSpec(
        n=200_000, distinct=50_000, distribution=Distribution.ZIPF, zipf_s=0.9
    )
    rel = generate_relation(spec, seed=3)
    empirical = stats_mod.empirical_partition_sizes(rel.key, 4)
    expected = stats_mod.expected_partition_sizes(spec, 4)
    # The heavy partitions must agree to within sampling noise.
    assert np.allclose(empirical, expected, rtol=0.08, atol=200)


def test_expected_max_partition_grows_with_skew():
    uniform = RelationSpec(n=100_000, distinct=100_000 // 1, distribution=Distribution.UNIQUE)
    skewed = RelationSpec(
        n=100_000, distinct=100_000, distribution=Distribution.ZIPF, zipf_s=1.0
    )
    assert stats_mod.expected_max_partition_size(
        skewed, 8
    ) > 2 * stats_mod.expected_max_partition_size(uniform, 8)


def test_expected_cardinality_one_sided_skew_does_not_explode():
    """One-sided skew keeps the output linear — the paper's Fig 17/18
    observation."""
    n = 1_000_000
    uniform = zipf_pair(n, 0.0, skew_side="both")
    probe_skew = zipf_pair(n, 1.0, skew_side="probe")
    both_skew = zipf_pair(n, 1.0, skew_side="both")
    base = stats_mod.expected_join_cardinality(uniform)
    assert stats_mod.expected_join_cardinality(probe_skew) == pytest.approx(base, rel=0.01)
    assert stats_mod.expected_join_cardinality(both_skew) > 50 * base


def test_expected_cardinality_identical_skew_matches_empirical():
    spec = zipf_pair(30_000, 0.75, skew_side="both")
    from repro.data import naive_join_count

    build, probe = generate_join(spec, seed=5)
    expected = stats_mod.expected_join_cardinality(spec)
    actual = naive_join_count(build, probe)
    assert actual == pytest.approx(expected, rel=0.15)


def test_matches_per_probe():
    spec = JoinSpec(
        build=RelationSpec(n=1000, distinct=100, distribution=Distribution.UNIFORM),
        probe=RelationSpec(n=500, distinct=100, distribution=Distribution.UNIFORM),
    )
    assert stats_mod.expected_matches_per_probe(spec) == pytest.approx(10.0)


def test_chain_steps_formula():
    assert stats_mod.expected_chain_steps_per_probe(2048, 2048, 1.0) == 1.0
    assert stats_mod.expected_chain_steps_per_probe(8192, 2048, 1.0) == 4.0
    # matches dominate when larger than the load factor
    assert stats_mod.expected_chain_steps_per_probe(100, 2048, 7.0) == 7.0
    with pytest.raises(InvalidConfigError):
        stats_mod.expected_chain_steps_per_probe(10, 0, 1.0)


def test_empirical_chain_steps():
    build_slots = np.array([0, 0, 1])
    probe_slots = np.array([0, 1, 2])
    # chains: slot0 len 2, slot1 len 1, slot2 len 0 -> mean (2+1+0)/3
    assert stats_mod.empirical_chain_steps_per_probe(build_slots, probe_slots, 4) == (
        pytest.approx(1.0)
    )
