"""Tests for the TPC-H-lite generator."""

import numpy as np
import pytest

from repro.data import naive_join_count
from repro.data.tpch import (
    CUSTOMERS_PER_SF,
    ORDERS_PER_SF,
    generate,
    join_specs,
    lineitem_cardinality,
)
from repro.errors import InvalidConfigError


def test_cardinalities_follow_scale_factor():
    tables = generate(0.01, seed=1)
    assert tables.customer.num_tuples == int(CUSTOMERS_PER_SF * 0.01)
    assert tables.orders.num_tuples == int(ORDERS_PER_SF * 0.01)
    lineitems = tables.lineitem_orderkey.num_tuples
    assert lineitems == pytest.approx(lineitem_cardinality(0.01), rel=0.1)


def test_lineitem_columns_align():
    tables = generate(0.01, seed=2)
    assert (
        tables.lineitem_orderkey.num_tuples == tables.lineitem_custkey.num_tuples
    )


def test_every_lineitem_references_existing_order_and_customer():
    tables = generate(0.005, seed=3)
    assert tables.lineitem_orderkey.key.max() < tables.orders.num_tuples
    assert tables.lineitem_custkey.key.max() < tables.customer.num_tuples


def test_one_third_of_customers_have_no_orders():
    tables = generate(0.02, seed=4)
    active = np.unique(tables.lineitem_custkey.key).shape[0]
    assert active <= (2 * tables.customer.num_tuples) // 3


def test_orders_join_matches_every_lineitem():
    tables = generate(0.005, seed=5)
    matches = naive_join_count(tables.orders, tables.lineitem_orderkey)
    assert matches == tables.lineitem_orderkey.num_tuples


def test_join_specs_cardinalities():
    specs = join_specs(10)
    assert specs["customer"].build.n == 1_500_000
    assert specs["orders"].build.n == 15_000_000
    assert specs["customer"].probe.n == specs["orders"].probe.n


def test_invalid_scale_factor():
    with pytest.raises(InvalidConfigError):
        generate(0)
