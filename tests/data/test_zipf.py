"""Tests for the Zipf sampler and its analytic moments."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import zipf as zipf_mod
from repro.errors import InvalidConfigError


def test_harmonic_s_zero_is_n():
    assert zipf_mod.harmonic(1000, 0.0) == 1000.0


def test_harmonic_small_exact():
    assert zipf_mod.harmonic(3, 1.0) == pytest.approx(1 + 0.5 + 1 / 3)


def test_harmonic_large_matches_exact_summation():
    n = zipf_mod._EXACT_LIMIT * 4
    approx = zipf_mod.harmonic(n, 0.75)
    # Independent estimate through the same head + a finer integral.
    head = float(np.sum(np.arange(1, 2_000_001, dtype=np.float64) ** -0.75))
    tail = zipf_mod._tail_integral(2_000_000, n, 0.75)
    assert approx == pytest.approx(head + tail, rel=1e-4)


def test_harmonic_rejects_nonpositive():
    with pytest.raises(InvalidConfigError):
        zipf_mod.harmonic(0, 1.0)


def test_pmf_head_sums_below_one_and_decreases():
    pmf = zipf_mod.pmf_head(10_000, 0.9, head=100)
    assert 0 < pmf.sum() < 1
    assert np.all(np.diff(pmf) <= 0)


def test_sum_pmf_sq_uniform_case():
    assert zipf_mod.sum_pmf_sq(500, 0.0) == pytest.approx(1 / 500)


def test_sum_pmf_sq_grows_with_skew():
    values = [zipf_mod.sum_pmf_sq(100_000, s) for s in (0.0, 0.5, 0.75, 1.0)]
    assert values == sorted(values)


def test_sample_bounds_and_dtype():
    rng = np.random.default_rng(0)
    out = zipf_mod.sample(1000, 0.8, 5000, rng)
    assert out.dtype == np.int64
    assert out.min() >= 0 and out.max() < 1000


def test_sample_zero_skew_is_uniform():
    rng = np.random.default_rng(1)
    out = zipf_mod.sample(100, 0.0, 200_000, rng)
    counts = np.bincount(out, minlength=100)
    assert counts.min() > 1500  # ~2000 expected per value


def test_sample_matches_pmf_on_head():
    rng = np.random.default_rng(2)
    n, s, size = 10_000, 0.9, 400_000
    out = zipf_mod.sample(n, s, size, rng)
    counts = np.bincount(out, minlength=n)
    pmf = np.arange(1, n + 1, dtype=np.float64) ** -s
    pmf /= pmf.sum()
    for rank in range(5):
        expected = pmf[rank] * size
        assert counts[rank] == pytest.approx(expected, rel=0.1)


def test_hybrid_sampler_consistent_with_exact():
    """The large-domain hybrid path should produce head frequencies that
    match the exact-CDF path statistically."""
    n = zipf_mod._EXACT_LIMIT * 2  # forces the hybrid path
    s, size = 0.9, 300_000
    hybrid = zipf_mod._sample_hybrid(n, s, size, np.random.default_rng(3))
    assert hybrid.min() >= 0 and hybrid.max() < n
    counts = np.bincount(hybrid[hybrid < 4], minlength=4)
    h = zipf_mod.harmonic(n, s)
    for rank in range(4):
        expected = (rank + 1.0) ** -s / h * size
        assert counts[rank] == pytest.approx(expected, rel=0.15)


def test_sample_rejects_bad_arguments():
    rng = np.random.default_rng(0)
    with pytest.raises(InvalidConfigError):
        zipf_mod.sample(0, 0.5, 10, rng)
    with pytest.raises(InvalidConfigError):
        zipf_mod.sample(10, 0.5, -1, rng)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=5000),
    s=st.floats(min_value=0.0, max_value=1.5),
    size=st.integers(min_value=0, max_value=2000),
)
def test_sample_always_in_domain(n, s, size):
    rng = np.random.default_rng(42)
    out = zipf_mod.sample(n, s, size, rng)
    assert out.shape == (size,)
    if size:
        assert out.min() >= 0 and out.max() < n
